"""Ablation: lazy vs blocking entanglement tracking (Sec 4.1 design claim).

The QNP's lazy tracking lets entanglement swaps proceed without waiting for
classical control messages.  The ablation flips the
``blocking_tracking`` switch — swaps wait until the TRACK message for the
upstream pair has arrived (the synchronised hop-by-hop style the paper
argues against) — and sweeps the classical message delay.

Asserted: with no delay the two variants are comparable, and as the delay
grows the blocking variant loses throughput much faster.
"""

import pytest

from repro.analysis import render_table
from repro.core import UserRequest
from repro.netsim.units import MS
from repro.network.builder import build_chain_network

from figutils import scale, write_result

DELAYS_MS = scale(quick=(0.0, 2.0, 5.0), full=(0.0, 1.0, 2.0, 5.0, 10.0))
SIM_SECONDS = scale(quick=8.0, full=20.0)


def run_variant(blocking: bool, delay_ms: float, seed: int = 5) -> float:
    net = build_chain_network(3, seed=seed)
    for qnp in net.qnps.values():
        qnp.blocking_tracking = blocking
    circuit_id = net.establish_circuit("node0", "node2", 0.8, "short")
    net.set_message_delay(delay_ms * MS)
    handle = net.submit(circuit_id, UserRequest(num_pairs=10 ** 6))
    net.run(until_s=net.sim.now / 1e9 + SIM_SECONDS)
    return len(handle.delivered) / SIM_SECONDS


@pytest.fixture(scope="module")
def sweep():
    return {
        (blocking, delay): run_variant(blocking, delay)
        for blocking in (False, True)
        for delay in DELAYS_MS
    }


def test_ablation_tracking(benchmark, sweep):
    results = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    rows = [[delay,
             round(results[(False, delay)], 2),
             round(results[(True, delay)], 2)]
            for delay in DELAYS_MS]
    table = render_table(
        ["message delay (ms)", "lazy tracking (pairs/s)",
         "blocking tracking (pairs/s)"],
        rows,
        title=("Ablation — lazy vs blocking entanglement tracking "
               "(3-node chain, F=0.8, short cutoff)"))
    write_result("ablation_tracking", table)


def test_lazy_dominates_blocking(benchmark, sweep):
    for delay in DELAYS_MS:
        assert sweep[(False, delay)] >= sweep[(True, delay)] * 0.9, delay


def test_blocking_degrades_with_delay(benchmark, sweep):
    worst_delay = DELAYS_MS[-1]
    lazy_drop = sweep[(False, worst_delay)] / max(sweep[(False, 0.0)], 1e-9)
    blocking_drop = sweep[(True, worst_delay)] / max(sweep[(True, 0.0)], 1e-9)
    assert blocking_drop < lazy_drop, (blocking_drop, lazy_drop)
