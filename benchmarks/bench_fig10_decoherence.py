"""Figure 10: robustness against decoherence.

Three panels:

* **(a, b)** throughput of two competing circuits (A0-B0 at F=0.9, A1-B1 at
  F=0.8) as a function of the memory lifetime T2*, comparing the QNP's
  cutoff mechanism against the "simpler protocol" baseline — no network
  cutoff, end-nodes discard end-to-end pairs below the fidelity threshold
  using a simulation oracle (physically impossible, as the paper stresses);
* **(c)** throughput vs artificial classical-message processing delay at
  T2* ≈ 1.6 s: flat until the delay approaches the cutoff, then the
  delivered pairs fall below threshold.

Asserted shapes: throughput increases with T2*; the F=0.9 circuit suffers
more; the cutoff beats the oracle baseline at short lifetimes ("low but not
zero"); and the delay curve is flat early and collapses late.
"""

import pytest

from repro.analysis import render_table
from repro.control.routing import RouteError
from repro.core import UserRequest
from repro.hardware import SIMULATION
from repro.netsim.units import MS, S
from repro.network.builder import build_dumbbell_network

from figutils import scale, write_result

T2_SWEEP_S = scale(quick=(0.4, 1.6, 6.4), full=(0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 25.0))
DELAY_SWEEP_MS = scale(quick=(0.0, 2.0, 10.0, 40.0),
                       full=(0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0))
SIM_SECONDS = scale(quick=8.0, full=20.0)
WARMUP_SECONDS = scale(quick=2.0, full=4.0)
FIDELITIES = {"A0-B0": 0.9, "A1-B1": 0.8}


def _build(t2_s: float, seed: int):
    return build_dumbbell_network(seed=seed, params=SIMULATION.with_t2(t2_s * S))


def _measure(net, handles) -> dict:
    """Accepted-pair throughput per circuit label in the steady window."""
    net.run(until_s=net.sim.now / 1e9 + SIM_SECONDS)
    window_start = net.sim.now - (SIM_SECONDS - WARMUP_SECONDS) * S
    window_s = SIM_SECONDS - WARMUP_SECONDS
    out = {}
    for label, handle in handles.items():
        count = sum(1 for matched in handle.matched_pairs
                    if matched.accepted
                    and matched.head_delivery.t_delivered >= window_start)
        out[label] = count / window_s
    return out


def run_t2_point(t2_s: float, use_cutoff: bool, seed: int = 1) -> dict:
    """Throughput of both circuits at one memory lifetime."""
    net = _build(t2_s, seed)
    handles = {}
    for label, (head, tail) in (("A0-B0", ("A0", "B0")),
                                ("A1-B1", ("A1", "B1"))):
        target = FIDELITIES[label]
        try:
            route = net.controller.compute_route(head, tail, target, "loss")
        except RouteError:
            handles[label] = None
            continue
        if use_cutoff:
            circuit_id = net._install(route, None)
            handle = net.submit(circuit_id, UserRequest(num_pairs=10 ** 6),
                                oracle_min_fidelity=target)
        else:
            # Baseline: same link fidelities, no cutoff anywhere; the
            # end-nodes filter with the simulation oracle.
            circuit_id = net.establish_circuit_manual(
                route.path, route.link_fidelity, cutoff=None,
                max_eer=route.eer, estimated_fidelity=route.estimated_fidelity)
            handle = net.submit(circuit_id, UserRequest(num_pairs=10 ** 6),
                                oracle_min_fidelity=target)
        handles[label] = handle
    live = {label: handle for label, handle in handles.items()
            if handle is not None}
    measured = _measure(net, live)
    for label in handles:
        measured.setdefault(label, 0.0)
    return measured


def run_delay_point(delay_ms: float, seed: int = 1) -> dict:
    """Panel (c): throughput at T2*=1.6 s under injected message delay."""
    net = _build(1.6, seed)
    handles = {}
    cutoffs = {}
    for label, (head, tail) in (("A0-B0", ("A0", "B0")),
                                ("A1-B1", ("A1", "B1"))):
        target = FIDELITIES[label]
        circuit_id = net.establish_circuit(head, tail, target, "loss")
        cutoffs[label] = net.route_of(circuit_id).cutoff
        handles[label] = net.submit(circuit_id, UserRequest(num_pairs=10 ** 6),
                                    oracle_min_fidelity=target)
    net.set_message_delay(delay_ms * MS)
    measured = _measure(net, handles)
    measured["cutoff_ms"] = min(cutoffs.values()) / 1e6
    return measured


@pytest.fixture(scope="module")
def t2_sweep():
    results = {}
    for t2_s in T2_SWEEP_S:
        results[t2_s] = {
            "cutoff": run_t2_point(t2_s, use_cutoff=True),
            "oracle": run_t2_point(t2_s, use_cutoff=False),
        }
    return results


@pytest.fixture(scope="module")
def delay_sweep():
    return {delay: run_delay_point(delay) for delay in DELAY_SWEEP_MS}


def test_fig10ab_throughput_vs_memory_lifetime(benchmark, t2_sweep):
    results = benchmark.pedantic(lambda: t2_sweep, rounds=1, iterations=1)
    rows = []
    for t2_s in T2_SWEEP_S:
        point = results[t2_s]
        rows.append([t2_s,
                     round(point["cutoff"]["A0-B0"], 2),
                     round(point["oracle"]["A0-B0"], 2),
                     round(point["cutoff"]["A1-B1"], 2),
                     round(point["oracle"]["A1-B1"], 2)])
    table = render_table(
        ["T2* (s)",
         "F=0.9 cutoff (pairs/s)", "F=0.9 oracle (pairs/s)",
         "F=0.8 cutoff (pairs/s)", "F=0.8 oracle (pairs/s)"],
        rows,
        title=("Fig 10(a,b) — throughput vs memory lifetime; QNP cutoff vs "
               "no-cutoff + end-node fidelity oracle\n"
               "paper shape: throughput grows with T2*; F=0.9 hit harder; "
               "cutoff ≥ oracle baseline"))
    write_result("fig10ab_decoherence", table)


def test_fig10ab_throughput_grows_with_lifetime(benchmark, t2_sweep):
    lows = t2_sweep[T2_SWEEP_S[0]]["cutoff"]
    highs = t2_sweep[T2_SWEEP_S[-1]]["cutoff"]
    assert highs["A0-B0"] > lows["A0-B0"]
    assert highs["A1-B1"] >= lows["A1-B1"]


def test_fig10ab_high_fidelity_circuit_suffers_more(benchmark, t2_sweep):
    """F=0.9 needs slower links and a tighter swap window: lower rate."""
    for t2_s in T2_SWEEP_S:
        point = t2_sweep[t2_s]["cutoff"]
        assert point["A0-B0"] <= point["A1-B1"] + 0.5, (t2_s, point)


def test_fig10ab_cutoff_beats_oracle_baseline(benchmark, t2_sweep):
    """The cutoff outperforms even the physically impossible oracle where
    the mechanism matters: the high-fidelity circuit, whose swap window is
    tight, at every memory lifetime (the paper's Fig 10a emphasis — the
    F=0.8 circuit's curves nearly coincide in Fig 10b and are within noise
    of each other here too)."""
    for t2_s in T2_SWEEP_S:
        cutoff = t2_sweep[t2_s]["cutoff"]["A0-B0"]
        oracle = t2_sweep[t2_s]["oracle"]["A0-B0"]
        assert cutoff >= oracle, (t2_s, cutoff, oracle)
    # And at the shortest lifetime the margin is decisive: the oracle
    # baseline essentially stops delivering F=0.9 pairs.
    shortest = t2_sweep[T2_SWEEP_S[0]]
    assert shortest["cutoff"]["A0-B0"] >= 2.0 * shortest["oracle"]["A0-B0"]


def test_fig10ab_low_but_not_zero(benchmark, t2_sweep):
    """Paper: 'the F=0.9 with cutoff throughput becomes low, but not zero'."""
    shortest = t2_sweep[T2_SWEEP_S[0]]["cutoff"]
    assert shortest["A0-B0"] > 0.0


def test_fig10c_message_delay(benchmark, delay_sweep):
    results = benchmark.pedantic(lambda: delay_sweep, rounds=1, iterations=1)
    cutoff_ms = results[DELAY_SWEEP_MS[0]]["cutoff_ms"]
    rows = [[delay,
             round(results[delay]["A0-B0"], 2),
             round(results[delay]["A1-B1"], 2)] for delay in DELAY_SWEEP_MS]
    table = render_table(
        ["message delay (ms)", "F=0.9 tp (pairs/s)", "F=0.8 tp (pairs/s)"],
        rows,
        title=(f"Fig 10(c) — throughput vs classical message delay at "
               f"T2*=1.6 s (qubit cutoff ≈ {cutoff_ms:.1f} ms)\n"
               "paper shape: flat until the delay approaches the cutoff, "
               "then the delivered pairs fall below threshold"))
    write_result("fig10c_message_delay", table)


def test_fig10c_flat_below_cutoff_then_collapse(benchmark, delay_sweep):
    baseline = delay_sweep[DELAY_SWEEP_MS[0]]
    cutoff_ms = baseline["cutoff_ms"]
    small_delays = [d for d in DELAY_SWEEP_MS if d <= cutoff_ms / 4 and d > 0]
    large_delays = [d for d in DELAY_SWEEP_MS if d >= cutoff_ms]
    for delay in small_delays:
        assert delay_sweep[delay]["A1-B1"] > 0.5 * baseline["A1-B1"], delay
    assert large_delays, f"sweep never crossed the cutoff ({cutoff_ms} ms)"
    worst = delay_sweep[max(large_delays)]
    assert worst["A0-B0"] < 0.4 * max(baseline["A0-B0"], 0.1) + 0.05
