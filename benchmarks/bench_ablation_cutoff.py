"""Ablation: the cutoff mechanism (Sec 4.1 / Fig 10 design claim).

Compares three strategies on a 3-node chain with deliberately short memory
(T2* = 50 ms), all using the same link fidelity:

* **cutoff** — the QNP's mechanism: discard unswapped intermediate pairs
  after a fixed window;
* **oracle** — no cutoff; end-nodes discard end-to-end pairs below the
  fidelity threshold using the simulation's ground truth (the paper's
  "simpler protocol", impossible outside a simulator);
* **none** — no cutoff, deliver everything.

Measured: useful throughput (pairs above threshold per second) and mean
delivered fidelity.  Asserted: the cutoff yields at least the oracle's
useful throughput, and "none" delivers garbage fidelity.
"""

import pytest

from repro.analysis import mean, render_table
from repro.core import UserRequest
from repro.hardware import SIMULATION
from repro.netsim.units import MS, S
from repro.network.builder import build_chain_network

from figutils import scale, write_result

T2_S = 0.05
LINK_FIDELITY = 0.92
TARGET = 0.8
CUTOFF = 5 * MS
SIM_SECONDS = scale(quick=8.0, full=30.0)


def run_variant(cutoff, oracle_threshold, seed=4) -> dict:
    net = build_chain_network(3, seed=seed,
                              params=SIMULATION.with_t2(T2_S * S))
    circuit_id = net.establish_circuit_manual(
        ["node0", "node1", "node2"], link_fidelity=LINK_FIDELITY,
        cutoff=cutoff, max_eer=200.0, estimated_fidelity=TARGET)
    handle = net.submit(circuit_id, UserRequest(num_pairs=10 ** 6),
                        oracle_min_fidelity=oracle_threshold,
                        record_fidelity=True)
    net.run(until_s=net.sim.now / 1e9 + SIM_SECONDS)
    matched = handle.matched_pairs
    fidelities = [m.fidelity for m in matched]
    useful = sum(1 for m in matched if m.fidelity >= TARGET)
    return {
        "useful_tp": useful / SIM_SECONDS,
        "delivered_tp": sum(1 for m in matched if m.accepted) / SIM_SECONDS,
        "mean_fidelity": mean(fidelities) if fidelities else 0.0,
    }


@pytest.fixture(scope="module")
def variants():
    return {
        "cutoff": run_variant(cutoff=CUTOFF, oracle_threshold=None),
        "oracle": run_variant(cutoff=None, oracle_threshold=TARGET),
        "none": run_variant(cutoff=None, oracle_threshold=None),
    }


def test_ablation_cutoff(benchmark, variants):
    results = benchmark.pedantic(lambda: variants, rounds=1, iterations=1)
    rows = [[name,
             round(data["useful_tp"], 2),
             round(data["delivered_tp"], 2),
             round(data["mean_fidelity"], 3)]
            for name, data in results.items()]
    table = render_table(
        ["strategy", "useful tp (pairs/s ≥ F)", "accepted tp (pairs/s)",
         "mean fidelity"],
        rows,
        title=(f"Ablation — cutoff vs oracle vs none "
               f"(T2*={T2_S}s, link F={LINK_FIDELITY}, target F={TARGET})"))
    write_result("ablation_cutoff", table)


def test_cutoff_at_least_matches_oracle(benchmark, variants):
    """Sec 5.2: the cutoff beats the physically impossible oracle."""
    assert variants["cutoff"]["useful_tp"] >= variants["oracle"]["useful_tp"]


def test_no_cutoff_fidelity_collapses(benchmark, variants):
    assert variants["none"]["mean_fidelity"] < variants["cutoff"]["mean_fidelity"]
    assert variants["none"]["mean_fidelity"] < TARGET


def test_cutoff_delivers_above_threshold(benchmark, variants):
    assert variants["cutoff"]["mean_fidelity"] >= TARGET - 0.05
