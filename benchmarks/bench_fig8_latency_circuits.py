"""Figure 8: request latency vs simultaneous requests over shared circuits.

Paper setup: 1–8 simultaneous requests of 100 pairs each, spread
round-robin across 1, 2 or 4 circuits that all share the MA–MB bottleneck
of the Fig 7 dumbbell; long vs short cutoff.  Reported: the average latency
of the requests on the A0-B0 circuit.

Expected shapes (all asserted):

* (a,b,d,e) latency grows roughly linearly with the number of requests for
  1 and 2 circuits — circuits are shared efficiently;
* (c) with 4 circuits and the long cutoff the network collapses ("quantum
  congestion collapse"): two comm qubits per link end clog with pairs that
  have no swap partner;
* (f) the short cutoff discards unmatched pairs quickly and restores
  near-linear scaling, and generally lowers latency (the routing budget can
  relax per-link fidelities).

Quick scale: 8-pair requests, request counts {1, 2, 4, 8}, one seed.
REPRO_SCALE=full: 100-pair requests, counts 1..8, three seeds.
"""

import pytest

from repro.analysis import mean, render_table
from repro.core import UserRequest
from repro.network.builder import build_dumbbell_network

from figutils import scale, write_result

PAIRS_PER_REQUEST = scale(quick=8, full=100)
REQUEST_COUNTS = scale(quick=(1, 2, 4, 8), full=tuple(range(1, 9)))
SEEDS = scale(quick=(1,), full=(1, 2, 3))
TIMEOUT_S = scale(quick=900.0, full=3600.0)

CIRCUIT_SETS = {
    1: [("A0", "B0")],
    2: [("A0", "B0"), ("A1", "B1")],
    4: [("A0", "B0"), ("A1", "B1"), ("A0", "B1"), ("A1", "B0")],
}


def run_point(num_circuits: int, cutoff_policy: str, num_requests: int,
              seed: int) -> float:
    """Mean latency (ms) of requests on the A0-B0 circuit."""
    net = build_dumbbell_network(seed=seed)
    circuit_ids = [net.establish_circuit(a, b, 0.8, cutoff_policy)
                   for a, b in CIRCUIT_SETS[num_circuits]]
    handles = []
    for index in range(num_requests):
        circuit_id = circuit_ids[index % len(circuit_ids)]
        handles.append((circuit_id,
                        net.submit(circuit_id,
                                   UserRequest(num_pairs=PAIRS_PER_REQUEST))))
    net.run_until_complete([h for _, h in handles], timeout_s=TIMEOUT_S)
    a0b0 = [h for cid, h in handles
            if cid == circuit_ids[0] and h.latency is not None]
    assert a0b0, "no completed A0-B0 requests"
    return mean([h.latency for h in a0b0]) / 1e6


def run_panel_grid() -> dict:
    results = {}
    for cutoff_policy in ("loss", "short"):
        for num_circuits in (1, 2, 4):
            series = []
            for num_requests in REQUEST_COUNTS:
                values = [run_point(num_circuits, cutoff_policy,
                                    num_requests, seed) for seed in SEEDS]
                series.append(mean(values))
            results[(cutoff_policy, num_circuits)] = series
    return results


@pytest.fixture(scope="module")
def panel_grid():
    return run_panel_grid()


def test_fig8_latency_vs_requests(benchmark, panel_grid):
    results = benchmark.pedantic(lambda: panel_grid, rounds=1, iterations=1)
    rows = []
    for num_requests_index, num_requests in enumerate(REQUEST_COUNTS):
        row = [num_requests]
        for cutoff_policy in ("loss", "short"):
            for num_circuits in (1, 2, 4):
                row.append(round(results[(cutoff_policy, num_circuits)]
                                 [num_requests_index], 1))
        rows.append(row)
    table = render_table(
        ["requests",
         "long/1c (ms)", "long/2c (ms)", "long/4c (ms)",
         "short/1c (ms)", "short/2c (ms)", "short/4c (ms)"],
        rows,
        title=(f"Fig 8 — mean A0-B0 request latency, {PAIRS_PER_REQUEST} "
               "pairs/request (paper: 100)\n"
               "paper shape: linear for 1-2 circuits; collapse for 4 "
               "circuits + long cutoff; short cutoff restores scaling"))
    write_result("fig8_latency_circuits", table)


def test_fig8_linear_scaling_one_two_circuits(benchmark, panel_grid):
    """(a,b,d,e): latency grows with request count, roughly linearly."""
    for cutoff_policy in ("loss", "short"):
        for num_circuits in (1, 2):
            series = panel_grid[(cutoff_policy, num_circuits)]
            assert series[-1] > series[0], (cutoff_policy, num_circuits)
            # FIFO service of k requests: mean latency ratio ≈ (k+1)/2.
            ratio = series[-1] / series[0]
            expected = (REQUEST_COUNTS[-1] + 1) / 2
            assert 0.3 * expected < ratio < 3.0 * expected, \
                (cutoff_policy, num_circuits, ratio)


def test_fig8_congestion_collapse_four_circuits(benchmark, panel_grid):
    """(c): 4 circuits + long cutoff ≫ 2 circuits (congestion collapse)."""
    four_long = panel_grid[("loss", 4)][-1]
    two_long = panel_grid[("loss", 2)][-1]
    assert four_long > 3.0 * two_long, (four_long, two_long)


def test_fig8_short_cutoff_restores_scaling(benchmark, panel_grid):
    """(f): the short cutoff clears the collapse."""
    four_long = panel_grid[("loss", 4)][-1]
    four_short = panel_grid[("short", 4)][-1]
    assert four_short < four_long / 2.0, (four_short, four_long)
