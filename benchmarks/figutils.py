"""Shared utilities for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper as an aligned
text table, printed to stdout and written to ``benchmarks/results/``.

Scale: by default the benchmarks run a reduced workload (fewer pairs,
fewer seeds, fewer sweep points) so the whole suite finishes in minutes.
Set ``REPRO_SCALE=full`` for paper-scale runs (100-pair requests, more
seeds) — same code, longer sweeps.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_SCALE", "quick").lower() == "full"


def scale(quick, full):
    """Pick a workload parameter by scale."""
    return full if FULL_SCALE else quick


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)


def steady_state_window(total_s: float, warmup_fraction: float = 0.5
                        ) -> tuple[float, float]:
    """Measurement window in ns, skipping the warm-up."""
    return total_s * warmup_fraction * 1e9, total_s * 1e9
