#!/usr/bin/env python
"""CI performance-regression gate: fresh bench JSON vs committed baseline.

Compares every op a fresh ``run_bench.py`` JSON shares with the newest
committed ``BENCH_<rev>.json`` and fails (exit 1) when any op's median
slowed down by more than ``--threshold`` (default 3x — CI runners are
noisy, so the gate catches order-of-magnitude regressions, not percent
drift)::

    PYTHONPATH=src python benchmarks/run_bench.py --rounds 3 --out fresh.json
    python benchmarks/compare_bench.py fresh.json                # auto baseline
    python benchmarks/compare_bench.py fresh.json --baseline BENCH_abc.json

"Newest committed" means newest by git commit date of the baseline file
(falling back to file mtime outside a checkout), so the gate always
measures against the trajectory the repository actually records.  Ops
present on only one side (a benchmark added or retired this PR) are
reported but never fail the gate.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def baseline_candidates(root: Path = REPO_ROOT) -> list[Path]:
    """All committed-style ``BENCH_<rev>.json`` files in the repo root."""
    return sorted(root.glob("BENCH_*.json"))


def _in_git_checkout(root: Path) -> bool:
    """True when ``root`` sits inside a git work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--is-inside-work-tree"],
            capture_output=True, text=True, check=True, cwd=root)
        return out.stdout.strip() == "true"
    except Exception:
        return False


def _commit_time(path: Path):
    """Last git commit timestamp of ``path`` (None when never committed).

    Untracked files must not win baseline selection — a locally produced
    (uncommitted) ``BENCH_*.json`` would otherwise compare fresh numbers
    against themselves and the gate would always pass.
    """
    try:
        out = subprocess.run(
            ["git", "log", "-1", "--format=%ct", "--", path.name],
            capture_output=True, text=True, check=True, cwd=path.parent)
        if out.stdout.strip():
            return float(out.stdout.strip())
    except Exception:
        pass
    return None


def changed_since(base: str, root: Path = REPO_ROOT) -> set[str]:
    """Names of ``BENCH_*.json`` files added/changed relative to ``base``.

    The CI gate excludes these on pull requests: a PR that records its
    own fresh baseline (this repository's per-PR convention) must still
    be measured against the baseline its *base branch* records, or it
    would neutralise the gate for its own regression.
    """
    out = subprocess.run(
        ["git", "diff", "--name-only", base, "--", "BENCH_*.json"],
        capture_output=True, text=True, check=True, cwd=root)
    return {Path(name).name for name in out.stdout.split()}


def newest_baseline(root: Path = REPO_ROOT,
                    exclude: set[str] = frozenset()) -> Path:
    """The most recently *committed* ``BENCH_*.json`` (ties: by name).

    Inside a git checkout, untracked candidates are ignored; outside one
    (e.g. an exported tarball) file mtime decides instead.  ``exclude``
    drops candidates by file name before selection.
    """
    candidates = [path for path in baseline_candidates(root)
                  if path.name not in exclude]
    if not candidates:
        raise FileNotFoundError(
            f"no BENCH_*.json baseline found under {root}")
    if _in_git_checkout(root):
        committed = {path: stamp for path in candidates
                     if (stamp := _commit_time(path)) is not None}
        if not committed:
            raise FileNotFoundError(
                f"no *committed* BENCH_*.json baseline under {root} "
                f"(untracked baselines are not trusted)")
        return max(committed, key=lambda path: (committed[path], path.name))
    return max(candidates,
               key=lambda path: (path.stat().st_mtime, path.name))


#: Formalism-ratio floors enforced by ``--check-speedups``: the fresh
#: payload's ``speedup_bell_over_dm[op]`` must reach the floor.  The fast
#: Bell-diagonal formalism being *slower* than the exact engine on a state
#: heavy op is a regression by construction (BENCH_c001c5d.json recorded
#: exactly that for the old link-generation op before it was rebuilt to
#: measure delivery work); the floors keep it from reappearing silently.
SPEEDUP_FLOORS = {
    "bsm": 5.0,
    "link_delivery_round": 1.0,
    # The swap-heavy traffic scenario is where the Bell-diagonal engine
    # pays off end to end; the vectorised-core PR measured ~3.7x warm, so
    # 2.0 is comfortably below noise yet above the pre-vectorisation 1.95.
    "traffic_round": 2.0,
}

#: Simulated-throughput floors enforced by ``--check-speedups``: the fresh
#: payload's ``traffic_pairs_per_s[formalism]`` (from the ``traffic_soak``
#: scenario) must reach the floor.  936 pairs/s was the PR 5 scenario's
#: rate; the batched-EGP + SoA-store core must sustain >= 10x that.
THROUGHPUT_FLOORS = {
    "bell": 9360.0,
}

#: Memory ceilings (kB) enforced by ``--check-speedups``: the fresh
#: payload's ``soak_max_rss_kb[scenario]`` must stay *below* the ceiling.
#: The checkpoint/retirement PR measured ~105 MB peak through the bell
#: soak (historical full-suite peaks: 107-110 MB); 220 MB leaves 2x
#: headroom for interpreter/runner drift while still tripping on any
#: unbounded session-state growth, which scales with the pair rate and
#: blows through 2x within a fraction of the soak horizon.
RSS_CEILINGS = {
    "traffic_soak_bell": 220_000,
}


def check_speedups(fresh: dict, floors: dict | None = None) -> list[str]:
    """Speedup-floor violations in a fresh payload (empty list = pass).

    Ops absent from the payload's ``speedup_bell_over_dm`` section are
    skipped — ``run_bench.py --only`` subsets legitimately omit them.
    """
    floors = SPEEDUP_FLOORS if floors is None else floors
    speedups = fresh.get("speedup_bell_over_dm") or {}
    failures = []
    for op, floor in sorted(floors.items()):
        value = speedups.get(op)
        if value is not None and value < floor:
            failures.append(f"{op}: bell/dm speedup {value:.2f} is below "
                            f"the floor {floor:g}")
    return failures


def check_throughput(fresh: dict, floors: dict | None = None) -> list[str]:
    """Simulated-throughput floor violations (empty list = pass).

    Formalisms absent from ``traffic_pairs_per_s`` are skipped, matching
    :func:`check_speedups` subset semantics.  The rate is pairs per
    *simulated* second — deterministic for a fixed seed, so unlike the
    wall-clock gate this floor tolerates zero runner noise.
    """
    floors = THROUGHPUT_FLOORS if floors is None else floors
    rates = fresh.get("traffic_pairs_per_s") or {}
    failures = []
    for formalism, floor in sorted(floors.items()):
        value = rates.get(formalism)
        if value is not None and value < floor:
            failures.append(
                f"traffic_pairs_per_s[{formalism}]: {value:g} is below "
                f"the floor {floor:g}")
    return failures


def check_rss(fresh: dict, ceilings: dict | None = None) -> list[str]:
    """Soak memory-ceiling violations (empty list = pass).

    Scenarios absent from ``soak_max_rss_kb`` are skipped (subset runs,
    non-POSIX platforms without ``resource``).  Unlike the wall-clock
    gate this is a one-sided absolute bound: RSS is noisy upward by a
    few percent across runners, so the ceiling carries 2x headroom and
    catches only leak-class regressions.
    """
    ceilings = RSS_CEILINGS if ceilings is None else ceilings
    rss = fresh.get("soak_max_rss_kb") or {}
    failures = []
    for scenario, ceiling in sorted(ceilings.items()):
        value = rss.get(scenario)
        if value is not None and value > ceiling:
            failures.append(
                f"soak_max_rss_kb[{scenario}]: {value} kB exceeds "
                f"the ceiling {ceiling} kB")
    return failures


def compare(baseline: dict, fresh: dict,
            threshold: float = 3.0) -> tuple[list[dict], list[str]]:
    """Compare two bench payloads op by op.

    Returns ``(rows, regressions)``: one row dict per op present in
    either payload (``ratio`` is fresh/baseline median, None when the op
    exists on one side only), and the list of op names whose ratio
    exceeded ``threshold``.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1 (it is a slowdown factor)")
    base_results = baseline.get("results", {})
    fresh_results = fresh.get("results", {})
    rows = []
    regressions = []
    for op in sorted(set(base_results) | set(fresh_results)):
        base_ns = base_results.get(op)
        fresh_ns = fresh_results.get(op)
        ratio = None
        status = "baseline-only" if fresh_ns is None else (
            "new" if base_ns is None else "ok")
        if base_ns is not None and fresh_ns is not None and base_ns > 0:
            ratio = fresh_ns / base_ns
            if ratio > threshold:
                status = "REGRESSION"
                regressions.append(op)
        rows.append({"op": op, "baseline_ns": base_ns, "fresh_ns": fresh_ns,
                     "ratio": ratio, "status": status})
    return rows, regressions


def render(rows: list[dict], baseline_name: str, fresh_name: str,
           threshold: float) -> str:
    """Aligned text table of the comparison (the CI log output)."""
    lines = [f"bench gate: {fresh_name} vs {baseline_name} "
             f"(fail on > {threshold:g}x median slowdown)",
             f"{'op':34s} {'baseline us':>12s} {'fresh us':>12s} "
             f"{'ratio':>7s}  status"]
    for row in rows:
        base = ("-" if row["baseline_ns"] is None
                else f"{row['baseline_ns'] / 1e3:.2f}")
        fresh = ("-" if row["fresh_ns"] is None
                 else f"{row['fresh_ns'] / 1e3:.2f}")
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}"
        lines.append(f"{row['op']:34s} {base:>12s} {fresh:>12s} "
                     f"{ratio:>7s}  {row['status']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path,
                        help="bench JSON produced by run_bench.py this run")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline JSON (default: newest committed"
                             " BENCH_*.json in the repository root)")
    parser.add_argument("--base", default=None,
                        help="git ref to protect: BENCH files added or"
                             " changed relative to it are excluded from"
                             " baseline selection (CI passes the PR's"
                             " base branch, so a PR recording its own"
                             " baseline cannot neutralise the gate)")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="fail when fresh/baseline exceeds this factor")
    parser.add_argument("--check-speedups", action="store_true",
                        help="also enforce the bell-vs-dm speedup floors"
                             " (bell must never be slower than dm on the"
                             " gated ops), the traffic_pairs_per_s"
                             " simulated-throughput floors, and the"
                             " soak_max_rss_kb memory ceilings")
    args = parser.parse_args(argv)

    exclude = changed_since(args.base) if args.base else frozenset()
    baseline_path = args.baseline or newest_baseline(exclude=exclude)
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    rows, regressions = compare(baseline, fresh, threshold=args.threshold)
    print(render(rows, Path(baseline_path).name, args.fresh.name,
                 args.threshold))
    failed = False
    if regressions:
        print(f"\nFAIL: {len(regressions)} op(s) regressed beyond "
              f"{args.threshold:g}x: {', '.join(regressions)}")
        failed = True
    else:
        print("\nOK: no tracked op regressed beyond the threshold")
    if args.check_speedups:
        violations = (check_speedups(fresh) + check_throughput(fresh)
                      + check_rss(fresh))
        if violations:
            print("FAIL: speedup / throughput / memory floors violated: "
                  + "; ".join(violations))
            failed = True
        else:
            print("OK: speedup, throughput and memory floors hold")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
