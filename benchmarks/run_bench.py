#!/usr/bin/env python
"""Perf-trajectory harness: micro benchmarks on both state backends.

Runs the engine micro benchmarks (the ops behind ``bench_micro_engine.py``)
on the exact density-matrix formalism *and* the Bell-diagonal formalism and
writes ``BENCH_<rev>.json`` (median ns per op, plus the bell-vs-dm speedup
ratios) so the performance trajectory is tracked across PRs::

    PYTHONPATH=src python benchmarks/run_bench.py            # BENCH_<git rev>.json
    PYTHONPATH=src python benchmarks/run_bench.py --out x.json --rounds 9

No pytest-benchmark dependency: plain ``perf_counter_ns`` medians, which is
what the JSON trail needs (comparable numbers, not statistics).
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path


def _git_revision() -> str:
    from repro.campaign import git_revision

    return git_revision(Path(__file__).resolve().parent)


def _median_ns(fn, iterations: int, rounds: int) -> float:
    """Median wall time per call over ``rounds`` timed batches."""
    fn()  # warm caches — steady-state cost is what the trajectory tracks
    samples = []
    for _ in range(rounds):
        start = time.perf_counter_ns()
        for _ in range(iterations):
            fn()
        samples.append((time.perf_counter_ns() - start) / iterations)
    return statistics.median(samples)


# ----------------------------------------------------------------------
# Benchmark bodies (mirror bench_micro_engine.py without the pytest layer)
# ----------------------------------------------------------------------

def bench_decoherence_channel():
    from repro.quantum import decoherence_kraus

    return lambda: decoherence_kraus(5e6, 3.6e12, 6e10)


def bench_heralded_sample():
    from repro.hardware import HeraldedConnection, SIMULATION, SingleClickModel

    model = SingleClickModel(SIMULATION, HeraldedConnection.lab(0.002))
    rng = random.Random(2)
    return lambda: model.sample(0.05, rng)


def bench_alpha_for_fidelity():
    from repro.hardware import HeraldedConnection, SIMULATION, SingleClickModel

    state = {"n": 0}

    def run():
        # Fresh model each call: measures the uncached scan (the set_request
        # path on a new link), not the dict hit.
        model = SingleClickModel(SIMULATION, HeraldedConnection.lab(0.002))
        state["n"] += 1
        return model.alpha_for_fidelity(0.9)

    return run


def bench_bsm(formalism: str):
    from repro.quantum import NoisyOpParams, bell_state_measurement, get_backend

    ops = NoisyOpParams(two_qubit_gate_fidelity=0.998,
                        readout_error0=0.002, readout_error1=0.002)
    backend = get_backend(formalism)
    weights = (0.95, 0.05 / 3, 0.05 / 3, 0.05 / 3)
    rng = random.Random(1)

    def run():
        qa, mid1 = backend.create_pair_from_weights(weights)
        mid2, qc = backend.create_pair_from_weights(weights)
        return bell_state_measurement(mid1, mid2, rng, ops)

    return run


def bench_averaged_swap_map():
    from repro.quantum import NoisyOpParams, averaged_swap_dm, werner_dm

    ops = NoisyOpParams(two_qubit_gate_fidelity=0.998,
                        readout_error0=0.002, readout_error1=0.002)
    rho = werner_dm(0.9)
    return lambda: averaged_swap_dm(rho, rho, ops)


#: Filled by the traffic-soak benchmark as a side channel: sustained
#: end-to-end pair throughput (pairs per simulated second) per formalism.
TRAFFIC_STATS: dict[str, float] = {}

#: Simulator events processed per traffic scenario (allocation/event-churn
#: trajectory; the vectorised core is visible here before it shows in wall
#: time).
EVENT_STATS: dict[str, int] = {}

#: Final metrics-registry counters of the soak run, per formalism — the
#: same series ``--metrics-out`` streams, recorded here so BENCH files
#: carry the registry view of the scenario alongside the wall times.
OBS_STATS: dict[str, dict] = {}

#: Peak RSS (kB) observed right after each soak scenario — the memory
#: trajectory of the long-horizon workload, gated by the
#: ``compare_bench.py`` RSS ceiling so session-state leaks cannot creep
#: back in silently.
RSS_STATS: dict[str, int] = {}


def _max_rss_kb():
    """Peak resident set size so far in kB (None off POSIX)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def bench_traffic_round(formalism: str):
    """Sustained concurrent traffic: 8 circuits on a 3x3 grid.

    Times one full workload round (install 8 circuits, 1 s of Poisson
    session traffic at load 0.8, drain, teardown).  Paths include swaps,
    so this is the scenario where the state formalisms genuinely differ —
    the ``traffic_round`` bell-over-dm ratio floor is enforced on it.
    """
    from repro.traffic import TrafficEngine, build_topology

    def run():
        net = build_topology("grid", 3, seed=7, formalism=formalism)
        engine = TrafficEngine(net, circuits=8, load=0.8, seed=7)
        report = engine.run(horizon_s=1.0, drain_s=0.5)
        assert len(engine.circuits) >= 8
        assert report.total_confirmed_pairs > 0
        EVENT_STATS[f"traffic_round_{formalism}"] = net.sim.events_processed
        return report.total_confirmed_pairs

    return run


def bench_traffic_soak(formalism: str):
    """Pair-rate soak: 96 single-hop circuits on a 4x4 grid at load 0.9.

    The sustained-throughput scenario behind ``traffic_pairs_per_s``:
    single-hop circuits run at the link EER (no swap losses), so the
    simulated pair rate — and with it the number of live pairs, timeslot
    chains and scheduler events per simulated second — is an order of
    magnitude above ``traffic_round``.  Feasible as a benchmark at all
    because of the batched EGP chains and the SoA weight store; the
    ``traffic_pairs_per_s`` CI floor (≥ 9360 for ``bell``, 10x the PR 5
    scenario's 936) pins that capability.
    """
    from repro.traffic import TrafficEngine, build_topology

    def run():
        net = build_topology("grid", 4, seed=7, formalism=formalism)
        engine = TrafficEngine(net, circuits=96, load=0.9, seed=7,
                               min_hops=1, max_hops=1, max_sessions=40000)
        report = engine.run(horizon_s=0.5, drain_s=0.3)
        assert report.total_confirmed_pairs > 0
        TRAFFIC_STATS[formalism] = round(report.throughput_pairs_per_s, 2)
        EVENT_STATS[f"traffic_soak_{formalism}"] = net.sim.events_processed
        from repro.obs import REQUIRED_SERIES

        counters = net.obs.snapshot()["counters"]
        OBS_STATS[formalism] = {name: counters[name]
                                for name in REQUIRED_SERIES}
        rss = _max_rss_kb()
        if rss is not None:
            RSS_STATS[f"traffic_soak_{formalism}"] = rss
        return report.total_confirmed_pairs

    return run


def bench_route_compute(metric: str):
    """Routing-computation cost per metric on a 4x4 grid.

    Cycles through corner-to-corner and cross pairs so the budget cache
    is exercised the way a traffic install exercises it, and clears the
    installed-load state between rounds so ``utilisation`` scoring work
    is measured against a loaded network.
    """
    from repro.traffic import build_topology

    net = build_topology("grid", 4, seed=3, formalism="bell")
    net.finalise()
    controller = net.controller
    pairs = [("g0x0", "g3x3"), ("g0x3", "g3x0"), ("g1x0", "g2x3"),
             ("g0x1", "g3x2")]
    state = {"i": 0}

    def run():
        head, tail = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        route = controller.compute_route(head, tail, 0.7, "short",
                                         metric=metric)
        circuit_id = f"bench{state['i']}"
        controller.register_install(circuit_id, route)
        if state["i"] % len(pairs) == 0:
            for j in range(state["i"] - len(pairs) + 1, state["i"] + 1):
                controller.register_teardown(f"bench{j}")
        return route

    return run


def bench_apps_round(app: str, formalism: str):
    """One application-service workload round (the repro.apps layer).

    A small ring workload with every circuit running ``app``: times the
    full delivery fan-in — matching, the app's per-pair consumption
    (measurements for qkd, DEJMPS rounds for distil) and the SLO
    reduction — on top of the traffic engine.
    """
    from repro.traffic import TrafficEngine, build_topology

    def run():
        net = build_topology("ring", 5, seed=7, formalism=formalism)
        engine = TrafficEngine(net, circuits=2, load=0.7, seed=7,
                               apps=[app])
        report = engine.run(horizon_s=0.3, drain_s=0.15)
        assert len(report.apps) == 2
        assert sum(o.pairs_consumed for o in report.apps) > 0
        return report.total_confirmed_pairs

    return run


def bench_campaign_cell(formalism: str):
    """One campaign cell end to end (the per-cell cost a grid multiplies).

    Executes the CI smoke spec's faulted cell — ring:5, 2 circuits,
    0.3 s of traffic with one link failure — through the campaign
    runner's ``run_cell`` path, including telemetry reduction.
    """
    from repro.campaign import FaultSpec, CampaignCell, run_cell

    cell = CampaignCell(
        index=0, topology="ring", size=5, formalism=formalism,
        metric="hops", faults=FaultSpec(fail_links=1), app=None,
        circuits=2, load=0.7, seed=7, horizon_s=0.3, drain_s=0.15,
        target_fidelity=0.7)

    def run():
        result = run_cell(cell)
        assert not result.error
        assert result.pairs > 0
        return result.pairs

    return run


def bench_link_delivery_round(formalism: str):
    """Steady-state link generation *plus* delivered-pair consumption.

    Replaces the retired ``link_generation_round`` op, whose timed body
    rebuilt the network (and re-ran the α scan) every call and consumed
    pairs without ever touching their state: construction allocation noise
    dominated and the remaining loop was backend-neutral, so its bell/dm
    ratio flickered around 1.0 — the spurious 0.84x "bell slower than dm"
    reading of BENCH_c001c5d.json.  Here the network is built and warmed
    once, and the timed 100 ms windows cover what a delivery actually
    costs end to end: generation, the evaluation-side fidelity read and
    state consumption, exactly the plumbing of ``Network._match``.  The
    state work is where the formalisms genuinely differ, so bell ≥ dm is
    a gated invariant (``compare_bench.py --check-speedups``).
    """
    from repro.network.builder import build_chain_network
    from repro.quantum.fidelity import pair_fidelity

    net = build_chain_network(2, seed=9, formalism=formalism)
    link = net.link_between("node0", "node1")
    node_a, node_b = net.node("node0"), net.node("node1")
    count = [0]

    def consume(delivery):
        count[0] += 1
        qubit_a = node_a.qmm.get(delivery.entanglement_id)
        qubit_b = node_b.qmm.get(delivery.entanglement_id)
        assert pair_fidelity(qubit_a, qubit_b, int(delivery.bell_index)) > 0.5
        node_a.qmm.free(delivery.entanglement_id)
        node_b.qmm.free(delivery.entanglement_id)
        if qubit_a.state is not None:
            qubit_a.state.remove(qubit_a)
        if qubit_b.state is not None:
            qubit_b.state.remove(qubit_b)

    link.register_handler("node0", consume)
    link.register_handler("node1", lambda d: None)
    link.set_request("micro", min_fidelity=0.8, lpr=200.0)
    net.sim.run(until=net.sim.now + 1e8)  # warm to steady state
    assert count[0] > 5

    def run():
        before = count[0]
        net.sim.run(until=net.sim.now + 1e8)  # 100 ms simulated
        assert count[0] > before
        return count[0]

    return run


#: name → (factory, iterations per round)
BENCHMARKS = {
    "decoherence_channel": (bench_decoherence_channel, 2000),
    "heralded_sample": (bench_heralded_sample, 2000),
    "alpha_for_fidelity": (bench_alpha_for_fidelity, 20),
    "bsm_dm": (lambda: bench_bsm("dm"), 50),
    "bsm_bell": (lambda: bench_bsm("bell"), 500),
    "averaged_swap_map": (bench_averaged_swap_map, 20),
    "route_compute_hops": (lambda: bench_route_compute("hops"), 4),
    "route_compute_utilisation":
        (lambda: bench_route_compute("utilisation"), 4),
    "route_compute_fidelity_cost":
        (lambda: bench_route_compute("fidelity-cost"), 4),
    "link_delivery_round_dm":
        (lambda: bench_link_delivery_round("dm"), 20),
    "link_delivery_round_bell":
        (lambda: bench_link_delivery_round("bell"), 20),
    "traffic_round_dm": (lambda: bench_traffic_round("dm"), 1),
    "traffic_round_bell": (lambda: bench_traffic_round("bell"), 1),
    "traffic_soak_dm": (lambda: bench_traffic_soak("dm"), 1),
    "traffic_soak_bell": (lambda: bench_traffic_soak("bell"), 1),
    "campaign_cell_bell": (lambda: bench_campaign_cell("bell"), 1),
    "apps_qkd_round_bell": (lambda: bench_apps_round("qkd", "bell"), 1),
    "apps_distil_round_dm": (lambda: bench_apps_round("distil", "dm"), 1),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=7,
                        help="timed batches per benchmark (median reported)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: BENCH_<rev>.json in the"
                             " repository root)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="run a subset of benchmarks by name")
    args = parser.parse_args(argv)

    revision = _git_revision()
    results: dict[str, float] = {}
    for name, (factory, iterations) in BENCHMARKS.items():
        if args.only and name not in args.only:
            continue
        fn = factory()
        median = _median_ns(fn, iterations, args.rounds)
        results[name] = round(median, 1)
        print(f"{name:30s} {median / 1e3:12.2f} us/op")

    speedups = {}
    for op in ("bsm", "link_delivery_round", "traffic_round", "traffic_soak"):
        dm_key, bell_key = f"{op}_dm", f"{op}_bell"
        if dm_key in results and bell_key in results:
            speedups[op] = round(results[dm_key] / results[bell_key], 2)
            print(f"{op}: bell is {speedups[op]}x faster than dm")

    payload = {
        "revision": revision,
        "unit": "ns_per_op_median",
        "rounds": args.rounds,
        "results": results,
        "speedup_bell_over_dm": speedups,
    }
    if TRAFFIC_STATS:
        # Sustained end-to-end throughput of the traffic_soak scenario
        # (pairs per simulated second; deterministic for a fixed seed).
        payload["traffic_pairs_per_s"] = dict(sorted(TRAFFIC_STATS.items()))
        for formalism, value in sorted(TRAFFIC_STATS.items()):
            print(f"soak throughput ({formalism}): {value} pairs/s")
    if EVENT_STATS:
        payload["events_processed"] = dict(sorted(EVENT_STATS.items()))
    if OBS_STATS:
        # The soak's final registry counters (what a --metrics-out final
        # snapshot would carry) — deterministic for a fixed seed.
        payload["obs_counters"] = dict(sorted(OBS_STATS.items()))
    if RSS_STATS:
        # Peak RSS right after each soak scenario, gated by the
        # compare_bench.py ceiling (memory-leak tripwire).
        payload["soak_max_rss_kb"] = dict(sorted(RSS_STATS.items()))
        for name, value in sorted(RSS_STATS.items()):
            print(f"soak peak rss ({name}): {value} kB")
    try:
        import resource

        # Linux reports ru_maxrss in KiB; the absolute value matters less
        # than its trajectory across BENCH_<rev>.json files.
        payload["max_rss_kb"] = resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss
    except ImportError:  # pragma: no cover - non-POSIX platforms
        pass
    out = args.out or (Path(__file__).resolve().parent.parent
                       / f"BENCH_{revision}.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
