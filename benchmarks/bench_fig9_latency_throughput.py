"""Figure 9: latency vs throughput on A0-B0, empty vs congested network.

Paper setup: two circuits (A0-B0 and A1-B1, short cutoff).  A stream of
3-pair requests is issued on A0-B0 at increasing frequency; in the
"congested" case A1-B1 simultaneously runs one long-lived flow competing
for the MA–MB bottleneck.  Latency of requests issued after warm-up is
plotted against the measured circuit throughput.

Expected shapes (asserted):

* latency is flat until the circuit saturates, then grows;
* the congested circuit saturates at **more than half** the empty-network
  throughput — the counter-intuitive paper finding: the slower bottleneck
  means the outer links almost always have a pair ready to swap, so less
  bottleneck capacity is wasted.
"""

import pytest

from repro.analysis import mean, render_table
from repro.core import UserRequest
from repro.netsim.units import MS, S
from repro.network.builder import build_dumbbell_network

from figutils import scale, write_result

PAIRS_PER_REQUEST = 3
INTERVALS_MS = scale(quick=(1500.0, 600.0, 250.0, 100.0, 45.0),
                     full=(2000.0, 1000.0, 500.0, 250.0, 125.0, 60.0, 30.0))
SIM_SECONDS = scale(quick=18.0, full=50.0)
WARMUP_SECONDS = scale(quick=9.0, full=40.0)


def run_point(interval_ms: float, congested: bool, seed: int = 1) -> tuple:
    """Returns (mean latency ms, throughput pairs/s) at one request rate."""
    net = build_dumbbell_network(seed=seed)
    a0b0 = net.establish_circuit("A0", "B0", 0.8, "short")
    a1b1 = net.establish_circuit("A1", "B1", 0.8, "short")
    if congested:
        net.submit(a1b1, UserRequest(num_pairs=10 ** 6))

    handles = []

    def submit_one():
        handles.append((net.sim.now, net.submit(
            a0b0, UserRequest(num_pairs=PAIRS_PER_REQUEST))))
        if net.sim.now < SIM_SECONDS * S:
            net.sim.schedule(interval_ms * MS, submit_one)

    net.sim.schedule(0.0, submit_one)
    net.run(until_s=net.sim.now / 1e9 + SIM_SECONDS)

    window_start = WARMUP_SECONDS * S
    latencies = []
    deliveries = []
    for submitted_at, handle in handles:
        for delivery in handle.delivered:
            if delivery.t_delivered >= window_start:
                deliveries.append(delivery.t_delivered)
        if submitted_at < window_start or handle.latency is None:
            continue
        latencies.append(handle.latency / 1e6)
    window_s = SIM_SECONDS - WARMUP_SECONDS
    throughput = len(deliveries) / window_s
    return (mean(latencies) if latencies else float("nan"), throughput)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for congested in (False, True):
        series = []
        for interval_ms in INTERVALS_MS:
            series.append(run_point(interval_ms, congested))
        results[congested] = series
    return results


def test_fig9_latency_vs_throughput(benchmark, sweep):
    results = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    rows = []
    for index, interval_ms in enumerate(INTERVALS_MS):
        empty_latency, empty_tp = results[False][index]
        congested_latency, congested_tp = results[True][index]
        rows.append([interval_ms,
                     round(empty_tp, 2), round(empty_latency, 1),
                     round(congested_tp, 2), round(congested_latency, 1)])
    table = render_table(
        ["request interval (ms)", "empty tp (pairs/s)", "empty latency (ms)",
         "congested tp (pairs/s)", "congested latency (ms)"],
        rows,
        title=("Fig 9 — A0-B0 latency vs throughput, 3-pair requests\n"
               "paper shape: flat latency until saturation; congested "
               "saturates at more than half the empty throughput"))
    write_result("fig9_latency_throughput", table)


def test_fig9_latency_flat_before_saturation(benchmark, sweep):
    empty = sweep[False]
    # The two slowest request rates sit well below saturation: latency
    # there differs by far less than the saturated latency.
    assert empty[0][0] < 3.0 * empty[1][0] + 50.0


def test_fig9_saturation_throughputs(benchmark, sweep):
    empty_saturation = max(tp for _, tp in sweep[False])
    congested_saturation = max(tp for _, tp in sweep[True])
    assert congested_saturation < empty_saturation
    # The paper's counter-intuitive finding: more than half survives.
    assert congested_saturation > 0.5 * empty_saturation, \
        (congested_saturation, empty_saturation)


def test_fig9_latency_rises_at_saturation(benchmark, sweep):
    # The congested circuit is fully saturated at the fastest request rate:
    # its latency explodes relative to the unsaturated level.
    congested = sweep[True]
    assert congested[-1][0] > 10.0 * congested[0][0]
    # The empty network is just reaching saturation there: the upturn is
    # visible against its flat region.
    empty = sweep[False]
    flat_level = min(latency for latency, _ in empty[:-1])
    assert empty[-1][0] > 1.2 * flat_level
