"""Figure 11: pairs delivered over time on near-future hardware.

Paper setup: 10 pairs requested at fidelity 0.5 (the entanglement witness
threshold) over a linear three-node network with 25 km spacing, using the
near-term parameter column of Tables 1–2: a single communication qubit per
node (one link active at a time), carbon storage with nuclear dephasing
during entanglement attempts, telecom-converted photons.  Routing tables
are populated manually and the cutoff hand-tuned, exactly as in Sec 5.3.

Asserted shape: all 10 pairs arrive as a staircase over tens of simulated
seconds, and the delivered pairs demonstrate entanglement (F > 0.5).
"""

import pytest

from repro.analysis import render_table
from repro.core import RequestStatus, UserRequest
from repro.netsim.units import S
from repro.network.builder import build_near_term_chain

from figutils import scale, write_result

NUM_PAIRS = 10
SEED = scale(quick=3, full=3)
LINK_FIDELITY = 0.8
CUTOFF_S = 3.0
TIMEOUT_S = 900.0


def run_near_term() -> dict:
    net = build_near_term_chain(num_nodes=3, length_km=25.0, seed=SEED)
    circuit_id = net.establish_circuit_manual(
        path=["node0", "node1", "node2"],
        link_fidelity=LINK_FIDELITY,
        cutoff=CUTOFF_S * S,
        max_eer=5.0,
        estimated_fidelity=0.55,
    )
    handle = net.submit(circuit_id, UserRequest(num_pairs=NUM_PAIRS),
                        record_fidelity=True)
    net.run_until_complete([handle], timeout_s=TIMEOUT_S)
    arrivals = sorted((m.head_delivery.t_delivered / 1e9, m.fidelity)
                      for m in handle.matched_pairs)
    return {
        "status": handle.status,
        "arrivals": arrivals,
        "delivered": len(handle.delivered),
    }


@pytest.fixture(scope="module")
def near_term_run():
    return run_near_term()


def test_fig11_pairs_over_time(benchmark, near_term_run):
    result = benchmark.pedantic(lambda: near_term_run, rounds=1, iterations=1)
    rows = [[index + 1, round(t_s, 1), round(fidelity, 3)]
            for index, (t_s, fidelity) in enumerate(result["arrivals"])]
    table = render_table(
        ["pair #", "arrival (s)", "fidelity"],
        rows,
        title=("Fig 11 — cumulative pairs on near-future hardware "
               "(3 nodes, 25 km links, one comm qubit, F target 0.5)\n"
               "paper shape: staircase over tens of seconds, all pairs "
               "usable (F > 0.5)"))
    write_result("fig11_near_future", table)


def test_fig11_all_pairs_delivered(benchmark, near_term_run):
    assert near_term_run["status"] == RequestStatus.COMPLETED
    assert near_term_run["delivered"] == NUM_PAIRS


def test_fig11_timescale_is_tens_of_seconds(benchmark, near_term_run):
    last_arrival_s = near_term_run["arrivals"][-1][0]
    assert 5.0 < last_arrival_s < 600.0, last_arrival_s


def test_fig11_pairs_demonstrate_entanglement(benchmark, near_term_run):
    fidelities = [fidelity for _, fidelity in near_term_run["arrivals"]]
    above = sum(1 for fidelity in fidelities if fidelity > 0.5)
    assert above >= NUM_PAIRS - 2, fidelities


def test_fig11_staircase_monotone(benchmark, near_term_run):
    times = [t for t, _ in near_term_run["arrivals"]]
    assert times == sorted(times)
    # Arrivals are spread out, not a burst: the last pair is much later
    # than the first.
    assert times[-1] > times[0] + 1.0
