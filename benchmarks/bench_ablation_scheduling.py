"""Extension: coordinated link scheduling against the Fig 8c collapse.

The paper attributes the 4-circuit congestion collapse to its deliberately
simple scheduler — "links function independently ... This problem can be
solved by either not admitting this many circuits or by improving
scheduling at the nodes" (Sec 5.1) — and leaves the improvement open.

This bench implements and measures that improvement: intermediate nodes
flag circuits that already hold an unmatched pair on the adjacent link, and
links serve flagged circuits first, so freshly generated pairs swap
immediately instead of decaying while their circuit's partner link is busy
producing for someone else.

Asserted: with 4 circuits sharing the bottleneck under the *long* cutoff
(the collapse regime), coordinated scheduling cuts the mean request latency
by at least 2×, without touching the cutoff.
"""

import pytest

from repro.analysis import mean, render_table
from repro.core import UserRequest
from repro.network.builder import build_dumbbell_network

from figutils import scale, write_result

CIRCUITS = [("A0", "B0"), ("A1", "B1"), ("A0", "B1"), ("A1", "B0")]
NUM_REQUESTS = 4
PAIRS = scale(quick=8, full=25)
SEEDS = scale(quick=(1,), full=(1, 2, 3))
TIMEOUT_S = scale(quick=900.0, full=3600.0)


def run_variant(coordinated: bool, seed: int) -> float:
    net = build_dumbbell_network(seed=seed)
    for qnp in net.qnps.values():
        qnp.coordinated_scheduling = coordinated
    circuit_ids = [net.establish_circuit(a, b, 0.8, "loss")
                   for a, b in CIRCUITS]
    handles = [net.submit(circuit_ids[i % len(circuit_ids)],
                          UserRequest(num_pairs=PAIRS))
               for i in range(NUM_REQUESTS)]
    net.run_until_complete(handles, timeout_s=TIMEOUT_S)
    latencies = [h.latency for h in handles if h.latency is not None]
    assert latencies, "no requests completed"
    return mean(latencies) / 1e6


@pytest.fixture(scope="module")
def results():
    return {
        "plain": mean([run_variant(False, seed) for seed in SEEDS]),
        "coordinated": mean([run_variant(True, seed) for seed in SEEDS]),
    }


def test_ablation_scheduling(benchmark, results):
    data = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    table = render_table(
        ["scheduler", "mean request latency (ms)"],
        [["independent links (paper)", round(data["plain"], 1)],
         ["coordinated (this repo's extension)",
          round(data["coordinated"], 1)]],
        title=("Extension — coordinated link scheduling, 4 circuits on the "
               "bottleneck, long cutoff (the Fig 8c collapse regime)"))
    write_result("ablation_scheduling", table)


def test_coordination_relieves_collapse(benchmark, results):
    assert results["coordinated"] < results["plain"] / 2.0, results
