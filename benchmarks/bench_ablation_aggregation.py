"""Ablation: request aggregation onto shared circuits (Sec 4.1 claim).

The paper argues aggregation improves resource sharing at swap nodes: a
repeater may only swap pairs belonging to the same circuit, so splitting
identical requests over many circuits fragments the swap-matching pool
(and multiplies data plane state).

The ablation issues the same workload — four 6-pair requests between A0
and B0 — either aggregated on one virtual circuit or spread over four
parallel circuits between the same end-points, and compares total
completion time.
"""

import pytest

from repro.analysis import render_table
from repro.core import RequestStatus, UserRequest
from repro.network.builder import build_dumbbell_network

from figutils import scale, write_result

NUM_REQUESTS = 4
PAIRS = scale(quick=6, full=25)
TIMEOUT_S = scale(quick=600.0, full=1800.0)


def run_aggregated(seed: int = 6) -> float:
    net = build_dumbbell_network(seed=seed)
    circuit_id = net.establish_circuit("A0", "B0", 0.8, "short")
    handles = [net.submit(circuit_id, UserRequest(num_pairs=PAIRS))
               for _ in range(NUM_REQUESTS)]
    net.run_until_complete(handles, timeout_s=TIMEOUT_S)
    assert all(h.status == RequestStatus.COMPLETED for h in handles)
    return max(h.t_completed for h in handles) / 1e6


def run_fragmented(seed: int = 6) -> float:
    net = build_dumbbell_network(seed=seed)
    circuit_ids = [net.establish_circuit("A0", "B0", 0.8, "short")
                   for _ in range(NUM_REQUESTS)]
    handles = [net.submit(circuit_id, UserRequest(num_pairs=PAIRS))
               for circuit_id in circuit_ids]
    net.run_until_complete(handles, timeout_s=TIMEOUT_S)
    completed = [h for h in handles if h.t_completed is not None]
    assert completed, "no fragmented request completed"
    if len(completed) < len(handles):
        # Some requests starved entirely: report the timeout horizon.
        return net.sim.now / 1e6
    return max(h.t_completed for h in completed) / 1e6


@pytest.fixture(scope="module")
def results():
    return {"aggregated": run_aggregated(), "fragmented": run_fragmented()}


def test_ablation_aggregation(benchmark, results):
    data = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    table = render_table(
        ["strategy", "total completion (ms)"],
        [["one shared circuit", round(data["aggregated"], 1)],
         ["four parallel circuits", round(data["fragmented"], 1)]],
        title=(f"Ablation — aggregation: {NUM_REQUESTS} requests × {PAIRS} "
               "pairs between A0 and B0"))
    write_result("ablation_aggregation", table)


def test_aggregation_outperforms_fragmentation(benchmark, results):
    assert results["aggregated"] < results["fragmented"]
