"""Figure 5: CDF of the time to generate one link-pair.

Paper: fidelity 0.95 over a 2 m fibre with the simulation parameters —
"on average we have to wait 10 ms and 95% of link-pairs are generated
within 30 ms".

This bench runs the link layer continuously on one link, records the
inter-pair times, and prints the CDF alongside the paper's two anchor
points.  Shape checks: unimodal geometric-like CDF, mean ≈ 10 ms, 95th
percentile within a factor of two of 30 ms.
"""

from repro.analysis import Cdf, mean, render_table
from repro.netsim.units import MS, S
from repro.network.builder import build_chain_network

from figutils import scale, write_result

NUM_PAIRS = scale(quick=400, full=3000)
FIDELITY = 0.95


def collect_interpair_times(seed: int = 0) -> list[float]:
    net = build_chain_network(2, seed=seed)
    link = net.link_between("node0", "node1")
    times: list[float] = []
    last = [None]

    def on_pair(delivery):
        if last[0] is not None:
            times.append(net.sim.now - last[0])
        last[0] = net.sim.now
        for node_name in ("node0", "node1"):
            net.node(node_name).qmm.free(delivery.entanglement_id)

    link.register_handler("node0", on_pair)
    link.register_handler("node1", lambda d: None)
    link.set_request("fig5", min_fidelity=FIDELITY, lpr=100.0)
    while len(times) < NUM_PAIRS:
        if net.sim.pending_events() == 0:
            break
        net.sim.run(until=net.sim.now + 1 * S)
    return times[:NUM_PAIRS]


def test_fig5_link_pair_generation_cdf(benchmark):
    times = benchmark.pedantic(collect_interpair_times, rounds=1, iterations=1)
    cdf = Cdf.from_samples(times)
    mean_ms = mean(times) / MS
    p95_ms = cdf.quantile(0.95) / MS

    rows = []
    for t_ms in (1, 5, 10, 15, 20, 25, 30, 40, 50, 75, 100):
        rows.append([t_ms, round(cdf.at(t_ms * MS), 3)])
    rows.append(["mean (ms)", round(mean_ms, 2)])
    rows.append(["p95 (ms)", round(p95_ms, 2)])
    table = render_table(
        ["time (ms)", "fraction of pairs generated"], rows,
        title=(f"Fig 5 — CDF of link-pair generation time, F={FIDELITY}, 2 m "
               f"fibre ({len(times)} pairs)\n"
               "paper: mean ≈ 10 ms, 95% within 30 ms"))
    write_result("fig5_link_cdf", table)

    # Shape assertions against the paper's anchors.
    assert 5 <= mean_ms <= 20, f"mean {mean_ms:.1f} ms vs paper ~10 ms"
    assert 15 <= p95_ms <= 60, f"p95 {p95_ms:.1f} ms vs paper ~30 ms"
    # Geometric-like: the CDF at the mean is near 1 - 1/e.
    assert 0.5 < cdf.at(mean(times)) < 0.75
