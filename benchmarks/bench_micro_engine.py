"""Microbenchmarks of the simulation substrate.

Not a paper figure — these keep the engine's costs visible (the whole
evaluation rests on them) and give pytest-benchmark real timing series:
event scheduling, the density-matrix swap, memory-decoherence channels,
heralded-state construction and a full link-layer generation round.
"""

import random

import pytest

from repro.hardware import HeraldedConnection, SIMULATION, SingleClickModel
from repro.netsim import Simulator
from repro.quantum import (
    NoisyOpParams,
    averaged_swap_dm,
    bell_state_measurement,
    decoherence_kraus,
    get_backend,
    werner_dm,
)

OPS = NoisyOpParams(two_qubit_gate_fidelity=0.998,
                    readout_error0=0.002, readout_error1=0.002)


def test_micro_event_scheduling(benchmark):
    def schedule_and_drain():
        sim = Simulator()
        for i in range(1000):
            sim.schedule(float(i % 97), lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(schedule_and_drain) == 1000


@pytest.mark.parametrize("formalism", ["dm", "bell"])
def test_micro_bell_state_measurement(benchmark, formalism):
    rng = random.Random(1)
    backend = get_backend(formalism)
    weights = (0.95, 0.05 / 3, 0.05 / 3, 0.05 / 3)

    def swap_once():
        qa, q_mid1 = backend.create_pair_from_weights(weights)
        q_mid2, qc = backend.create_pair_from_weights(weights)
        return bell_state_measurement(q_mid1, q_mid2, rng, OPS)

    assert benchmark(swap_once) in range(4)


def test_micro_averaged_swap_map(benchmark):
    rho = werner_dm(0.9)

    def budget_step():
        return averaged_swap_dm(rho, rho, OPS)

    result = benchmark(budget_step)
    assert result.shape == (4, 4)


def test_micro_decoherence_channel(benchmark):
    def build_channel():
        return decoherence_kraus(5e6, 3.6e12, 6e10)

    ops = benchmark(build_channel)
    assert len(ops) >= 1


def test_micro_heralded_state(benchmark):
    model = SingleClickModel(SIMULATION, HeraldedConnection.lab(0.002))
    rng = random.Random(2)

    def one_sample():
        return model.sample(0.05, rng)

    sample = benchmark(one_sample)
    assert sample.attempts >= 1


@pytest.mark.parametrize("formalism", ["dm", "bell"])
def test_micro_link_generation_round(benchmark, formalism):
    """Full stack cost of producing ~20 link pairs on one link."""
    from repro.network.builder import build_chain_network

    def produce_pairs():
        net = build_chain_network(2, seed=9, formalism=formalism)
        link = net.link_between("node0", "node1")
        count = [0]

        def consume(delivery):
            count[0] += 1
            for name in ("node0", "node1"):
                net.node(name).qmm.free(delivery.entanglement_id)

        link.register_handler("node0", consume)
        link.register_handler("node1", lambda d: None)
        link.set_request("micro", min_fidelity=0.9, lpr=100.0)
        net.sim.run(until=1e8)  # 100 ms simulated
        return count[0]

    assert benchmark(produce_pairs) > 5
