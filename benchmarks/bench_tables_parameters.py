"""Tables 1 and 2: the hardware parameter sets used in the evaluation.

Not a measurement — this bench renders the two parameter columns the paper
publishes (the "Simulation" configuration used for Figs 5, 8, 9, 10 and
the "Near-term" configuration used for Fig 11) straight from
:mod:`repro.hardware.parameters`, so the record in ``benchmarks/results``
always reflects the code.  The unit tests assert the values against the
paper; here we additionally derive the headline quantities the models
produce from them.
"""

import math

from repro.analysis import render_table
from repro.hardware import (
    HeraldedConnection,
    NEAR_TERM,
    SIMULATION,
    SingleClickModel,
)

from figutils import write_result


def _gate_rows():
    rows = []
    for label, value_sim, value_near in (
        ("electron 1-qubit gate fidelity",
         SIMULATION.gates.electron_single_qubit_fidelity,
         NEAR_TERM.gates.electron_single_qubit_fidelity),
        ("two-qubit gate fidelity",
         SIMULATION.gates.two_qubit_gate_fidelity,
         NEAR_TERM.gates.two_qubit_gate_fidelity),
        ("two-qubit gate duration (µs)",
         SIMULATION.gates.two_qubit_gate_duration / 1e3,
         NEAR_TERM.gates.two_qubit_gate_duration / 1e3),
        ("electron init fidelity",
         SIMULATION.gates.electron_init_fidelity,
         NEAR_TERM.gates.electron_init_fidelity),
        ("carbon init fidelity", "—", NEAR_TERM.gates.carbon_init_fidelity),
        ("electron readout F0",
         SIMULATION.gates.electron_readout_fidelity0,
         NEAR_TERM.gates.electron_readout_fidelity0),
        ("electron readout F1",
         SIMULATION.gates.electron_readout_fidelity1,
         NEAR_TERM.gates.electron_readout_fidelity1),
    ):
        rows.append([label, value_sim, value_near])
    return rows


def _other_rows():
    return [
        ["electron T2* (s)", SIMULATION.electron_t2 / 1e9,
         NEAR_TERM.electron_t2 / 1e9],
        ["carbon T2* (s)", "—", NEAR_TERM.carbon_t2 / 1e9],
        ["Δφ (degrees)", round(math.degrees(SIMULATION.delta_phi), 1),
         round(math.degrees(NEAR_TERM.delta_phi), 1)],
        ["p_double_excitation", SIMULATION.p_double_excitation,
         NEAR_TERM.p_double_excitation],
        ["p_zero_phonon", SIMULATION.p_zero_phonon, NEAR_TERM.p_zero_phonon],
        ["collection efficiency", SIMULATION.collection_efficiency,
         NEAR_TERM.collection_efficiency],
        ["p_detection", SIMULATION.p_detection, NEAR_TERM.p_detection],
        ["visibility", SIMULATION.visibility, NEAR_TERM.visibility],
        ["comm qubits per link", SIMULATION.comm_qubits_per_link,
         NEAR_TERM.comm_qubits_per_link],
    ]


def test_tables_1_and_2_parameters(benchmark):
    def render():
        gate_table = render_table(["parameter", "simulation", "near-term"],
                                  _gate_rows(),
                                  title="Table 1 — quantum gate parameters")
        other_table = render_table(["parameter", "simulation", "near-term"],
                                   _other_rows(),
                                   title="Table 2 — other hardware parameters")

        lab = SingleClickModel(SIMULATION, HeraldedConnection.lab(0.002))
        near = SingleClickModel(NEAR_TERM, HeraldedConnection.telecom(25.0))
        derived = render_table(
            ["derived quantity", "simulation (2 m)", "near-term (25 km)"],
            [
                ["attempt cycle (µs)", round(lab.cycle_time / 1e3, 2),
                 round(near.cycle_time / 1e3, 2)],
                ["mean pair time @F=0.8 (ms)",
                 round(lab.expected_pair_time(
                     lab.alpha_for_fidelity(0.8)) / 1e6, 2),
                 round(near.expected_pair_time(
                     near.alpha_for_fidelity(0.8)) / 1e6, 2)],
                ["fidelity ceiling",
                 round(max(lab.fidelity(a) for a in
                           (0.001, 0.005, 0.02, 0.05)), 4),
                 round(max(near.fidelity(a) for a in
                           (0.001, 0.005, 0.02, 0.05, 0.1)), 4)],
            ],
            title="Derived link quantities (model outputs)")
        return "\n\n".join([gate_table, other_table, derived])

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    write_result("tables_1_2_parameters", text)
    assert "0.998" in text and "0.992" in text
