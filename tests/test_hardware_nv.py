"""Tests for the NV device model and lazy memory noise."""

import math

import numpy as np
import pytest

from repro.hardware import NEAR_TERM, NVDevice, SIMULATION, apply_memory_noise, stamp
from repro.netsim import S, Simulator
from repro.quantum import bell_dm, create_pair, pair_fidelity, swap_combine


def make_device(params=SIMULATION, seed=1):
    sim = Simulator(seed=seed)
    return sim, NVDevice(sim, params)


class TestMemoryNoise:
    def test_stamp_sets_parameters(self):
        qa, _ = create_pair(bell_dm(0))
        stamp(qa, now=5.0, t1=1e9, t2=1e6)
        assert qa.t1 == 1e9
        assert qa.t2 == 1e6
        assert qa.last_noise_time == 5.0

    def test_noise_applied_for_elapsed_time(self):
        qa, qb = create_pair(bell_dm(0))
        stamp(qa, 0.0, math.inf, 1e6)
        stamp(qb, 0.0, math.inf, math.inf)
        apply_memory_noise(qa, 2e6)
        fidelity = pair_fidelity(qa, qb, 0)
        # Dephasing of one half: F = (1 + exp(-t/T2))/2.
        assert fidelity == pytest.approx((1 + math.exp(-2.0)) / 2, rel=1e-6)
        assert qa.last_noise_time == 2e6

    def test_noise_is_incremental(self):
        qa, qb = create_pair(bell_dm(0))
        stamp(qa, 0.0, math.inf, 1e6)
        stamp(qb, 0.0, math.inf, math.inf)
        apply_memory_noise(qa, 1e6)
        apply_memory_noise(qa, 2e6)

        qc, qd = create_pair(bell_dm(0))
        stamp(qc, 0.0, math.inf, 1e6)
        stamp(qd, 0.0, math.inf, math.inf)
        apply_memory_noise(qc, 2e6)
        assert pair_fidelity(qa, qb, 0) == pytest.approx(pair_fidelity(qc, qd, 0))

    def test_backwards_time_rejected(self):
        qa, _ = create_pair(bell_dm(0))
        stamp(qa, 10.0, 1e9, 1e6)
        with pytest.raises(ValueError):
            apply_memory_noise(qa, 5.0)

    def test_freed_qubit_is_ignored(self):
        qa, qb = create_pair(bell_dm(0))
        stamp(qa, 0.0, 1e9, 1e6)
        qa.state.remove(qa)
        apply_memory_noise(qa, 1e9)  # no crash


class TestNVDevice:
    def test_bsm_returns_outcome_and_duration(self):
        sim, device = make_device()
        qa, q_mid1 = create_pair(bell_dm(0))
        q_mid2, qc = create_pair(bell_dm(0))
        for qubit in (qa, q_mid1, q_mid2, qc):
            device.adopt_comm_qubit(qubit)
        outcome, duration = device.bell_state_measurement(q_mid1, q_mid2)
        assert outcome in range(4)
        assert duration == SIMULATION.gates.bsm_duration
        # With simulation parameters noise is small: fidelity stays high.
        assert pair_fidelity(qa, qc, swap_combine(0, 0, outcome)) > 0.98

    def test_bsm_applies_memory_decoherence_first(self):
        sim, device = make_device(SIMULATION.with_t2(0.5 * S))
        qa, q_mid1 = create_pair(bell_dm(0))
        q_mid2, qc = create_pair(bell_dm(0))
        for qubit in (qa, q_mid1, q_mid2, qc):
            device.adopt_comm_qubit(qubit)
        # Let the qubits idle for a second of simulated time.
        sim.schedule(1 * S, lambda: None)
        sim.run()
        outcome, _ = device.bell_state_measurement(q_mid1, q_mid2)
        fidelity = pair_fidelity(qa, qc, swap_combine(0, 0, outcome))
        assert fidelity < 0.8

    def test_measure_consumes_qubit(self):
        sim, device = make_device()
        qa, qb = create_pair(bell_dm(0))
        device.adopt_comm_qubit(qa)
        device.adopt_comm_qubit(qb)
        bit, duration = device.measure(qa)
        assert bit in (0, 1)
        assert duration == SIMULATION.gates.electron_readout_duration
        assert qa.state is None

    def test_pauli_correct_duration(self):
        sim, device = make_device()
        qa, qb = create_pair(bell_dm(2))
        device.adopt_comm_qubit(qa)
        device.adopt_comm_qubit(qb)
        duration = device.pauli_correct(qb, 2)
        assert duration == SIMULATION.gates.electron_single_qubit_duration
        assert pair_fidelity(qa, qb, 0) > 0.99

    def test_discard(self):
        sim, device = make_device()
        qa, qb = create_pair(bell_dm(0))
        device.adopt_comm_qubit(qa)
        device.discard(qa)
        assert qa.state is None
        device.discard(qa)  # idempotent

    def test_move_to_storage_restamps_lifetimes(self):
        sim, device = make_device(NEAR_TERM)
        qa, qb = create_pair(bell_dm(0))
        device.adopt_comm_qubit(qa)
        assert qa.t2 == NEAR_TERM.electron_t2
        duration = device.move_to_storage(qa)
        assert qa.t2 == NEAR_TERM.carbon_t2
        assert duration == (NEAR_TERM.gates.two_qubit_gate_duration
                            + NEAR_TERM.gates.carbon_init_duration)
        assert device.stored_count == 1

    def test_move_to_storage_adds_noise(self):
        sim, device = make_device(NEAR_TERM)
        qa, qb = create_pair(bell_dm(0))
        device.adopt_comm_qubit(qa)
        device.adopt_comm_qubit(qb)
        device.move_to_storage(qa)
        assert pair_fidelity(qa, qb, 0) < 1.0

    def test_charge_attempt_noise_dephases_stored(self):
        sim, device = make_device(NEAR_TERM)
        qa, qb = create_pair(bell_dm(0))
        device.adopt_comm_qubit(qa)
        device.adopt_comm_qubit(qb)
        device.move_to_storage(qa)
        before = pair_fidelity(qa, qb, 0)
        device.charge_attempt_noise(5000)
        after = pair_fidelity(qa, qb, 0)
        assert after < before

    def test_charge_attempt_noise_noop_without_storage(self):
        sim, device = make_device(NEAR_TERM)
        device.charge_attempt_noise(10_000)  # nothing stored: no crash

    def test_charge_attempt_noise_noop_in_simulation_model(self):
        sim, device = make_device(SIMULATION)
        qa, qb = create_pair(bell_dm(0))
        device.adopt_comm_qubit(qa)
        device.move_to_storage(qa)
        before_dm = qa.state.dm.copy()
        device.charge_attempt_noise(10_000)
        assert np.allclose(qa.state.dm, before_dm)

    def test_bsm_releases_storage(self):
        sim, device = make_device(NEAR_TERM)
        qa, q_mid1 = create_pair(bell_dm(0))
        q_mid2, qc = create_pair(bell_dm(0))
        for qubit in (qa, q_mid1, q_mid2, qc):
            device.adopt_comm_qubit(qubit)
        device.move_to_storage(q_mid1)
        device.bell_state_measurement(q_mid1, q_mid2)
        assert device.stored_count == 0
