"""Smoke tests: the fast example scripts run end to end.

(The slower examples — QKD, distillation, near-future hardware, the
congestion study — exercise the same code paths as the integration tests
and the benchmarks, so they are not re-run here.)
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=timeout, check=False)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Virtual circuit installed" in out
    assert "completed" in out
    assert "entanglement" in out


def test_sequence_trace():
    out = run_example("sequence_trace.py")
    assert "FORWARD" in out
    assert "SWAP" in out
    assert "PAIR" in out


def test_teleportation():
    out = run_example("teleportation.py")
    assert "Teleporting" in out
    assert out.count("Φ+") >= 5  # all pairs corrected to the requested state


def test_all_examples_importable():
    """Every example compiles (catches bit-rot in the slow ones too)."""
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        compile(source, str(path), "exec")
