"""Tests for routing (fidelity budget), signalling and reliable transport."""

import pytest

from repro.control import RouteError
from repro.control.transport import make_reliable_pair
from repro.core import CircuitRole, RequestStatus
from repro.netsim import LossyChannel, MS, S, Simulator
from repro.network.builder import build_chain_network, build_dumbbell_network


class TestRouting:
    def test_route_shortest_path(self):
        net = build_dumbbell_network(seed=1)
        route = net.controller.compute_route("A0", "B0", 0.8)
        assert route.path == ["A0", "MA", "MB", "B0"]
        assert route.num_links == 3

    def test_link_fidelity_exceeds_target(self):
        net = build_chain_network(3, seed=1)
        route = net.controller.compute_route("node0", "node2", 0.8)
        assert route.link_fidelity > 0.8
        assert route.estimated_fidelity >= 0.8 - 1e-9

    def test_longer_paths_need_better_links(self):
        net = build_chain_network(5, seed=1)
        short = net.controller.compute_route("node0", "node2", 0.8)
        long = net.controller.compute_route("node0", "node4", 0.8)
        assert long.link_fidelity > short.link_fidelity

    def test_higher_target_needs_better_links(self):
        net = build_dumbbell_network(seed=1)
        low = net.controller.compute_route("A0", "B0", 0.8)
        high = net.controller.compute_route("A0", "B0", 0.9)
        assert high.link_fidelity > low.link_fidelity
        # Better links are slower: lower LPR.
        assert high.max_lpr < low.max_lpr

    def test_infeasible_fidelity_rejected(self):
        net = build_chain_network(3, seed=1)
        with pytest.raises(RouteError):
            net.controller.compute_route("node0", "node2", 0.99)

    def test_bad_target_rejected(self):
        net = build_chain_network(3, seed=1)
        with pytest.raises(RouteError):
            net.controller.compute_route("node0", "node2", 0.3)

    def test_no_path_rejected(self):
        net = build_chain_network(3, seed=1)
        with pytest.raises(RouteError):
            net.controller.compute_route("node0", "ghost", 0.8)

    def test_short_cutoff_shorter_than_loss_cutoff(self):
        """With minute-long memories the loss cutoff is huge; the 'short'
        policy (0.85 generation quantile) is much tighter (Sec 5.1)."""
        net = build_dumbbell_network(seed=1)
        loss = net.controller.compute_route("A0", "B0", 0.8, "loss")
        short = net.controller.compute_route("A0", "B0", 0.8, "short")
        assert short.cutoff < loss.cutoff / 5

    def test_short_cutoff_relaxes_link_fidelity(self):
        """Fig 8 insight: a tighter cutoff bounds idle decoherence, so the
        routing algorithm can relax per-link fidelity requirements."""
        net = build_dumbbell_network(seed=1)
        loss = net.controller.compute_route("A0", "B0", 0.85, "loss")
        short = net.controller.compute_route("A0", "B0", 0.85, "short")
        assert short.link_fidelity <= loss.link_fidelity

    def test_explicit_cutoff(self):
        net = build_chain_network(3, seed=1)
        route = net.controller.compute_route("node0", "node2", 0.8, 50 * MS)
        assert route.cutoff == 50 * MS

    def test_none_cutoff_disables(self):
        net = build_chain_network(3, seed=1)
        route = net.controller.compute_route("node0", "node2", 0.8, None)
        assert route.cutoff is None

    def test_shorter_t2_shrinks_loss_cutoff(self):
        from repro.hardware import SIMULATION

        long_memory = build_chain_network(3, seed=1)
        short_memory = build_chain_network(3, seed=1,
                                           params=SIMULATION.with_t2(1 * S))
        long_route = long_memory.controller.compute_route("node0", "node2", 0.8)
        short_route = short_memory.controller.compute_route("node0", "node2", 0.8)
        assert short_route.cutoff < long_route.cutoff

    def test_eer_at_most_lpr(self):
        net = build_dumbbell_network(seed=1)
        route = net.controller.compute_route("A0", "B0", 0.8, "short")
        assert 0 < route.eer <= route.max_lpr


class TestSignalling:
    def test_entries_installed_along_path(self):
        net = build_chain_network(3, seed=2)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        head = net.qnps["node0"].circuit(circuit_id)
        middle = net.qnps["node1"].circuit(circuit_id)
        tail = net.qnps["node2"].circuit(circuit_id)
        assert head.entry.role == CircuitRole.HEAD
        assert middle.entry.role == CircuitRole.INTERMEDIATE
        assert tail.entry.role == CircuitRole.TAIL
        assert head.entry.downstream_node == "node1"
        assert tail.entry.upstream_node == "node1"

    def test_labels_match_across_nodes(self):
        net = build_chain_network(3, seed=2)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        head = net.qnps["node0"].circuit(circuit_id).entry
        middle = net.qnps["node1"].circuit(circuit_id).entry
        assert head.downstream_link_label == middle.upstream_link_label

    def test_teardown_uninstalls_everywhere(self):
        net = build_chain_network(3, seed=2)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        net.teardown_circuit(circuit_id)
        net.run(until_s=0.1)
        for name in ("node0", "node1", "node2"):
            assert circuit_id not in net.qnps[name].circuit_ids

    def test_teardown_aborts_active_requests(self):
        from repro.core import UserRequest

        net = build_chain_network(3, seed=2)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = net.submit(circuit_id, UserRequest(num_pairs=1000))
        net.teardown_circuit(circuit_id)
        assert handle.status == RequestStatus.ABORTED

    def test_multiple_circuits_coexist(self):
        net = build_dumbbell_network(seed=2)
        first = net.establish_circuit("A0", "B0", 0.8)
        second = net.establish_circuit("A1", "B1", 0.8)
        assert first != second
        assert set(net.qnps["MA"].circuit_ids) == {first, second}


class TestReliableTransport:
    def test_delivers_over_lossy_channel(self):
        sim = Simulator(seed=5)
        channel = LossyChannel(sim, length_km=1.0, loss_probability=0.3)
        end_a, end_b = make_reliable_pair(sim, channel, rto=1 * MS)
        received = []
        end_b.connect(received.append)
        end_a.connect(lambda m: None)
        for i in range(50):
            end_a.send(i)
        sim.run(until=5 * S)
        assert received == list(range(50))
        assert end_a.retransmissions > 0

    def test_in_order_without_loss(self):
        sim = Simulator(seed=6)
        channel = LossyChannel(sim, length_km=1.0, loss_probability=0.0)
        end_a, end_b = make_reliable_pair(sim, channel, rto=1 * MS)
        received = []
        end_b.connect(received.append)
        end_a.connect(lambda m: None)
        for i in range(20):
            end_a.send(i)
        sim.run(until=1 * S)
        assert received == list(range(20))
        assert end_a.retransmissions == 0

    def test_bidirectional(self):
        sim = Simulator(seed=7)
        channel = LossyChannel(sim, length_km=1.0, loss_probability=0.2)
        end_a, end_b = make_reliable_pair(sim, channel, rto=1 * MS)
        inbox_a, inbox_b = [], []
        end_a.connect(inbox_a.append)
        end_b.connect(inbox_b.append)
        for i in range(20):
            end_a.send(("to-b", i))
            end_b.send(("to-a", i))
        sim.run(until=5 * S)
        assert inbox_b == [("to-b", i) for i in range(20)]
        assert inbox_a == [("to-a", i) for i in range(20)]

    def test_rto_validation(self):
        sim = Simulator()
        channel = LossyChannel(sim)
        with pytest.raises(ValueError):
            make_reliable_pair(sim, channel, rto=0.0)
