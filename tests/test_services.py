"""Tests for the services built on the QNP: distillation, QKD, test rounds."""

import random

import pytest

from repro.network.builder import build_chain_network
from repro.quantum import (
    NoisyOpParams,
    bell_dm,
    create_pair,
    pair_fidelity,
    werner_dm,
)
from repro.services import (
    DistillationModule,
    dejmps_round,
    run_bbm92,
    run_test_rounds,
    theoretical_dejmps_fidelity,
    theoretical_dejmps_success,
)


class TestDejmps:
    def test_perfect_pairs_always_succeed(self):
        rng = random.Random(1)
        for _ in range(20):
            pair_one = create_pair(bell_dm(0))
            pair_two = create_pair(bell_dm(0))
            outcome = dejmps_round(pair_one, pair_two, rng)
            assert outcome.success
            assert pair_fidelity(outcome.keep_a, outcome.keep_b, 0) == \
                pytest.approx(1.0)

    def test_failure_discards_pairs(self):
        rng = random.Random(2)
        # Low fidelity inputs fail often; find a failing round.
        for _ in range(200):
            pair_one = create_pair(werner_dm(0.6))
            pair_two = create_pair(werner_dm(0.6))
            outcome = dejmps_round(pair_one, pair_two, rng)
            if not outcome.success:
                assert outcome.keep_a is None
                assert pair_one[0].state is None
                return
        pytest.fail("no DEJMPS failure observed at F=0.6")

    def test_distillation_improves_werner_fidelity(self):
        rng = random.Random(3)
        input_fidelity = 0.8
        fidelities = []
        for _ in range(300):
            pair_one = create_pair(werner_dm(input_fidelity))
            pair_two = create_pair(werner_dm(input_fidelity))
            outcome = dejmps_round(pair_one, pair_two, rng)
            if outcome.success:
                fidelities.append(pair_fidelity(outcome.keep_a, outcome.keep_b, 0))
        measured = sum(fidelities) / len(fidelities)
        expected = theoretical_dejmps_fidelity(input_fidelity)
        assert measured == pytest.approx(expected, abs=0.02)
        assert measured > input_fidelity

    def test_success_rate_matches_theory(self):
        rng = random.Random(4)
        input_fidelity = 0.8
        successes = 0
        trials = 400
        for _ in range(trials):
            pair_one = create_pair(werner_dm(input_fidelity))
            pair_two = create_pair(werner_dm(input_fidelity))
            if dejmps_round(pair_one, pair_two, rng).success:
                successes += 1
        expected = theoretical_dejmps_success(input_fidelity)
        assert successes / trials == pytest.approx(expected, abs=0.07)

    def test_noisy_gates_reduce_gain(self):
        rng = random.Random(5)
        noisy_ops = NoisyOpParams(two_qubit_gate_fidelity=0.97)
        clean, noisy = [], []
        for _ in range(200):
            outcome = dejmps_round(create_pair(werner_dm(0.85)),
                                   create_pair(werner_dm(0.85)), rng)
            if outcome.success:
                clean.append(pair_fidelity(outcome.keep_a, outcome.keep_b, 0))
            outcome = dejmps_round(create_pair(werner_dm(0.85)),
                                   create_pair(werner_dm(0.85)), rng, noisy_ops)
            if outcome.success:
                noisy.append(pair_fidelity(outcome.keep_a, outcome.keep_b, 0))
        assert sum(noisy) / len(noisy) < sum(clean) / len(clean)

    def test_module_pairs_up_deliveries(self):
        rng = random.Random(6)
        module = DistillationModule(rng)
        for index in range(6):
            qa, qb = create_pair(bell_dm(1))  # Ψ+ deliveries, like the QNP
            module.absorb(qa, qb, bell_state=1)
        assert module.rounds_attempted == 3
        assert module.rounds_succeeded == 3  # pure inputs always succeed
        for keep_a, keep_b in module.distilled:
            assert pair_fidelity(keep_a, keep_b, 0) == pytest.approx(1.0)

    def test_theory_helpers_monotone(self):
        assert theoretical_dejmps_fidelity(0.9) > 0.9
        assert theoretical_dejmps_fidelity(0.7) > 0.7
        assert 0 < theoretical_dejmps_success(0.8) <= 1.0

    def test_module_validates_levels(self):
        with pytest.raises(ValueError):
            DistillationModule(random.Random(0), levels=0)

    def test_two_level_distillation_purifies_heralded_error_mix(self):
        """Single-click pairs carry p1 ≈ p3 errors: one DEJMPS round is
        neutral, two rounds purify strongly (the DEJMPS two-cycle)."""
        import numpy as np

        from repro.quantum import bell_diagonal_dm

        rng = random.Random(8)
        weights = np.array([0.83, 0.085, 0.0, 0.085])
        one = DistillationModule(rng, levels=1)
        two = DistillationModule(rng, levels=2)
        for module in (one, two):
            for _ in range(64):
                qa, qb = create_pair(bell_diagonal_dm(weights))
                module.absorb(qa, qb, bell_state=0)
        fidelity_one = sum(pair_fidelity(a, b, 0) for a, b in one.distilled) \
            / len(one.distilled)
        fidelity_two = sum(pair_fidelity(a, b, 0) for a, b in two.distilled) \
            / len(two.distilled)
        assert abs(fidelity_one - 0.83) < 0.03      # round 1 ≈ neutral
        assert fidelity_two > 0.92                  # round 2 purifies


class TestQkdOverStack:
    def test_bbm92_produces_low_qber_key(self):
        net = build_chain_network(3, seed=21)
        circuit_id = net.establish_circuit("node0", "node2", 0.85)
        key = run_bbm92(net, circuit_id, num_pairs=60, timeout_s=600)
        # Roughly half the rounds survive sifting.
        assert key.sifted_rounds > 15
        assert 0.25 < key.sift_ratio < 0.75
        # F ≥ 0.85 pairs → QBER comfortably below the ~11% QKD limit.
        assert key.qber < 0.11
        assert len(key.key_bits) == key.sifted_rounds


class TestFidelityTestRounds:
    def test_estimate_brackets_ground_truth(self):
        net = build_chain_network(3, seed=22)
        circuit_id = net.establish_circuit("node0", "node2", 0.85)
        estimate = run_test_rounds(net, circuit_id, rounds_per_basis=30,
                                   timeout_s=600)
        assert estimate.rounds_z > 20
        assert estimate.rounds_x > 20
        # 1 − e_Z − e_X is a *lower* bound on fidelity (p0 − p3): it may sit
        # below the 0.85 target but must stay within statistical noise of
        # the plausible band and never exceed 1.
        noise = 3 * estimate.standard_error() + 0.03
        assert 0.70 <= estimate.fidelity_lower_bound <= 1.0
        assert estimate.fidelity_lower_bound >= 0.85 - 2 * (1 - 0.85) - noise

    def test_estimate_detects_bad_circuit(self):
        """Test rounds on a deliberately mis-budgeted circuit read low."""
        from repro.hardware import SIMULATION
        from repro.netsim.units import S

        net = build_chain_network(3, seed=23,
                                  params=SIMULATION.with_t2(0.02 * S))
        circuit_id = net.establish_circuit_manual(
            ["node0", "node1", "node2"], link_fidelity=0.9, cutoff=None,
            max_eer=100.0, estimated_fidelity=0.9)
        estimate = run_test_rounds(net, circuit_id, rounds_per_basis=25,
                                   timeout_s=600)
        assert estimate.fidelity_lower_bound < 0.85
