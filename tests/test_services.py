"""Tests for the services built on the QNP: distillation, QKD, test rounds.

Beyond the stack-level smoke tests, the analytic pins live here: the
BBM92 QBER of a Werner pair equals ``2(1−F)/3`` per basis on *both*
state backends (computed exactly from the represented state, 1e-6), and
a DEJMPS success on Werner inputs lands exactly on the Deutsch et al.
fidelity map across a grid of input fidelities.
"""

import random

import numpy as np
import pytest

from repro.network.builder import build_chain_network
from repro.quantum import (
    BellPairState,
    NoisyOpParams,
    bell_dm,
    create_pair,
    pair_fidelity,
    werner_dm,
)
from repro.quantum.backends import get_backend
from repro.services import (
    DistillationModule,
    dejmps_round,
    run_bbm92,
    run_test_rounds,
    theoretical_dejmps_fidelity,
    theoretical_dejmps_success,
)
from repro.services.fidelity_test import expected_xor
from repro.services.qkd import BBM92Endpoint, sift


class TestDejmps:
    def test_perfect_pairs_always_succeed(self):
        rng = random.Random(1)
        for _ in range(20):
            pair_one = create_pair(bell_dm(0))
            pair_two = create_pair(bell_dm(0))
            outcome = dejmps_round(pair_one, pair_two, rng)
            assert outcome.success
            assert pair_fidelity(outcome.keep_a, outcome.keep_b, 0) == \
                pytest.approx(1.0)

    def test_failure_discards_pairs(self):
        rng = random.Random(2)
        # Low fidelity inputs fail often; find a failing round.
        for _ in range(200):
            pair_one = create_pair(werner_dm(0.6))
            pair_two = create_pair(werner_dm(0.6))
            outcome = dejmps_round(pair_one, pair_two, rng)
            if not outcome.success:
                assert outcome.keep_a is None
                assert pair_one[0].state is None
                return
        pytest.fail("no DEJMPS failure observed at F=0.6")

    def test_distillation_improves_werner_fidelity(self):
        rng = random.Random(3)
        input_fidelity = 0.8
        fidelities = []
        for _ in range(300):
            pair_one = create_pair(werner_dm(input_fidelity))
            pair_two = create_pair(werner_dm(input_fidelity))
            outcome = dejmps_round(pair_one, pair_two, rng)
            if outcome.success:
                fidelities.append(pair_fidelity(outcome.keep_a, outcome.keep_b, 0))
        measured = sum(fidelities) / len(fidelities)
        expected = theoretical_dejmps_fidelity(input_fidelity)
        assert measured == pytest.approx(expected, abs=0.02)
        assert measured > input_fidelity

    def test_success_rate_matches_theory(self):
        rng = random.Random(4)
        input_fidelity = 0.8
        successes = 0
        trials = 400
        for _ in range(trials):
            pair_one = create_pair(werner_dm(input_fidelity))
            pair_two = create_pair(werner_dm(input_fidelity))
            if dejmps_round(pair_one, pair_two, rng).success:
                successes += 1
        expected = theoretical_dejmps_success(input_fidelity)
        assert successes / trials == pytest.approx(expected, abs=0.07)

    def test_noisy_gates_reduce_gain(self):
        rng = random.Random(5)
        noisy_ops = NoisyOpParams(two_qubit_gate_fidelity=0.97)
        clean, noisy = [], []
        for _ in range(200):
            outcome = dejmps_round(create_pair(werner_dm(0.85)),
                                   create_pair(werner_dm(0.85)), rng)
            if outcome.success:
                clean.append(pair_fidelity(outcome.keep_a, outcome.keep_b, 0))
            outcome = dejmps_round(create_pair(werner_dm(0.85)),
                                   create_pair(werner_dm(0.85)), rng, noisy_ops)
            if outcome.success:
                noisy.append(pair_fidelity(outcome.keep_a, outcome.keep_b, 0))
        assert sum(noisy) / len(noisy) < sum(clean) / len(clean)

    def test_module_pairs_up_deliveries(self):
        rng = random.Random(6)
        module = DistillationModule(rng)
        for index in range(6):
            qa, qb = create_pair(bell_dm(1))  # Ψ+ deliveries, like the QNP
            module.absorb(qa, qb, bell_state=1)
        assert module.rounds_attempted == 3
        assert module.rounds_succeeded == 3  # pure inputs always succeed
        for keep_a, keep_b in module.distilled:
            assert pair_fidelity(keep_a, keep_b, 0) == pytest.approx(1.0)

    def test_theory_helpers_monotone(self):
        assert theoretical_dejmps_fidelity(0.9) > 0.9
        assert theoretical_dejmps_fidelity(0.7) > 0.7
        assert 0 < theoretical_dejmps_success(0.8) <= 1.0

    def test_module_validates_levels(self):
        with pytest.raises(ValueError):
            DistillationModule(random.Random(0), levels=0)

    def test_two_level_distillation_purifies_heralded_error_mix(self):
        """Single-click pairs carry p1 ≈ p3 errors: one DEJMPS round is
        neutral, two rounds purify strongly (the DEJMPS two-cycle)."""
        import numpy as np

        from repro.quantum import bell_diagonal_dm

        rng = random.Random(8)
        weights = np.array([0.83, 0.085, 0.0, 0.085])
        one = DistillationModule(rng, levels=1)
        two = DistillationModule(rng, levels=2)
        for module in (one, two):
            for _ in range(64):
                qa, qb = create_pair(bell_diagonal_dm(weights))
                module.absorb(qa, qb, bell_state=0)
        fidelity_one = sum(pair_fidelity(a, b, 0) for a, b in one.distilled) \
            / len(one.distilled)
        fidelity_two = sum(pair_fidelity(a, b, 0) for a, b in two.distilled) \
            / len(two.distilled)
        assert abs(fidelity_one - 0.83) < 0.03      # round 1 ≈ neutral
        assert fidelity_two > 0.92                  # round 2 purifies


def _state_error_rates(qubit_a, qubit_b, bell_index: int):
    """Exact same-basis mismatch probabilities (e_Z, e_X) of a live pair.

    Computed from the state representation itself — weight sums on the
    Bell backend, Born-rule sums on the density matrix — so the result
    is deterministic, not sampled.
    """
    state = qubit_a.state
    if isinstance(state, BellPairState):
        weights = state.weights
        error_z = float(weights[bell_index ^ 1] + weights[bell_index ^ 3])
        error_x = float(weights[bell_index ^ 2] + weights[bell_index ^ 3])
        return error_z, error_x
    dm = state.dm
    assert dm.shape == (4, 4) and state.qubits == [qubit_a, qubit_b]
    hadamard = np.array([[1, 1], [1, -1]]) / np.sqrt(2.0)

    def mismatch(matrix, expected):
        odd = float(np.real(matrix[0b01, 0b01] + matrix[0b10, 0b10]))
        return odd if expected == 0 else 1.0 - odd

    rotated = np.kron(hadamard, hadamard)
    error_z = mismatch(dm, expected_xor(bell_index, "Z"))
    error_x = mismatch(rotated @ dm @ rotated.conj().T,
                       expected_xor(bell_index, "X"))
    return error_z, error_x


class TestQberWernerRelation:
    """Satellite pin: BBM92 QBER vs the analytic Werner relation."""

    FIDELITIES = [0.5, 0.55, 0.6211, 0.7, 0.75, 0.8, 0.8537, 0.9,
                  0.95, 0.975, 1.0]

    @pytest.mark.parametrize("backend_name", ["dm", "bell"])
    @pytest.mark.parametrize("bell_index", [0, 1, 2, 3])
    def test_state_error_rates_match_analytic(self, backend_name,
                                              bell_index):
        backend = get_backend(backend_name)
        for fidelity in self.FIDELITIES:
            p = (1.0 - fidelity) / 3.0
            weights = [p] * 4
            weights[bell_index] = fidelity
            qubit_a, qubit_b = backend.create_pair_from_weights(weights)
            error_z, error_x = _state_error_rates(qubit_a, qubit_b,
                                                  bell_index)
            analytic = 2.0 * (1.0 - fidelity) / 3.0
            assert error_z == pytest.approx(analytic, abs=1e-6)
            assert error_x == pytest.approx(analytic, abs=1e-6)

    @pytest.mark.parametrize("backend_name", ["dm", "bell"])
    def test_sifted_qber_converges_to_relation(self, backend_name):
        """The full measurement+sift path agrees statistically too."""
        from repro.quantum.operations import measure_qubit

        class Device:
            def __init__(self, rng):
                self.rng = rng

            def measure(self, qubit, basis="Z"):
                return measure_qubit(qubit, self.rng, basis), 0.0

        fidelity = 0.85
        backend = get_backend(backend_name)
        shared = random.Random(97)
        head = BBM92Endpoint(Device(random.Random(98)), shared)
        tail = BBM92Endpoint(Device(random.Random(99)), shared)
        from repro.core.requests import DeliveryStatus, PairDelivery

        p = (1.0 - fidelity) / 3.0
        for index in range(3000):
            qubit_a, qubit_b = backend.create_pair_from_weights(
                (fidelity, p, p, p))
            for endpoint, qubit in ((head, qubit_a), (tail, qubit_b)):
                endpoint.absorb(PairDelivery(
                    request_id="r", sequence=index,
                    status=DeliveryStatus.CONFIRMED, qubit=qubit,
                    measurement=None, bell_state=0,
                    pair_id=("s", index), t_created=0.0, t_delivered=0.0))
        key = sift(head, tail)
        analytic = 2.0 * (1.0 - fidelity) / 3.0
        assert key.sifted_rounds > 1000
        assert key.qber == pytest.approx(analytic, abs=0.02)
        assert key.qber_z == pytest.approx(analytic, abs=0.03)
        assert key.qber_x == pytest.approx(analytic, abs=0.03)
        assert key.errors_z + key.errors_x == round(key.qber
                                                    * key.sifted_rounds)


class TestDeutschFidelityMap:
    """Satellite pin: DEJMPS output fidelity on Werner inputs is exactly
    the Deutsch et al. closed form, across a grid of input fidelities."""

    @pytest.mark.parametrize("fidelity",
                             [0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85,
                              0.9, 0.95])
    def test_success_lands_on_the_map(self, fidelity):
        rng = random.Random(int(fidelity * 1000))
        successes = 0
        for _ in range(80):
            pair_one = create_pair(werner_dm(fidelity))
            pair_two = create_pair(werner_dm(fidelity))
            outcome = dejmps_round(pair_one, pair_two, rng)
            if not outcome.success:
                continue
            successes += 1
            measured = pair_fidelity(outcome.keep_a, outcome.keep_b, 0)
            assert measured == pytest.approx(
                theoretical_dejmps_fidelity(fidelity), abs=1e-6)
            if successes >= 5:
                break
        assert successes >= 5, f"too few successes at F={fidelity}"

    def test_map_fixed_points(self):
        # F' = F at the F=1 and F=1/4 fixed points of the map
        assert theoretical_dejmps_fidelity(1.0) == pytest.approx(1.0)
        assert theoretical_dejmps_fidelity(0.25) == pytest.approx(0.25)


class TestQkdOverStack:
    def test_bbm92_produces_low_qber_key(self):
        net = build_chain_network(3, seed=21)
        circuit_id = net.establish_circuit("node0", "node2", 0.85)
        key = run_bbm92(net, circuit_id, num_pairs=60, timeout_s=600)
        # Roughly half the rounds survive sifting.
        assert key.sifted_rounds > 15
        assert 0.25 < key.sift_ratio < 0.75
        # F ≥ 0.85 pairs → QBER comfortably below the ~11% QKD limit.
        assert key.qber < 0.11
        assert len(key.key_bits) == key.sifted_rounds


class TestFidelityTestRounds:
    def test_estimate_brackets_ground_truth(self):
        net = build_chain_network(3, seed=22)
        circuit_id = net.establish_circuit("node0", "node2", 0.85)
        estimate = run_test_rounds(net, circuit_id, rounds_per_basis=30,
                                   timeout_s=600)
        assert estimate.rounds_z > 20
        assert estimate.rounds_x > 20
        # 1 − e_Z − e_X is a *lower* bound on fidelity (p0 − p3): it may sit
        # below the 0.85 target but must stay within statistical noise of
        # the plausible band and never exceed 1.
        noise = 3 * estimate.standard_error() + 0.03
        assert 0.70 <= estimate.fidelity_lower_bound <= 1.0
        assert estimate.fidelity_lower_bound >= 0.85 - 2 * (1 - 0.85) - noise

    def test_estimate_detects_bad_circuit(self):
        """Test rounds on a deliberately mis-budgeted circuit read low."""
        from repro.hardware import SIMULATION
        from repro.netsim.units import S

        net = build_chain_network(3, seed=23,
                                  params=SIMULATION.with_t2(0.02 * S))
        circuit_id = net.establish_circuit_manual(
            ["node0", "node1", "node2"], link_fidelity=0.9, cutoff=None,
            max_eer=100.0, estimated_fidelity=0.9)
        estimate = run_test_rounds(net, circuit_id, rounds_per_basis=25,
                                   timeout_s=600)
        assert estimate.fidelity_lower_bound < 0.85
