"""Tests for the statistics and experiment helpers."""

import pytest

from repro.analysis import (
    Cdf,
    LatencySummary,
    mean,
    percentile,
    render_series,
    render_table,
    run_seeds,
    standard_error,
    throughput,
)


class TestBasicStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_standard_error(self):
        assert standard_error([5.0]) == 0.0
        assert standard_error([1.0, 1.0, 1.0]) == 0.0
        assert standard_error([0.0, 2.0]) > 0.0

    def test_percentile_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 10.0
        assert percentile(values, 50) == 5.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)
        with pytest.raises(ValueError):
            percentile([], 50)


class TestCdf:
    def test_from_samples(self):
        cdf = Cdf.from_samples([3.0, 1.0, 2.0])
        assert cdf.xs == [1.0, 2.0, 3.0]
        assert cdf.ps == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_quantile(self):
        cdf = Cdf.from_samples(range(1, 101))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(0.95) == 95
        assert cdf.quantile(1.0) == 100

    def test_at(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(2.5) == 0.5
        assert cdf.at(0.0) == 0.0
        assert cdf.at(10.0) == 1.0

    def test_resample(self):
        cdf = Cdf.from_samples([0.0, 1.0, 2.0, 3.0, 4.0])
        points = cdf.resample(5)
        assert points[0] == (0.0, pytest.approx(0.2))
        assert points[-1] == (4.0, pytest.approx(1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([])
        cdf = Cdf.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.resample(1)


class TestThroughput:
    def test_counts_in_window(self):
        times = [0.5e9, 1.5e9, 2.5e9, 3.5e9]
        assert throughput(times, (0.0, 4e9)) == pytest.approx(1.0)
        assert throughput(times, (0.0, 2e9)) == pytest.approx(1.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            throughput([], (5.0, 5.0))


class TestLatencySummary:
    def test_summary(self):
        summary = LatencySummary.from_samples([float(i) for i in range(1, 101)])
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p95 == pytest.approx(95.05)


def _seed_scenario(seed: int) -> float:
    """Module-level scenario so the parallel sweep can pickle it."""
    rng_state = (seed * 2654435761) % 97
    return float(seed * 2 + rng_state * 0)


class TestHarness:
    def test_run_seeds(self):
        sweep = run_seeds(lambda seed: float(seed * 2), range(5))
        assert sweep.samples == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert sweep.mean == 4.0
        assert sweep.sem > 0

    def test_parallel_sweep_matches_serial(self):
        serial = run_seeds(_seed_scenario, range(8))
        parallel = run_seeds(_seed_scenario, range(8), parallel=True,
                             workers=4)
        assert parallel.samples == serial.samples
        assert parallel.mean == serial.mean

    def test_parallel_single_worker_falls_back_to_serial(self):
        # workers=1 must not require a picklable scenario (no pool spawned).
        sweep = run_seeds(lambda seed: float(seed + 1), range(4),
                          parallel=True, workers=1)
        assert sweep.samples == [1.0, 2.0, 3.0, 4.0]

    def test_render_table_alignment(self):
        table = render_table(["name", "value"],
                             [["alpha", 1.5], ["b", 22222.0]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        out = render_series("series", [1, 2], [0.5, 0.25],
                            x_label="n", y_label="p")
        assert "series" in out
        assert "0.5" in out and "0.25" in out
