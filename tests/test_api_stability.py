"""API-stability snapshot for the wiring layer.

The component-and-port API is the seam every layer of the stack plugs
into, so accidental signature drift breaks downstream wiring silently.
This test pins the public signatures of the wiring layer (ports, nodes,
channels, links, transport endpoints, the builder and the midpoint
station) against a committed JSON snapshot.

When a change is *intentional*, regenerate the snapshot and commit it
together with the code change::

    PYTHONPATH=src python tests/test_api_stability.py

``from __future__ import annotations`` keeps every annotation a plain
string, so the rendered signatures are identical across supported
Python versions.
"""

import inspect
import json
import pathlib
from functools import cached_property

SNAPSHOT = pathlib.Path(__file__).with_name("api_snapshot.json")

REGEN_HINT = ("signature drift in the wiring layer; if intentional, "
              "regenerate with: PYTHONPATH=src python "
              "tests/test_api_stability.py")


def _targets():
    from repro.control.transport import ReliableEnd
    from repro.hardware.heralded import (
        MidpointHeraldModel,
        MidpointStation,
        SingleClickModel,
    )
    from repro.linklayer.egp import Link
    from repro.netsim.channels import ChannelEnd, ClassicalChannel
    from repro.netsim.ports import (
        CallbackComponent,
        Component,
        Port,
        connect,
        subscribe,
    )
    from repro.network.builder import Network, build_network_from_graph
    from repro.network.node import QuantumNode, service_protocol

    return {
        "netsim.ports.Port": Port,
        "netsim.ports.Component": Component,
        "netsim.ports.CallbackComponent": CallbackComponent,
        "netsim.ports.connect": connect,
        "netsim.ports.subscribe": subscribe,
        "netsim.channels.ClassicalChannel": ClassicalChannel,
        "netsim.channels.ChannelEnd": ChannelEnd,
        "network.node.QuantumNode": QuantumNode,
        "network.node.service_protocol": service_protocol,
        "network.builder.Network": Network,
        "network.builder.build_network_from_graph": build_network_from_graph,
        "linklayer.egp.Link": Link,
        "control.transport.ReliableEnd": ReliableEnd,
        "hardware.heralded.SingleClickModel": SingleClickModel,
        "hardware.heralded.MidpointHeraldModel": MidpointHeraldModel,
        "hardware.heralded.MidpointStation": MidpointStation,
    }


def _class_api(cls) -> dict:
    members = {}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_") and name != "__init__":
            continue
        if inspect.isfunction(member):
            members[name] = f"def {str(inspect.signature(member))}"
        elif isinstance(member, property):
            members[name] = "property"
        elif isinstance(member, cached_property):
            members[name] = "cached_property"
        elif isinstance(member, (classmethod, staticmethod)):
            members[name] = (f"{type(member).__name__} "
                             f"{str(inspect.signature(member.__func__))}")
    return {
        "kind": "class",
        "bases": [base.__name__ for base in cls.__bases__],
        "members": members,
    }


def current_api() -> dict:
    """Render the wiring layer's public signatures as plain data."""
    api = {}
    for label, target in _targets().items():
        if inspect.isclass(target):
            api[label] = _class_api(target)
        else:
            api[label] = {
                "kind": "function",
                "signature": f"def {str(inspect.signature(target))}",
            }
    return api


def test_wiring_api_matches_snapshot():
    assert SNAPSHOT.exists(), f"missing {SNAPSHOT.name}; {REGEN_HINT}"
    recorded = json.loads(SNAPSHOT.read_text())
    live = current_api()
    assert live == recorded, REGEN_HINT


if __name__ == "__main__":
    SNAPSHOT.write_text(
        json.dumps(current_api(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {SNAPSHOT}")
