"""Tests for the traffic subsystem: topologies, arrivals, workload, metrics."""

import random

import networkx as nx
import pytest

from repro.core.requests import RequestStatus
from repro.network.builder import build_network_from_graph
from repro.traffic import (
    DEFAULT_CLASSES,
    TOPOLOGIES,
    PriorityClass,
    TrafficEngine,
    build_topology,
    poisson_schedule,
    topology_graph,
)
from repro.traffic.arrivals import (
    pick_class,
    sample_exponential,
    sample_geometric,
)


# ----------------------------------------------------------------------
# Topology catalogue
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind,size", [
    ("grid", 3), ("ring", 5), ("star", 3), ("erdos-renyi", 12),
    ("waxman", 12), ("tree", 3),
])
def test_catalogue_graphs_connected_and_deterministic(kind, size):
    graph = topology_graph(kind, size, seed=4)
    assert nx.is_connected(graph)
    assert graph.number_of_nodes() >= 2
    assert all(isinstance(node, str) for node in graph.nodes)
    again = topology_graph(kind, size, seed=4)
    assert sorted(graph.edges) == sorted(again.edges)


def test_catalogue_expected_shapes():
    assert topology_graph("grid", 4).number_of_nodes() == 16
    assert topology_graph("ring", 7).number_of_edges() == 7
    star = topology_graph("star", 3)
    assert star.degree["hub"] == 3
    assert star.number_of_nodes() == 7  # hub + 3 arms x 2
    tree = topology_graph("tree", 2)
    assert tree.number_of_nodes() == 7  # balanced binary, height 2


def test_catalogue_rejects_bad_input():
    with pytest.raises(ValueError):
        topology_graph("nope", 4)
    with pytest.raises(ValueError):
        topology_graph("grid", 1)
    with pytest.raises(ValueError):
        topology_graph("ring", 2)
    with pytest.raises(ValueError):
        topology_graph("star", 1)


def test_build_network_from_graph_wires_everything():
    graph = topology_graph("ring", 4, seed=0)
    net = build_network_from_graph(graph, seed=5, formalism="bell")
    assert len(net.nodes) == 4
    assert len(net.links) == 4
    assert net.controller is not None
    assert net.formalism == "bell"
    circuit_id = net.establish_circuit("r0", "r2", 0.7, "short")
    assert net.route_of(circuit_id).num_links == 2


def test_build_network_from_graph_validation():
    lonely = nx.Graph()
    lonely.add_node("a")
    with pytest.raises(ValueError):
        build_network_from_graph(lonely)
    disconnected = nx.Graph()
    disconnected.add_edge("a", "b")
    disconnected.add_edge("c", "d")
    with pytest.raises(ValueError):
        build_network_from_graph(disconnected)


# ----------------------------------------------------------------------
# Arrivals
# ----------------------------------------------------------------------

def test_poisson_schedule_deterministic_and_sorted():
    first = poisson_schedule(3, 1e9, 5e7, seed=9)
    second = poisson_schedule(3, 1e9, 5e7, seed=9)
    assert first == second
    times = [spec.arrival_ns for spec in first]
    assert times == sorted(times)
    assert all(0 < t < 1e9 for t in times)
    assert {spec.circuit_index for spec in first} <= {0, 1, 2}
    assert poisson_schedule(3, 1e9, 5e7, seed=10) != first


def test_poisson_schedule_per_circuit_means():
    # Circuit 0 fires ~20x more often than circuit 1.
    schedule = poisson_schedule(2, 1e9, [1e6, 2e7], seed=3)
    count_fast = sum(1 for s in schedule if s.circuit_index == 0)
    count_slow = sum(1 for s in schedule if s.circuit_index == 1)
    assert count_fast > 5 * count_slow
    with pytest.raises(ValueError):
        poisson_schedule(2, 1e9, [1e6], seed=3)
    with pytest.raises(ValueError):
        poisson_schedule(2, 1e9, [1e6, -1.0], seed=3)


def test_poisson_schedule_max_sessions_caps_earliest():
    full = poisson_schedule(2, 1e9, 1e6, seed=1)
    capped = poisson_schedule(2, 1e9, 1e6, seed=1, max_sessions=10)
    assert capped == full[:10]


def test_sampling_helpers():
    rng = random.Random(0)
    gaps = [sample_exponential(rng, 100.0) for _ in range(2000)]
    assert sum(gaps) / len(gaps) == pytest.approx(100.0, rel=0.2)
    sizes = [sample_geometric(rng, 4.0) for _ in range(2000)]
    assert min(sizes) >= 1
    assert sum(sizes) / len(sizes) == pytest.approx(4.0, rel=0.2)
    assert sample_geometric(rng, 1.0) == 1
    names = [pick_class(rng, DEFAULT_CLASSES).name for _ in range(2000)]
    assert names.count("best-effort") > names.count("gold")


def test_priority_class_validation():
    with pytest.raises(ValueError):
        PriorityClass("x", share=0.0, mean_pairs=2.0, eer_fraction=0.1)
    with pytest.raises(ValueError):
        PriorityClass("x", share=0.5, mean_pairs=0.5, eer_fraction=0.1)
    with pytest.raises(ValueError):
        PriorityClass("x", share=0.5, mean_pairs=2.0, eer_fraction=-1.0)


# ----------------------------------------------------------------------
# Workload engine + telemetry
# ----------------------------------------------------------------------

def _small_run(seed: int, formalism: str = "bell", load: float = 0.8):
    net = build_topology("ring", 5, seed=seed, formalism=formalism)
    engine = TrafficEngine(net, circuits=4, load=load, seed=seed)
    report = engine.run(horizon_s=0.5, drain_s=0.5)
    return engine, report


def test_engine_runs_concurrent_circuits_and_reports():
    engine, report = _small_run(seed=21)
    assert len(engine.circuits) == 4
    assert report.total_sessions > 0
    assert report.total_confirmed_pairs > 0
    assert report.throughput_pairs_per_s > 0
    assert report.mean_fidelity is not None
    # Admission accounting is complete and consistent.
    for tally in report.classes.values():
        assert tally.submitted == tally.accepted + tally.queued + tally.rejected
        assert (tally.completed + tally.aborted + tally.unfinished
                <= tally.submitted)
    # Telemetry covers the whole topology.
    assert len(report.links) == 5
    assert len(report.arbiters) == 5
    assert all(0.0 <= stats.utilisation <= 1.0 for stats in report.links)
    # Circuits were torn down at the end of the run.
    assert all(qnp.circuit_ids == [] for qnp in engine.net.qnps.values())
    # The report renders all its tables.
    text = report.render()
    assert "admission and completion" in text
    assert "per-circuit telemetry" in text
    assert "per-link utilisation" in text


def test_engine_deterministic_for_seed():
    _, first = _small_run(seed=22)
    _, second = _small_run(seed=22)
    assert first.total_sessions == second.total_sessions
    assert first.total_confirmed_pairs == second.total_confirmed_pairs
    assert first.fidelities == second.fidelities
    assert [stats.pairs_generated for stats in first.links] \
        == [stats.pairs_generated for stats in second.links]
    for name in first.classes:
        assert first.classes[name].__dict__ == second.classes[name].__dict__


def _grid_run(batched: bool):
    """The seed-7 grid workload with the EGP batcher on or off."""
    net = build_topology("grid", 3, seed=7, formalism="bell")
    for link in net.links.values():
        link.batched = batched
    engine = TrafficEngine(net, circuits=4, load=0.8, seed=7)
    report = engine.run(horizon_s=0.5, drain_s=0.3)
    return report


def test_batched_egp_identical_telemetry_to_scalar():
    """Whole-stack determinism regression for the timeslot batcher: the
    seed-7 grid workload must produce byte-identical telemetry with
    batching on (default) and off (event per slice)."""
    batched = _grid_run(True)
    scalar = _grid_run(False)
    assert batched.total_sessions == scalar.total_sessions
    assert batched.total_confirmed_pairs == scalar.total_confirmed_pairs
    assert batched.fidelities == scalar.fidelities
    assert batched.throughput_pairs_per_s == scalar.throughput_pairs_per_s
    assert [s.pairs_generated for s in batched.links] \
        == [s.pairs_generated for s in scalar.links]
    assert [s.utilisation for s in batched.links] \
        == [s.utilisation for s in scalar.links]
    for name in batched.classes:
        assert batched.classes[name].__dict__ \
            == scalar.classes[name].__dict__
    assert batched.total_confirmed_pairs > 0


def test_engine_both_formalisms_complete():
    for formalism in ("dm", "bell"):
        _, report = _small_run(seed=23, formalism=formalism)
        assert report.formalism == formalism
        assert report.total_confirmed_pairs > 0


def test_engine_records_rejections_for_infeasible_class():
    net = build_topology("ring", 4, seed=24, formalism="bell")
    greedy = (PriorityClass("greedy", share=1.0, mean_pairs=3.0,
                            eer_fraction=2.0),)
    engine = TrafficEngine(net, circuits=2, load=0.5, classes=greedy, seed=24)
    report = engine.run(horizon_s=0.3, drain_s=0.1)
    tally = report.classes["greedy"]
    assert tally.submitted > 0
    assert tally.rejected == tally.submitted
    assert report.total_confirmed_pairs == 0


def test_engine_respects_policer_queue_decisions():
    engine, report = _small_run(seed=25, load=3.0)
    queued = sum(t.queued for t in report.classes.values())
    assert queued > 0  # heavy overload must shape some sessions
    # Queued sessions either started later, finished, or were aborted at
    # teardown — none left dangling.
    for record in engine.records:
        assert record.handle.status in (
            RequestStatus.COMPLETED, RequestStatus.ABORTED,
            RequestStatus.ACTIVE, RequestStatus.REJECTED)
    aborted = sum(t.aborted for t in report.classes.values())
    unfinished = sum(t.unfinished for t in report.classes.values())
    assert aborted + unfinished > 0


def test_engine_explicit_endpoints_and_errors():
    net = build_topology("ring", 5, seed=26, formalism="bell")
    engine = TrafficEngine(net, circuits=2, seed=26,
                           endpoint_pairs=[("r0", "r2")])
    circuits = engine.install()
    assert len(circuits) == 2
    assert all({c.head, c.tail} == {"r0", "r2"} for c in circuits)
    with pytest.raises(ValueError):
        TrafficEngine(net, circuits=0)
    with pytest.raises(ValueError):
        TrafficEngine(net, load=0.0)
    unreachable = TrafficEngine(net, circuits=1, min_hops=9, max_hops=9)
    with pytest.raises(ValueError):
        unreachable.install()


def test_engine_reuses_small_endpoint_pool():
    """More circuits than endpoint pairs is fine: pairs are reused."""
    net = build_topology("ring", 4, seed=27, formalism="bell")
    engine = TrafficEngine(net, circuits=7, seed=27,
                           endpoint_pairs=[("r0", "r2")])
    assert len(engine.install()) == 7


def test_engine_is_one_shot():
    engine, _ = _small_run(seed=28)
    with pytest.raises(RuntimeError, match="already ran"):
        engine.run(horizon_s=0.1)


def test_registry_matches_cli_choices():
    assert set(TOPOLOGIES) == {"grid", "ring", "star", "erdos-renyi",
                               "waxman", "tree"}
