"""Tests for Kraus channels."""

import math

import numpy as np
import pytest

from repro.quantum import (
    QState,
    Qubit,
    amplitude_damping_kraus,
    bitflip_kraus,
    decoherence_kraus,
    dephasing_kraus,
    depolarizing_kraus,
    is_trace_preserving,
    readout_povm,
    two_qubit_depolarizing_kraus,
    H,
)


@pytest.mark.parametrize("factory,arg", [
    (dephasing_kraus, 0.3),
    (bitflip_kraus, 0.2),
    (depolarizing_kraus, 0.7),
    (two_qubit_depolarizing_kraus, 0.4),
    (amplitude_damping_kraus, 0.5),
])
def test_channels_are_trace_preserving(factory, arg):
    assert is_trace_preserving(factory(arg))


@pytest.mark.parametrize("factory", [dephasing_kraus, depolarizing_kraus,
                                     amplitude_damping_kraus])
def test_probability_validation(factory):
    with pytest.raises(ValueError):
        factory(-0.1)
    with pytest.raises(ValueError):
        factory(1.1)


def plus_state():
    qubit = Qubit()
    state = QState.ground(qubit)
    state.apply_unitary(H, [qubit])
    return qubit, state


def test_dephasing_kills_coherence():
    qubit, state = plus_state()
    state.apply_channel(dephasing_kraus(0.5), [qubit])
    assert abs(state.dm[0, 1]) < 1e-12
    assert state.dm[0, 0] == pytest.approx(0.5)


def test_dephasing_partial():
    qubit, state = plus_state()
    state.apply_channel(dephasing_kraus(0.1), [qubit])
    # Coherence scales by (1 - 2p).
    assert state.dm[0, 1] == pytest.approx(0.5 * 0.8)


def test_amplitude_damping_decays_excited_population():
    qubit = Qubit()
    state = QState.from_pure(np.array([0.0, 1.0]), [qubit])
    state.apply_channel(amplitude_damping_kraus(0.25), [qubit])
    assert state.dm[1, 1] == pytest.approx(0.75)
    assert state.dm[0, 0] == pytest.approx(0.25)


def test_decoherence_kraus_zero_time_is_identity():
    ops = decoherence_kraus(0.0, t1=1e9, t2=1e6)
    assert len(ops) == 1
    assert np.allclose(ops[0], np.eye(2))


def test_decoherence_kraus_negative_time_rejected():
    with pytest.raises(ValueError):
        decoherence_kraus(-1.0, 1e9, 1e6)


def test_decoherence_matches_t2_envelope():
    # Coherence of |+⟩ must decay as exp(-t/T2).
    t1, t2 = 5e9, 1e6
    for elapsed in (1e5, 1e6, 3e6):
        qubit, state = plus_state()
        state.apply_channel(decoherence_kraus(elapsed, t1, t2), [qubit])
        expected = 0.5 * math.exp(-elapsed / t2)
        assert state.dm[0, 1] == pytest.approx(expected, rel=1e-6)


def test_decoherence_matches_t1_population():
    t1, t2 = 1e6, 1e6  # T2 = T1 regime
    elapsed = 2e6
    qubit = Qubit()
    state = QState.from_pure(np.array([0.0, 1.0]), [qubit])
    state.apply_channel(decoherence_kraus(elapsed, t1, t2), [qubit])
    assert state.dm[1, 1] == pytest.approx(math.exp(-elapsed / t1), rel=1e-6)


def test_decoherence_infinite_times_are_noiseless():
    qubit, state = plus_state()
    before = state.dm.copy()
    state.apply_channel(decoherence_kraus(1e12, math.inf, math.inf), [qubit])
    assert np.allclose(state.dm, before, atol=1e-12)


def test_decoherence_is_trace_preserving():
    assert is_trace_preserving(decoherence_kraus(2e6, 1e9, 1e6))


def test_readout_povm_probabilities():
    m0, m1 = readout_povm(error0=0.02, error1=0.05)
    assert np.allclose(m0 + m1, np.eye(2))
    # A |0⟩ qubit reads 0 with probability 1 - error0.
    rho0 = np.diag([1.0, 0.0])
    assert np.real(np.trace(m0 @ rho0)) == pytest.approx(0.98)
    rho1 = np.diag([0.0, 1.0])
    assert np.real(np.trace(m1 @ rho1)) == pytest.approx(0.95)


def test_two_qubit_depolarizing_fully_mixes():
    ops = two_qubit_depolarizing_kraus(15.0 / 16.0)
    qa, qb = Qubit(), Qubit()
    state = QState.merge(QState.ground(qa), QState.ground(qb))
    state.apply_channel(ops, [qa, qb])
    # p = 15/16 with uniform Paulis is the fully depolarizing channel.
    assert np.allclose(state.dm, np.eye(4) / 4, atol=1e-9)
