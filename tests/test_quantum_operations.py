"""Tests for high-level quantum operations, including the swap law.

The most load-bearing test here verifies — for all 64 combinations of input
Bell states and measurement outcomes — that the XOR composition law used by
the QNP's entanglement tracking agrees with the exact density-matrix engine.
"""

import random

import numpy as np
import pytest

from repro.quantum import (
    H,
    NoisyOpParams,
    QState,
    Qubit,
    X,
    apply_gate,
    apply_two_qubit_gate,
    averaged_swap_dm,
    bell_dm,
    bell_fidelity,
    bell_state_measurement,
    create_bell_pair,
    create_pair,
    discard,
    measure_qubit,
    pair_fidelity,
    pauli_correct,
    swap_combine,
    teleport,
    werner_dm,
    CNOT,
)


def test_create_pair_holds_given_dm():
    dm = werner_dm(0.9)
    qa, qb = create_pair(dm)
    assert np.allclose(qa.state.reduced_dm([qa, qb]), dm)
    assert qa.state is qb.state


def test_create_bell_pair_fidelity():
    qa, qb = create_bell_pair(index=1, fidelity=0.85)
    assert pair_fidelity(qa, qb, 1) == pytest.approx(0.85)


def test_swap_law_matches_exact_engine():
    """The Appendix C combine_state law, checked exhaustively."""
    for state_a in range(4):
        for state_b in range(4):
            seen = set()
            attempts = 0
            # Sample outcomes until we've seen all four (they are uniform).
            rng = random.Random(state_a * 7 + state_b)
            while len(seen) < 4 and attempts < 500:
                attempts += 1
                qa, q_mid1 = create_pair(bell_dm(state_a))
                q_mid2, qc = create_pair(bell_dm(state_b))
                outcome = bell_state_measurement(q_mid1, q_mid2, rng)
                seen.add(outcome)
                expected_index = swap_combine(state_a, state_b, outcome)
                fidelity = pair_fidelity(qa, qc, expected_index)
                assert fidelity == pytest.approx(1.0), (
                    f"inputs B{state_a},B{state_b} outcome {outcome}")
            assert seen == {0, 1, 2, 3}


def test_swap_outcomes_uniform():
    rng = random.Random(9)
    counts = [0] * 4
    for _ in range(400):
        qa, q_mid1 = create_pair(bell_dm(0))
        q_mid2, qc = create_pair(bell_dm(0))
        counts[bell_state_measurement(q_mid1, q_mid2, rng)] += 1
    for count in counts:
        assert 60 < count < 140


def test_swap_of_werner_pairs_reduces_fidelity():
    rng = random.Random(3)
    fidelities = []
    for _ in range(60):
        qa, q_mid1 = create_pair(werner_dm(0.95))
        q_mid2, qc = create_pair(werner_dm(0.95))
        outcome = bell_state_measurement(q_mid1, q_mid2, rng)
        fidelities.append(pair_fidelity(qa, qc, swap_combine(0, 0, outcome)))
    mean_fidelity = np.mean(fidelities)
    # Werner swap analytics: F' = F² + (1−F)²/3 ≈ 0.903 for F=0.95.
    expected = 0.95 ** 2 + 3 * ((0.05 / 3) ** 2)
    assert mean_fidelity == pytest.approx(expected, abs=1e-9)


def test_noisy_swap_lowers_fidelity_further():
    rng = random.Random(5)
    ops = NoisyOpParams(two_qubit_gate_fidelity=0.99)
    qa, q_mid1 = create_pair(bell_dm(0))
    q_mid2, qc = create_pair(bell_dm(0))
    outcome = bell_state_measurement(q_mid1, q_mid2, rng, ops)
    fidelity = pair_fidelity(qa, qc, swap_combine(0, 0, outcome))
    assert fidelity < 1.0
    assert fidelity > 0.9


def test_readout_error_mislabels_outcome():
    # With readout error 1.0 on both outcomes, both reported bits flip: the
    # reported outcome is the true outcome XOR 0b11.
    rng = random.Random(11)
    ops = NoisyOpParams(readout_error0=1.0, readout_error1=1.0)
    qa, q_mid1 = create_pair(bell_dm(0))
    q_mid2, qc = create_pair(bell_dm(0))
    reported = bell_state_measurement(q_mid1, q_mid2, rng, ops)
    true_outcome = reported ^ 0b11
    assert pair_fidelity(qa, qc, swap_combine(0, 0, true_outcome)) == pytest.approx(1.0)


def test_pauli_correct_rotates_frames():
    for start in range(4):
        for target in range(4):
            qa, qb = create_pair(bell_dm(start))
            pauli_correct(qb, start ^ target)
            assert pair_fidelity(qa, qb, target) == pytest.approx(1.0)


def test_pauli_correct_identity_frame_is_noop():
    qa, qb = create_pair(bell_dm(0))
    before = qa.state.dm.copy()
    pauli_correct(qb, 0)
    assert np.allclose(qa.state.dm, before)


def test_measure_qubit_bases():
    rng = random.Random(2)
    # |+⟩ measured in X is deterministic 0.
    qubit = Qubit()
    QState.ground(qubit)
    apply_gate(qubit, H)
    assert measure_qubit(qubit, rng, basis="X") == 0
    # |0⟩ in Z is deterministic 0.
    qubit = Qubit()
    QState.ground(qubit)
    assert measure_qubit(qubit, rng, basis="Z") == 0


def test_measure_qubit_y_basis_statistics():
    rng = random.Random(4)
    outcomes = []
    for _ in range(200):
        qubit = Qubit()
        QState.ground(qubit)
        outcomes.append(measure_qubit(qubit, rng, basis="Y"))
    # |0⟩ in Y basis is uniform.
    assert 60 < sum(outcomes) < 140


def test_measure_qubit_unknown_basis():
    rng = random.Random(0)
    qubit = Qubit()
    QState.ground(qubit)
    with pytest.raises(ValueError):
        measure_qubit(qubit, rng, basis="W")


def test_measure_freed_qubit_raises():
    rng = random.Random(0)
    qubit = Qubit()
    QState.ground(qubit)
    measure_qubit(qubit, rng)
    with pytest.raises(ValueError):
        measure_qubit(qubit, rng)


def test_bell_measurement_correlations_of_pair():
    # Measuring both halves of Φ+ in Z gives equal bits; Ψ+ gives opposite.
    rng = random.Random(8)
    for _ in range(50):
        qa, qb = create_pair(bell_dm(0))
        assert measure_qubit(qa, rng) == measure_qubit(qb, rng)
    for _ in range(50):
        qa, qb = create_pair(bell_dm(1))
        assert measure_qubit(qa, rng) != measure_qubit(qb, rng)


def test_discard_frees_qubit_and_keeps_partner_valid():
    qa, qb = create_pair(bell_dm(0))
    state = qa.state
    discard(qa)
    assert qa.state is None
    assert qb.state is state
    assert state.is_valid()
    # Partner is maximally mixed now.
    assert np.allclose(state.reduced_dm([qb]), np.eye(2) / 2, atol=1e-12)


def test_discard_idempotent():
    qa, qb = create_pair(bell_dm(0))
    discard(qa)
    discard(qa)
    assert qa.state is None


def test_averaged_swap_dm_perfect_inputs():
    result = averaged_swap_dm(bell_dm(0), bell_dm(0))
    assert bell_fidelity(result, 0) == pytest.approx(1.0)


def test_averaged_swap_dm_werner_matches_analytics():
    result = averaged_swap_dm(werner_dm(0.9), werner_dm(0.9))
    # Werner ⋆ Werner fidelity: F² + 3((1−F)/3)².
    expected = 0.9 ** 2 + 3 * ((0.1 / 3) ** 2)
    assert bell_fidelity(result, 0) == pytest.approx(expected, abs=1e-9)
    assert np.trace(result) == pytest.approx(1.0)


def test_averaged_swap_dm_with_gate_noise_is_worse():
    clean = averaged_swap_dm(werner_dm(0.95), werner_dm(0.95))
    noisy = averaged_swap_dm(werner_dm(0.95), werner_dm(0.95),
                             NoisyOpParams(two_qubit_gate_fidelity=0.99))
    assert bell_fidelity(noisy, 0) < bell_fidelity(clean, 0)


def test_averaged_swap_dm_with_readout_error_is_worse():
    clean = averaged_swap_dm(werner_dm(0.95), werner_dm(0.95))
    noisy = averaged_swap_dm(werner_dm(0.95), werner_dm(0.95),
                             NoisyOpParams(readout_error0=0.05, readout_error1=0.05))
    assert bell_fidelity(noisy, 0) < bell_fidelity(clean, 0)


def test_teleportation_moves_arbitrary_state():
    rng = random.Random(6)
    for _ in range(10):
        # Random data qubit state.
        theta = rng.random() * np.pi
        data = Qubit()
        state = QState.ground(data)
        rotation = np.array([[np.cos(theta / 2), -np.sin(theta / 2)],
                             [np.sin(theta / 2), np.cos(theta / 2)]], dtype=complex)
        state.apply_unitary(rotation, [data])
        expected_vector = rotation @ np.array([1.0, 0.0], dtype=complex)

        near, far = create_pair(bell_dm(0))
        out = teleport(data, near, far, rng)
        dm = out.state.reduced_dm([out])
        fidelity = float(np.real(expected_vector.conj() @ dm @ expected_vector))
        assert fidelity == pytest.approx(1.0)


def test_apply_two_qubit_gate_merges_states():
    qa, qb = Qubit(), Qubit()
    QState.ground(qa), QState.ground(qb)
    apply_gate(qa, H)
    apply_two_qubit_gate(qa, qb, CNOT)
    assert qa.state is qb.state
    assert pair_fidelity(qa, qb, 0) == pytest.approx(1.0)


def test_noisy_op_params_depolar_probability_mapping():
    ops = NoisyOpParams(two_qubit_gate_fidelity=0.998)
    assert ops.two_qubit_depolar_prob == pytest.approx(0.0025)
    perfect = NoisyOpParams()
    assert perfect.two_qubit_depolar_prob == 0.0
    floor = NoisyOpParams(two_qubit_gate_fidelity=0.0)
    assert floor.two_qubit_depolar_prob == 1.0
