"""Coverage for small helpers not exercised elsewhere."""

import math

import pytest

from repro.core import RequestStatus, UserRequest
from repro.hardware import apply_pair_noise, stamp
from repro.netsim import Entity, Simulator
from repro.network.builder import build_chain_network
from repro.quantum import bell_dm, create_pair, pair_fidelity


class TestEntity:
    def test_defaults_and_helpers(self):
        sim = Simulator()
        entity = Entity(sim, "thing")
        assert entity.name == "thing"
        assert entity.now == 0.0
        fired = []
        entity.call_in(5.0, fired.append, "a")
        entity.call_at(7.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b"]

    def test_default_name_is_class_name(self):
        sim = Simulator()
        assert Entity(sim).name == "Entity"


class TestPairNoise:
    def test_apply_pair_noise_ages_both_halves(self):
        qa, qb = create_pair(bell_dm(0))
        stamp(qa, 0.0, math.inf, 1e6)
        stamp(qb, 0.0, math.inf, 1e6)
        apply_pair_noise(qa, qb, 1e6)
        # Both dephased: worse than one-sided aging.
        one_a, one_b = create_pair(bell_dm(0))
        stamp(one_a, 0.0, math.inf, 1e6)
        stamp(one_b, 0.0, math.inf, math.inf)
        apply_pair_noise(one_a, one_b, 1e6)
        assert pair_fidelity(qa, qb, 0) < pair_fidelity(one_a, one_b, 0)


class TestNetworkFacade:
    def test_run_until_complete_times_out_gracefully(self):
        net = build_chain_network(2, seed=61)
        circuit_id = net.establish_circuit("node0", "node1", 0.85)
        handle = net.submit(circuit_id, UserRequest(num_pairs=10 ** 9))
        net.run_until_complete([handle], timeout_s=0.5)
        assert handle.status == RequestStatus.ACTIVE  # not done, no hang

    def test_run_until_complete_handles_rejected(self):
        net = build_chain_network(2, seed=62)
        circuit_id = net.establish_circuit("node0", "node1", 0.85, max_eer=1.0)
        handle = net.submit(circuit_id, UserRequest(rate=100.0))
        assert handle.status == RequestStatus.REJECTED
        net.run_until_complete([handle], timeout_s=5.0)  # returns immediately

    def test_node_and_link_accessors(self):
        net = build_chain_network(2, seed=63)
        assert net.node("node0").name == "node0"
        link = net.link_between("node0", "node1")
        assert link is net.link_between("node1", "node0")
        with pytest.raises(KeyError):
            net.node("ghost")

    def test_route_of_unknown_circuit(self):
        net = build_chain_network(2, seed=64)
        with pytest.raises(KeyError):
            net.route_of("ghost")

    def test_teardown_unknown_circuit_is_noop(self):
        net = build_chain_network(2, seed=65)
        net.teardown_circuit("ghost")  # no crash

    def test_establish_rejects_unreachable_fidelity(self):
        from repro.control.routing import RouteError

        net = build_chain_network(3, seed=66)
        with pytest.raises(RouteError):
            net.establish_circuit("node0", "node2", 0.995)


class TestQnpApi:
    def test_submit_at_tail_rejected(self):
        net = build_chain_network(2, seed=67)
        circuit_id = net.establish_circuit("node0", "node1", 0.85)
        with pytest.raises(ValueError):
            net.qnps["node1"].submit(circuit_id, UserRequest(num_pairs=1))

    def test_duplicate_circuit_install_rejected(self):
        net = build_chain_network(2, seed=68)
        circuit_id = net.establish_circuit("node0", "node1", 0.85)
        entry = net.qnps["node0"].circuit(circuit_id).entry
        with pytest.raises(ValueError):
            net.qnps["node0"].install_circuit(entry)

    def test_cancel_unknown_request_is_noop(self):
        net = build_chain_network(2, seed=69)
        circuit_id = net.establish_circuit("node0", "node1", 0.85)
        net.qnps["node0"].cancel(circuit_id, "ghost")

    def test_cancel_queued_request_drops_it(self):
        net = build_chain_network(2, seed=70)
        circuit_id = net.establish_circuit("node0", "node1", 0.85,
                                           max_eer=10.0)
        net.submit(circuit_id, UserRequest(rate=9.0))
        queued = net.submit(circuit_id, UserRequest(rate=5.0))
        assert queued.status == RequestStatus.QUEUED
        net.qnps["node0"].cancel(circuit_id, queued.request_id)
        head_runtime = net.qnps["node0"].circuit(circuit_id)
        assert head_runtime.policer.queued == 0
