"""Integration tests for the link layer EGP over simulated hardware."""

import pytest

from repro.hardware import HeraldedConnection, NEAR_TERM, SIMULATION, SingleClickModel
from repro.linklayer import Link
from repro.netsim import S, Simulator
from repro.network import QuantumNode
from repro.quantum import BellIndex, pair_fidelity


def make_link(seed=1, params=SIMULATION, length_km=0.002, slice_attempts=100):
    sim = Simulator(seed=seed)
    node_a = QuantumNode(sim, "alice", params)
    node_b = QuantumNode(sim, "bob", params)
    model = SingleClickModel(params, HeraldedConnection.lab(length_km))
    link = Link(sim, "alice-bob", node_a, node_b, model, slice_attempts)
    node_a.attach_link(link, "bob")
    node_b.attach_link(link, "alice")
    inbox_a, inbox_b = [], []
    link.register_handler("alice", inbox_a.append)
    link.register_handler("bob", inbox_b.append)
    return sim, link, node_a, node_b, inbox_a, inbox_b


def drain(node, delivery):
    """Consume a delivered pair: free its slot so generation continues."""
    node.qmm.free(delivery.entanglement_id)


def test_generates_pairs_at_both_ends():
    sim, link, node_a, node_b, inbox_a, inbox_b = make_link()
    link.register_handler("alice", lambda d: (inbox_a.append(d), drain(node_a, d)))
    link.register_handler("bob", lambda d: (inbox_b.append(d), drain(node_b, d)))
    link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
    sim.run(until=1 * S)
    assert len(inbox_a) == len(inbox_b) > 5
    first_a, first_b = inbox_a[0], inbox_b[0]
    assert first_a.entanglement_id == first_b.entanglement_id
    assert first_a.bell_index == first_b.bell_index
    assert first_a.qubit is not first_b.qubit


def test_delivered_pairs_meet_min_fidelity():
    sim, link, node_a, node_b, inbox_a, inbox_b = make_link(seed=3)
    link.register_handler("alice", inbox_a.append)
    link.register_handler("bob", inbox_b.append)
    link.set_request("vc0", min_fidelity=0.95, lpr=50.0)
    sim.run(until=0.5 * S)
    assert inbox_a, "no pairs generated"
    for delivery_a, delivery_b in zip(inbox_a, inbox_b):
        fidelity = pair_fidelity(delivery_a.qubit, delivery_b.qubit,
                                 delivery_a.bell_index)
        assert fidelity >= 0.95 - 1e-6
        assert delivery_a.goodness >= 0.95
        assert delivery_a.bell_index in (BellIndex.PSI_PLUS, BellIndex.PSI_MINUS)
        drain(node_a, delivery_a)
        drain(node_b, delivery_b)
        sim.run(until=sim.now)  # let the link restart


def test_generation_stalls_when_memory_full():
    # Capacity is 2 comm qubits per link end; without consuming pairs the
    # link must stop after two.
    sim, link, node_a, node_b, inbox_a, inbox_b = make_link(seed=5)
    link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
    sim.run(until=2 * S)
    assert len(inbox_a) == 2
    assert node_a.qmm.free_comm("alice-bob") == 0
    # Freeing one pair resumes generation.
    drain(node_a, inbox_a[0])
    drain(node_b, inbox_b[0])
    sim.run(until=4 * S)
    assert len(inbox_a) >= 3


def test_mean_generation_time_matches_model():
    sim, link, node_a, node_b, inbox_a, inbox_b = make_link(seed=7)
    times = []
    last = [0.0]

    def consume(delivery):
        times.append(sim.now - last[0])
        last[0] = sim.now
        drain(node_a, delivery)

    link.register_handler("alice", consume)
    link.register_handler("bob", lambda d: drain(node_b, d))
    link.set_request("vc0", min_fidelity=0.95, lpr=50.0)
    sim.run(until=20 * S)
    alpha = link.model.alpha_for_fidelity(0.95)
    expected = link.model.expected_pair_time(alpha)
    measured = sum(times) / len(times)
    assert measured == pytest.approx(expected, rel=0.2)


def test_fidelity_rate_tradeoff_visible_end_to_end():
    results = {}
    for fidelity in (0.85, 0.95):
        sim, link, node_a, node_b, inbox_a, inbox_b = make_link(seed=11)
        link.register_handler("alice", lambda d, n=node_a: drain(n, d))
        count = []
        link.register_handler("bob", lambda d, n=node_b: (count.append(1), drain(n, d)))
        link.set_request("vc0", min_fidelity=fidelity, lpr=50.0)
        sim.run(until=5 * S)
        results[fidelity] = len(count)
    assert results[0.85] > 1.5 * results[0.95]


def test_two_purposes_share_link_time():
    sim, link, node_a, node_b, inbox_a, inbox_b = make_link(seed=13)
    counts = {"vc0": 0, "vc1": 0}

    def consume(delivery):
        counts[delivery.purpose_id] += 1
        drain(node_a, delivery)

    link.register_handler("alice", consume)
    link.register_handler("bob", lambda d: drain(node_b, d))
    link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
    link.set_request("vc1", min_fidelity=0.9, lpr=50.0)
    sim.run(until=10 * S)
    total = counts["vc0"] + counts["vc1"]
    assert total > 20
    assert counts["vc0"] == pytest.approx(counts["vc1"], rel=0.35)


def test_equal_time_share_means_unequal_pair_counts():
    """A higher-fidelity circuit gets the same time but fewer pairs."""
    sim, link, node_a, node_b, inbox_a, inbox_b = make_link(seed=17)
    counts = {"hi": 0, "lo": 0}

    def consume(delivery):
        counts[delivery.purpose_id] += 1
        drain(node_a, delivery)

    link.register_handler("alice", consume)
    link.register_handler("bob", lambda d: drain(node_b, d))
    link.set_request("hi", min_fidelity=0.95, lpr=50.0)
    link.set_request("lo", min_fidelity=0.85, lpr=50.0)
    sim.run(until=20 * S)
    assert counts["lo"] > 1.5 * counts["hi"]


def test_end_request_stops_generation():
    sim, link, node_a, node_b, inbox_a, inbox_b = make_link(seed=19)
    link.register_handler("alice", lambda d: drain(node_a, d))
    seen = []
    link.register_handler("bob", lambda d: (seen.append(1), drain(node_b, d)))
    link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
    sim.run(until=1 * S)
    assert seen
    link.end_request("vc0")
    count_at_stop = len(seen)
    sim.run(until=3 * S)
    # At most one in-flight round can still complete.
    assert len(seen) <= count_at_stop + 1
    assert not link.has_request("vc0")


def test_set_request_updates_existing():
    sim, link, *_ = make_link()
    link.set_request("vc0", min_fidelity=0.9, lpr=10.0)
    link.set_request("vc0", min_fidelity=0.85, lpr=20.0)
    assert link.has_request("vc0")


def test_infeasible_fidelity_raises():
    sim, link, *_ = make_link()
    with pytest.raises(ValueError):
        link.set_request("vc0", min_fidelity=0.9999, lpr=10.0)


def test_max_lpr_estimate():
    sim, link, *_ = make_link()
    # ~10 ms per pair at F=0.95 → on the order of 100 pairs/s.
    assert 30 < link.max_lpr(0.95) < 300
    assert link.max_lpr(0.85) > link.max_lpr(0.95)


def test_near_term_serializes_device():
    """With one comm qubit and serial devices, generation still works."""
    sim = Simulator(seed=23)
    node_a = QuantumNode(sim, "a", NEAR_TERM)
    node_b = QuantumNode(sim, "b", NEAR_TERM)
    model = SingleClickModel(NEAR_TERM, HeraldedConnection.telecom(25.0))
    link = Link(sim, "a-b", node_a, node_b, model, slice_attempts=1000)
    node_a.attach_link(link, "b")
    node_b.attach_link(link, "a")
    seen = []

    def consume_b(delivery):
        seen.append(delivery)
        node_b.qmm.free(delivery.entanglement_id)

    link.register_handler("a", lambda d: node_a.qmm.free(d.entanglement_id))
    link.register_handler("b", consume_b)
    link.set_request("vc0", min_fidelity=0.7, lpr=1.0)
    sim.run(until=60 * S)
    assert len(seen) >= 2


def _run_telemetry(batched, seed=31, until=5 * S, script=None):
    """Full delivery trace of one link run; ``script`` mutates mid-run."""
    sim, link, node_a, node_b, inbox_a, inbox_b = make_link(seed=seed)
    link.batched = batched
    trace = []

    def consume(end, node):
        def handler(delivery):
            trace.append((end, sim.now, delivery.entanglement_id,
                          int(delivery.bell_index), delivery.purpose_id,
                          round(delivery.goodness, 12)))
            drain(node, delivery)
        return handler

    link.register_handler("alice", consume("a", node_a))
    link.register_handler("bob", consume("b", node_b))
    link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
    if script:
        script(sim, link)
    sim.run(until=until)
    return (trace, link.attempts_made, link.pairs_generated,
            link.busy_time, sim.now, sim.events_processed > 0)


class TestBatchedScalarEquivalence:
    """The timeslot batcher must be an *optimisation*: byte-identical
    delivery telemetry to the event-per-round scalar path for the same
    seed, including around every mid-chain interrupt (the settle path)."""

    def test_steady_state_trace_identical(self):
        batched = _run_telemetry(True)
        scalar = _run_telemetry(False)
        assert batched[:-1] == scalar[:-1]
        assert batched[0], "no pairs delivered"

    def test_trace_identical_across_seeds(self):
        for seed in (1, 7, 12):
            assert _run_telemetry(True, seed=seed)[:4] \
                == _run_telemetry(False, seed=seed)[:4]

    def test_mid_run_set_request_settles_chain(self):
        # A second purpose arriving mid-chain interrupts the batcher at an
        # arbitrary (non-boundary) time; the settle path must replay the
        # in-flight slice exactly as the scalar engine would.
        def script(sim, link):
            sim.schedule(0.23 * S,
                         lambda: link.set_request("vc1", min_fidelity=0.9,
                                                  lpr=50.0))

        batched = _run_telemetry(True, script=script)
        scalar = _run_telemetry(False, script=script)
        assert batched[:-1] == scalar[:-1]
        purposes = {entry[4] for entry in batched[0]}
        assert purposes == {"vc0", "vc1"}

    def test_mid_run_end_request_settles_chain(self):
        def script(sim, link):
            sim.schedule(0.31 * S, link.end_request, "vc0")

        batched = _run_telemetry(True, script=script)
        scalar = _run_telemetry(False, script=script)
        assert batched[:-1] == scalar[:-1]

    def test_wrr_two_purposes_identical(self):
        # Multiple eligible requests exercise the shadow virtual-time
        # replay inside the chain pre-computation.
        def script(sim, link):
            link.set_request("vc1", min_fidelity=0.85, lpr=50.0)

        batched = _run_telemetry(True, seed=41, script=script)
        scalar = _run_telemetry(False, seed=41, script=script)
        assert batched[:-1] == scalar[:-1]

    def test_batched_uses_fewer_events(self):
        sims = {}
        for batched in (True, False):
            sim, link, node_a, node_b, *_ = make_link(seed=51)
            link.batched = batched
            link.register_handler("alice", lambda d, n=node_a: drain(n, d))
            link.register_handler("bob", lambda d, n=node_b: drain(n, d))
            link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
            sim.run(until=5 * S)
            sims[batched] = sim.events_processed
        assert sims[True] < sims[False]


def test_statistics_counters():
    sim, link, node_a, node_b, inbox_a, inbox_b = make_link(seed=29)
    link.register_handler("alice", lambda d: drain(node_a, d))
    link.register_handler("bob", lambda d: drain(node_b, d))
    link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
    sim.run(until=1 * S)
    assert link.pairs_generated > 0
    assert link.attempts_made >= link.pairs_generated
    assert 0 < link.busy_time <= 1 * S
