"""Unit tests for classical channels."""

import pytest

from repro.netsim import (
    ClassicalChannel,
    LossyChannel,
    MS,
    Simulator,
    fibre_delay,
    fibre_transmissivity,
)


def make_channel(sim, **kwargs):
    channel = ClassicalChannel(sim, **kwargs)
    inbox_a, inbox_b = [], []
    channel.ends[0].connect(inbox_a.append)
    channel.ends[1].connect(inbox_b.append)
    return channel, inbox_a, inbox_b


def test_message_arrives_with_propagation_delay():
    sim = Simulator()
    channel, _, inbox_b = make_channel(sim, length_km=2.0)
    channel.ends[0].send("hello")
    sim.run()
    assert inbox_b == ["hello"]
    assert sim.now == pytest.approx(fibre_delay(2.0))


def test_bidirectional_delivery():
    sim = Simulator()
    channel, inbox_a, inbox_b = make_channel(sim, length_km=1.0)
    channel.ends[0].send("to-b")
    channel.ends[1].send("to-a")
    sim.run()
    assert inbox_a == ["to-a"]
    assert inbox_b == ["to-b"]


def test_in_order_delivery():
    sim = Simulator()
    channel, _, inbox_b = make_channel(sim, length_km=5.0)
    for i in range(20):
        sim.schedule(i * 10.0, channel.ends[0].send, i)
    sim.run()
    assert inbox_b == list(range(20))


def test_processing_delay_added():
    sim = Simulator()
    channel, _, inbox_b = make_channel(sim, length_km=0.0, processing_delay=3 * MS)
    received_at = []
    channel.ends[1].connect(lambda m: received_at.append(sim.now))
    channel.ends[0].send("x")
    sim.run()
    assert received_at == [3 * MS]


def test_processing_delay_change_does_not_reorder():
    # If the delay shrinks mid-flight, later messages must not overtake
    # earlier ones (TCP stream semantics).
    sim = Simulator()
    channel, _, inbox_b = make_channel(sim, length_km=0.0, processing_delay=10 * MS)
    channel.ends[0].send("first")

    def shrink_and_send():
        channel.processing_delay = 0.0
        channel.ends[0].send("second")

    sim.schedule(1 * MS, shrink_and_send)
    sim.run()
    assert inbox_b == ["first", "second"]


def test_send_without_receiver_raises():
    sim = Simulator()
    channel = ClassicalChannel(sim)
    channel.ends[0].send("x")
    with pytest.raises(RuntimeError):
        sim.run()


def test_message_counter():
    sim = Simulator()
    channel, _, _ = make_channel(sim)
    channel.ends[0].send(1)
    channel.ends[1].send(2)
    sim.run()
    assert channel.messages_sent == 2


def test_lossy_channel_drops_messages():
    sim = Simulator(seed=3)
    channel = LossyChannel(sim, loss_probability=0.5)
    inbox = []
    channel.ends[1].connect(inbox.append)
    channel.ends[0].connect(lambda m: None)
    for i in range(200):
        sim.schedule(float(i), channel.ends[0].send, i)
    sim.run()
    assert 0 < len(inbox) < 200
    assert channel.messages_dropped == 200 - len(inbox)
    # Delivered subsequence stays ordered.
    assert inbox == sorted(inbox)


def test_lossy_channel_validates_probability():
    sim = Simulator()
    with pytest.raises(ValueError):
        LossyChannel(sim, loss_probability=1.5)


def test_fibre_transmissivity_values():
    # 5 dB/km lab fibre: 1 km → 10^-0.5.
    assert fibre_transmissivity(1.0, 5.0) == pytest.approx(10 ** -0.5)
    # 25 km telecom fibre at 0.5 dB/km → 10^-1.25.
    assert fibre_transmissivity(25.0, 0.5) == pytest.approx(10 ** -1.25)
