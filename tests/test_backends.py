"""Property tests pinning the Bell-diagonal backend to the exact engine.

The ``bell`` formalism claims exactness on the QNP hot path (Bell-diagonal
states under dephasing, depolarizing gate noise, entanglement swaps and
Pauli-basis measurements).  These tests enforce that claim against the
density-matrix engine and the closed forms of ``repro.quantum.analytic``,
plus the regression guarantees of the hot-path caches (memoized Kraus
operators and transpose permutations must never be mutated).
"""

import math
import random

import numpy as np
import pytest

from repro.quantum import analytic
from repro.quantum.backends import (
    BellDiagonalBackend,
    DensityMatrixBackend,
    FORMALISMS,
    get_backend,
)
from repro.quantum.bell import BellIndex, swap_combine
from repro.quantum.bellstate import BellPairState
from repro.quantum.channels import (
    decoherence_kraus,
    dephasing_kraus,
    depolarizing_kraus,
    two_qubit_depolarizing_kraus,
)
from repro.quantum.fidelity import pair_fidelity
from repro.quantum.operations import (
    NoisyOpParams,
    PERFECT_OPS,
    apply_gate,
    bell_state_measurement,
    measure_qubit,
    pauli_correct,
)
from repro.quantum.states import QState, _apply_left
from repro.quantum.gates import rx

WEIGHTS = (0.8, 0.1, 0.06, 0.04)

#: Gate noise without readout errors: the post-swap corrected fidelity is
#: then outcome-independent, so both engines must agree deterministically.
NOISY_GATES = NoisyOpParams(two_qubit_gate_fidelity=0.99,
                            single_qubit_gate_fidelity=0.995)


def _swap_chain_fidelity(backend, ops, elapsed=2e9, t2=60e9) -> float:
    """End-to-end fidelity of a 4-node swap chain with dephasing memory."""
    rng = random.Random(11)
    pairs = [backend.create_pair_from_weights(WEIGHTS) for _ in range(3)]
    # Every qubit idles in dephasing memory before its swap (T1 disabled so
    # both formalisms are exact).
    for qubit_a, qubit_b in pairs:
        qubit_a.state.apply_decoherence(elapsed, math.inf, t2, qubit_a)
        qubit_b.state.apply_decoherence(elapsed, math.inf, t2, qubit_b)
    outcome_1 = bell_state_measurement(pairs[0][1], pairs[1][0], rng, ops)
    outcome_2 = bell_state_measurement(pairs[1][1], pairs[2][0], rng, ops)
    # Lazy tracking: fold both outcomes into one frame correction at the end.
    pauli_correct(pairs[2][1], swap_combine(outcome_1, outcome_2, 0), ops)
    return pair_fidelity(pairs[0][0], pairs[2][1], 0)


def test_backend_registry():
    assert set(FORMALISMS) >= {"dm", "bell"}
    assert isinstance(get_backend("dm"), DensityMatrixBackend)
    assert isinstance(get_backend("bell"), BellDiagonalBackend)
    assert get_backend(None).name == "dm"
    backend = get_backend("bell")
    assert get_backend(backend) is backend
    with pytest.raises(ValueError, match="unknown state formalism"):
        get_backend("tensor-network")


def test_chain_fidelity_agreement_perfect_ops():
    fid_dm = _swap_chain_fidelity(get_backend("dm"), PERFECT_OPS)
    fid_bell = _swap_chain_fidelity(get_backend("bell"), PERFECT_OPS)
    assert fid_bell == pytest.approx(fid_dm, abs=1e-6)
    # And both match the closed form: dephase each link, then XOR-convolve.
    expected = analytic.chain_weights(
        analytic.dephased_weights(WEIGHTS, 2e9, 60e9, both_sides=True), 3)[0]
    assert fid_bell == pytest.approx(expected, abs=1e-9)


def test_chain_fidelity_agreement_noisy_gates():
    """The acceptance property: a 4-node swap chain with dephasing memory
    and noisy gates lands on the same end-to-end fidelity in both
    formalisms (within 1e-6), for several memory/noise settings."""
    for elapsed, t2 in ((0.0, 60e9), (1e9, 60e9), (5e9, 1.46e9)):
        fid_dm = _swap_chain_fidelity(get_backend("dm"), NOISY_GATES,
                                      elapsed, t2)
        fid_bell = _swap_chain_fidelity(get_backend("bell"), NOISY_GATES,
                                        elapsed, t2)
        assert fid_bell == pytest.approx(fid_dm, abs=1e-6), (elapsed, t2)


def test_dephased_storage_agreement():
    for backend_name in FORMALISMS:
        backend = get_backend(backend_name)
        qubit_a, qubit_b = backend.create_pair_from_weights(
            analytic.werner_weights(0.93))
        for qubit in (qubit_a, qubit_b):
            qubit.state.apply_decoherence(3e9, math.inf, 60e9, qubit)
        expected = analytic.fidelity_after_storage(0.93, 3e9, 60e9,
                                                   both_sides=True)
        assert pair_fidelity(qubit_a, qubit_b, 0) == pytest.approx(
            expected, abs=1e-9), backend_name


def test_qber_agreement():
    """Measured disagreement rates match the analytic QBER in Z and X for
    both backends (binomial tolerance)."""
    trials = 3000
    for basis, qber in (("Z", analytic.qber_z(WEIGHTS)),
                        ("X", analytic.qber_x(WEIGHTS))):
        for backend_name in FORMALISMS:
            rng = random.Random(17)
            backend = get_backend(backend_name)
            errors = 0
            for _ in range(trials):
                qubit_a, qubit_b = backend.create_pair_from_weights(WEIGHTS)
                if measure_qubit(qubit_a, rng, basis) != \
                        measure_qubit(qubit_b, rng, basis):
                    errors += 1
            tolerance = 4.0 * math.sqrt(qber * (1 - qber) / trials)
            assert abs(errors / trials - qber) < tolerance, (basis,
                                                             backend_name)


def test_measurement_collapses_partner_exactly():
    """After one half is measured, the partner holds the exact conditional
    single-qubit state in the measured basis."""
    qubit_a, qubit_b = get_backend("bell").create_pair_from_weights(WEIGHTS)
    rng = random.Random(3)
    bit = measure_qubit(qubit_a, rng, "Z")
    assert qubit_a.state is None
    partner_state = qubit_b.state
    assert isinstance(partner_state, QState)
    flip = analytic.qber_z(WEIGHTS)
    expected = np.diag([1 - flip, flip] if bit == 0 else [flip, 1 - flip])
    assert np.allclose(partner_state.dm, expected, atol=1e-12)


def test_promotion_on_exotic_operations():
    """Operations outside the Bell-diagonal family promote to the exact
    engine transparently — same handles, same fidelity."""
    qubit_a, qubit_b = get_backend("bell").create_pair_from_weights(WEIGHTS)
    assert isinstance(qubit_a.state, BellPairState)
    apply_gate(qubit_a, rx(0.3))
    assert isinstance(qubit_a.state, QState)
    assert qubit_a.state is qubit_b.state
    # Undo the rotation: the original weights must survive the round trip.
    apply_gate(qubit_a, rx(-0.3))
    for index, weight in enumerate(WEIGHTS):
        assert pair_fidelity(qubit_a, qubit_b, index) == pytest.approx(
            weight, abs=1e-9)


def test_remove_leaves_partner_maximally_mixed():
    qubit_a, qubit_b = get_backend("bell").create_pair_from_weights(WEIGHTS)
    qubit_a.state.remove(qubit_a)
    assert qubit_a.state is None
    assert np.allclose(qubit_b.state.dm, np.eye(2) / 2.0)


def test_bell_pauli_frame_permutes_weights():
    qubit_a, qubit_b = get_backend("bell").create_pair_from_weights(WEIGHTS)
    for frame in range(4):
        expected_index = frame  # X^b Z^a maps B0 weight onto B_frame
        qubit_a, qubit_b = get_backend("bell").create_pair_from_weights(
            analytic.werner_weights(0.9))
        pauli_correct(qubit_b, frame)
        assert pair_fidelity(qubit_a, qubit_b, expected_index) == \
            pytest.approx(0.9, abs=1e-12)


def test_swap_outcomes_uniform_and_tracked():
    """BSM outcomes are uniform and the tracked frame is consistent: the
    corrected fidelity never depends on the sampled outcome."""
    rng = random.Random(23)
    seen = set()
    fidelities = set()
    for _ in range(64):
        pair_one = get_backend("bell").create_pair_from_weights(WEIGHTS)
        pair_two = get_backend("bell").create_pair_from_weights(WEIGHTS)
        outcome = bell_state_measurement(pair_one[1], pair_two[0], rng)
        seen.add(outcome)
        pauli_correct(pair_two[1], outcome)
        fidelities.add(round(pair_fidelity(pair_one[0], pair_two[1], 0), 12))
    assert seen == {0, 1, 2, 3}
    assert len(fidelities) == 1
    assert fidelities.pop() == pytest.approx(
        analytic.swap_weights(WEIGHTS, WEIGHTS)[0], abs=1e-12)


# ----------------------------------------------------------------------
# Hot-path cache regressions
# ----------------------------------------------------------------------

def test_cached_kraus_operators_are_shared_and_immutable():
    for build, args in ((dephasing_kraus, (0.2,)),
                        (depolarizing_kraus, (0.1,)),
                        (two_qubit_depolarizing_kraus, (0.05,)),
                        (decoherence_kraus, (1e6, 3.6e12, 6e10))):
        first = build(*args)
        second = build(*args)
        assert first is second, build.__name__
        for op in first:
            assert not op.flags.writeable
            with pytest.raises(ValueError):
                op[0, 0] = 99.0


def test_cached_kraus_survive_channel_application():
    """Applying a cached channel must not corrupt the cached operators."""
    ops_before = [op.copy() for op in decoherence_kraus(2e6, 3.6e12, 6e10)]
    for _ in range(3):
        qubit_a, qubit_b = get_backend("dm").create_pair_from_weights(WEIGHTS)
        state = qubit_a.state
        state.apply_channel(decoherence_kraus(2e6, 3.6e12, 6e10), [qubit_a])
        state.measure(qubit_a, random.Random(1))
    for before, after in zip(ops_before, decoherence_kraus(2e6, 3.6e12, 6e10)):
        assert np.array_equal(before, after)


def test_cached_permutations_are_correct():
    """The memoized transpose permutations reproduce the direct contraction
    for every (n, targets) pair used by the engine."""
    rng = np.random.default_rng(5)
    for n in (1, 2, 3, 4):
        dm = rng.normal(size=(2 ** n, 2 ** n)) \
            + 1j * rng.normal(size=(2 ** n, 2 ** n))
        op = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        for target in range(n):
            expanded = [np.eye(2, dtype=complex)] * n
            expanded[target] = op
            full = expanded[0]
            for factor in expanded[1:]:
                full = np.kron(full, factor)
            direct = full @ dm
            via_engine = _apply_left(dm, op, [target], n)
            assert np.allclose(direct, via_engine, atol=1e-10), (n, target)


def test_produced_dm_memoized_and_read_only():
    from repro.hardware import HeraldedConnection, SIMULATION, SingleClickModel

    model = SingleClickModel(SIMULATION, HeraldedConnection.lab(0.002))
    dm_one = model.produced_dm(0.05, BellIndex.PSI_PLUS)
    dm_two = model.produced_dm(0.05, BellIndex.PSI_PLUS)
    assert dm_one is dm_two
    assert not dm_one.flags.writeable
    with pytest.raises(ValueError):
        dm_one[0, 0] = 1.0
    weights = model.produced_weights(0.05, BellIndex.PSI_PLUS)
    assert weights is model.produced_weights(0.05, BellIndex.PSI_PLUS)
    assert not weights.flags.writeable
    # The weights are the exact Bell diagonal of the produced dm.
    from repro.quantum.bell import bell_diagonal_weights

    assert np.allclose(weights, bell_diagonal_weights(dm_one), atol=1e-12)
    # Distinct parameters get distinct entries.
    assert model.produced_dm(0.06, BellIndex.PSI_MINUS) is not dm_one


def test_formalism_threads_through_the_stack():
    """The knob reaches every layer and the full stack delivers pairs whose
    oracle fidelity is a plain weight lookup."""
    from repro.core.requests import UserRequest
    from repro.network.builder import build_chain_network

    net = build_chain_network(3, seed=5, formalism="bell")
    assert net.formalism == "bell"
    for node in net.nodes.values():
        assert node.backend.name == "bell"
        assert node.qmm.formalism == "bell"
    for link in net.links.values():
        assert link.backend.name == "bell"
    for qnp in net.qnps.values():
        assert qnp.formalism == "bell"
    circuit_id = net.establish_circuit("node0", "node2", 0.8)
    handle = net.submit(circuit_id, UserRequest(num_pairs=2),
                        record_fidelity=True)
    net.run_until_complete([handle], timeout_s=120.0)
    assert len(handle.matched_pairs) == 2
    for matched in handle.matched_pairs:
        assert 0.5 < matched.fidelity <= 1.0


def test_alpha_for_fidelity_cached_and_unchanged():
    from repro.hardware import HeraldedConnection, SIMULATION, SingleClickModel

    model = SingleClickModel(SIMULATION, HeraldedConnection.lab(0.002))
    alpha = model.alpha_for_fidelity(0.9)
    assert model.alpha_for_fidelity(0.9) == alpha
    assert model.fidelity(alpha) >= 0.9
    # The cached scan agrees with the scalar fidelity formula on the grid.
    grid, fidelities = model._fidelity_grid
    sampled = [0, 57, 133, 250, 399]
    for index in sampled:
        assert fidelities[index] == pytest.approx(
            model.fidelity(float(grid[index])), abs=1e-12)
