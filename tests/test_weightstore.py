"""Property tests for the SoA Bell-weight store.

Every batch row operation must match the per-pair ``BellPairState``
channel it mirrors within 1e-9 — the store and the state object are two
views of the same closed forms, and these pins keep them from drifting.
Also pins the numpy-RNG block-draw equivalence the batched EGP relies on.
"""

import math

import numpy as np
import pytest

from repro.quantum.bellstate import (
    BellPairState, create_bell_diagonal_pair, swap_measure,
)
from repro.quantum.channels import decoherence_probabilities
from repro.quantum.weightstore import (
    STORE, XOR_IDX, BellWeightStore, decoherence_probabilities_array,
)

#: A spread of Bell-diagonal weight vectors (normalised below).
WEIGHT_SETS = [
    (1.0, 0.0, 0.0, 0.0),
    (0.97, 0.01, 0.01, 0.01),
    (0.7, 0.1, 0.15, 0.05),
    (0.25, 0.25, 0.25, 0.25),
    (0.4, 0.3, 0.2, 0.1),
]


def _norm(weights):
    arr = np.asarray(weights, dtype=float)
    return arr / arr.sum()


def make_pairs():
    """One live pair per WEIGHT_SETS entry; returns (states, rows)."""
    states = []
    for i, weights in enumerate(WEIGHT_SETS):
        qubit_a, qubit_b = create_bell_diagonal_pair(
            _norm(weights), f"a{i}", f"b{i}")
        states.append(qubit_a.state)
    return states, np.array([state._row for state in states])


class TestRowLifecycle:
    def test_alloc_copies_and_release_recycles_lifo(self):
        store = BellWeightStore(capacity=4)
        weights = _norm((0.7, 0.1, 0.1, 0.1))
        row = store.alloc(weights)
        assert np.allclose(store.row(row), weights)
        assert store.live == 1
        store.release(row)
        assert store.live == 0
        assert store.alloc(weights) == row  # LIFO: freed row reused first

    def test_grow_preserves_live_rows(self):
        store = BellWeightStore(capacity=2)
        rows = [store.alloc(_norm(w)) for w in WEIGHT_SETS]
        assert store.capacity >= len(WEIGHT_SETS)
        for row, weights in zip(rows, WEIGHT_SETS):
            assert np.allclose(store.row(row), _norm(weights))
        assert store.peak_live == len(WEIGHT_SETS)

    def test_state_lifecycle_releases_rows(self):
        live_before = STORE.live
        states, _ = make_pairs()
        assert STORE.live == live_before + len(states)
        for state in states:
            state.remove(state.qubits[0])
        assert STORE.live == live_before

    def test_dropped_state_recovered_by_del(self):
        live_before = STORE.live
        qubit_a, _ = create_bell_diagonal_pair(_norm((1, 0, 0, 0)))
        state = qubit_a.state
        assert STORE.live == live_before + 1
        qubit_a.state = None
        state.qubits[1].state = None
        del state, qubit_a
        assert STORE.live == live_before


class TestBatchOpsMatchPerPair:
    """Each *_rows op vs the per-pair BellPairState channel, within 1e-9."""

    def _compare(self, batch_op, per_pair_op):
        states, rows = make_pairs()
        reference = []
        for state in states:
            per_pair_op(state)
            reference.append(state.weights.copy())
            state.remove(state.qubits[0])
        states, rows = make_pairs()
        batch_op(rows)
        got = STORE.get_rows(rows)
        np.testing.assert_allclose(got, np.array(reference), atol=1e-9)
        for state in states:
            state.remove(state.qubits[0])

    @pytest.mark.parametrize("frame", [0, 1, 2, 3])
    def test_pauli_rows(self, frame):
        self._compare(
            lambda rows: STORE.pauli_rows(rows, frame),
            lambda s: s.apply_pauli(frame, s.qubits[0]))

    @pytest.mark.parametrize("p", [0.0, 0.02, 0.37])
    def test_dephase_rows(self, p):
        self._compare(
            lambda rows: STORE.dephase_rows(rows, p),
            lambda s: s.apply_dephasing(p, s.qubits[0]))

    @pytest.mark.parametrize("p", [0.0, 0.01, 0.3])
    def test_depolarize_rows(self, p):
        self._compare(
            lambda rows: STORE.depolarize_rows(rows, p),
            lambda s: s.apply_depolarizing(p, s.qubits[0]))

    @pytest.mark.parametrize("p", [0.0, 0.05, 0.4])
    def test_two_qubit_depolarize_rows(self, p):
        self._compare(
            lambda rows: STORE.two_qubit_depolarize_rows(rows, p),
            lambda s: s.apply_two_qubit_depolarizing(p))

    @pytest.mark.parametrize("t1,t2", [
        (3.6e12, 6e10),               # the paper's NV memory
        (math.inf, 6e10),             # pure dephasing
        (math.inf, math.inf),         # perfect memory: no-op
    ])
    def test_decohere_rows(self, t1, t2):
        elapsed = 5e6
        self._compare(
            lambda rows: STORE.decohere_rows(rows, elapsed, t1, t2),
            lambda s: s.apply_decoherence(elapsed, t1, t2, s.qubits[0]))

    def test_decohere_rows_per_row_elapsed(self):
        states, rows = make_pairs()
        elapsed = np.array([1e6 * (i + 1) for i in range(len(states))])
        reference = []
        for state, dt in zip(states, elapsed):
            state.apply_decoherence(float(dt), 3.6e12, 6e10, state.qubits[0])
            reference.append(state.weights.copy())
            state.remove(state.qubits[0])
        states, rows = make_pairs()
        STORE.decohere_rows(rows, elapsed, 3.6e12, 6e10)
        np.testing.assert_allclose(STORE.get_rows(rows),
                                   np.array(reference), atol=1e-9)
        for state in states:
            state.remove(state.qubits[0])

    @pytest.mark.parametrize("basis", ["Z", "X", "Y"])
    def test_error_probability_rows(self, basis):
        states, rows = make_pairs()
        reference = [state.error_probability(basis) for state in states]
        np.testing.assert_allclose(
            STORE.error_probability_rows(rows, basis), reference, atol=1e-9)
        for state in states:
            state.remove(state.qubits[0])

    @pytest.mark.parametrize("bell_index", [0, 1, 2, 3])
    def test_fidelity_rows(self, bell_index):
        states, rows = make_pairs()
        reference = [state.fidelity_to(bell_index) for state in states]
        np.testing.assert_allclose(
            STORE.fidelity_rows(rows, bell_index), reference, atol=1e-9)
        for state in states:
            state.remove(state.qubits[0])

    def test_bad_parameter_shape_rejected(self):
        states, rows = make_pairs()
        with pytest.raises(ValueError, match="shape"):
            STORE.dephase_rows(rows, np.array([0.1, 0.2]))
        for state in states:
            state.remove(state.qubits[0])


class _FixedRng:
    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


class TestSwapRows:
    @pytest.mark.parametrize("outcome", [0, 1, 2, 3])
    @pytest.mark.parametrize("p2,p1", [(0.0, 0.0), (0.02, 0.005)])
    def test_swap_measure_matches_manual_convolution(self, outcome, p2, p1):
        wa = _norm((0.9, 0.04, 0.04, 0.02))
        wb = _norm((0.8, 0.1, 0.05, 0.05))
        qa0, qa1 = create_bell_diagonal_pair(wa)
        qb0, qb1 = create_bell_diagonal_pair(wb)
        # Manual closed form: XOR-convolution + gate noise + outcome frame.
        convolved = np.array([
            sum(wa[j] * wb[k ^ j] for j in range(4)) for k in range(4)])
        convolved = ((1 - 16 * p2 / 15) * convolved + (16 * p2 / 15) / 4)
        mix = 2 * p1 / 3
        convolved = (1 - mix) * convolved + mix * convolved[XOR_IDX[2]]
        expected = convolved[XOR_IDX[outcome]]

        got_outcome = swap_measure(qa1, qb0, _FixedRng(outcome / 4.0),
                                   two_qubit_depolar=p2,
                                   single_qubit_depolar=p1)
        assert got_outcome == outcome
        new_state = qa0.state
        assert isinstance(new_state, BellPairState)
        assert new_state is qb1.state
        np.testing.assert_allclose(new_state.weights, expected, atol=1e-9)
        assert new_state.trace() == pytest.approx(1.0, abs=1e-9)
        new_state.remove(qa0)


class TestDecoherenceArray:
    def test_matches_scalar_closed_form(self):
        for elapsed in (0.0, 1e3, 5e6, 2e9):
            for t1, t2 in ((3.6e12, 6e10), (math.inf, 6e10),
                           (1e9, 1e9), (math.inf, math.inf)):
                gamma, dephase = decoherence_probabilities_array(
                    elapsed, t1, t2)
                ref_gamma, ref_dephase = decoherence_probabilities(
                    elapsed, t1, t2)
                assert float(gamma) == pytest.approx(ref_gamma, abs=1e-12)
                assert float(dephase) == pytest.approx(ref_dephase, abs=1e-12)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            decoherence_probabilities_array(-1.0, 1e9, 1e9)


class TestRngBlockEquivalence:
    """The batched EGP refills a 256-draw uniform block; block draws must
    equal the same generator's sequential draws or batching would change
    the trajectory."""

    def test_block_equals_sequential(self):
        block = np.random.default_rng(1234).random(64)
        sequential = [np.random.default_rng(1234).random()
                      for _ in range(1)]  # first draw sanity
        assert block[0] == sequential[0]
        rng = np.random.default_rng(1234)
        one_by_one = np.array([rng.random() for _ in range(64)])
        np.testing.assert_array_equal(block, one_by_one)
