"""Tests for the quantum memory manager and device arbiter."""

import pytest

from repro.network import DeviceArbiter, QuantumMemoryManager, acquire_ordered, release_all
from repro.netsim import Simulator
from repro.quantum import bell_dm, create_pair


class TestSlotPools:
    def test_register_and_capacity(self):
        qmm = QuantumMemoryManager("n")
        qmm.register_link("l1", 2)
        assert qmm.free_comm("l1") == 2

    def test_duplicate_link_rejected(self):
        qmm = QuantumMemoryManager("n")
        qmm.register_link("l1", 2)
        with pytest.raises(ValueError):
            qmm.register_link("l1", 2)

    def test_unknown_link_rejected(self):
        qmm = QuantumMemoryManager("n")
        with pytest.raises(KeyError):
            qmm.free_comm("nope")

    def test_acquire_until_exhausted(self):
        qmm = QuantumMemoryManager("n")
        qmm.register_link("l1", 2)
        s1 = qmm.try_acquire_comm("l1")
        s2 = qmm.try_acquire_comm("l1")
        assert s1 is not None and s2 is not None
        assert qmm.try_acquire_comm("l1") is None
        assert qmm.free_comm("l1") == 0

    def test_release_restores_capacity(self):
        qmm = QuantumMemoryManager("n")
        qmm.register_link("l1", 1)
        slot = qmm.try_acquire_comm("l1")
        slot.release()
        assert qmm.free_comm("l1") == 1

    def test_pools_are_per_link(self):
        qmm = QuantumMemoryManager("n")
        qmm.register_link("l1", 1)
        qmm.register_link("l2", 1)
        assert qmm.try_acquire_comm("l1") is not None
        assert qmm.try_acquire_comm("l2") is not None

    def test_storage_pool(self):
        qmm = QuantumMemoryManager("n")
        qmm.configure_storage(1)
        slot = qmm.try_acquire_storage()
        assert slot is not None
        assert qmm.try_acquire_storage() is None
        slot.release()
        assert qmm.free_storage() == 1


class TestCorrelatorRegistry:
    def make(self):
        qmm = QuantumMemoryManager("n")
        qmm.register_link("l1", 2)
        qa, qb = create_pair(bell_dm(0))
        slot = qmm.try_acquire_comm("l1")
        correlator = ("l1", 0)
        slot.commit(qa, correlator)
        qmm.bind(correlator, qa)
        return qmm, correlator, qa

    def test_bind_and_get(self):
        qmm, correlator, qubit = self.make()
        assert qmm.get(correlator) is qubit
        assert qmm.get(("l1", 99)) is None

    def test_duplicate_bind_rejected(self):
        qmm, correlator, qubit = self.make()
        with pytest.raises(ValueError):
            qmm.bind(correlator, qubit)

    def test_free_releases_slot_and_notifies(self):
        qmm, correlator, qubit = self.make()
        freed_pools = []
        qmm.on_slot_freed(freed_pools.append)
        returned = qmm.free(correlator)
        assert returned is qubit
        assert qmm.get(correlator) is None
        assert qmm.free_comm("l1") == 2
        assert freed_pools == ["l1"]

    def test_free_unknown_correlator_is_none(self):
        qmm, _, _ = self.make()
        assert qmm.free(("l1", 1234)) is None

    def test_release_qubit_without_slot_is_noop(self):
        qmm = QuantumMemoryManager("n")
        qa, _ = create_pair(bell_dm(0))
        qmm.release_qubit(qa)  # no crash

    def test_rebind_slot_moves_pools(self):
        qmm, correlator, qubit = self.make()
        qmm.configure_storage(1)
        freed = []
        qmm.on_slot_freed(freed.append)
        storage_slot = qmm.try_acquire_storage()
        qmm.rebind_slot(qubit, storage_slot)
        assert qmm.free_comm("l1") == 2
        assert freed == ["l1"]
        # Correlator still resolves to the qubit.
        assert qmm.get(correlator) is qubit
        # Freeing now releases the storage slot.
        qmm.free(correlator)
        assert qmm.free_storage() == 1

    def test_stats(self):
        qmm, _, _ = self.make()
        stats = qmm.stats()
        assert stats["l1"] == (1, 2)
        assert stats["storage"] == (0, 0)


class TestArbiter:
    def test_parallel_mode_grants_immediately(self):
        sim = Simulator()
        arbiter = DeviceArbiter(sim, serialize=False)
        grants = []
        arbiter.acquire(lambda: grants.append(sim.now))
        arbiter.acquire(lambda: grants.append(sim.now))
        sim.run()
        assert grants == [0.0, 0.0]
        arbiter.release()  # no-op in parallel mode

    def test_serial_mode_queues(self):
        sim = Simulator()
        arbiter = DeviceArbiter(sim, serialize=True)
        order = []

        def first():
            order.append("first")
            sim.schedule(100.0, lambda: (order.append("first-done"), arbiter.release()))

        arbiter.acquire(first)
        arbiter.acquire(lambda: order.append("second"))
        sim.run()
        assert order == ["first", "first-done", "second"]

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        arbiter = DeviceArbiter(sim, serialize=True)
        with pytest.raises(RuntimeError):
            arbiter.release()

    def test_acquire_ordered_is_deadlock_free(self):
        sim = Simulator()
        arbiter_a = DeviceArbiter(sim, name="a", serialize=True)
        arbiter_b = DeviceArbiter(sim, name="b", serialize=True)
        completed = []

        def hold_and_release(tag, pair):
            def on_granted():
                completed.append(tag)
                sim.schedule(10.0, lambda: release_all(pair))
            acquire_ordered(pair, on_granted)

        # Two workers racing for (a, b) in opposite nominal orders.
        hold_and_release("w1", [arbiter_a, arbiter_b])
        hold_and_release("w2", [arbiter_b, arbiter_a])
        sim.run()
        assert sorted(completed) == ["w1", "w2"]
        assert not arbiter_a.busy and not arbiter_b.busy
