"""Light unit tests: message dataclasses and the Network facade internals."""

from repro.core.messages import Complete, Direction, Expire, Forward, Track
from repro.core.requests import DeliveryStatus, PairDelivery, RequestType
from repro.network.builder import MatchedPair, Network, _Submission
from repro.obs import MetricsRegistry
from repro.quantum import BellIndex


def bare_network():
    """A Network shell for matching-logic unit tests: no topology, just
    the attributes ``_match`` touches (metrics registry, no tracer)."""
    net = Network.__new__(Network)
    net.obs = MetricsRegistry()
    net.tracer = None
    return net


def make_forward(**overrides):
    fields = dict(
        circuit_id="vc0", request_id="r0", head_end_identifier=1,
        tail_end_identifier=2, request_type=RequestType.KEEP,
        measure_info=None, number_of_pairs=3, final_state=None, rate=0.0)
    fields.update(overrides)
    return Forward(**fields)


class TestMessages:
    def test_forward_defaults(self):
        forward = make_forward()
        assert forward.rate_based_only is False
        assert forward.epoch == 0
        assert forward.epoch_requests == ()

    def test_complete_carries_epoch(self):
        complete = Complete(circuit_id="vc0", request_id="r0",
                            head_end_identifier=1, tail_end_identifier=2,
                            rate=5.0, epoch=7, epoch_requests=("a",))
        assert complete.epoch == 7
        assert complete.epoch_requests == ("a",)

    def test_track_mutable_fields(self):
        track = Track(circuit_id="vc0", direction=Direction.DOWNSTREAM,
                      request_id="r0", head_end_identifier=1,
                      tail_end_identifier=2,
                      origin_correlator=("l", 0),
                      link_correlator=("l", 0),
                      outcome_state=BellIndex.PSI_PLUS, epoch=1)
        track.link_correlator = ("m", 4)
        track.outcome_state = BellIndex.PHI_MINUS
        assert track.origin_correlator == ("l", 0)

    def test_expire_direction(self):
        expire = Expire(circuit_id="vc0", direction=Direction.UPSTREAM,
                        origin_correlator=("l", 0))
        assert expire.direction.reverse is Direction.DOWNSTREAM


def make_delivery(pair_id, status=DeliveryStatus.CONFIRMED, qubit=None):
    return PairDelivery(request_id="r0", sequence=0, status=status,
                        qubit=qubit, measurement=None,
                        bell_state=BellIndex.PHI_PLUS, pair_id=pair_id,
                        t_created=0.0, t_delivered=1.0)


class TestSubmissionMatching:
    def test_matching_requires_both_ends(self):
        submission = _Submission(handle=None, record_fidelity=True)
        net = bare_network()  # matching logic only
        net._match(submission, make_delivery(("p", 0)), is_head=True)
        assert submission.matched == []
        net._match(submission, make_delivery(("p", 0)), is_head=False)
        assert len(submission.matched) == 1
        matched = submission.matched[0]
        assert isinstance(matched, MatchedPair)
        assert matched.fidelity is None  # no qubits attached
        assert matched.accepted

    def test_distinct_pair_ids_do_not_match(self):
        submission = _Submission(handle=None, record_fidelity=True)
        net = bare_network()
        net._match(submission, make_delivery(("p", 0)), is_head=True)
        net._match(submission, make_delivery(("p", 1)), is_head=False)
        assert submission.matched == []

    def test_matching_disabled_without_recording(self):
        submission = _Submission(handle=None, record_fidelity=False)
        net = bare_network()
        net._match(submission, make_delivery(("p", 0)), is_head=True)
        net._match(submission, make_delivery(("p", 0)), is_head=False)
        assert submission.matched == []

    def test_oracle_accepts_and_rejects(self):
        from repro.quantum import bell_dm, create_pair, werner_dm

        submission = _Submission(handle=None, record_fidelity=True,
                                 oracle_min_fidelity=0.9)
        net = bare_network()
        good_a, good_b = create_pair(bell_dm(0))
        net._match(submission, make_delivery(("p", 0), qubit=good_a),
                   is_head=True)
        net._match(submission, make_delivery(("p", 0), qubit=good_b),
                   is_head=False)
        bad_a, bad_b = create_pair(werner_dm(0.6))
        net._match(submission, make_delivery(("p", 1), qubit=bad_a),
                   is_head=True)
        net._match(submission, make_delivery(("p", 1), qubit=bad_b),
                   is_head=False)
        accepted = [m.accepted for m in submission.matched]
        assert accepted == [True, False]
        # Qubits were consumed after measurement to avoid state build-up.
        assert good_a.state is None and bad_b.state is None

    def test_pending_deliveries_not_matched(self):
        submission = _Submission(handle=None, record_fidelity=True)
        net = bare_network()
        net._on_head_delivery(submission,
                              make_delivery(("p", 0),
                                            status=DeliveryStatus.PENDING))
        assert submission._pending == {}
