"""Tests for the cutoff mechanism, EXPIRE propagation and decoherence.

These exercise the paper's core decoherence machinery (Sec 4.1): discard
records, expiry notifications to end-nodes, the end-node no-cutoff rule,
and the fidelity impact of short memory lifetimes.
"""

from repro.core import RequestStatus, UserRequest
from repro.hardware import SIMULATION
from repro.netsim.units import MS, S
from repro.network.builder import build_chain_network


def short_memory_net(t2_s=0.05, seed=1, num_nodes=3):
    """A chain on hardware with deliberately poor memory."""
    return build_chain_network(num_nodes, seed=seed,
                               params=SIMULATION.with_t2(t2_s * S))


class TestCutoffDiscards:
    def test_pairs_are_discarded_under_tight_cutoff(self):
        net = build_chain_network(3, seed=1)
        # Explicit 3 ms cutoff against ~5 ms mean generation: many discards.
        circuit_id = net.establish_circuit("node0", "node2", 0.8,
                                           cutoff_policy=3 * MS)
        handle = net.submit(circuit_id, UserRequest(num_pairs=3))
        net.run_until_complete([handle], timeout_s=300)
        middle = net.qnps["node1"]
        assert middle.pairs_discarded > 0
        assert handle.status == RequestStatus.COMPLETED

    def test_discarded_pairs_free_memory(self):
        net = build_chain_network(3, seed=2)
        circuit_id = net.establish_circuit("node0", "node2", 0.8,
                                           cutoff_policy=2 * MS)
        net.submit(circuit_id, UserRequest(num_pairs=5))
        net.run(until_s=5.0)
        # No leaked slots at the intermediate node: everything in use is
        # bounded by capacity and nothing is stuck.
        stats = net.node("node1").qmm.stats()
        for pool, (in_use, capacity) in stats.items():
            assert in_use <= capacity

    def test_expires_reach_end_nodes(self):
        net = build_chain_network(3, seed=3)
        circuit_id = net.establish_circuit("node0", "node2", 0.8,
                                           cutoff_policy=2 * MS)
        handle = net.submit(circuit_id, UserRequest(num_pairs=3))
        net.run_until_complete([handle], timeout_s=300)
        middle = net.qnps["node1"]
        head = net.qnps["node0"]
        tail = net.qnps["node2"]
        assert middle.expires_sent > 0
        # End-nodes dropped their halves on EXPIRE (never on a local timer).
        assert head.pairs_expired + tail.pairs_expired > 0

    def test_no_cutoff_mode_never_discards(self):
        net = build_chain_network(3, seed=4)
        circuit_id = net.establish_circuit("node0", "node2", 0.8,
                                           cutoff_policy=None)
        handle = net.submit(circuit_id, UserRequest(num_pairs=5))
        net.run_until_complete([handle], timeout_s=300)
        assert handle.status == RequestStatus.COMPLETED
        assert net.qnps["node1"].pairs_discarded == 0
        assert net.qnps["node1"].expires_sent == 0


class TestDecoherenceImpact:
    def test_short_memory_lowers_delivered_fidelity_without_cutoff(self):
        """Without a cutoff, pairs wait arbitrarily long: ground-truth
        fidelity of delivered pairs degrades on short-lived memory."""
        good = build_chain_network(3, seed=5)
        good_id = good.establish_circuit("node0", "node2", 0.8, None)
        good_handle = good.submit(good_id, UserRequest(num_pairs=8),
                                  record_fidelity=True)
        good.run_until_complete([good_handle], timeout_s=300)

        bad = short_memory_net(t2_s=0.02, seed=5)
        bad_id = bad.establish_circuit_manual(
            ["node0", "node1", "node2"], link_fidelity=0.9, cutoff=None,
            max_eer=100.0, estimated_fidelity=0.8)
        bad_handle = bad.submit(bad_id, UserRequest(num_pairs=8),
                                record_fidelity=True)
        bad.run_until_complete([bad_handle], timeout_s=300)

        good_mean = sum(m.fidelity for m in good_handle.matched_pairs) / \
            len(good_handle.matched_pairs)
        bad_mean = sum(m.fidelity for m in bad_handle.matched_pairs) / \
            len(bad_handle.matched_pairs)
        assert bad_mean < good_mean

    def test_cutoff_protects_fidelity_on_short_memory(self):
        """Same poor memory: adding a cutoff keeps delivered pairs good —
        the central claim of Fig 10."""
        results = {}
        for label, cutoff in (("with", 5 * MS), ("without", None)):
            net = short_memory_net(t2_s=0.03, seed=6)
            circuit_id = net.establish_circuit_manual(
                ["node0", "node1", "node2"], link_fidelity=0.92,
                cutoff=cutoff, max_eer=100.0, estimated_fidelity=0.8)
            handle = net.submit(circuit_id, UserRequest(num_pairs=8),
                                record_fidelity=True)
            net.run_until_complete([handle], timeout_s=600)
            fidelities = [m.fidelity for m in handle.matched_pairs]
            results[label] = sum(fidelities) / len(fidelities)
        assert results["with"] > results["without"]

    def test_throughput_grows_with_memory_lifetime(self):
        """Fig 10a/b trend: longer T2* → higher throughput at fixed cutoff."""
        counts = {}
        for t2_s in (0.02, 2.0):
            net = short_memory_net(t2_s=t2_s, seed=7)
            circuit_id = net.establish_circuit_manual(
                ["node0", "node1", "node2"], link_fidelity=0.9,
                cutoff=4 * MS if t2_s < 1 else 40 * MS,
                max_eer=100.0, estimated_fidelity=0.8)
            handle = net.submit(circuit_id, UserRequest(num_pairs=10_000))
            net.run(until_s=net.sim.now / 1e9 + 10.0)
            counts[t2_s] = len(handle.delivered)
        assert counts[2.0] > counts[0.02]


class TestMessageDelays:
    def test_quantum_operations_do_not_block_on_messages(self):
        """Lazy tracking: swaps proceed regardless of control latency, so
        moderate delays (well below the cutoff) barely hurt throughput."""
        counts = {}
        for delay in (0.0, 1 * MS):
            net = build_chain_network(3, seed=8)
            circuit_id = net.establish_circuit("node0", "node2", 0.8, "short")
            net.set_message_delay(delay)
            handle = net.submit(circuit_id, UserRequest(num_pairs=10_000))
            net.run(until_s=net.sim.now / 1e9 + 8.0)
            counts[delay] = len(handle.delivered)
        assert counts[1 * MS] > 0.5 * counts[0.0]

    def test_blocking_tracking_suffers_under_delay(self):
        """Ablation: a protocol that waits for TRACKs before swapping loses
        throughput once message delays bite (Sec 4.1's design argument)."""
        delay = 5 * MS
        counts = {}
        for blocking in (False, True):
            net = build_chain_network(3, seed=9)
            for qnp in net.qnps.values():
                qnp.blocking_tracking = blocking
            circuit_id = net.establish_circuit("node0", "node2", 0.8, "short")
            net.set_message_delay(delay)
            handle = net.submit(circuit_id, UserRequest(num_pairs=10_000))
            net.run(until_s=net.sim.now / 1e9 + 8.0)
            counts[blocking] = len(handle.delivered)
        assert counts[False] > counts[True]
