"""Tests for the density-matrix state container."""

import random

import numpy as np
import pytest

from repro.quantum import (
    CNOT,
    H,
    QState,
    Qubit,
    X,
    Z,
    bell_vector,
    depolarizing_kraus,
)


def fresh(n):
    return [Qubit(f"q{i}") for i in range(n)]


def test_ground_state():
    (qubit,) = fresh(1)
    state = QState.ground(qubit)
    assert state.num_qubits == 1
    assert state.dm[0, 0] == pytest.approx(1.0)
    assert qubit.state is state
    assert qubit.index == 0


def test_from_pure_rejects_unnormalised():
    (qubit,) = fresh(1)
    with pytest.raises(ValueError):
        QState.from_pure(np.array([1.0, 1.0]), [qubit])


def test_dm_shape_must_match_qubits():
    qubits = fresh(2)
    with pytest.raises(ValueError):
        QState(np.eye(2) / 2, qubits)


def test_qubit_cannot_join_two_states():
    (qubit,) = fresh(1)
    QState.ground(qubit)
    with pytest.raises(ValueError):
        QState.ground(qubit)


def test_hadamard_then_cnot_builds_phi_plus():
    qa, qb = fresh(2)
    state = QState.merge(QState.ground(qa), QState.ground(qb))
    state.apply_unitary(H, [qa])
    state.apply_unitary(CNOT, [qa, qb])
    expected = np.outer(bell_vector(0), bell_vector(0).conj())
    assert np.allclose(state.dm, expected, atol=1e-12)


def test_apply_unitary_respects_target_order():
    qa, qb = fresh(2)
    state = QState.merge(QState.ground(qa), QState.ground(qb))
    state.apply_unitary(H, [qb])
    state.apply_unitary(CNOT, [qb, qa])  # control qb, target qa
    # Measuring both should be perfectly correlated.
    dm = state.dm
    assert dm[0b00, 0b00] == pytest.approx(0.5)
    assert dm[0b11, 0b11] == pytest.approx(0.5)


def test_apply_channel_depolarizes():
    (qubit,) = fresh(1)
    state = QState.ground(qubit)
    state.apply_channel(depolarizing_kraus(1.0), [qubit])
    # Full depolarizing with p=1 applies X/Y/Z uniformly: populations 1/3, 2/3.
    assert state.dm[0, 0] == pytest.approx(1.0 / 3.0)
    assert state.dm[1, 1] == pytest.approx(2.0 / 3.0)
    assert state.is_valid()


def test_measure_collapses_and_removes():
    rng = random.Random(1)
    qa, qb = fresh(2)
    state = QState.merge(QState.ground(qa), QState.ground(qb))
    state.apply_unitary(H, [qa])
    state.apply_unitary(CNOT, [qa, qb])
    outcome_a = state.measure(qa, rng)
    assert qa.state is None
    assert state.num_qubits == 1
    outcome_b = state.measure(qb, rng)
    assert outcome_a == outcome_b  # Φ+ correlations


def test_measure_statistics_on_plus_state():
    rng = random.Random(42)
    counts = [0, 0]
    for _ in range(400):
        (qubit,) = fresh(1)
        state = QState.ground(qubit)
        state.apply_unitary(H, [qubit])
        counts[state.measure(qubit, rng)] += 1
    assert 140 < counts[0] < 260


def test_remove_traces_out():
    qa, qb = fresh(2)
    state = QState.merge(QState.ground(qa), QState.ground(qb))
    state.apply_unitary(H, [qa])
    state.apply_unitary(CNOT, [qa, qb])
    state.remove(qa)
    # Remaining qubit is maximally mixed.
    assert np.allclose(state.dm, np.eye(2) / 2, atol=1e-12)
    assert qb.index == 0


def test_reduced_dm_of_pair_inside_larger_state():
    qa, qb, qc = fresh(3)
    state = QState.merge(QState.merge(QState.ground(qa), QState.ground(qb)),
                         QState.ground(qc))
    state.apply_unitary(H, [qa])
    state.apply_unitary(CNOT, [qa, qb])
    reduced = state.reduced_dm([qa, qb])
    expected = np.outer(bell_vector(0), bell_vector(0).conj())
    assert np.allclose(reduced, expected, atol=1e-12)
    # And the spectator is |0⟩.
    spectator = state.reduced_dm([qc])
    assert spectator[0, 0] == pytest.approx(1.0)


def test_reduced_dm_order_matters():
    qa, qb = fresh(2)
    state = QState.merge(QState.ground(qa), QState.ground(qb))
    state.apply_unitary(X, [qb])  # |01⟩
    dm_ab = state.reduced_dm([qa, qb])
    dm_ba = state.reduced_dm([qb, qa])
    assert dm_ab[0b01, 0b01] == pytest.approx(1.0)
    assert dm_ba[0b10, 0b10] == pytest.approx(1.0)


def test_merge_preserves_validity_and_handles():
    qa, qb = fresh(2)
    sa, sb = QState.ground(qa), QState.ground(qb)
    merged = QState.merge(sa, sb)
    assert merged.num_qubits == 2
    assert qa.state is merged and qb.state is merged
    assert merged.is_valid()


def test_merge_same_state_is_noop():
    qa, qb = fresh(2)
    state = QState.merge(QState.ground(qa), QState.ground(qb))
    assert QState.merge(state, state) is state


def test_probability_of_projector():
    (qubit,) = fresh(1)
    state = QState.ground(qubit)
    state.apply_unitary(H, [qubit])
    p0 = state.probability_of(np.diag([1.0, 0.0]).astype(complex), [qubit])
    assert p0 == pytest.approx(0.5)


def test_is_valid_detects_bad_trace():
    (qubit,) = fresh(1)
    state = QState.ground(qubit)
    state.dm = state.dm * 2.0
    assert not state.is_valid()


def test_z_phase_visible_in_coherences():
    (qubit,) = fresh(1)
    state = QState.ground(qubit)
    state.apply_unitary(H, [qubit])
    state.apply_unitary(Z, [qubit])
    assert state.dm[0, 1] == pytest.approx(-0.5)
