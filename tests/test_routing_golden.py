"""Golden-value regression tests for the routing fidelity budget.

These pin the controller's numeric outputs for canonical inputs so that
any change to the physics models or the budget algorithm shows up as an
explicit diff, not a silent drift of every benchmark.
"""

import pytest

from repro.netsim.units import MS
from repro.network.builder import build_chain_network, build_dumbbell_network


@pytest.fixture(scope="module")
def chain3():
    return build_chain_network(3, seed=1)


@pytest.fixture(scope="module")
def dumbbell():
    return build_dumbbell_network(seed=1)


class TestGoldenChain3:
    """Two links, one repeater, simulation parameters, 2 m fibre."""

    def test_budget_for_f08(self, chain3):
        route = chain3.controller.compute_route("node0", "node2", 0.8)
        assert route.link_fidelity == pytest.approx(0.9077, abs=0.003)
        assert route.cutoff == pytest.approx(907 * MS, rel=0.05)
        assert route.estimated_fidelity == pytest.approx(0.800, abs=0.002)
        assert route.max_lpr == pytest.approx(188, rel=0.05)

    def test_budget_for_f09(self, chain3):
        route = chain3.controller.compute_route("node0", "node2", 0.9)
        assert route.link_fidelity == pytest.approx(0.9653, abs=0.003)
        assert route.estimated_fidelity >= 0.9

    def test_short_cutoff_value(self, chain3):
        route = chain3.controller.compute_route("node0", "node2", 0.8, "short")
        # 0.85 generation quantile at the (relaxed) link fidelity: ~10 ms.
        assert 4 * MS < route.cutoff < 25 * MS
        assert route.link_fidelity < 0.9077  # relaxed vs the loss cutoff


class TestGoldenDumbbell:
    """Three links A0-MA-MB-B0."""

    def test_budget_for_f08(self, dumbbell):
        route = dumbbell.controller.compute_route("A0", "B0", 0.8)
        assert route.num_links == 3
        assert route.link_fidelity == pytest.approx(0.9436, abs=0.004)
        assert route.estimated_fidelity == pytest.approx(0.800, abs=0.002)

    def test_eer_below_lpr_for_short_cutoff(self, dumbbell):
        route = dumbbell.controller.compute_route("A0", "B0", 0.8, "short")
        assert route.eer == pytest.approx(route.max_lpr * 0.85, rel=0.01)


class TestGoldenLinkModel:
    def test_f095_alpha_and_rate(self, chain3):
        link = chain3.link_between("node0", "node1")
        alpha = link.model.alpha_for_fidelity(0.95)
        assert alpha == pytest.approx(0.0455, abs=0.004)
        assert link.model.expected_pair_time(alpha) == pytest.approx(
            10.2 * MS, rel=0.1)

    def test_cycle_time(self, chain3):
        link = chain3.link_between("node0", "node1")
        assert link.model.cycle_time == pytest.approx(10.55e3, rel=0.02)

    def test_fidelity_ceiling(self, chain3):
        link = chain3.link_between("node0", "node1")
        best = max(link.model.fidelity(a) for a in
                   (0.001, 0.002, 0.005, 0.01, 0.02, 0.05))
        assert best == pytest.approx(0.985, abs=0.01)
