"""Tests for Bell states and the Pauli-frame algebra."""

import numpy as np
import pytest

from repro.quantum import (
    BellIndex,
    bell_basis,
    bell_diagonal_dm,
    bell_diagonal_weights,
    bell_dm,
    bell_vector,
    combine,
    correction_pauli,
    swap_combine,
    werner_dm,
)
from repro.quantum.gates import PAULI_FRAME


def test_bell_vectors_are_normalised():
    for index in range(4):
        assert np.linalg.norm(bell_vector(index)) == pytest.approx(1.0)


def test_bell_vectors_are_orthogonal():
    basis = bell_basis()
    gram = basis.conj().T @ basis
    assert np.allclose(gram, np.eye(4), atol=1e-12)


def test_bell_vector_contents():
    phi_plus = bell_vector(BellIndex.PHI_PLUS)
    assert phi_plus[0] == pytest.approx(1 / np.sqrt(2))
    assert phi_plus[3] == pytest.approx(1 / np.sqrt(2))
    psi_minus = bell_vector(BellIndex.PSI_MINUS)
    assert psi_minus[1] == pytest.approx(1 / np.sqrt(2))
    assert psi_minus[2] == pytest.approx(-1 / np.sqrt(2))


def test_bell_index_bits():
    assert BellIndex.PHI_PLUS.phase_bit == 0
    assert BellIndex.PHI_PLUS.parity_bit == 0
    assert BellIndex.PSI_PLUS.parity_bit == 1
    assert BellIndex.PHI_MINUS.phase_bit == 1
    assert BellIndex.PSI_MINUS.phase_bit == 1
    assert BellIndex.PSI_MINUS.parity_bit == 1


def test_pauli_frame_generates_bell_states():
    # |B_i> = (I ⊗ P_i)|Φ+> up to global phase.
    phi_plus = bell_vector(0)
    for index in range(4):
        op = np.kron(np.eye(2), PAULI_FRAME[index])
        produced = op @ phi_plus
        overlap = abs(np.vdot(bell_vector(index), produced))
        assert overlap == pytest.approx(1.0)


def test_combine_is_xor():
    for i in range(4):
        for j in range(4):
            assert combine(i, j) == (i ^ j)


def test_combine_group_laws():
    for i in range(4):
        assert combine(i, 0) == i          # identity
        assert combine(i, i) == 0          # self-inverse
        for j in range(4):
            assert combine(i, j) == combine(j, i)  # commutative


def test_swap_combine_examples():
    # Two Φ+ pairs, outcome m → pair in B_m.
    for m in range(4):
        assert swap_combine(0, 0, m) == m
    assert swap_combine(1, 2, 3) == (1 ^ 2 ^ 3)


def test_correction_pauli_maps_frames():
    for i in range(4):
        for j in range(4):
            frame = correction_pauli(i, j)
            assert combine(i, frame) == j


def test_bell_diagonal_dm_weights_roundtrip():
    weights = np.array([0.7, 0.1, 0.15, 0.05])
    dm = bell_diagonal_dm(weights)
    assert np.allclose(bell_diagonal_weights(dm), weights)


def test_bell_diagonal_dm_validation():
    with pytest.raises(ValueError):
        bell_diagonal_dm([0.5, 0.5, 0.5, -0.5])
    with pytest.raises(ValueError):
        bell_diagonal_dm([0.5, 0.1, 0.1, 0.1])
    with pytest.raises(ValueError):
        bell_diagonal_dm([1.0, 0.0, 0.0])


def test_werner_dm_fidelity():
    dm = werner_dm(0.9, index=2)
    weights = bell_diagonal_weights(dm)
    assert weights[2] == pytest.approx(0.9)
    assert weights[0] == pytest.approx(0.1 / 3)
    assert np.trace(dm) == pytest.approx(1.0)


def test_werner_dm_validates_fidelity():
    with pytest.raises(ValueError):
        werner_dm(1.5)


def test_bell_dm_is_projector():
    for index in range(4):
        dm = bell_dm(index)
        assert np.allclose(dm @ dm, dm, atol=1e-12)
        assert np.trace(dm) == pytest.approx(1.0)


def test_bell_index_str():
    assert str(BellIndex.PHI_PLUS) == "Φ+"
    assert str(BellIndex.PSI_MINUS) == "Ψ−"
