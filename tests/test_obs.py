"""Tests for repro.obs: P² quantiles, registry, snapshots, span traces."""

import json
import math
import random

import pytest

from repro.analysis.stats import Cdf, P2Quantile, ReservoirSample, percentile
from repro.obs import (
    REQUIRED_SERIES,
    Counter,
    MetricsRegistry,
    SpanTracer,
    missing_series,
    read_snapshots,
    summarise,
)


def _build_grid(side=3, seed=7, formalism="dm"):
    from repro.traffic import build_topology

    return build_topology("grid", side, seed=seed, formalism=formalism)


# ----------------------------------------------------------------------
# P² streaming quantile estimator
# ----------------------------------------------------------------------

DISTRIBUTIONS = {
    "uniform": lambda rng: rng.random(),
    "exponential": lambda rng: rng.expovariate(1.0),
    "normal": lambda rng: rng.gauss(0.0, 1.0),
    "lognormal": lambda rng: math.exp(rng.gauss(0.0, 0.75)),
}


class TestP2Quantile:
    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)
        with pytest.raises(ValueError):
            P2Quantile(-0.5)

    def test_exact_below_five_samples(self):
        # With fewer observations than markers the estimator keeps the
        # raw samples and must agree with the exact percentile.
        for n in range(1, 6):
            est = P2Quantile(0.5)
            samples = [float(v) for v in range(n)]
            for value in samples:
                est.observe(value)
            assert est.value() == pytest.approx(percentile(samples, 50))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).value()

    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    @pytest.mark.parametrize("q", [0.05, 0.5, 0.95, 0.99])
    def test_tracks_exact_percentile(self, dist, q):
        # Property: across distribution shapes the P² estimate stays
        # within a few percent of the sample range of the exact
        # percentile (the estimator's documented accuracy regime).
        rng = random.Random(hash((dist, q)) & 0xFFFF)
        draw = DISTRIBUTIONS[dist]
        est = P2Quantile(q)
        samples = []
        for _ in range(5000):
            value = draw(rng)
            samples.append(value)
            est.observe(value)
        exact = percentile(samples, q * 100)
        span = max(samples) - min(samples)
        assert abs(est.value() - exact) <= 0.03 * span

    def test_bounded_memory(self):
        # The whole point: state stays at five markers no matter how
        # many observations stream through.
        rng = random.Random(3)
        est = P2Quantile(0.95)
        for _ in range(50_000):
            est.observe(rng.expovariate(1.0))
        assert est.count == 50_000
        assert len(est._heights) == 5
        assert len(est._positions) == 5
        assert len(est._desired) == 5

    def test_monotone_markers(self):
        rng = random.Random(11)
        est = P2Quantile(0.5)
        for _ in range(2000):
            est.observe(rng.gauss(0, 1))
        assert est._heights == sorted(est._heights)


class TestReservoirSample:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)
        with pytest.raises(ValueError):
            ReservoirSample(100).quantile(0.0)
        with pytest.raises(ValueError):
            ReservoirSample(100).quantile(0.5)

    def test_exact_below_capacity(self):
        res = ReservoirSample(10)
        for value in range(7):
            res.observe(value)
        assert sorted(res.samples()) == [float(v) for v in range(7)]
        assert res.quantile(0.5) == pytest.approx(3.0)

    def test_bounded_memory(self):
        res = ReservoirSample(64, seed=3)
        for value in range(50_000):
            res.observe(value)
        assert res.count == 50_000
        assert len(res) == 64

    def test_deterministic_for_seed(self):
        def fill(seed):
            res = ReservoirSample(32, seed=seed)
            for value in range(10_000):
                res.observe(value)
            return res.samples()

        assert fill(5) == fill(5)
        assert fill(5) != fill(6)

    def test_uniform_over_stream(self):
        # Property: the reservoir is a uniform draw, so the estimated
        # median of 0..N-1 lands near N/2 (averaged over reservoirs).
        estimates = [ReservoirSample(256, seed=s) for s in range(8)]
        for value in range(20_000):
            for res in estimates:
                res.observe(value)
        medians = [res.quantile(0.5) for res in estimates]
        assert abs(sum(medians) / len(medians) - 10_000) < 1_500

    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_tracks_exact_percentile(self, dist):
        rng = random.Random(hash(dist) & 0xFFFF)
        draw = DISTRIBUTIONS[dist]
        res = ReservoirSample(1024, seed=1)
        samples = []
        for _ in range(20_000):
            value = draw(rng)
            samples.append(value)
            res.observe(value)
        exact = percentile(samples, 95)
        span = max(samples) - min(samples)
        assert abs(res.quantile(0.95) - exact) <= 0.05 * span


class TestCdfAt:
    def test_at_uses_sorted_lookup(self):
        cdf = Cdf.from_samples(range(1000))
        # Exact sample values and between-sample values both follow the
        # "fraction of samples <= x" definition.
        assert cdf.at(499) == pytest.approx(0.5)
        assert cdf.at(498.5) == pytest.approx(0.499)
        assert cdf.at(-1) == 0.0
        assert cdf.at(999) == 1.0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits")
        counter.inc()
        counter.inc(4)
        reg.gauge("depth").set(7)
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == 5
        assert snap["gauges"]["depth"] == 7

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_source_backed_counter_rejects_inc(self):
        state = {"n": 3}
        counter = Counter("pull", source=lambda: state["n"])
        assert counter.value == 3
        state["n"] = 9
        assert counter.value == 9
        with pytest.raises(TypeError):
            counter.inc()

    def test_histogram_snapshot(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for value in range(100):
            hist.observe(float(value))
        row = reg.snapshot()["hists"]["lat"]
        assert row["count"] == 100
        assert row["min"] == 0.0
        assert row["max"] == 99.0
        assert row["p50"] == pytest.approx(49.5, abs=3.0)
        empty = reg.histogram("nothing")
        assert reg.snapshot()["hists"]["nothing"] == {"count": 0}
        assert empty.count == 0

    def test_network_registers_core_instruments(self):
        net = _build_grid()
        names = net.obs.names()
        for series in ("sim.events_processed", "egp.attempts", "qnp.swaps",
                       "policer.queue_depth", "arbiter.grants"):
            assert series in names


# ----------------------------------------------------------------------
# Snapshot streaming + report agreement (the acceptance scenario)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def traffic_run(tmp_path_factory):
    """One seed-7 grid traffic run with snapshots + tracing on."""
    from repro.traffic import TrafficEngine

    out = tmp_path_factory.mktemp("obs")
    net = _build_grid(formalism="bell")
    engine = TrafficEngine(net, circuits=4, load=0.6, seed=7,
                           apps=["qkd"],
                           metrics_out=str(out / "metrics.jsonl"),
                           snapshot_interval_s=0.2,
                           trace_out=str(out / "trace.jsonl"))
    report = engine.run(horizon_s=1.0, drain_s=0.5)
    return net, engine, report, out


class TestSnapshots:
    def test_stream_shape(self, traffic_run):
        _, _, _, out = traffic_run
        snaps = read_snapshots(out / "metrics.jsonl")
        kinds = [snap["kind"] for snap in snaps]
        assert kinds[0] == "start"
        assert kinds[-1] == "final"
        assert kinds.count("periodic") >= 3
        seqs = [snap["seq"] for snap in snaps]
        assert seqs == sorted(seqs)
        times = [snap["t_sim_s"] for snap in snaps]
        assert times == sorted(times)
        assert all(snap["max_rss_kb"] > 0 for snap in snaps)

    def test_final_counters_match_report(self, traffic_run):
        # The acceptance criterion: the final cumulative counters agree
        # byte-for-byte with the end-of-run report.
        net, _, report, out = traffic_run
        final = read_snapshots(out / "metrics.jsonl")[-1]
        counters = final["counters"]
        assert counters["traffic.pairs_confirmed"] == \
            report.total_confirmed_pairs
        assert counters["traffic.pairs_confirmed"] == \
            sum(t.pairs_confirmed for t in report.classes.values())
        tallies = report.classes.values()
        assert counters["traffic.sessions_submitted"] == \
            sum(t.submitted for t in tallies)
        assert counters["traffic.sessions_accepted"] == \
            sum(t.accepted for t in tallies)
        assert counters["traffic.sessions_queued"] == \
            sum(t.queued for t in tallies)
        assert counters["traffic.sessions_rejected"] == \
            sum(t.rejected for t in tallies)
        assert counters["egp.attempts"] == \
            sum(link.attempts_made for link in net.links.values())
        assert counters["egp.pairs_generated"] == \
            sum(link.pairs_generated for link in net.links.values())

    def test_deltas_sum_to_cumulative(self, traffic_run):
        _, _, _, out = traffic_run
        snaps = read_snapshots(out / "metrics.jsonl")
        for name in ("traffic.pairs_confirmed", "egp.attempts"):
            total = sum(snap["deltas"].get(name, 0) for snap in snaps)
            assert total == snaps[-1]["counters"][name]

    def test_report_obs_frame_attached(self, traffic_run):
        _, _, report, _ = traffic_run
        assert report.obs is not None
        assert report.obs["counters"]["traffic.pairs_confirmed"] == \
            report.total_confirmed_pairs

    def test_app_slo_counters_present(self, traffic_run):
        _, _, report, out = traffic_run
        final = read_snapshots(out / "metrics.jsonl")[-1]
        met = final["counters"].get("apps.slo_met", 0)
        missed = final["counters"].get("apps.slo_missed", 0)
        assert met + missed == len(report.apps)

    def test_snapshots_do_not_perturb_the_run(self):
        # Instrumentation must be pure observation: the same seed with
        # and without streaming produces the identical report.
        import re

        from repro.traffic import TrafficEngine

        def run(**obs_kwargs):
            net = _build_grid(formalism="bell")
            engine = TrafficEngine(net, circuits=3, load=0.5, seed=7,
                                   **obs_kwargs)
            rendered = engine.run(horizon_s=0.5, drain_s=0.25).render()
            # Circuit IDs draw from a process-global counter, so their
            # numbers differ between consecutive in-process runs —
            # normalise the label, compare everything else exactly.
            return re.sub(r"vc\d+", "vc#", rendered)

        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            instrumented = run(metrics_out=f"{tmp}/m.jsonl",
                               snapshot_interval_s=0.1,
                               trace_out=f"{tmp}/t.jsonl")
        assert run() == instrumented

    def test_interval_validation(self):
        from repro.traffic import TrafficEngine

        with pytest.raises(ValueError):
            TrafficEngine(_build_grid(), snapshot_interval_s=0.0)


# ----------------------------------------------------------------------
# Causal span tracing
# ----------------------------------------------------------------------

class TestSpanTracer:
    def test_begin_end_and_parent_inference(self):
        tracer = SpanTracer()
        root = tracer.begin("circuit", "head", 0.0, key=("circuit", "vc1"))
        tracer.alias(("purpose", "vc1#0"), root)
        tracer.begin("session", "head", 1.0, key=("session", "req1"),
                     parent=root, request="req1")
        tracer.record(2.0, "mid", "EGP_PAIR", purpose="vc1#0")
        tracer.record(3.0, "head", "PAIR", request="req1")
        tracer.record(4.0, "head", "REQUEST_DONE", request="req1")
        tracer.end(("circuit", "vc1"), 5.0)
        assert [span.name for span in tracer.roots()] == ["circuit"]
        depths = {span.name: depth for depth, span in tracer.walk(root)}
        assert depths["EGP_PAIR"] == 1
        assert depths["PAIR"] == 2  # under the session span
        session = tracer.lookup(("session", "req1"))
        assert session.t_end == 4.0  # REQUEST_DONE closes it
        assert root.t_end == 5.0

    def test_traffic_span_tree_walkable(self, traffic_run):
        # One session's lifecycle is walkable from the circuit root down
        # to delivered pairs and the app-side consumption.
        net, _, _, out = traffic_run
        tracer = net.tracer
        roots = tracer.roots()
        assert roots and all(span.name == "circuit" for span in roots)
        names = {span.name for root in roots
                 for _, span in tracer.walk(root)}
        for expected in ("ROUTE", "INSTALL", "session", "LINK_PAIR",
                         "PAIR", "REQUEST_DONE", "APP_CONSUME"):
            assert expected in names, f"missing {expected} in span tree"
        # At least one completed session shows the full submit->deliver
        # lifecycle under a single subtree.
        session = next(
            span for span in tracer.spans
            if span.name == "session" and span.t_end is not None
            and any(child.name == "PAIR"
                    for child in tracer.children(span)))
        child_names = {child.name for child in tracer.children(session)}
        assert {"REQUEST", "ADMIT", "PAIR", "REQUEST_DONE"} <= child_names
        rendered = tracer.render_tree(session)
        assert "PAIR" in rendered and "session" in rendered

    def test_trace_jsonl_round_trip(self, traffic_run):
        _, _, _, out = traffic_run
        lines = (out / "trace.jsonl").read_text().splitlines()
        assert lines
        spans = [json.loads(line) for line in lines]
        by_id = {span["span_id"]: span for span in spans}
        orphans = [span for span in spans
                   if span["parent_id"] is not None
                   and span["parent_id"] not in by_id]
        assert not orphans


# ----------------------------------------------------------------------
# Summaries and the obs CLI
# ----------------------------------------------------------------------

class TestSummarise:
    def test_summarise_renders(self, traffic_run):
        _, _, _, out = traffic_run
        text = summarise(out / "metrics.jsonl", required=REQUIRED_SERIES)
        assert "traffic.pairs_confirmed" in text
        assert "egp.attempts" in text

    def test_missing_series_detected(self, traffic_run):
        _, _, _, out = traffic_run
        snaps = read_snapshots(out / "metrics.jsonl")
        assert missing_series(snaps, REQUIRED_SERIES) == []
        assert missing_series(snaps, ("no.such.series",)) == \
            ["no.such.series"]
        with pytest.raises(ValueError):
            summarise(out / "metrics.jsonl", required=("no.such.series",))

    def test_empty_file_raises(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            summarise(empty)

    def test_obs_cli(self, traffic_run, capsys):
        from repro.cli import main

        _, _, _, out = traffic_run
        assert main(["obs", "--summarise", str(out / "metrics.jsonl"),
                     "--require",
                     "traffic.pairs_confirmed,egp.attempts"]) == 0
        assert "obs summary" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["obs", "--summarise", str(out / "metrics.jsonl"),
                  "--require", "no.such.series"])
        with pytest.raises(SystemExit):
            main(["obs", "--summarise", str(out / "nope.jsonl")])
