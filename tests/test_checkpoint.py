"""Checkpoint/resume durability suite (repro.persist).

Four pillars:

* **golden resume-equivalence** — run a workload to completion while
  capturing every durable checkpoint it writes, then resume each capture
  and demand the rendered report *and* the final metrics frame come out
  byte-identical to the uninterrupted run, across formalisms,
  topologies, fault injection, apps and session retirement;
* **crash injection** — SIGKILL a real CLI subprocess mid-run, resume
  from the last durable checkpoint, and check no confirmed pair was
  duplicated or lost and the snapshot counter stream stayed monotone;
* **round-trip properties** — the stateful primitives a checkpoint
  carries (per-link numpy RNG block buffers, the scheduler heap, the
  Bell weight store) continue identically after a pickle round trip;
* **envelope validation** — foreign, corrupt and version-mismatched
  files are rejected before any simulation state is deserialised.
"""

import json
import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.netsim import Simulator
from repro.persist import (
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.traffic import build_topology
from repro.traffic.workload import TrafficEngine

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _reset_counters():
    """Zero the process-global ID streams so runs label identically.

    Circuit/request/qubit IDs draw from module-level counters; two
    in-process runs would otherwise disagree on labels like ``vc3``
    (checkpoint *resume* restores these exactly, so only fresh
    comparison runs need the reset).
    """
    from repro.control import signalling
    from repro.core import requests
    from repro.quantum import qubit

    requests._request_ids.value = 0
    signalling._circuit_ids.value = 0
    qubit._qubit_ids.value = 0


def _run_with_checkpoints(tmp_path, tag, *, formalism="bell",
                          topology="grid", size=3, circuits=3, load=0.5,
                          horizon=0.8, drain=0.4, interval=0.25,
                          fail_links=0, apps=None, retire=False,
                          capture=True):
    """Run a workload to completion, capturing each checkpoint written.

    Returns ``(engine, report, captured)`` where ``captured`` is a list
    of ``(sim_now_ns, path)`` copies of the checkpoint file taken right
    after each durable write (the live file is overwritten in place, so
    the copies are what lets the test resume from *intermediate* times).
    """
    _reset_counters()
    net = build_topology(topology, size, seed=7, formalism=formalism)
    live = tmp_path / f"{tag}.ckpt"
    engine = TrafficEngine(
        net, circuits=circuits, load=load, seed=7, fail_links=fail_links,
        apps=apps, checkpoint_out=str(live), checkpoint_interval_s=interval,
        retire_sessions=retire, retire_interval_s=interval)
    captured = []
    if capture:
        def snap(eng, now_ns):
            copy = tmp_path / f"{tag}-{len(captured)}.ckpt"
            copy.write_bytes(live.read_bytes())
            captured.append((now_ns, str(copy)))
        engine.on_checkpoint = snap
    report = engine.run(horizon_s=horizon, drain_s=drain)
    return engine, report, captured


# ----------------------------------------------------------------------
# Golden resume-equivalence
# ----------------------------------------------------------------------

#: Scenario grid: formalisms x topologies, plus faults, apps and
#: retirement riding on the bell/grid base.  Intervals are chosen so at
#: least one capture lands in the horizon phase and one in the drain.
GOLDEN = {
    "bell-grid": {},
    "dm-grid": {"formalism": "dm", "horizon": 0.5, "drain": 0.25,
                "interval": 0.2},
    "bell-random": {"topology": "erdos-renyi", "size": 8, "circuits": 2},
    "bell-grid-faults-apps": {"fail_links": 1, "apps": ["qkd"]},
    "bell-grid-retire": {"retire": True},
}


class TestResumeEquivalence:
    @pytest.mark.parametrize("scenario", sorted(GOLDEN))
    def test_resume_matches_uninterrupted(self, tmp_path, scenario):
        engine, report, captured = _run_with_checkpoints(
            tmp_path, scenario, **GOLDEN[scenario])
        want_render = report.render()
        want_obs = report.obs
        assert len(captured) >= 2, "scenario too short to checkpoint twice"
        for index, (t_ns, path) in enumerate(captured):
            resumed_engine = load_checkpoint(
                path, checkpoint_out=str(tmp_path / f"{scenario}-r{index}.ckpt"))
            assert resumed_engine.net.sim.now == t_ns
            resumed = resumed_engine.resume_run()
            assert resumed.render() == want_render, (
                f"resume from checkpoint {index} (t={t_ns / 1e9:.2f} s) "
                f"diverged from the uninterrupted run")
            assert resumed.obs == want_obs

    def test_checkpoints_span_both_phases(self, tmp_path):
        # Mid-horizon *and* mid-drain resume points must both be
        # exercised, or resume-equivalence silently weakens.  An
        # overloaded run keeps sessions in flight through the drain
        # window, so the periodic checkpoints land in both phases.
        engine, report, captured = _run_with_checkpoints(
            tmp_path, "phases", load=1.5, horizon=0.4, drain=0.4,
            interval=0.15)
        phases = set()
        for _, path in captured:
            envelope = pickle.loads(Path(path).read_bytes())
            phases.add(pickle.loads(envelope["engine_blob"])._phase)
        assert phases >= {"horizon", "drain"}
        want = report.render()
        for index, (_, path) in enumerate(captured):
            resumed = load_checkpoint(
                path, checkpoint_out=str(tmp_path / f"ph-r{index}.ckpt"))
            assert resumed.resume_run().render() == want

    def test_resume_requires_a_run(self, tmp_path):
        _reset_counters()
        net = build_topology("ring", 4, seed=5, formalism="bell")
        engine = TrafficEngine(net, circuits=2, load=0.5, seed=5)
        with pytest.raises(RuntimeError, match="never ran"):
            engine.resume_run()
        engine.run(horizon_s=0.1, drain_s=0.05)
        with pytest.raises(RuntimeError, match="already finished"):
            engine.resume_run()


class TestRetirement:
    def test_retirement_changes_no_reported_number(self, tmp_path):
        base_engine, base, _ = _run_with_checkpoints(
            tmp_path, "retire-off", capture=False)
        ret_engine, ret, _ = _run_with_checkpoints(
            tmp_path, "retire-on", retire=True, capture=False)
        assert ret_engine.sessions_retired > 0
        assert ret.render() == base.render()
        # The retirement sweep schedules its own events, so only the
        # kernel's sim.* counters may differ between the two runs.
        for frame in (base.obs, ret.obs):
            assert frame is not None
        base_counters = {name: value
                         for name, value in base.obs["counters"].items()
                         if not name.startswith("sim.")}
        ret_counters = {name: value
                        for name, value in ret.obs["counters"].items()
                        if not name.startswith("sim.")}
        assert ret_counters == base_counters
        assert ret.obs["gauges"] == base.obs["gauges"]

    def test_retired_records_free_their_handle_graphs(self, tmp_path):
        engine, report, _ = _run_with_checkpoints(
            tmp_path, "retire-free", retire=True, capture=False)
        retired = [r for r in engine.records if r.summary is not None]
        assert len(retired) == engine.sessions_retired > 0
        for record in retired:
            assert record.handle is None
            assert record.prior_handles == []
            assert record.summary.pairs_confirmed >= 0


# ----------------------------------------------------------------------
# Crash injection: SIGKILL a CLI soak, resume from the durable file
# ----------------------------------------------------------------------

class TestCrashInjection:
    CLI = ["-m", "repro", "traffic", "--topology", "grid", "--size", "3",
           "--circuits", "3", "--load", "0.5", "--formalism", "bell",
           "--horizon", "1.0", "--seed", "7",
           "--checkpoint-interval", "0.15", "--snapshot-interval", "0.1"]

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        return env

    def test_sigkill_then_resume_loses_nothing(self, tmp_path):
        env = self._env()
        # Reference: the same soak, uninterrupted (checkpointing stays
        # on so both runs schedule the identical event stream).
        ref_metrics = tmp_path / "ref.jsonl"
        subprocess.run(
            [sys.executable, *self.CLI,
             "--checkpoint-out", str(tmp_path / "ref.ckpt"),
             "--metrics-out", str(ref_metrics)],
            check=True, env=env, cwd=tmp_path, capture_output=True)
        # Victim: kill -9 as soon as the first durable checkpoint lands.
        ckpt = tmp_path / "run.ckpt"
        metrics = tmp_path / "run.jsonl"
        victim = subprocess.Popen(
            [sys.executable, *self.CLI, "--checkpoint-out", str(ckpt),
             "--metrics-out", str(metrics)],
            env=env, cwd=tmp_path, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            while not ckpt.exists():
                if victim.poll() is not None:
                    pytest.fail("victim exited before its first checkpoint")
                if time.monotonic() > deadline:
                    pytest.fail("victim never wrote a checkpoint")
                time.sleep(0.02)
            victim.kill()  # SIGKILL: no atexit, no flush, no goodbye
        finally:
            victim.wait()
        # Resume from the last durable checkpoint and finish the soak.
        done = subprocess.run(
            [sys.executable, "-m", "repro", "traffic", "--resume", str(ckpt)],
            check=True, env=env, cwd=tmp_path, capture_output=True, text=True)
        assert "resuming from" in done.stdout
        ref_frames = [json.loads(line) for line in
                      ref_metrics.read_text().splitlines()]
        frames = [json.loads(line) for line in
                  metrics.read_text().splitlines()]
        # No confirmed pair duplicated or lost: the resumed stream's
        # final cumulative counters equal the uninterrupted run's.
        assert (frames[-1]["counters"]["traffic.pairs_confirmed"]
                == ref_frames[-1]["counters"]["traffic.pairs_confirmed"])
        assert frames[-1]["counters"] == ref_frames[-1]["counters"]
        # The reattached emitter truncated any post-checkpoint frames,
        # so every counter series stays monotone across the splice.
        for earlier, later in zip(frames, frames[1:]):
            for name, value in earlier["counters"].items():
                assert later["counters"][name] >= value, (
                    f"{name} went backwards across the crash splice")
        # Sequence numbers splice without a gap or duplicate.
        assert [frame["seq"] for frame in frames] == list(range(len(frames)))


# ----------------------------------------------------------------------
# Round-trip properties of the pickled primitives
# ----------------------------------------------------------------------

class _Recorder:
    """Module-level (picklable) callback that logs events it fires."""

    def __init__(self):
        self.events = []

    def __call__(self, tag):
        self.events.append(tag)


class TestRoundTripProperties:
    def test_egp_rng_streams_continue_identically(self):
        # Warm each per-link block buffer mid-block, round-trip the whole
        # network, and demand the continued uniform streams agree draw
        # for draw (same bit stream, not merely close).
        _reset_counters()
        net = build_topology("grid", 3, seed=11, formalism="bell")
        links = [net.links[name] for name in sorted(net.links)]
        for link in links:
            for _ in range(37):
                link._next_u()
        clone = pickle.loads(pickle.dumps(net))
        clone_links = [clone.links[name] for name in sorted(clone.links)]
        for link, twin in zip(links, clone_links):
            draws = [link._next_u() for _ in range(500)]
            twin_draws = [twin._next_u() for _ in range(500)]
            assert draws == twin_draws
            assert all(abs(a - b) <= 1e-12
                       for a, b in zip(draws, twin_draws))

    def test_scheduler_heap_round_trip(self):
        sim = Simulator(seed=3)
        recorder = _Recorder()
        handles = [sim.schedule_at(t, recorder, tag)
                   for tag, t in enumerate([5.0, 1.0, 3.0, 3.0, 8.0, 2.0])]
        handles[2].cancel()  # a dead entry must not resurrect on restore
        clone = pickle.loads(pickle.dumps(sim))
        twin = next(handle.callback for handle in clone._queue
                    if handle.active)
        sim.run()
        clone.run()
        assert recorder.events == twin.events == [1, 5, 3, 0, 4]
        # The event-sequence stream continues from the same position, so
        # post-restore scheduling keeps the FIFO tie-break order.
        assert next(sim._seq) == next(clone._seq)
        assert clone.pending_events() == 0

    def test_scheduler_pool_survives_round_trip(self):
        sim = Simulator(seed=1)
        recorder = _Recorder()
        for tag in range(10):
            sim.post_at(float(tag), recorder, tag)
        sim.run()
        clone = pickle.loads(pickle.dumps(sim))
        assert len(clone._pool) == len(sim._pool) > 0
        # A restored pool serves post_at() exactly like the original:
        # the pool-hit telemetry stays deterministic across resume.
        sim.post_at(sim.now + 1.0, recorder, 99)
        clone_recorder = _Recorder()
        clone.post_at(clone.now + 1.0, clone_recorder, 99)
        assert clone.pool_hits == sim.pool_hits

    def test_weightstore_round_trip(self):
        from repro.quantum.weightstore import BellWeightStore

        store = BellWeightStore(capacity=4)
        weights = [[0.85 + 0.01 * i, 0.05, 0.05, 0.05 - 0.01 * i]
                   for i in range(6)]  # overflows capacity: forces a grow
        rows = [store.alloc(w) for w in weights]
        store.release(rows[1])
        store.release(rows[4])
        clone = pickle.loads(pickle.dumps(store))
        for row in (rows[0], rows[2], rows[3], rows[5]):
            np.testing.assert_array_equal(clone.row(row), store.row(row))
        # Free-list order survives: both sides hand out the same rows.
        fresh = [0.7, 0.1, 0.1, 0.1]
        assert clone.alloc(fresh) == store.alloc(fresh)
        assert clone.alloc(fresh) == store.alloc(fresh)
        # And the state_dict/load_state pathway agrees with pickling.
        rebuilt = BellWeightStore(capacity=4)
        rebuilt.load_state(store.state_dict())
        for row in (rows[0], rows[2], rows[3], rows[5]):
            np.testing.assert_array_equal(rebuilt.row(row), store.row(row))


# ----------------------------------------------------------------------
# Envelope validation
# ----------------------------------------------------------------------

def _tiny_engine():
    _reset_counters()
    net = build_topology("ring", 4, seed=5, formalism="bell")
    return TrafficEngine(net, circuits=2, load=0.5, seed=5)


class TestEnvelope:
    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "a.ckpt"
        written = save_checkpoint(_tiny_engine(), path)
        assert written == str(path)
        assert path.exists()
        assert not path.with_suffix(".ckpt.tmp").exists()
        assert list(tmp_path.iterdir()) == [path]

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "v.ckpt"
        save_checkpoint(_tiny_engine(), path)
        envelope = pickle.loads(path.read_bytes())
        envelope["version"] = CHECKPOINT_VERSION + 1
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(CheckpointError, match="version mismatch"):
            load_checkpoint(path)

    def test_foreign_pickle_rejected(self, tmp_path):
        path = tmp_path / "foreign.ckpt"
        path.write_bytes(pickle.dumps({"magic": "someone-else"}))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"definitely not a pickle")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_corrupt_engine_blob_rejected(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        save_checkpoint(_tiny_engine(), path)
        envelope = pickle.loads(path.read_bytes())
        envelope["engine_blob"] = envelope["engine_blob"][:64]
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(CheckpointError, match="corrupt engine state"):
            load_checkpoint(path)

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope.ckpt")


# ----------------------------------------------------------------------
# Warm-up (steady-state) detection
# ----------------------------------------------------------------------

class TestSteadyDetection:
    def _emitter(self, tmp_path):
        from repro.obs import MetricsRegistry, SnapshotEmitter

        return SnapshotEmitter(Simulator(seed=0), MetricsRegistry(),
                               tmp_path / "s.jsonl")

    def test_stable_rate_flips_steady_after_streak(self, tmp_path):
        emitter = self._emitter(tmp_path)
        for delta in (50, 51, 49, 50):  # within 25% of each predecessor
            emitter._update_steady({"traffic.pairs_confirmed": delta})
        assert emitter._steady

    def test_warmup_ramp_is_not_steady(self, tmp_path):
        emitter = self._emitter(tmp_path)
        for delta in (1, 10, 40, 100):  # each frame >25% over the last
            emitter._update_steady({"traffic.pairs_confirmed": delta})
        assert not emitter._steady

    def test_steady_is_sticky(self, tmp_path):
        emitter = self._emitter(tmp_path)
        for delta in (50, 50, 50, 50, 0, 500):
            emitter._update_steady({"traffic.pairs_confirmed": delta})
        assert emitter._steady

    def test_stream_carries_the_flag(self, tmp_path):
        from repro.obs import read_snapshots

        _reset_counters()
        net = build_topology("grid", 3, seed=7, formalism="bell")
        out = tmp_path / "steady.jsonl"
        engine = TrafficEngine(net, circuits=3, load=0.5, seed=7,
                               metrics_out=str(out),
                               snapshot_interval_s=0.1)
        engine.run(horizon_s=1.0, drain_s=0.3)
        frames = read_snapshots(out)
        assert all("steady" in frame for frame in frames)
        flags = [frame["steady"] for frame in frames]
        assert flags[0] is False  # a run never starts steady
        first_true = flags.index(True) if True in flags else len(flags)
        assert all(flags[first_true:])  # sticky once set
