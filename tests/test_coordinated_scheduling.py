"""Tests for the coordinated link-scheduling extension."""

import pytest

from repro.core import RequestStatus, UserRequest
from repro.hardware import HeraldedConnection, SIMULATION, SingleClickModel
from repro.linklayer import Link
from repro.netsim import S, Simulator
from repro.network import QuantumNode
from repro.network.builder import build_dumbbell_network


class TestLinkPriorities:
    def make_link(self):
        sim = Simulator(seed=1)
        node_a = QuantumNode(sim, "a", SIMULATION)
        node_b = QuantumNode(sim, "b", SIMULATION)
        model = SingleClickModel(SIMULATION, HeraldedConnection.lab(0.002))
        link = Link(sim, "a~b", node_a, node_b, model)
        node_a.attach_link(link, "b")
        node_b.attach_link(link, "a")
        return sim, link, node_a, node_b

    def test_boosted_purpose_preferred(self):
        sim, link, node_a, node_b = self.make_link()
        counts = {"vc0": 0, "vc1": 0}

        def consume(delivery):
            counts[delivery.purpose_id] += 1
            node_a.qmm.free(delivery.entanglement_id)

        link.register_handler("a", consume)
        link.register_handler("b", lambda d: node_b.qmm.free(d.entanglement_id))
        link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
        link.set_request("vc1", min_fidelity=0.9, lpr=50.0)
        link.set_priority("vc1", "a", boosted=True)
        sim.run(until=5 * S)
        # The boosted purpose gets (nearly) all the service.
        assert counts["vc1"] > 4 * max(counts["vc0"], 1)

    def test_unboost_restores_fair_share(self):
        sim, link, node_a, node_b = self.make_link()
        counts = {"vc0": 0, "vc1": 0}

        def consume(delivery):
            counts[delivery.purpose_id] += 1
            node_a.qmm.free(delivery.entanglement_id)

        link.register_handler("a", consume)
        link.register_handler("b", lambda d: node_b.qmm.free(d.entanglement_id))
        link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
        link.set_request("vc1", min_fidelity=0.9, lpr=50.0)
        link.set_priority("vc1", "a", boosted=True)
        link.set_priority("vc1", "a", boosted=False)
        sim.run(until=8 * S)
        assert counts["vc0"] == pytest.approx(counts["vc1"], rel=0.4)

    def test_priority_per_flagging_node(self):
        sim, link, node_a, node_b = self.make_link()
        link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
        link.set_priority("vc0", "a", boosted=True)
        link.set_priority("vc0", "b", boosted=True)
        link.set_priority("vc0", "a", boosted=False)
        # Still boosted: node b's flag remains.
        assert link._boosted("vc0")
        link.set_priority("vc0", "b", boosted=False)
        assert not link._boosted("vc0")


class TestCoordinatedStack:
    def test_flag_default_off(self):
        net = build_dumbbell_network(seed=2)
        assert all(not qnp.coordinated_scheduling for qnp in net.qnps.values())

    def test_coordinated_mode_completes_and_beats_plain(self):
        circuits = [("A0", "B0"), ("A1", "B1"), ("A0", "B1"), ("A1", "B0")]
        latencies = {}
        for coordinated in (False, True):
            net = build_dumbbell_network(seed=3)
            for qnp in net.qnps.values():
                qnp.coordinated_scheduling = coordinated
            circuit_ids = [net.establish_circuit(a, b, 0.8, "loss")
                           for a, b in circuits]
            handles = [net.submit(cid, UserRequest(num_pairs=4))
                       for cid in circuit_ids]
            net.run_until_complete(handles, timeout_s=600)
            assert all(h.status == RequestStatus.COMPLETED for h in handles)
            latencies[coordinated] = max(h.latency for h in handles)
        assert latencies[True] < latencies[False]
