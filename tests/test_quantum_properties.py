"""Property-based tests (hypothesis) for the quantum engine invariants."""

import math
import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.quantum import (
    NoisyOpParams,
    QState,
    Qubit,
    averaged_swap_dm,
    bell_diagonal_dm,
    bell_diagonal_weights,
    bell_dm,
    bell_fidelity,
    bell_state_measurement,
    create_pair,
    decoherence_kraus,
    depolarizing_kraus,
    is_trace_preserving,
    pair_fidelity,
    swap_combine,
    werner_dm,
)

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
fidelities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
bell_indices = st.integers(min_value=0, max_value=3)


@given(bell_indices, bell_indices, bell_indices)
def test_swap_combine_is_associative_and_commutative(i, j, m):
    assert swap_combine(i, j, m) == swap_combine(j, i, m)
    assert swap_combine(swap_combine(i, j, 0), m, 0) == swap_combine(i, swap_combine(j, m, 0), 0)


@given(bell_indices, bell_indices)
def test_swap_combine_inverse(i, m):
    # Combining with itself and the outcome twice returns to start.
    once = swap_combine(i, 0, m)
    assert swap_combine(once, 0, m) == i


@given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4))
def test_bell_diagonal_roundtrip(raw_weights):
    weights = np.array(raw_weights) / sum(raw_weights)
    dm = bell_diagonal_dm(weights)
    assert np.allclose(bell_diagonal_weights(dm), weights, atol=1e-9)
    assert np.trace(dm).real == np.float64(1.0) or abs(np.trace(dm) - 1) < 1e-9


@given(fidelities, bell_indices)
def test_werner_dm_is_valid_state(fidelity, index):
    dm = werner_dm(fidelity, index)
    eigenvalues = np.linalg.eigvalsh(dm)
    assert eigenvalues.min() > -1e-12
    assert abs(np.trace(dm) - 1.0) < 1e-9
    assert bell_fidelity(dm, index) == np.float64(fidelity) or \
        abs(bell_fidelity(dm, index) - fidelity) < 1e-9


@given(probabilities)
def test_depolarizing_always_trace_preserving(p):
    assert is_trace_preserving(depolarizing_kraus(p))


@given(st.floats(min_value=0.0, max_value=1e12),
       st.floats(min_value=1e3, max_value=1e12),
       st.floats(min_value=1e3, max_value=1e12))
def test_decoherence_channel_valid_for_any_times(elapsed, t1, t2):
    ops = decoherence_kraus(elapsed, t1, t2)
    assert is_trace_preserving(ops)


@given(st.floats(min_value=1e3, max_value=1e10),
       st.floats(min_value=1e3, max_value=1e10))
def test_decoherence_composes_in_time(t_a, t_b):
    """Applying noise for t_a then t_b equals applying it for t_a + t_b."""
    t1, t2 = 5e9, 1e8
    qubit1 = Qubit()
    state1 = QState.from_pure(np.array([1, 1]) / math.sqrt(2), [qubit1])
    state1.apply_channel(decoherence_kraus(t_a, t1, t2), [qubit1])
    state1.apply_channel(decoherence_kraus(t_b, t1, t2), [qubit1])

    qubit2 = Qubit()
    state2 = QState.from_pure(np.array([1, 1]) / math.sqrt(2), [qubit2])
    state2.apply_channel(decoherence_kraus(t_a + t_b, t1, t2), [qubit2])

    assert np.allclose(state1.dm, state2.dm, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(fidelities.filter(lambda f: f >= 0.25), fidelities.filter(lambda f: f >= 0.25),
       st.integers(min_value=0, max_value=10_000))
def test_swap_preserves_state_validity(f_a, f_b, seed):
    rng = random.Random(seed)
    qa, q_mid1 = create_pair(werner_dm(f_a))
    q_mid2, qc = create_pair(werner_dm(f_b))
    bell_state_measurement(q_mid1, q_mid2, rng)
    state = qa.state
    assert state is qc.state
    assert state.is_valid()
    fid = pair_fidelity(qa, qc, 0)
    assert 0.0 <= fid <= 1.0


@settings(max_examples=20, deadline=None)
@given(fidelities.filter(lambda f: f >= 0.5), fidelities.filter(lambda f: f >= 0.5))
def test_averaged_swap_fidelity_below_inputs(f_a, f_b):
    """Swapping never increases fidelity (P2 of Sec 2.3)."""
    result = averaged_swap_dm(werner_dm(f_a), werner_dm(f_b))
    out_fidelity = bell_fidelity(result, 0)
    assert out_fidelity <= min(f_a, f_b) + 1e-9
    assert abs(np.trace(result) - 1.0) < 1e-9


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.9, max_value=1.0), st.floats(min_value=0.0, max_value=0.05))
def test_averaged_swap_monotone_in_gate_noise(fidelity, noise):
    clean = bell_fidelity(averaged_swap_dm(werner_dm(fidelity), werner_dm(fidelity)), 0)
    noisy = bell_fidelity(
        averaged_swap_dm(werner_dm(fidelity), werner_dm(fidelity),
                         NoisyOpParams(two_qubit_gate_fidelity=1.0 - noise)), 0)
    assert noisy <= clean + 1e-9


@settings(max_examples=30, deadline=None)
@given(bell_indices, st.integers(min_value=0, max_value=10_000))
def test_bsm_on_pure_bell_inputs_keeps_purity(index, seed):
    rng = random.Random(seed)
    qa, q_mid1 = create_pair(bell_dm(index))
    q_mid2, qc = create_pair(bell_dm(0))
    outcome = bell_state_measurement(q_mid1, q_mid2, rng)
    expected = swap_combine(index, 0, outcome)
    assert pair_fidelity(qa, qc, expected) > 1.0 - 1e-9
