"""Tests for the campaign harness: spec validation, sharded determinism.

The expensive pins — sharded-vs-serial byte-identity and the end-to-end
CLI — run on the tiny smoke grid (`examples/campaign_smoke.json`) on the
bell backend; everything else is pure spec/report logic and fast.
"""

import json
from pathlib import Path

import pytest

from repro.campaign import (
    AXIS_ORDER,
    CampaignSpec,
    FaultSpec,
    load_spec,
    run_campaign,
    run_cell,
)
from repro.cli import main

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _minimal_axes(**overrides):
    axes = {"topology": ["ring:5"], "formalism": ["bell"],
            "metric": ["hops"], "faults": [None], "circuits": [2],
            "load": [0.7], "seed": [7]}
    axes.update(overrides)
    return axes


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------

class TestSpecValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign axis 'colour'"):
            load_spec({"axes": _minimal_axes(colour=["red"])})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec keys"):
            load_spec({"axes": _minimal_axes(), "horizon": 2.0})

    def test_missing_axes_rejected(self):
        with pytest.raises(ValueError, match="non-empty 'axes'"):
            load_spec({"name": "empty"})

    def test_missing_topology_axis_rejected(self):
        with pytest.raises(ValueError, match="'topology' axis"):
            load_spec({"axes": {"formalism": ["bell"]}})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="axis 'metric' must be a"
                                             " non-empty list"):
            load_spec({"axes": _minimal_axes(metric=[])})

    def test_non_list_axis_rejected(self):
        with pytest.raises(ValueError, match="axis 'formalism'"):
            load_spec({"axes": _minimal_axes(formalism="bell")})

    def test_bad_topology_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology 'moebius'"):
            load_spec({"axes": _minimal_axes(topology=["moebius:4"])})

    def test_bad_topology_shape_rejected(self):
        with pytest.raises(ValueError, match="kind:size"):
            load_spec({"axes": _minimal_axes(topology=["grid"])})
        with pytest.raises(ValueError, match="not an integer"):
            load_spec({"axes": _minimal_axes(topology=["grid:big"])})
        with pytest.raises(ValueError, match="unknown keys"):
            load_spec({"axes": _minimal_axes(
                topology=[{"kind": "grid", "size": 3, "shape": "torus"}])})

    def test_bad_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown path metric 'vibes'"):
            load_spec({"axes": _minimal_axes(metric=["vibes"])})

    def test_bad_formalism_rejected(self):
        with pytest.raises(ValueError, match="unknown formalism 'qutrit'"):
            load_spec({"axes": _minimal_axes(formalism=["qutrit"])})

    def test_bad_faults_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            load_spec({"axes": _minimal_axes(faults=[{"fail": 1}])})
        with pytest.raises(ValueError, match="fail_links"):
            load_spec({"axes": _minimal_axes(faults=[{"fail_links": -1}])})
        with pytest.raises(ValueError, match="mtbf_s"):
            load_spec({"axes": _minimal_axes(
                faults=[{"fail_links": 1, "mtbf_s": 0}])})
        with pytest.raises(ValueError, match="fail_links > 0"):
            load_spec({"axes": _minimal_axes(faults=[{"mttr_s": 1.0}])})

    def test_bad_scalars_rejected(self):
        with pytest.raises(ValueError, match="axis 'circuits'"):
            load_spec({"axes": _minimal_axes(circuits=[0])})
        with pytest.raises(ValueError, match="axis 'load'"):
            load_spec({"axes": _minimal_axes(load=[-0.5])})
        with pytest.raises(ValueError, match="axis 'seed'"):
            load_spec({"axes": _minimal_axes(seed=[1.5])})
        with pytest.raises(ValueError, match="horizon_s"):
            load_spec({"axes": _minimal_axes(), "horizon_s": 0})
        with pytest.raises(ValueError, match="target_fidelity"):
            load_spec({"axes": _minimal_axes(), "target_fidelity": 1.2})
        # below the routing layer's per-circuit floor: reject at load time
        with pytest.raises(ValueError, match="target_fidelity"):
            load_spec({"axes": _minimal_axes(), "target_fidelity": 0.3})

    def test_booleans_are_not_numbers(self):
        with pytest.raises(ValueError, match="axis 'load'"):
            load_spec({"axes": _minimal_axes(load=[True])})
        with pytest.raises(ValueError, match="axis 'circuits'"):
            load_spec({"axes": _minimal_axes(circuits=[True])})
        with pytest.raises(ValueError, match="axis 'seed'"):
            load_spec({"axes": _minimal_axes(seed=[False])})
        with pytest.raises(ValueError, match="horizon_s"):
            load_spec({"axes": _minimal_axes(), "horizon_s": True})
        with pytest.raises(ValueError, match="mtbf_s"):
            load_spec({"axes": _minimal_axes(
                faults=[{"fail_links": 1, "mtbf_s": True}])})

    def test_bad_app_rejected_naming_axis_and_vocabulary(self):
        with pytest.raises(ValueError, match="axis 'app': unknown app"
                                             " 'gaming'"):
            load_spec({"axes": _minimal_axes(app=["gaming"])})
        with pytest.raises(ValueError, match="qkd"):
            load_spec({"axes": _minimal_axes(app=["qkd", "nope"])})
        with pytest.raises(ValueError, match="axis 'app' must be a"
                                             " non-empty list"):
            load_spec({"axes": _minimal_axes(app=[])})

    def test_app_axis_accepts_null_and_names(self):
        spec = load_spec({"axes": _minimal_axes(
            app=[None, "qkd", "teleport"])})
        cells = spec.expand()
        assert [cell.app for cell in cells] == [None, "qkd", "teleport"]
        assert cells[0].label().split()[-2] == "-"
        assert "qkd" in cells[1].label()

    def test_missing_spec_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            load_spec(tmp_path / "ghost.json")

    def test_invalid_json_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_spec(bad)

    def test_workers_validated(self):
        spec = load_spec({"axes": _minimal_axes()})
        with pytest.raises(ValueError, match="workers"):
            run_campaign(spec, workers=0)


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------

class TestExpansion:
    def test_defaults_fill_missing_axes(self):
        spec = load_spec({"axes": {"topology": ["grid:3"]}})
        cells = spec.expand()
        assert len(cells) == 1
        cell = cells[0]
        assert (cell.topology, cell.size) == ("grid", 3)
        assert cell.formalism == "dm"
        assert cell.metric == "hops"
        assert cell.faults == FaultSpec(fail_links=0)

    def test_cross_product_order_is_deterministic(self):
        spec = load_spec({"axes": _minimal_axes(
            topology=["grid:3", "ring:5"], formalism=["dm", "bell"],
            seed=[1, 2])})
        cells = spec.expand()
        assert len(cells) == 8
        assert [cell.index for cell in cells] == list(range(8))
        # topology is the outermost axis, seed the innermost
        assert [cell.topology for cell in cells] == ["grid"] * 4 + ["ring"] * 4
        assert [cell.seed for cell in cells] == [1, 2] * 4
        assert cells == load_spec(
            {"axes": _minimal_axes(topology=["grid:3", "ring:5"],
                                   formalism=["dm", "bell"],
                                   seed=[1, 2])}).expand()

    def test_example_grid_meets_acceptance_shape(self):
        """The shipped grid spec covers the PR's acceptance matrix."""
        spec = load_spec(EXAMPLES_DIR / "campaign_grid.json")
        cells = spec.expand()
        assert len(cells) >= 12
        assert len({(cell.topology, cell.size) for cell in cells}) >= 2
        assert len({cell.formalism for cell in cells}) >= 2
        assert len({cell.metric for cell in cells}) >= 2
        assert any(cell.faults.fail_links for cell in cells)
        assert any(not cell.faults.fail_links for cell in cells)

    def test_smoke_spec_is_four_cells(self):
        spec = load_spec(EXAMPLES_DIR / "campaign_smoke.json")
        assert len(spec.expand()) == 4

    def test_spec_roundtrips_to_dict(self):
        spec = load_spec(EXAMPLES_DIR / "campaign_grid.json")
        data = spec.to_dict()
        assert set(data["axes"]) == set(AXIS_ORDER)
        assert load_spec(data).expand() == spec.expand()


# ----------------------------------------------------------------------
# Execution and sharded determinism
# ----------------------------------------------------------------------

SMOKE_AXES = {"topology": ["ring:5"], "formalism": ["bell"],
              "metric": ["hops"], "faults": [None, {"fail_links": 1}],
              "circuits": [2], "load": [0.7], "seed": [7]}


def _smoke_spec() -> CampaignSpec:
    return load_spec({"name": "pin", "axes": SMOKE_AXES,
                      "horizon_s": 0.3, "drain_s": 0.15})


class TestExecution:
    def test_error_cell_recorded_not_raised(self):
        # A target fidelity above the link ceiling: every candidate pair
        # fails routing, installation gives up, and the cell records the
        # error instead of sinking the campaign.
        spec = load_spec({"axes": _minimal_axes(),
                          "target_fidelity": 0.995})
        result = run_campaign(spec)
        assert result.failed_cells == 1
        assert "RuntimeError" in result.results[0].error
        assert "failed cells" in result.render()
        assert result.to_payload()["cells"][0]["error"]

    def test_run_cell_is_deterministic(self):
        cell = _smoke_spec().expand()[1]
        assert run_cell(cell) == run_cell(cell)

    def test_sharded_run_aggregates_identically_to_serial(self):
        """The tentpole pin: workers=2 must be byte-identical to serial."""
        spec = _smoke_spec()
        serial = run_campaign(spec, workers=1)
        sharded = run_campaign(spec, workers=2)
        assert serial.render() == sharded.render()
        assert (json.dumps(serial.to_payload(), sort_keys=True)
                == json.dumps(sharded.to_payload(), sort_keys=True))
        assert serial.completed_cells == 2
        assert serial.total_pairs > 0
        faulted = serial.results[1]
        assert faulted.link_down_events == 1
        assert faulted.circuits_recovered + faulted.circuits_lost >= 1

    def test_sharded_identity_with_apps(self):
        """The app-axis determinism pin: byte-identical sharded runs."""
        spec = load_spec(EXAMPLES_DIR / "campaign_apps.json")
        serial = run_campaign(spec, workers=1)
        sharded = run_campaign(spec, workers=2)
        assert serial.render() == sharded.render()
        assert (json.dumps(serial.to_payload(), sort_keys=True)
                == json.dumps(sharded.to_payload(), sort_keys=True))
        assert serial.completed_cells == 4
        # every app produced consumed pairs and a headline
        per_app = serial.per_app()
        assert set(per_app) == {"qkd", "distil", "teleport", "certify"}
        for entry in per_app.values():
            assert entry["pairs_consumed"] > 0
            assert entry["circuits"] > 0

    def test_app_marginal_renders(self):
        spec = load_spec(EXAMPLES_DIR / "campaign_apps.json")
        result = run_campaign(spec, workers=1)
        rendered = result.render()
        assert "marginal by app" in rendered
        for column in ("app pairs", "SLO met", "headline"):
            assert column in rendered
        payload = result.to_payload()
        assert set(payload["apps"]) == {"qkd", "distil", "teleport",
                                        "certify"}
        for cell in payload["cells"]:
            assert cell["app"] in payload["apps"]
            assert cell["app_circuits"] >= 1

    def test_cli_campaign_apps_flag_injects_axis(self, tmp_path, capsys):
        out = tmp_path / "campaign.json"
        code = main(["campaign", "--spec",
                     str(EXAMPLES_DIR / "campaign_smoke.json"),
                     "--apps", "teleport", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["spec"]["axes"]["app"] == ["teleport"]
        assert set(payload["apps"]) == {"teleport"}
        with pytest.raises(SystemExit, match="bad --apps"):
            main(["campaign", "--spec",
                  str(EXAMPLES_DIR / "campaign_smoke.json"),
                  "--apps", "clouds"])

    def test_cli_campaign_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "campaign.json"
        code = main(["campaign", "--spec",
                     str(EXAMPLES_DIR / "campaign_smoke.json"),
                     "--workers", "2", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "4 cells" in stdout
        assert "per-cell telemetry" in stdout
        # every multi-valued axis gets its marginal table (smoke spec
        # sweeps faults and seed)
        assert "marginal by faults" in stdout
        assert "marginal by seed" in stdout
        payload = json.loads(out.read_text())
        assert payload["cell_count"] == 4
        assert payload["completed_cells"] == 4
        assert payload["totals"]["pairs"] > 0
        assert len(payload["cells"]) == 4
        assert "revision" in payload

    def test_cli_rejects_bad_spec_and_workers(self, tmp_path):
        with pytest.raises(SystemExit, match="bad campaign spec"):
            main(["campaign", "--spec", str(tmp_path / "ghost.json")])
        with pytest.raises(SystemExit, match="workers"):
            main(["campaign", "--spec",
                  str(EXAMPLES_DIR / "campaign_smoke.json"),
                  "--workers", "0"])
