"""Full-stack integration tests for the QNP.

Every test drives the complete stack: heralded link generation → link layer
→ QNP rules → swaps → tracking → delivery, over real simulated hardware.
"""

from repro.core import DeliveryStatus, RequestStatus, RequestType, UserRequest
from repro.netsim.units import S
from repro.network.builder import build_chain_network, build_dumbbell_network
from repro.quantum import BellIndex


def complete_request(net, circuit_id, request, timeout_s=120.0, **kwargs):
    handle = net.submit(circuit_id, request, **kwargs)
    net.run_until_complete([handle], timeout_s=timeout_s)
    return handle


class TestTwoNodeCircuit:
    """Single link: head and tail are adjacent (no swaps at all)."""

    def test_delivers_pairs(self):
        net = build_chain_network(2, seed=1)
        circuit_id = net.establish_circuit("node0", "node1", 0.85)
        handle = complete_request(net, circuit_id, UserRequest(num_pairs=4),
                                  record_fidelity=True)
        assert handle.status == RequestStatus.COMPLETED
        assert len(handle.delivered) == 4
        assert all(m.fidelity >= 0.85 - 0.02 for m in handle.matched_pairs)

    def test_no_swaps_needed(self):
        net = build_chain_network(2, seed=1)
        circuit_id = net.establish_circuit("node0", "node1", 0.85)
        complete_request(net, circuit_id, UserRequest(num_pairs=3))
        assert net.qnps["node0"].swaps_performed == 0
        assert net.qnps["node1"].swaps_performed == 0


class TestRepeaterChain:
    def test_three_node_delivery_and_fidelity(self):
        net = build_chain_network(3, seed=2)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = complete_request(net, circuit_id, UserRequest(num_pairs=6),
                                  record_fidelity=True)
        assert handle.status == RequestStatus.COMPLETED
        assert len(handle.matched_pairs) == 6
        # Every delivered pair beats the target (worst-case budget honoured).
        for matched in handle.matched_pairs:
            assert matched.fidelity >= 0.8 - 0.02

    def test_swaps_happen_at_intermediate_only(self):
        net = build_chain_network(3, seed=2)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        complete_request(net, circuit_id, UserRequest(num_pairs=5))
        assert net.qnps["node1"].swaps_performed >= 5
        assert net.qnps["node0"].swaps_performed == 0

    def test_bell_state_reported_matches_ground_truth(self):
        """The lazy-tracking XOR algebra against the simulated physics."""
        net = build_chain_network(3, seed=3)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = complete_request(net, circuit_id, UserRequest(num_pairs=8),
                                  record_fidelity=True)
        for matched in handle.matched_pairs:
            # Reported Bell state must agree at both ends and be the state
            # the pair is actually (mostly) in.
            assert matched.head_delivery.bell_state == matched.tail_delivery.bell_state
            assert matched.fidelity > 0.5

    def test_four_node_chain(self):
        net = build_chain_network(4, seed=4)
        circuit_id = net.establish_circuit("node0", "node3", 0.75)
        handle = complete_request(net, circuit_id, UserRequest(num_pairs=4),
                                  record_fidelity=True, timeout_s=200)
        assert handle.status == RequestStatus.COMPLETED
        for matched in handle.matched_pairs:
            assert matched.fidelity >= 0.75 - 0.03

    def test_latency_reasonable_for_chain(self):
        # ~10 ms per 0.95 link pair; an 0.8 circuit is faster.  A 5-pair
        # request should finish within a couple of simulated seconds.
        net = build_chain_network(3, seed=5)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = complete_request(net, circuit_id, UserRequest(num_pairs=5))
        assert handle.latency is not None
        assert handle.latency < 5 * S


class TestFinalState:
    def test_pauli_correction_to_requested_state(self):
        net = build_chain_network(3, seed=6)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = complete_request(
            net, circuit_id,
            UserRequest(num_pairs=6, final_state=BellIndex.PHI_PLUS),
            record_fidelity=True)
        assert handle.status == RequestStatus.COMPLETED
        assert all(m.head_delivery.bell_state == BellIndex.PHI_PLUS
                   for m in handle.matched_pairs)
        # Fidelity is measured against the reported state: correction
        # really happened physically.  A BSM readout error (0.2% per bit)
        # mislabels the swap outcome, so tracking then applies the wrong
        # frame to that one pair — modeled physics, not a tracking bug.
        # With ~0.4% per swap the chance of two such pairs in one run is
        # ~1e-4, so require at most one outlier.
        corrected = [m for m in handle.matched_pairs if m.fidelity >= 0.75]
        assert len(corrected) >= len(handle.matched_pairs) - 1
        assert len(handle.matched_pairs) == 6


class TestMeasureRequests:
    def test_outcomes_delivered_with_bell_state(self):
        net = build_chain_network(3, seed=7)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = complete_request(
            net, circuit_id,
            UserRequest(num_pairs=10, request_type=RequestType.MEASURE,
                        measure_basis="Z"))
        assert handle.status == RequestStatus.COMPLETED
        for delivery in handle.delivered:
            assert delivery.measurement in (0, 1)
            assert delivery.qubit is None
            assert delivery.bell_state is not None

    def test_measurement_correlations(self):
        """BBM92 sanity: Z⊗Z outcomes correlate according to the Bell state.

        For an F≥0.9 circuit the Z error rate e_Z = p1+p3 is bounded by
        1−F = 0.1, so the correlation ratio must clear 0.85 comfortably.
        """
        net = build_chain_network(3, seed=8)
        circuit_id = net.establish_circuit("node0", "node2", 0.9)
        handle = complete_request(
            net, circuit_id,
            UserRequest(num_pairs=40, request_type=RequestType.MEASURE),
            timeout_s=300)
        tail_by_pair = {d.pair_id: d for d in handle.tail_deliveries
                        if d.status == DeliveryStatus.CONFIRMED}
        checked = 0
        good = 0
        for head_delivery in handle.delivered:
            tail_delivery = tail_by_pair.get(head_delivery.pair_id)
            if tail_delivery is None:
                continue
            checked += 1
            # Ψ states anticorrelate in Z, Φ states correlate.
            parity = int(head_delivery.bell_state) & 1
            if (head_delivery.measurement ^ tail_delivery.measurement) == parity:
                good += 1
        assert checked >= 30
        assert good / checked > 0.85  # QBER well below 15%


class TestEarlyDelivery:
    def test_pending_then_confirmed(self):
        net = build_chain_network(3, seed=9)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        events = []
        handle = net.submit(circuit_id,
                            UserRequest(num_pairs=3,
                                        request_type=RequestType.EARLY))
        handle.on_delivery(lambda d: events.append((d.status, d.pair_id)))
        net.run_until_complete([handle], timeout_s=120)
        assert handle.status == RequestStatus.COMPLETED
        statuses = [status for status, _ in events]
        assert DeliveryStatus.PENDING in statuses
        assert statuses.count(DeliveryStatus.CONFIRMED) == 3
        # Confirmation carries the Bell state.
        confirmed = [d for d in handle.delivered if d.status == DeliveryStatus.CONFIRMED]
        assert all(d.bell_state is not None for d in confirmed)


class TestAggregation:
    def test_multiple_requests_share_circuit(self):
        net = build_chain_network(3, seed=10)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handles = [net.submit(circuit_id, UserRequest(num_pairs=4))
                   for _ in range(3)]
        net.run_until_complete(handles, timeout_s=300)
        for handle in handles:
            assert handle.status == RequestStatus.COMPLETED
            assert len(handle.delivered) == 4

    def test_sequential_requests(self):
        net = build_chain_network(3, seed=11)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        first = complete_request(net, circuit_id, UserRequest(num_pairs=3))
        second = complete_request(net, circuit_id, UserRequest(num_pairs=3))
        assert first.status == second.status == RequestStatus.COMPLETED

    def test_rate_request_cancel(self):
        net = build_chain_network(3, seed=12)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = net.submit(circuit_id, UserRequest(rate=5.0))
        net.run(until_s=net.sim.now / 1e9 + 3.0)
        delivered_before = len(handle.delivered)
        assert delivered_before > 0
        net.qnps["node0"].cancel(circuit_id, handle.request_id)
        assert handle.status == RequestStatus.COMPLETED


class TestPolicingAndShaping:
    def test_oversized_request_rejected(self):
        net = build_chain_network(3, seed=13)
        circuit_id = net.establish_circuit("node0", "node2", 0.8, max_eer=5.0)
        handle = net.submit(circuit_id, UserRequest(rate=50.0))
        assert handle.status == RequestStatus.REJECTED
        assert not handle.delivered

    def test_shaped_request_starts_after_first_completes(self):
        net = build_chain_network(3, seed=14)
        circuit_id = net.establish_circuit("node0", "node2", 0.8, max_eer=10.0)
        first = net.submit(circuit_id, UserRequest(num_pairs=3, delta_t=0.5 * S))
        second = net.submit(circuit_id, UserRequest(num_pairs=3, delta_t=0.5 * S))
        assert first.status == RequestStatus.ACTIVE
        assert second.status == RequestStatus.QUEUED
        net.run_until_complete([first, second], timeout_s=300)
        assert first.status == RequestStatus.COMPLETED
        assert second.status == RequestStatus.COMPLETED
        assert second.t_started >= first.t_completed


class TestDumbbell:
    def test_competing_circuits_both_progress(self):
        net = build_dumbbell_network(seed=15)
        first = net.establish_circuit("A0", "B0", 0.8, "short")
        second = net.establish_circuit("A1", "B1", 0.8, "short")
        handle_a = net.submit(first, UserRequest(num_pairs=5))
        handle_b = net.submit(second, UserRequest(num_pairs=5))
        net.run_until_complete([handle_a, handle_b], timeout_s=300)
        assert handle_a.status == RequestStatus.COMPLETED
        assert handle_b.status == RequestStatus.COMPLETED

    def test_bottleneck_is_shared(self):
        net = build_dumbbell_network(seed=16)
        first = net.establish_circuit("A0", "B0", 0.8, "short")
        second = net.establish_circuit("A1", "B1", 0.8, "short")
        net.submit(first, UserRequest(num_pairs=1000))
        net.submit(second, UserRequest(num_pairs=1000))
        net.run(until_s=net.sim.now / 1e9 + 5.0)
        bottleneck = net.link_between("MA", "MB")
        # Both circuit labels produced pairs on the bottleneck.
        assert bottleneck.pairs_generated > 10


class TestStatistics:
    def test_counters_track_activity(self):
        net = build_chain_network(3, seed=17)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        complete_request(net, circuit_id, UserRequest(num_pairs=5))
        middle = net.qnps["node1"]
        assert middle.swaps_performed >= 5
        assert middle.tracks_relayed >= 5
        head = net.qnps["node0"]
        assert head.pairs_delivered == 5
