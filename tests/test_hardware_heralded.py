"""Tests for fibre and the single-click heralded entanglement model."""

import random

import numpy as np
import pytest

from repro.hardware import (
    FibreSegment,
    Herald,
    HeraldedConnection,
    MidpointHeraldModel,
    MidpointStation,
    NEAR_TERM,
    Photon,
    SIMULATION,
    SingleClickModel,
)
from repro.netsim import Simulator
from repro.netsim.units import MS, US, fibre_delay
from repro.quantum import BellIndex, bell_fidelity


def lab_model(length_km=0.002, params=SIMULATION):
    return SingleClickModel(params, HeraldedConnection.lab(length_km))


class TestFibre:
    def test_segment_validation(self):
        with pytest.raises(ValueError):
            FibreSegment(-1.0)
        with pytest.raises(ValueError):
            FibreSegment(1.0, attenuation_db_per_km=-2.0)

    def test_transmissivity_and_delay(self):
        segment = FibreSegment(2.0, 5.0)
        assert segment.transmissivity == pytest.approx(10 ** -1.0)
        assert segment.delay == pytest.approx(fibre_delay(2.0))

    def test_symmetric_connection(self):
        connection = HeraldedConnection.lab(2.0)
        assert connection.total_length_km == pytest.approx(2.0)
        assert connection.segment_a.length_km == pytest.approx(1.0)
        # Round trip: photon to midpoint + herald back.
        assert connection.herald_round_trip == pytest.approx(2 * fibre_delay(1.0))

    def test_telecom_attenuation(self):
        connection = HeraldedConnection.telecom(25.0)
        assert connection.segment_a.attenuation_db_per_km == 0.5


class TestSingleClick:
    """Link-level physics properties of the analytic single-click model.

    ``model_cls`` lets :class:`TestMidpointSingleClick` re-run the whole
    suite against the time-windowed midpoint model — the ISSUE's contract
    that both physical models satisfy the same link-level physics.
    """

    model_cls = SingleClickModel

    def make(self, connection=None, params=SIMULATION):
        return self.model_cls(params,
                              connection or HeraldedConnection.lab(0.002))

    def test_cycle_time_dominated_by_overhead_on_short_link(self):
        model = self.make()
        assert 2 * US < model.cycle_time < 20 * US

    def test_success_probability_increases_with_alpha(self):
        model = self.make()
        assert model.success_probability(0.2) > model.success_probability(0.05)

    def test_success_probability_bounds(self):
        model = self.make()
        for alpha in (0.001, 0.05, 0.3, 0.5):
            assert 0.0 < model.success_probability(alpha) <= 1.0

    def test_alpha_validation(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.success_probability(0.0)
        with pytest.raises(ValueError):
            model.success_probability(0.6)

    def test_fidelity_decreases_with_alpha(self):
        model = self.make()
        assert model.fidelity(0.05) > model.fidelity(0.2) > model.fidelity(0.4)

    def test_fidelity_rate_tradeoff(self):
        """The P1 knob: higher fidelity costs rate (Sec 2.3)."""
        model = self.make()
        alpha_high_f = model.alpha_for_fidelity(0.95)
        alpha_low_f = model.alpha_for_fidelity(0.80)
        assert alpha_low_f > alpha_high_f
        assert model.expected_pair_time(alpha_low_f) < model.expected_pair_time(alpha_high_f)

    def test_alpha_for_fidelity_meets_target(self):
        model = self.make()
        for target in (0.8, 0.9, 0.95, 0.97):
            alpha = model.alpha_for_fidelity(target)
            assert model.fidelity(alpha) >= target - 1e-9

    def test_unreachable_fidelity_rejected(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.alpha_for_fidelity(0.9999)

    def test_near_term_visibility_limits_fidelity(self):
        model = self.make(HeraldedConnection.telecom(25.0), NEAR_TERM)
        # Visibility 0.9 caps fidelity well below 0.95.
        with pytest.raises(ValueError):
            model.alpha_for_fidelity(0.95)
        alpha = model.alpha_for_fidelity(0.8)
        assert model.fidelity(alpha) >= 0.8

    def test_produced_dm_fidelity_matches_analytic(self):
        model = self.make()
        for alpha in (0.01, 0.05, 0.2):
            for index in (BellIndex.PSI_PLUS, BellIndex.PSI_MINUS):
                dm = model.produced_dm(alpha, index)
                assert np.trace(dm) == pytest.approx(1.0)
                assert bell_fidelity(dm, index) == pytest.approx(model.fidelity(alpha))

    def test_produced_dm_rejects_phi_states(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.produced_dm(0.05, BellIndex.PHI_PLUS)

    def test_produced_dm_is_valid_state(self):
        model = self.make(HeraldedConnection.telecom(25.0), NEAR_TERM)
        dm = model.produced_dm(0.3, BellIndex.PSI_PLUS)
        eigenvalues = np.linalg.eigvalsh(dm)
        assert eigenvalues.min() > -1e-12

    def test_fig5_calibration_mean_time(self):
        """Fig 5: F=0.95 pairs over 2 m take ~10 ms on average."""
        model = self.make()
        alpha = model.alpha_for_fidelity(0.95)
        mean_time = model.expected_pair_time(alpha)
        assert 5 * MS < mean_time < 20 * MS

    def test_fig5_calibration_95th_percentile(self):
        """Fig 5: 95% of pairs within ~30 ms (we allow 15–60 ms)."""
        model = self.make()
        alpha = model.alpha_for_fidelity(0.95)
        q95 = model.time_quantile(alpha, 0.95)
        assert 15 * MS < q95 < 60 * MS

    def test_time_quantile_validation(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.time_quantile(0.05, 1.0)

    def test_sample_attempts_geometric_mean(self):
        model = self.make()
        rng = random.Random(5)
        alpha = 0.1
        samples = [model.sample_attempts(alpha, rng) for _ in range(4000)]
        expected_mean = 1.0 / model.success_probability(alpha)
        assert np.mean(samples) == pytest.approx(expected_mean, rel=0.1)
        assert min(samples) >= 1

    def test_sample_produces_both_psi_states(self):
        model = self.make()
        rng = random.Random(7)
        seen = {model.sample(0.1, rng).bell_index for _ in range(50)}
        assert seen == {BellIndex.PSI_PLUS, BellIndex.PSI_MINUS}

    def test_sample_duration_consistent(self):
        model = self.make()
        rng = random.Random(8)
        sample = model.sample(0.1, rng)
        assert sample.duration == pytest.approx(sample.attempts * model.cycle_time)

    def test_near_term_is_much_slower(self):
        lab = self.make()
        near = self.make(HeraldedConnection.telecom(25.0), NEAR_TERM)
        alpha_lab = lab.alpha_for_fidelity(0.9)
        alpha_near = near.alpha_for_fidelity(0.75)
        assert near.expected_pair_time(alpha_near) > 10 * lab.expected_pair_time(alpha_lab)


class TestMidpointSingleClick(TestSingleClick):
    """The midpoint model must pass the same link-level physics suite."""

    model_cls = MidpointHeraldModel


class TestMidpointHeraldModel:
    def make(self, coincidence_window=None, params=SIMULATION):
        return MidpointHeraldModel(params, HeraldedConnection.lab(0.002),
                                   coincidence_window=coincidence_window)

    def test_window_defaults_to_detection_window(self):
        model = self.make()
        assert model.coincidence_window == pytest.approx(SIMULATION.tau_w)

    def test_non_positive_window_rejected(self):
        with pytest.raises(ValueError):
            self.make(coincidence_window=0.0)
        with pytest.raises(ValueError):
            self.make(coincidence_window=-1.0)

    def test_window_acceptance_in_unit_interval(self):
        for window in (1.0, 10.0, 25.0, 100.0):
            acceptance = self.make(coincidence_window=window).window_acceptance
            assert 0.0 < acceptance < 1.0

    def test_wider_window_accepts_more(self):
        narrow = self.make(coincidence_window=5.0)
        wide = self.make(coincidence_window=50.0)
        assert wide.window_acceptance > narrow.window_acceptance
        assert wide.detection_efficiency > narrow.detection_efficiency

    def test_detection_efficiency_below_analytic(self):
        analytic = lab_model()
        midpoint = self.make()
        assert midpoint.detection_efficiency < analytic.detection_efficiency
        assert midpoint.detection_efficiency == pytest.approx(
            analytic.detection_efficiency * midpoint.window_acceptance)

    def test_dark_probability_matches_analytic_at_default_window(self):
        analytic = lab_model()
        midpoint = self.make()
        assert midpoint.dark_probability() == pytest.approx(
            analytic.dark_probability())

    def test_wider_window_collects_more_dark_counts(self):
        narrow = self.make(coincidence_window=5.0)
        wide = self.make(coincidence_window=100.0)
        assert wide.dark_probability() > narrow.dark_probability()


class TestMidpointStation:
    def make(self, window=25.0):
        sim = Simulator(seed=1)
        station = MidpointStation(sim, name="mid", coincidence_window=window)
        heralds = []
        from repro.netsim.ports import subscribe

        subscribe(station.port("a"), heralds.append)
        return sim, station, heralds

    def test_non_positive_window_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MidpointStation(sim, coincidence_window=0.0)

    def test_single_click_heralds_success(self):
        sim, station, heralds = self.make()
        station.port("a").peer  # port must exist
        station._on_photon(Photon(detector=0))
        sim.run()
        assert station.windows == 1 and station.heralds == 1
        assert heralds == [Herald(success=True,
                                  bell_index=BellIndex.PSI_PLUS, clicks=1)]

    def test_detector_one_heralds_psi_minus(self):
        sim, station, heralds = self.make()
        station._on_photon(Photon(detector=1))
        sim.run()
        assert heralds[0].bell_index is BellIndex.PSI_MINUS

    def test_double_click_within_window_rejected(self):
        sim, station, heralds = self.make()
        station._on_photon(Photon(detector=0))
        station._on_photon(Photon(detector=1))
        sim.run()
        assert station.windows == 1 and station.rejected == 1
        assert heralds == [Herald(success=False, bell_index=None, clicks=2)]

    def test_photons_outside_window_open_new_window(self):
        sim, station, heralds = self.make(window=10.0)
        station._on_photon(Photon(detector=0))
        sim.run()
        station._on_photon(Photon(detector=0))
        sim.run()
        assert station.windows == 2 and station.heralds == 2

    def test_record_herald_counts_fast_forwarded_success(self):
        sim, station, heralds = self.make()
        station.record_herald(BellIndex.PSI_PLUS)
        assert station.windows == 1 and station.heralds == 1
        assert heralds[0].success and heralds[0].bell_index is BellIndex.PSI_PLUS


class TestMidpointNetwork:
    def test_builder_wires_station_per_link(self):
        from repro.network.builder import Network
        from repro.netsim import Simulator as Sim

        net = Network(Sim(seed=3), SIMULATION, physical="midpoint")
        net.add_node("a")
        net.add_node("b")
        link = net.connect("a", "b", 0.002)
        station = net.stations[frozenset(("a", "b"))]
        assert link.station is station
        assert isinstance(link.model, MidpointHeraldModel)

    def test_unknown_physical_model_rejected(self):
        from repro.network.builder import Network
        from repro.netsim import Simulator as Sim

        with pytest.raises(ValueError):
            Network(Sim(), SIMULATION, physical="nope")
        net = Network(Sim(), SIMULATION)
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(ValueError):
            net.connect("a", "b", 0.002, physical="nope")

    def test_per_link_override_on_analytic_network(self):
        from repro.network.builder import Network
        from repro.netsim import Simulator as Sim

        net = Network(Sim(seed=3), SIMULATION)
        net.add_node("a")
        net.add_node("b")
        net.add_node("c")
        net.connect("a", "b", 0.002)
        net.connect("b", "c", 0.002, physical="midpoint")
        assert frozenset(("a", "b")) not in net.stations
        assert frozenset(("b", "c")) in net.stations

    def test_topology_builder_threads_physical_model(self):
        from repro.traffic import build_topology

        net = build_topology("grid", 2, seed=7, formalism="bell",
                             physical="midpoint")
        assert set(net.stations) == set(net.links)
        for link in net.links.values():
            assert isinstance(link.model, MidpointHeraldModel)

    def test_midpoint_link_generates_pairs(self):
        from repro.linklayer import Link
        from repro.netsim import S
        from repro.netsim.ports import subscribe
        from repro.network import QuantumNode

        sim = Simulator(seed=7)
        node_a = QuantumNode(sim, "alice", SIMULATION)
        node_b = QuantumNode(sim, "bob", SIMULATION)
        model = MidpointHeraldModel(SIMULATION, HeraldedConnection.lab(0.002))
        link = Link(sim, "alice-bob", node_a, node_b, model, 100)
        node_a.attach_link(link, "bob")
        node_b.attach_link(link, "alice")
        station = MidpointStation(sim, name="mid",
                                  coincidence_window=model.coincidence_window)
        link.attach_station(station)
        inbox_a = []

        def consume_a(delivery):
            inbox_a.append(delivery)
            node_a.qmm.free(delivery.entanglement_id)

        def consume_b(delivery):
            node_b.qmm.free(delivery.entanglement_id)

        subscribe(link.delivery_port("alice"), consume_a)
        subscribe(link.delivery_port("bob"), consume_b)
        link.set_request("vc0", min_fidelity=0.9, lpr=50.0)
        sim.run(until=1 * S)
        assert len(inbox_a) > 5
        assert station.heralds == len(inbox_a)
        assert link.last_herald is not None and link.last_herald.success
