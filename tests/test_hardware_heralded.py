"""Tests for fibre and the single-click heralded entanglement model."""

import random

import numpy as np
import pytest

from repro.hardware import (
    FibreSegment,
    HeraldedConnection,
    NEAR_TERM,
    SIMULATION,
    SingleClickModel,
)
from repro.netsim.units import MS, US, fibre_delay
from repro.quantum import BellIndex, bell_fidelity


def lab_model(length_km=0.002, params=SIMULATION):
    return SingleClickModel(params, HeraldedConnection.lab(length_km))


class TestFibre:
    def test_segment_validation(self):
        with pytest.raises(ValueError):
            FibreSegment(-1.0)
        with pytest.raises(ValueError):
            FibreSegment(1.0, attenuation_db_per_km=-2.0)

    def test_transmissivity_and_delay(self):
        segment = FibreSegment(2.0, 5.0)
        assert segment.transmissivity == pytest.approx(10 ** -1.0)
        assert segment.delay == pytest.approx(fibre_delay(2.0))

    def test_symmetric_connection(self):
        connection = HeraldedConnection.lab(2.0)
        assert connection.total_length_km == pytest.approx(2.0)
        assert connection.segment_a.length_km == pytest.approx(1.0)
        # Round trip: photon to midpoint + herald back.
        assert connection.herald_round_trip == pytest.approx(2 * fibre_delay(1.0))

    def test_telecom_attenuation(self):
        connection = HeraldedConnection.telecom(25.0)
        assert connection.segment_a.attenuation_db_per_km == 0.5


class TestSingleClick:
    def test_cycle_time_dominated_by_overhead_on_short_link(self):
        model = lab_model()
        assert 2 * US < model.cycle_time < 20 * US

    def test_success_probability_increases_with_alpha(self):
        model = lab_model()
        assert model.success_probability(0.2) > model.success_probability(0.05)

    def test_success_probability_bounds(self):
        model = lab_model()
        for alpha in (0.001, 0.05, 0.3, 0.5):
            assert 0.0 < model.success_probability(alpha) <= 1.0

    def test_alpha_validation(self):
        model = lab_model()
        with pytest.raises(ValueError):
            model.success_probability(0.0)
        with pytest.raises(ValueError):
            model.success_probability(0.6)

    def test_fidelity_decreases_with_alpha(self):
        model = lab_model()
        assert model.fidelity(0.05) > model.fidelity(0.2) > model.fidelity(0.4)

    def test_fidelity_rate_tradeoff(self):
        """The P1 knob: higher fidelity costs rate (Sec 2.3)."""
        model = lab_model()
        alpha_high_f = model.alpha_for_fidelity(0.95)
        alpha_low_f = model.alpha_for_fidelity(0.80)
        assert alpha_low_f > alpha_high_f
        assert model.expected_pair_time(alpha_low_f) < model.expected_pair_time(alpha_high_f)

    def test_alpha_for_fidelity_meets_target(self):
        model = lab_model()
        for target in (0.8, 0.9, 0.95, 0.97):
            alpha = model.alpha_for_fidelity(target)
            assert model.fidelity(alpha) >= target - 1e-9

    def test_unreachable_fidelity_rejected(self):
        model = lab_model()
        with pytest.raises(ValueError):
            model.alpha_for_fidelity(0.9999)

    def test_near_term_visibility_limits_fidelity(self):
        model = SingleClickModel(NEAR_TERM, HeraldedConnection.telecom(25.0))
        # Visibility 0.9 caps fidelity well below 0.95.
        with pytest.raises(ValueError):
            model.alpha_for_fidelity(0.95)
        alpha = model.alpha_for_fidelity(0.8)
        assert model.fidelity(alpha) >= 0.8

    def test_produced_dm_fidelity_matches_analytic(self):
        model = lab_model()
        for alpha in (0.01, 0.05, 0.2):
            for index in (BellIndex.PSI_PLUS, BellIndex.PSI_MINUS):
                dm = model.produced_dm(alpha, index)
                assert np.trace(dm) == pytest.approx(1.0)
                assert bell_fidelity(dm, index) == pytest.approx(model.fidelity(alpha))

    def test_produced_dm_rejects_phi_states(self):
        model = lab_model()
        with pytest.raises(ValueError):
            model.produced_dm(0.05, BellIndex.PHI_PLUS)

    def test_produced_dm_is_valid_state(self):
        model = SingleClickModel(NEAR_TERM, HeraldedConnection.telecom(25.0))
        dm = model.produced_dm(0.3, BellIndex.PSI_PLUS)
        eigenvalues = np.linalg.eigvalsh(dm)
        assert eigenvalues.min() > -1e-12

    def test_fig5_calibration_mean_time(self):
        """Fig 5: F=0.95 pairs over 2 m take ~10 ms on average."""
        model = lab_model(0.002)
        alpha = model.alpha_for_fidelity(0.95)
        mean_time = model.expected_pair_time(alpha)
        assert 5 * MS < mean_time < 20 * MS

    def test_fig5_calibration_95th_percentile(self):
        """Fig 5: 95% of pairs within ~30 ms (we allow 15–60 ms)."""
        model = lab_model(0.002)
        alpha = model.alpha_for_fidelity(0.95)
        q95 = model.time_quantile(alpha, 0.95)
        assert 15 * MS < q95 < 60 * MS

    def test_time_quantile_validation(self):
        model = lab_model()
        with pytest.raises(ValueError):
            model.time_quantile(0.05, 1.0)

    def test_sample_attempts_geometric_mean(self):
        model = lab_model()
        rng = random.Random(5)
        alpha = 0.1
        samples = [model.sample_attempts(alpha, rng) for _ in range(4000)]
        expected_mean = 1.0 / model.success_probability(alpha)
        assert np.mean(samples) == pytest.approx(expected_mean, rel=0.1)
        assert min(samples) >= 1

    def test_sample_produces_both_psi_states(self):
        model = lab_model()
        rng = random.Random(7)
        seen = {model.sample(0.1, rng).bell_index for _ in range(50)}
        assert seen == {BellIndex.PSI_PLUS, BellIndex.PSI_MINUS}

    def test_sample_duration_consistent(self):
        model = lab_model()
        rng = random.Random(8)
        sample = model.sample(0.1, rng)
        assert sample.duration == pytest.approx(sample.attempts * model.cycle_time)

    def test_near_term_is_much_slower(self):
        lab = lab_model()
        near = SingleClickModel(NEAR_TERM, HeraldedConnection.telecom(25.0))
        alpha_lab = lab.alpha_for_fidelity(0.9)
        alpha_near = near.alpha_for_fidelity(0.75)
        assert near.expected_pair_time(alpha_near) > 10 * lab.expected_pair_time(alpha_lab)
