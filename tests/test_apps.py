"""Tests for the application service layer (`repro.apps`).

Unit level: the SLO schema, the registry, and each app service fed
synthetic matched pairs of known fidelity.  Integration level: traffic
runs with apps assigned round-robin, app fidelity demands shaping
routing, and the PR's acceptance pins — qkd distils nonzero key with
QBER consistent with its circuits' fidelity, and distillation lands
strictly above the same run's raw circuit fidelity.
"""

import random

import pytest

from repro.apps import (
    AppContext,
    CLASSICAL_TELEPORT_FIDELITY,
    QKD_DEMAND_FIDELITY,
    QKD_MAX_QBER,
    SLOTarget,
    app_names,
    evaluate_slo,
    get_app,
    summarise_apps,
    teleport_fidelity,
    werner_qber,
)
from repro.apps.qkd import binary_entropy, secret_fraction
from repro.core.requests import DeliveryStatus, PairDelivery
from repro.network.builder import MatchedPair
from repro.quantum.backends import get_backend
from repro.quantum.bell import BellIndex
from repro.quantum.fidelity import pair_fidelity
from repro.quantum.operations import measure_qubit
from repro.traffic import TrafficEngine, build_topology


# ----------------------------------------------------------------------
# Helpers: synthetic matched pairs and devices
# ----------------------------------------------------------------------

class FakeDevice:
    """Minimal stand-in for a node device (measure via the engine)."""

    def __init__(self, rng):
        self.rng = rng

    def measure(self, qubit, basis="Z"):
        """Measure like NVDevice.measure: returns (bit, duration)."""
        return measure_qubit(qubit, self.rng, basis), 0.0


def make_context(seed=1, app_index=0, target_fidelity=0.7):
    rng = random.Random(seed)
    return AppContext(
        circuit_index=app_index, circuit_id=f"vc{app_index}",
        head="a", tail="b",
        head_device=FakeDevice(random.Random(seed + 1)),
        tail_device=FakeDevice(random.Random(seed + 2)),
        rng=rng, estimated_fidelity=target_fidelity,
        target_fidelity=target_fidelity)


_SEQ = [0]


def make_pair(fidelity, formalism="dm", bell=BellIndex.PHI_PLUS):
    """A synthetic confirmed MatchedPair holding a live Werner-like pair.

    The weights are expressed relative to the reported Bell state, the
    way link pairs are delivered.
    """
    p = (1.0 - fidelity) / 3.0
    weights = [p, p, p, p]
    weights[int(bell)] = fidelity
    qubit_a, qubit_b = get_backend(formalism).create_pair_from_weights(weights)
    _SEQ[0] += 1
    pair_id = ("t", _SEQ[0])

    def delivery(qubit):
        return PairDelivery(
            request_id="req", sequence=_SEQ[0],
            status=DeliveryStatus.CONFIRMED, qubit=qubit, measurement=None,
            bell_state=bell, pair_id=pair_id, t_created=0.0, t_delivered=0.0)

    return MatchedPair(
        pair_id=pair_id, head_delivery=delivery(qubit_a),
        tail_delivery=delivery(qubit_b),
        fidelity=pair_fidelity(qubit_a, qubit_b, int(bell)))


# ----------------------------------------------------------------------
# SLO schema
# ----------------------------------------------------------------------

class TestSLO:
    def test_senses(self):
        assert SLOTarget("m", 1.0, "<=").check(1.0).ok
        assert not SLOTarget("m", 1.0, "<").check(1.0).ok
        assert SLOTarget("m", 1.0, ">=").check(1.0).ok
        assert not SLOTarget("m", 1.0, ">").check(1.0).ok
        with pytest.raises(ValueError, match="sense"):
            SLOTarget("m", 1.0, "==")

    def test_missing_metric_never_met(self):
        verdict = evaluate_slo((SLOTarget("ghost", 0.0, ">="),), {})
        assert not verdict.met
        assert verdict.checks[0].value is None

    def test_verdict_is_conjunction(self):
        targets = (SLOTarget("a", 1.0, ">="), SLOTarget("b", 1.0, "<="))
        assert evaluate_slo(targets, {"a": 2.0, "b": 0.5}).met
        missed = evaluate_slo(targets, {"a": 2.0, "b": 2.0})
        assert not missed.met
        assert [check.metric for check in missed.failed_checks] == ["b"]

    def test_verdict_serialises(self):
        verdict = evaluate_slo((SLOTarget("a", 1.0, ">"),), {"a": 2.0})
        data = verdict.to_dict()
        assert data["met"] is True
        assert data["checks"][0]["metric"] == "a"

    def test_werner_qber(self):
        assert werner_qber(1.0) == 0.0
        assert werner_qber(0.8) == pytest.approx(2.0 / 15.0)
        assert QKD_MAX_QBER == pytest.approx(werner_qber(0.8))
        with pytest.raises(ValueError):
            werner_qber(1.5)

    def test_teleport_fidelity(self):
        assert teleport_fidelity(1.0) == pytest.approx(1.0)
        # a bare separable pair teleports no better than classical
        assert teleport_fidelity(0.5) == pytest.approx(
            CLASSICAL_TELEPORT_FIDELITY, abs=1e-9)
        with pytest.raises(ValueError):
            teleport_fidelity(-0.1)

    def test_secret_fraction(self):
        assert secret_fraction(0.0, 0.0) == pytest.approx(1.0)
        assert secret_fraction(0.5, 0.5) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            secret_fraction(1.5, 0.0)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_four_apps_registered(self):
        assert set(app_names()) >= {"qkd", "distil", "teleport", "certify"}

    def test_unknown_app_names_vocabulary(self):
        with pytest.raises(ValueError, match="unknown app 'emailing'"):
            get_app("emailing")
        with pytest.raises(ValueError, match="qkd"):
            get_app("nope")

    def test_qkd_demands_fidelity(self):
        assert get_app("qkd").min_fidelity == QKD_DEMAND_FIDELITY
        assert get_app("teleport").min_fidelity == 0.0


# ----------------------------------------------------------------------
# App services on synthetic pairs
# ----------------------------------------------------------------------

class TestQKDApp:
    def test_high_fidelity_stream_distils_key(self):
        app = get_app("qkd")(make_context(seed=3))
        for _ in range(400):
            assert app.consume(make_pair(0.97)) is True
        outcome = app.finalise(elapsed_s=2.0)
        assert outcome.app == "qkd"
        assert outcome.pairs_consumed == 400
        metrics = outcome.metrics
        assert 0 < metrics["sifted_rounds"] < 400
        assert metrics["qber"] < QKD_MAX_QBER
        assert metrics["secret_key_rate_bps"] > 0
        assert outcome.slo.met
        assert outcome.headline == metrics["secret_key_rate_bps"]

    def test_noisy_stream_misses_slo(self):
        app = get_app("qkd")(make_context(seed=4))
        for _ in range(300):
            app.consume(make_pair(0.6))
        outcome = app.finalise(elapsed_s=1.0)
        assert outcome.metrics["qber"] > QKD_MAX_QBER
        assert outcome.metrics["secret_key_rate_bps"] == 0.0
        assert not outcome.slo.met

    def test_qber_tracks_werner_relation(self):
        """Mixed-basis sifted QBER ≈ 2(1−F)/3 for Werner streams."""
        fidelity = 0.85
        app = get_app("qkd")(make_context(seed=5))
        for _ in range(2000):
            app.consume(make_pair(fidelity))
        metrics = app.finalise(elapsed_s=1.0).metrics
        assert metrics["qber"] == pytest.approx(werner_qber(fidelity),
                                                abs=0.03)


class TestDistilApp:
    def test_distillation_gains_on_werner_stream(self):
        app = get_app("distil")(make_context(seed=6))
        for _ in range(200):
            assert app.consume(make_pair(0.8)) is True
        outcome = app.finalise(elapsed_s=1.0)
        metrics = outcome.metrics
        assert metrics["pairs_out"] > 0
        assert metrics["rounds_attempted"] >= 2
        assert metrics["distilled_fidelity"] > metrics["raw_fidelity"]
        assert metrics["fidelity_gain"] > 0
        assert outcome.slo.met

    def test_pending_buffers_are_freed(self):
        app = get_app("distil")(make_context(seed=7))
        pair = make_pair(0.9)
        app.consume(pair)  # a lone pair can never distil
        outcome = app.finalise(elapsed_s=1.0)
        assert outcome.metrics["pairs_out"] == 0
        # the buffered qubits were freed at finalise
        assert pair.head_delivery.qubit.state is None
        assert pair.tail_delivery.qubit.state is None
        assert not outcome.slo.met  # no round ever ran


class TestTeleportApp:
    @pytest.mark.parametrize("formalism", ["dm", "bell"])
    def test_teleported_fidelity_relation(self, formalism):
        app = get_app("teleport")(make_context(seed=8))
        for bell in (BellIndex.PHI_PLUS, BellIndex.PSI_PLUS,
                     BellIndex.PHI_MINUS, BellIndex.PSI_MINUS):
            assert app.consume(make_pair(0.9, formalism, bell)) is False
        outcome = app.finalise(elapsed_s=1.0)
        metrics = outcome.metrics
        assert metrics["states_teleported"] == 4
        # every non-Φ+ delivery needed a frame correction
        assert metrics["corrections_applied"] == 3
        assert metrics["frame_I"] == 1 and metrics["frame_XZ"] == 1
        assert metrics["teleported_fidelity"] == pytest.approx(
            teleport_fidelity(0.9), abs=1e-6)
        assert outcome.slo.met

    def test_separable_stream_misses(self):
        app = get_app("teleport")(make_context(seed=9))
        for _ in range(5):
            app.consume(make_pair(0.30))
        assert not app.finalise(elapsed_s=1.0).slo.met


class TestCertifyApp:
    def test_probe_sampling_and_bound(self):
        app = get_app("certify")(make_context(seed=10))
        owned = [app.consume(make_pair(0.95)) for _ in range(40)]
        # every probe_every-th delivery is a probe the app measured out
        assert owned.count(True) == 10
        outcome = app.finalise(elapsed_s=1.0)
        metrics = outcome.metrics
        assert metrics["probe_rounds"] == 10
        assert metrics["payload_rounds"] == 30
        assert metrics["probe_pass_rate"] >= 0.75
        assert 0.0 <= metrics["fidelity_lower_bound"] <= 1.0
        assert outcome.slo.met

    def test_alternating_bases(self):
        app = get_app("certify")(make_context(seed=11))
        for _ in range(40):
            app.consume(make_pair(0.98))
        estimate = app.estimate()
        assert estimate.rounds_z == 5
        assert estimate.rounds_x == 5


class TestSummaries:
    def test_rollup_counts_slo_and_headline(self):
        app = get_app("teleport")(make_context(seed=12))
        for _ in range(3):
            app.consume(make_pair(0.9))
        good = app.finalise(elapsed_s=1.0)
        bad = get_app("teleport")(make_context(seed=13, app_index=1))
        bad.consume(make_pair(0.3))
        summaries = summarise_apps([good, bad.finalise(elapsed_s=1.0)])
        summary = summaries["teleport"]
        assert summary.circuits == 2
        assert summary.circuits_met == 1
        assert summary.pairs_consumed == 4
        assert summary.slo_label == "1/2"
        assert summary.headline is not None


# ----------------------------------------------------------------------
# Traffic integration
# ----------------------------------------------------------------------

ALL_APPS = ["qkd", "distil", "teleport", "certify"]


def run_apps_workload(formalism="bell", horizon_s=1.0, seed=7,
                      apps=tuple(ALL_APPS), topology=("grid", 4),
                      circuits=8):
    net = build_topology(topology[0], topology[1], seed=seed,
                         formalism=formalism)
    engine = TrafficEngine(net, circuits=circuits, load=0.7, seed=seed,
                           apps=list(apps))
    report = engine.run(horizon_s=horizon_s, drain_s=horizon_s / 2)
    return engine, report


class TestTrafficIntegration:
    def test_engine_validates_app_names(self):
        net = build_topology("ring", 5, seed=1, formalism="bell")
        with pytest.raises(ValueError, match="unknown app 'browsing'"):
            TrafficEngine(net, circuits=2, seed=1, apps=["browsing"])
        with pytest.raises(ValueError, match="empty"):
            TrafficEngine(net, circuits=2, seed=1, apps=[])

    def test_round_robin_assignment_and_demands(self):
        net = build_topology("grid", 4, seed=7, formalism="bell")
        engine = TrafficEngine(net, circuits=8, load=0.7, seed=7,
                               apps=ALL_APPS)
        engine.install()  # routes are still installed (no run/teardown)
        assert [c.app for c in engine.circuits] == ALL_APPS * 2
        # the qkd circuits' routed target was raised by the app demand
        for circuit in engine.circuits:
            route_target = net.route_of(circuit.circuit_id).target_fidelity
            if circuit.app == "qkd":
                assert route_target >= QKD_DEMAND_FIDELITY
            else:
                assert route_target == pytest.approx(0.7)

    def test_acceptance_demo_seed7(self):
        """The PR's acceptance pin: per-app SLO section on the seed-7
        grid demo, qkd distils nonzero key with QBER consistent with its
        circuits' fidelity, distil beats the raw circuit strictly."""
        engine, report = run_apps_workload(horizon_s=1.0, seed=7)
        outcomes = {(o.app, o.circuit_index): o for o in report.apps}
        assert len(report.apps) == 8
        qkd = [o for o in report.apps if o.app == "qkd"]
        assert qkd and all(o.metrics["secret_key_rate_bps"] > 0
                           for o in qkd)
        # QBER consistent with the (demand-raised) circuit fidelity:
        # within a few σ of the Werner relation at the measured mean F.
        for outcome in qkd:
            circuit = engine.circuits[outcome.circuit_index]
            stats = next(s for s in report.circuits
                         if s.circuit_id == circuit.circuit_id)
            assert stats.mean_fidelity is not None
            expected = werner_qber(stats.mean_fidelity)
            assert outcome.metrics["qber"] <= expected + 0.08
        distil = [o for o in report.apps if o.app == "distil"]
        assert distil
        for outcome in distil:
            assert (outcome.metrics["distilled_fidelity"]
                    > outcome.metrics["raw_fidelity"])
        rendered = report.render()
        assert "application sessions (per circuit)" in rendered
        assert "application SLOs (per app)" in rendered
        for app in ALL_APPS:
            assert app in rendered
        assert outcomes  # every outcome keyed uniquely

    @pytest.mark.parametrize("formalism", ["dm", "bell"])
    def test_teleport_stream_on_both_formalisms(self, formalism):
        engine, report = run_apps_workload(
            formalism=formalism, horizon_s=0.3, seed=7,
            apps=("teleport",), topology=("ring", 5), circuits=2)
        assert [o.app for o in report.apps] == ["teleport", "teleport"]
        for outcome in report.apps:
            assert outcome.metrics["states_teleported"] > 0
            assert outcome.metrics["teleported_fidelity"] > \
                CLASSICAL_TELEPORT_FIDELITY

    def test_deterministic_in_seed(self):
        _, first = run_apps_workload(horizon_s=0.3, seed=11,
                                     apps=("qkd", "certify"),
                                     topology=("ring", 5), circuits=2)
        _, second = run_apps_workload(horizon_s=0.3, seed=11,
                                      apps=("qkd", "certify"),
                                      topology=("ring", 5), circuits=2)
        assert [o.to_dict() for o in first.apps] \
            == [o.to_dict() for o in second.apps]

    def test_outcomes_track_recovered_circuit_ids(self):
        """After a failure-triggered re-route, the app outcome names the
        live circuit incarnation, not the torn-down one."""
        net = build_topology("ring", 5, seed=7, formalism="bell")
        engine = TrafficEngine(net, circuits=2, load=0.7, seed=7,
                               apps=["teleport"], fail_links=1)
        report = engine.run(horizon_s=0.3, drain_s=0.15)
        assert engine.circuits_recovered + engine.circuits_lost >= 1
        by_index = {c.index: c for c in engine.circuits}
        for outcome in report.apps:
            assert outcome.circuit_id == \
                by_index[outcome.circuit_index].circuit_id

    def test_appless_run_has_no_section(self):
        net = build_topology("ring", 5, seed=3, formalism="bell")
        engine = TrafficEngine(net, circuits=2, seed=3)
        report = engine.run(horizon_s=0.2, drain_s=0.1)
        assert report.apps == []
        assert "application" not in report.render()
        assert report.apps_slo_met  # vacuously
