"""Hypothesis property tests for the kernel and protocol data structures."""

from hypothesis import given, settings, strategies as st

from repro.analysis import Cdf
from repro.core import EpochManager, Policer, PolicerDecision, UserRequest
from repro.linklayer import FairShareScheduler
from repro.netsim import Simulator


# ----------------------------------------------------------------------
# Discrete-event kernel
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1,
                max_size=60))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, lambda d=delay, i=index: fired.append((d, i)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    # Ties keep submission order (FIFO).
    for (t_a, i_a), (t_b, i_b) in zip(fired, fired[1:]):
        if t_a == t_b:
            assert i_a < i_b


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1e6),
                          st.booleans()), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_cancelled_events_never_fire(plan):
    sim = Simulator()
    fired = []
    handles = []
    for index, (delay, cancel) in enumerate(plan):
        handles.append((sim.schedule(delay, fired.append, index), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    cancelled = {index for index, (_, cancel) in enumerate(plan) if cancel}
    assert set(fired).isdisjoint(cancelled)
    assert len(fired) == len(plan) - len(cancelled)


# ----------------------------------------------------------------------
# Link scheduler fairness
# ----------------------------------------------------------------------

@given(st.floats(min_value=0.5, max_value=8.0),
       st.floats(min_value=0.5, max_value=8.0),
       st.integers(min_value=200, max_value=600))
@settings(max_examples=25, deadline=None)
def test_fair_share_converges_to_weight_ratio(weight_a, weight_b, rounds):
    scheduler = FairShareScheduler()
    scheduler.add("a", weight_a)
    scheduler.add("b", weight_b)
    served = {"a": 0.0, "b": 0.0}
    for _ in range(rounds):
        pick = scheduler.pick(["a", "b"])
        scheduler.charge(pick, 7.0)
        served[pick] += 7.0
    ratio = served["a"] / served["b"]
    expected = weight_a / weight_b
    assert 0.8 * expected <= ratio <= 1.25 * expected


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_fair_share_work_conserving(eligible_sequence):
    """Whenever someone is eligible, someone is picked."""
    scheduler = FairShareScheduler()
    for name in ("a", "b", "c"):
        scheduler.add(name, 1.0)
    for only in eligible_sequence:
        pick = scheduler.pick([only])
        assert pick == only
        scheduler.charge(pick, 1.0)


# ----------------------------------------------------------------------
# Policing invariants
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1,
                max_size=30))
@settings(max_examples=40, deadline=None)
def test_policer_never_over_allocates(rates):
    policer = Policer(max_eer=25.0)
    active = []
    for rate in rates:
        request = UserRequest(rate=rate)
        decision = policer.admit(request)
        if decision == PolicerDecision.ACCEPT:
            active.append(request)
        assert policer.allocated_eer <= 25.0 + 1e-9
    # Releasing everything returns all capacity.
    for request in active:
        policer.release(request.request_id)
    while policer.next_startable() is not None:
        assert policer.allocated_eer <= 25.0 + 1e-9


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2,
                max_size=20))
@settings(max_examples=30, deadline=None)
def test_policer_queue_drains_in_fifo_order(rates):
    policer = Policer(max_eer=5.0)
    queued_ids = []
    for rate in rates:
        request = UserRequest(rate=min(rate, 5.0))
        decision = policer.admit(request)
        if decision == PolicerDecision.QUEUE:
            queued_ids.append(request.request_id)
    # Free everything, then drain: starts must follow queue order.
    for request_id in list(policer._active):
        policer.release(request_id)
    started = []
    while True:
        request = policer.next_startable()
        if request is None:
            break
        started.append(request.request_id)
        policer.release(request.request_id)
    assert started == queued_ids


# ----------------------------------------------------------------------
# Epoch monotonicity
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=30)),
                min_size=1, max_size=50))
@settings(max_examples=40, deadline=None)
def test_epoch_activation_is_monotone(operations):
    epochs = EpochManager()
    created = [0]
    observed = [0]
    for create, pick in operations:
        if create:
            created.append(epochs.create_epoch((f"r{len(created)}",)))
        else:
            target = created[pick % len(created)]
            epochs.activate(target)
        observed.append(epochs.active_epoch)
    assert observed == sorted(observed)


# ----------------------------------------------------------------------
# CDF consistency
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=200))
@settings(max_examples=40, deadline=None)
def test_cdf_quantile_at_consistency(samples):
    cdf = Cdf.from_samples(samples)
    for p in (0.1, 0.5, 0.9, 1.0):
        x = cdf.quantile(p)
        assert cdf.at(x) >= p - 1e-12
    assert cdf.at(cdf.xs[-1]) == 1.0
    assert cdf.at(cdf.xs[0] - 1.0) == 0.0
