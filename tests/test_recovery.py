"""Tests for resilient routing: metrics, failure injection, recovery."""

import pytest

from repro.control.routing import PATH_METRICS, RouteError
from repro.core.requests import RequestStatus, UserRequest
from repro.network.builder import build_chain_network
from repro.traffic import TrafficEngine, build_topology, fault_schedule


# ----------------------------------------------------------------------
# Path metrics
# ----------------------------------------------------------------------

class TestPathMetrics:
    def test_metric_registry(self):
        assert PATH_METRICS == ("hops", "utilisation", "fidelity-cost")

    def test_unknown_metric_rejected(self):
        net = build_topology("ring", 5, seed=1, formalism="bell")
        net.finalise()
        with pytest.raises(RouteError, match="unknown path metric"):
            net.controller.compute_route("r0", "r2", 0.7, "short",
                                         metric="nope")
        with pytest.raises(ValueError):
            TrafficEngine(net, circuits=1, metric="nope")

    def test_hops_metric_picks_shortest_path(self):
        net = build_topology("ring", 5, seed=2, formalism="bell")
        circuit_id = net.establish_circuit("r0", "r2", 0.7, "short",
                                           metric="hops")
        assert net.route_of(circuit_id).path == ["r0", "r1", "r2"]

    def test_utilisation_metric_avoids_loaded_links(self):
        """A second circuit between the same endpoints takes the detour."""
        net = build_topology("ring", 5, seed=3, formalism="bell")
        first = net.establish_circuit("r0", "r2", 0.7, "short",
                                      metric="utilisation")
        second = net.establish_circuit("r0", "r2", 0.7, "short",
                                       metric="utilisation")
        assert net.route_of(first).path == ["r0", "r1", "r2"]
        assert net.route_of(second).path == ["r0", "r4", "r3", "r2"]

    def test_fidelity_cost_metric_prefers_headroom(self):
        net = build_topology("ring", 5, seed=4, formalism="bell")
        circuit_id = net.establish_circuit("r0", "r2", 0.7, "short",
                                           metric="fidelity-cost")
        route = net.route_of(circuit_id)
        # Shortest path needs the lowest per-link fidelity = most headroom.
        assert route.num_links == 2
        assert route.metric == "fidelity-cost"

    def test_share_accounting_install_teardown(self):
        net = build_topology("ring", 4, seed=5, formalism="bell")
        circuit_id = net.establish_circuit("r0", "r2", 0.7, "short")
        controller = net.controller
        assert controller.max_link_share() > 0
        net.teardown_circuit(circuit_id)
        assert controller.max_link_share() == 0.0
        assert controller.link_share == {}

    def test_down_link_excluded_from_routing(self):
        net = build_topology("ring", 5, seed=6, formalism="bell")
        net.finalise()
        net.fail_link("r0", "r1")
        route = net.controller.compute_route("r0", "r2", 0.7, "short")
        assert route.path == ["r0", "r4", "r3", "r2"]
        net.restore_link("r0", "r1")
        route = net.controller.compute_route("r0", "r2", 0.7, "short")
        assert route.path == ["r0", "r1", "r2"]


# ----------------------------------------------------------------------
# Link failure mechanics
# ----------------------------------------------------------------------

class TestLinkFailure:
    def test_down_link_stalls_generation_and_restore_resumes(self):
        net = build_chain_network(2, seed=11, formalism="bell")
        link = net.link_between("node0", "node1")
        count = [0]

        def consume(delivery):
            count[0] += 1
            for name in ("node0", "node1"):
                net.node(name).qmm.free(delivery.entanglement_id)

        link.register_handler("node0", consume)
        link.register_handler("node1", lambda d: None)
        link.set_request("probe", min_fidelity=0.8, lpr=100.0)
        net.run(until_s=0.05)
        assert count[0] > 0
        net.fail_link("node0", "node1")
        frozen = count[0]
        net.run(until_s=0.15)
        assert count[0] <= frozen + 1  # at most the in-flight round
        net.restore_link("node0", "node1")
        net.run(until_s=0.25)
        assert count[0] > frozen + 1

    def test_fail_link_cuts_classical_channel(self):
        net = build_chain_network(3, seed=12, formalism="bell")
        net.fail_link("node1", "node2")
        assert not net.link_is_up("node1", "node2")
        assert net.link_is_up("node0", "node1")
        net.restore_link("node1", "node2")
        assert net.link_is_up("node1", "node2")


# ----------------------------------------------------------------------
# Circuit recovery (Network level)
# ----------------------------------------------------------------------

class TestCircuitRecovery:
    def test_failed_circuit_recovers_on_disjoint_path(self):
        net = build_topology("ring", 5, seed=21, formalism="bell")
        circuit_id = net.establish_circuit("r0", "r2", 0.7, "short")
        assert net.route_of(circuit_id).path == ["r0", "r1", "r2"]
        ready = []
        net.watch_circuit(
            circuit_id, interval_ms=10.0, miss_limit=2,
            on_failure=lambda cid: net.recover_circuit(
                cid, on_ready=ready.append))
        handle = net.submit(circuit_id, UserRequest(num_pairs=10 ** 6))
        net.run(until_s=0.05)
        assert handle.status == RequestStatus.ACTIVE
        net.fail_link("r0", "r1")
        net.run(until_s=0.5)
        # The old circuit died, its request aborted, a new one is up.
        assert handle.status == RequestStatus.ABORTED
        assert circuit_id not in net.qnps["r0"].circuit_ids
        assert len(ready) == 1
        new_id = ready[0]
        new_path = net.route_of(new_id).path
        assert new_path == ["r0", "r4", "r3", "r2"]
        # The new circuit carries traffic over the surviving path.
        handle2 = net.submit(new_id, UserRequest(num_pairs=3))
        net.run_until_complete([handle2], timeout_s=30.0)
        assert handle2.status == RequestStatus.COMPLETED

    def test_unrecoverable_circuit_reports_lost(self):
        net = build_chain_network(3, seed=22, formalism="bell")
        circuit_id = net.establish_circuit("node0", "node2", 0.7, "short")
        outcomes = []
        net.watch_circuit(
            circuit_id, interval_ms=10.0, miss_limit=2,
            on_failure=lambda cid: outcomes.append(net.recover_circuit(cid)))
        handle = net.submit(circuit_id, UserRequest(num_pairs=10 ** 6))
        net.run(until_s=0.05)
        net.fail_link("node0", "node1")
        net.run(until_s=0.5)
        assert outcomes == [None]  # no surviving path on a chain
        assert handle.status == RequestStatus.ABORTED
        assert circuit_id not in net.qnps["node0"].circuit_ids

    def test_recover_unknown_circuit_is_noop(self):
        net = build_topology("ring", 4, seed=23, formalism="bell")
        net.finalise()
        assert net.recover_circuit("vc999:r0->r2") is None


# ----------------------------------------------------------------------
# Fault schedule
# ----------------------------------------------------------------------

class TestFaultSchedule:
    EDGES = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]

    def test_deterministic_and_bounded(self):
        first = fault_schedule(self.EDGES, 1e9, fail_links=2, seed=5)
        second = fault_schedule(self.EDGES, 1e9, fail_links=2, seed=5)
        assert first == second
        assert fault_schedule(self.EDGES, 1e9, fail_links=2, seed=6) != first
        downs = [event for event in first if event.kind == "down"]
        assert len(downs) == 2
        assert all(0 < event.at_ns < 1e9 for event in first)
        assert {event.edge for event in downs} <= {
            tuple(sorted(edge)) for edge in self.EDGES}

    def test_scheduled_outages_are_repaired(self):
        events = fault_schedule(self.EDGES, 1e9, fail_links=2,
                                mttr_s=0.1, seed=7)
        by_edge = {}
        for event in events:
            by_edge.setdefault(event.edge, []).append(event.kind)
        for kinds in by_edge.values():
            assert kinds == ["down", "up"]

    def test_poisson_mode_sorted_and_alternating(self):
        events = fault_schedule(self.EDGES, 5e9, fail_links=2,
                                mtbf_s=0.5, mttr_s=0.1, seed=8)
        times = [event.at_ns for event in events]
        assert times == sorted(times)
        by_edge = {}
        for event in events:
            by_edge.setdefault(event.edge, []).append(event.kind)
        for kinds in by_edge.values():
            assert all(kind == ("down" if i % 2 == 0 else "up")
                       for i, kind in enumerate(kinds))

    def test_engine_rejects_outage_knobs_without_victims(self):
        net = build_topology("ring", 4, seed=9, formalism="bell")
        with pytest.raises(ValueError, match="fail_links"):
            TrafficEngine(net, circuits=1, mtbf_s=1.0)
        with pytest.raises(ValueError, match="fail_links"):
            TrafficEngine(net, circuits=1, mttr_s=0.5)
        with pytest.raises(ValueError, match="mtbf_s"):
            TrafficEngine(net, circuits=1, fail_links=1, mtbf_s=0.0)
        with pytest.raises(ValueError, match="mttr_s"):
            TrafficEngine(net, circuits=1, fail_links=1, mttr_s=-1.0)

    def test_validation_and_empty_cases(self):
        assert fault_schedule(self.EDGES, 1e9, fail_links=0) == []
        assert fault_schedule([], 1e9, fail_links=2) == []
        with pytest.raises(ValueError):
            fault_schedule(self.EDGES, 1e9, fail_links=-1)
        with pytest.raises(ValueError):
            fault_schedule(self.EDGES, 1e9, fail_links=1, mtbf_s=0.0)
        with pytest.raises(ValueError):
            fault_schedule(self.EDGES, 1e9, fail_links=1, mttr_s=-1.0)


# ----------------------------------------------------------------------
# Traffic engine with failures
# ----------------------------------------------------------------------

def _faulted_run(seed, **kwargs):
    net = build_topology("ring", 5, seed=seed, formalism="bell")
    engine = TrafficEngine(net, circuits=3, load=0.8, seed=seed,
                           fail_links=1, **kwargs)
    report = engine.run(horizon_s=0.6, drain_s=0.4)
    return engine, report


class TestEngineRecovery:
    def test_sessions_recover_over_surviving_path(self):
        engine, report = _faulted_run(seed=31)
        assert engine.link_down_count >= 1
        assert report.recovery is not None
        assert report.recovery.circuits_recovered >= 1
        assert report.recovery.circuits_lost == 0
        assert report.sessions_recovered >= 1
        assert report.sessions_lost == 0
        recovered = [circuit for circuit in engine.circuits
                     if circuit.recoveries > 0]
        assert recovered
        text = report.render()
        assert "routing and recovery" in text
        assert "RECOVERED" in text

    def test_lost_sessions_counted_not_hung(self):
        """No disjoint path (tree topology): sessions are LOST, the run
        still completes and every handle reaches a terminal state."""
        net = build_topology("tree", 2, seed=32, formalism="bell")
        engine = TrafficEngine(net, circuits=2, load=0.8, seed=32,
                               fail_links=2, max_hops=3)
        report = engine.run(horizon_s=0.6, drain_s=0.4)
        assert engine.link_down_count >= 1
        assert report.recovery.circuits_lost >= 1
        assert report.sessions_lost >= 1
        for record in engine.records:
            assert record.handle.status in (
                RequestStatus.COMPLETED, RequestStatus.ABORTED,
                RequestStatus.ACTIVE, RequestStatus.REJECTED)
        lost = [record for record in engine.records
                if record.outcome == "lost"]
        assert all(record.handle.status == RequestStatus.ABORTED
                   for record in lost)

    def test_faulted_run_deterministic(self):
        import re

        def normalised(report):
            # Circuit IDs draw from a process-global counter; a fresh
            # process (the CLI) starts at vc0, but two in-process runs
            # must be compared modulo the allocation offset.
            return re.sub(r"vc\d+:", "vc_:", report.render())

        _, first = _faulted_run(seed=33)
        _, second = _faulted_run(seed=33)
        assert normalised(first) == normalised(second)
        assert first.total_sessions == second.total_sessions
        assert first.sessions_recovered == second.sessions_recovered
        assert first.fidelities == second.fidelities

    def test_utilisation_spreads_better_than_hops_on_grid(self):
        """The acceptance scenario: 8 circuits on a 4x4 grid — the
        utilisation metric's max per-link load share must be strictly
        below the hops baseline."""
        shares = {}
        for metric in ("hops", "utilisation"):
            net = build_topology("grid", 4, seed=7, formalism="bell")
            engine = TrafficEngine(net, circuits=8, load=0.7, seed=7,
                                   metric=metric)
            engine.install()
            shares[metric] = engine.max_link_share
        assert shares["utilisation"] < shares["hops"]

    def test_report_without_faults_has_routing_section(self):
        net = build_topology("ring", 4, seed=34, formalism="bell")
        engine = TrafficEngine(net, circuits=2, seed=34)
        report = engine.run(horizon_s=0.3, drain_s=0.2)
        assert report.recovery is not None
        assert report.recovery.link_down_events == 0
        assert report.recovery.metric == "hops"
        assert report.recovery.max_link_share > 0
        text = report.render()
        assert "routing and recovery" in text
        assert "link failures" not in text
