"""Unit tests for timers."""

import pytest

from repro.netsim import PeriodicTimer, Simulator, Timer


def test_timer_fires_after_delay():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(25.0)
    sim.run()
    assert fired == [25.0]


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append, "x")
    timer.start(25.0)
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.armed


def test_timer_restart_supersedes_previous_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(10.0)
    timer.start(50.0)
    sim.run()
    assert fired == [50.0]


def test_timer_passes_args():
    sim = Simulator()
    got = []
    timer = Timer(sim, lambda a, b: got.append((a, b)), 1, 2)
    timer.start(1.0)
    sim.run()
    assert got == [(1, 2)]


def test_timer_remaining():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert timer.remaining() is None
    timer.start(100.0)
    sim.schedule(40.0, lambda: None)
    sim.run(until=40.0)
    assert timer.remaining() == pytest.approx(60.0)


def test_timer_rearm_after_fire():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(10.0)
    sim.run()
    timer.start(10.0)
    sim.run()
    assert fired == [10.0, 20.0]


def test_timer_start_at_absolute_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start_at(123.0)
    sim.run()
    assert fired == [123.0]


def test_periodic_timer_ticks_until_stopped():
    sim = Simulator()
    ticks = []

    timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.run(until=35.0)
    timer.stop()
    sim.run(until=100.0)
    assert ticks == [10.0, 20.0, 30.0]


def test_periodic_timer_rejects_bad_period():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)


def test_periodic_timer_start_idempotent():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
    timer.start()
    timer.start()
    sim.run(until=25.0)
    assert ticks == [10.0, 20.0]
