"""Documentation integrity: intra-repo links and CLI reference coverage.

The CI docs job runs this module: every relative markdown link in the
top-level documents must resolve to a real file, and the README's CLI
reference table must mention every subcommand and flag the argument
parser actually exposes (so the docs cannot silently drift from the
code).
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCUMENTS = ("README.md", "DESIGN.md", "ROADMAP.md")

_LINK = re.compile(r"\[[^\]]+\]\(([^)]+)\)")


def _relative_links(text):
    """All markdown link targets that point inside the repository."""
    links = []
    for target in _LINK.findall(text):
        target = target.split("#")[0].strip()
        if not target or "://" in target or target.startswith("mailto:"):
            continue
        links.append(target)
    return links


@pytest.mark.parametrize("document", DOCUMENTS)
def test_intra_repo_links_resolve(document):
    path = REPO_ROOT / document
    text = path.read_text(encoding="utf-8")
    broken = [target for target in _relative_links(text)
              if not (path.parent / target).exists()]
    assert not broken, f"{document} has broken intra-repo links: {broken}"


def test_readme_documents_every_subcommand_and_flag():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0])))
    for name, sub in subparsers.choices.items():
        assert f"`{name}`" in readme, f"README misses subcommand {name}"
        for action in sub._actions:
            for option in action.option_strings:
                if option.startswith("--") and option != "--help":
                    assert option in readme, (
                        f"README misses flag {option} of subcommand {name}")
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                assert option in readme, f"README misses global flag {option}"
