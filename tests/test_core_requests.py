"""Tests for the user request API, epochs, demux and policing."""

import pytest

from repro.core import (
    EpochManager,
    Policer,
    PolicerDecision,
    RequestHandle,
    RequestType,
    SymmetricDemultiplexer,
    UserRequest,
)
from repro.netsim.units import S
from repro.quantum import BellIndex


class TestUserRequest:
    def test_needs_count_or_rate(self):
        with pytest.raises(ValueError):
            UserRequest()

    def test_count_validation(self):
        with pytest.raises(ValueError):
            UserRequest(num_pairs=0)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            UserRequest(rate=-1.0)

    def test_early_cannot_fix_final_state(self):
        with pytest.raises(ValueError):
            UserRequest(num_pairs=1, request_type=RequestType.EARLY,
                        final_state=BellIndex.PHI_PLUS)

    def test_minimum_eer_measure_directly_deadline(self):
        request = UserRequest(num_pairs=10, deadline=2 * S)
        assert request.minimum_eer() == pytest.approx(5.0)

    def test_minimum_eer_rate(self):
        request = UserRequest(rate=7.0)
        assert request.minimum_eer() == 7.0
        assert request.is_rate_based

    def test_minimum_eer_no_deadline_is_zero(self):
        request = UserRequest(num_pairs=10)
        assert request.minimum_eer() == 0.0
        assert not request.is_rate_based

    def test_minimum_eer_create_and_keep(self):
        request = UserRequest(num_pairs=4, delta_t=1 * S)
        assert request.minimum_eer() == pytest.approx(4.0)

    def test_unique_request_ids(self):
        assert UserRequest(num_pairs=1).request_id != UserRequest(num_pairs=1).request_id

    def test_handle_latency(self):
        handle = RequestHandle(UserRequest(num_pairs=1))
        assert handle.latency is None
        handle.t_submitted = 10.0
        handle.t_completed = 30.0
        assert handle.latency == 20.0


class TestEpochManager:
    def test_initial_state(self):
        epochs = EpochManager()
        assert epochs.active_epoch == 0
        assert epochs.active_requests() == ()

    def test_create_and_activate(self):
        epochs = EpochManager()
        epoch = epochs.create_epoch(("r1",))
        assert epochs.active_epoch == 0  # created but not active
        epochs.activate(epoch)
        assert epochs.active_epoch == epoch
        assert epochs.active_requests() == ("r1",)

    def test_activation_never_goes_backwards(self):
        epochs = EpochManager()
        first = epochs.create_epoch(("r1",))
        second = epochs.create_epoch(("r1", "r2"))
        epochs.activate(second)
        epochs.activate(first)  # stale TRACK: ignored
        assert epochs.active_epoch == second

    def test_activate_none_is_noop(self):
        epochs = EpochManager()
        epochs.activate(None)
        assert epochs.active_epoch == 0

    def test_learn_epoch(self):
        epochs = EpochManager()
        epochs.learn_epoch(5, ("a", "b"))
        epochs.activate(5)
        assert epochs.active_requests() == ("a", "b")

    def test_unknown_epoch_rejected(self):
        epochs = EpochManager()
        with pytest.raises(KeyError):
            epochs.activate(99)

    def test_pruning_drops_stale_epochs(self):
        epochs = EpochManager()
        first = epochs.create_epoch(("r1",))
        second = epochs.create_epoch(("r2",))
        epochs.activate(second)
        assert epochs.requests_of(first) == ()


class TestDemultiplexer:
    def make(self, request_ids):
        epochs = EpochManager()
        epoch = epochs.create_epoch(tuple(request_ids))
        epochs.activate(epoch)
        return SymmetricDemultiplexer(epochs), epochs

    def test_fifo_serves_front_request(self):
        demux, _ = self.make(["a", "b"])
        assert [demux.next_request() for _ in range(4)] == ["a", "a", "a", "a"]

    def test_empty_epoch_returns_none(self):
        demux, _ = self.make([])
        assert demux.next_request() is None

    def test_finished_requests_skipped(self):
        demux, _ = self.make(["a", "b"])
        demux.mark_finished("a")
        assert [demux.next_request() for _ in range(3)] == ["b", "b", "b"]

    def test_two_ends_stay_consistent_even_with_different_pair_streams(self):
        """The FIFO rule agrees regardless of how many pairs each end has
        seen — the property index-rotation schemes lack."""
        demux_head, _ = self.make(["a", "b", "c"])
        demux_tail, _ = self.make(["a", "b", "c"])
        for _ in range(7):
            demux_head.next_request()  # head saw extra pairs (offset)
        assert demux_head.next_request() == demux_tail.next_request()
        demux_head.mark_finished("a")
        demux_tail.mark_finished("a")
        assert demux_head.next_request() == demux_tail.next_request() == "b"

    def test_cross_check(self):
        demux, _ = self.make(["a", "b"])
        assert demux.cross_check("a", "a")
        assert not demux.cross_check("a", "b")
        assert demux.cross_check_failures == 1

    def test_arrival_order_respected(self):
        epochs = EpochManager()
        epoch = epochs.create_epoch(("z_first", "a_second"))
        epochs.activate(epoch)
        demux = SymmetricDemultiplexer(epochs)
        assert demux.next_request() == "z_first"  # arrival order, not sorted


class TestPolicer:
    def test_accepts_within_capacity(self):
        policer = Policer(max_eer=10.0)
        assert policer.admit(UserRequest(rate=5.0)) == PolicerDecision.ACCEPT
        assert policer.allocated_eer == 5.0

    def test_rejects_impossible_request(self):
        policer = Policer(max_eer=10.0)
        assert policer.admit(UserRequest(rate=20.0)) == PolicerDecision.REJECT
        assert policer.rejected_count == 1

    def test_queues_when_full(self):
        policer = Policer(max_eer=10.0)
        policer.admit(UserRequest(rate=8.0))
        decision = policer.admit(UserRequest(rate=5.0))
        assert decision == PolicerDecision.QUEUE
        assert policer.queued == 1

    def test_fifo_shaping(self):
        policer = Policer(max_eer=10.0)
        first = UserRequest(rate=8.0)
        policer.admit(first)
        second = UserRequest(rate=5.0)
        policer.admit(second)
        third = UserRequest(rate=1.0)
        policer.admit(third)  # queues behind second (FIFO, no overtaking)
        assert policer.queued == 2
        assert policer.next_startable() is None  # still full
        policer.release(first.request_id)
        assert policer.next_startable() is second
        assert policer.next_startable() is third
        assert policer.next_startable() is None

    def test_zero_eer_requests_always_fit(self):
        policer = Policer(max_eer=1.0)
        for _ in range(5):
            assert policer.admit(UserRequest(num_pairs=3)) == PolicerDecision.ACCEPT

    def test_drop_queued(self):
        policer = Policer(max_eer=10.0)
        policer.admit(UserRequest(rate=9.0))
        queued = UserRequest(rate=5.0)
        policer.admit(queued)
        assert policer.drop_queued(queued.request_id)
        assert not policer.drop_queued("ghost")

    def test_validation(self):
        with pytest.raises(ValueError):
            Policer(max_eer=0.0)
