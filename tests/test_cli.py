"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    for command in ("quickstart", "chain", "qkd", "near-term", "trace"):
        args = parser.parse_args([command])
        assert callable(args.fn)


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_quickstart_runs(capsys):
    code = main(["--seed", "3", "quickstart", "--pairs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "circuit" in out
    assert "status completed" in out
    assert "F=" in out


def test_chain_runs(capsys):
    code = main(["--seed", "4", "chain", "--nodes", "3", "--pairs", "1",
                 "--fidelity", "0.8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "node0 -> node1 -> node2" in out


def test_trace_runs(capsys):
    code = main(["--seed", "5", "trace", "--pairs", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "SWAP" in out
    assert "FORWARD" in out


def test_formalism_flag_parsed():
    parser = build_parser()
    args = parser.parse_args(["--formalism", "bell", "quickstart"])
    assert args.formalism == "bell"
    assert build_parser().parse_args(["chain"]).formalism == "dm"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--formalism", "nope", "chain"])


def test_quickstart_runs_on_bell_backend(capsys):
    code = main(["--seed", "3", "--formalism", "bell", "quickstart",
                 "--pairs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "status completed" in out
    assert "F=" in out


def test_custom_options_reflected(capsys):
    main(["--seed", "6", "chain", "--nodes", "3", "--pairs", "2",
          "--fidelity", "0.85"])
    out = capsys.readouterr().out
    assert out.count("pair ") == 2
