"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    for command in ("quickstart", "chain", "qkd", "near-term", "trace",
                    "traffic", "apps"):
        args = parser.parse_args([command])
        assert callable(args.fn)


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_quickstart_runs(capsys):
    code = main(["--seed", "3", "quickstart", "--pairs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "circuit" in out
    assert "status completed" in out
    assert "F=" in out


def test_chain_runs(capsys):
    code = main(["--seed", "4", "chain", "--nodes", "3", "--pairs", "1",
                 "--fidelity", "0.8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "node0 -> node1 -> node2" in out


def test_trace_runs(capsys):
    code = main(["--seed", "5", "trace", "--pairs", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "SWAP" in out
    assert "FORWARD" in out


def test_formalism_flag_parsed():
    parser = build_parser()
    args = parser.parse_args(["--formalism", "bell", "quickstart"])
    assert args.formalism == "bell"
    assert build_parser().parse_args(["chain"]).formalism == "dm"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--formalism", "nope", "chain"])


def test_global_flags_accepted_after_subcommand():
    # --formalism/--seed/--timeout work in either position; the
    # subcommand's value wins when both are given.
    args = build_parser().parse_args(["quickstart", "--formalism", "bell"])
    assert args.formalism == "bell"
    args = build_parser().parse_args(
        ["--formalism", "bell", "quickstart", "--formalism", "dm"])
    assert args.formalism == "dm"
    args = build_parser().parse_args(["traffic", "--seed", "7"])
    assert args.seed == 7
    args = build_parser().parse_args(["chain", "--timeout", "5.0"])
    assert args.timeout == 5.0
    # Global values survive when the subcommand doesn't override them.
    args = build_parser().parse_args(["--seed", "9", "chain"])
    assert args.seed == 9


def test_traffic_parser_defaults():
    args = build_parser().parse_args(["traffic"])
    assert args.topology == "grid"
    assert args.size == 4
    assert args.circuits == 8
    assert args.load == 0.7
    assert args.metric == "hops"
    assert args.fail_links == 0
    assert args.mtbf is None
    assert args.mttr is None
    assert args.physical == "analytic"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["traffic", "--topology", "nope"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["traffic", "--metric", "nope"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["traffic", "--physical", "nope"])


def test_traffic_midpoint_physical_runs(capsys):
    code = main(["--seed", "7", "traffic", "--topology", "grid", "--size", "2",
                 "--circuits", "2", "--horizon", "0.4", "--formalism", "bell",
                 "--physical", "midpoint"])
    out = capsys.readouterr().out
    assert code == 0
    assert "circuits" in out


def test_traffic_recovery_flags_parsed():
    args = build_parser().parse_args(
        ["traffic", "--metric", "utilisation", "--fail-links", "2",
         "--mtbf", "1.0", "--mttr", "0.5", "--seed", "7"])
    assert args.metric == "utilisation"
    assert args.fail_links == 2
    assert args.mtbf == 1.0
    assert args.mttr == 0.5
    assert args.seed == 7  # global flag after the subcommand (PR 2 fix)
    with pytest.raises(SystemExit, match="fail-links"):
        main(["traffic", "--mtbf", "1.0"])


def _traffic_recovery_output(capsys, seed_args):
    import re

    from repro.control import signalling
    from repro.core import requests
    from repro.quantum import qubit

    # Circuit/request IDs draw from process-global counters; pin them so
    # two in-process runs compare like two fresh CLI processes would.
    # The regex alone is not enough: report column widths follow the ID
    # string length, so a run whose IDs cross a digit boundary renders
    # wider tables than its twin.
    requests._request_ids.value = 0
    signalling._circuit_ids.value = 0
    qubit._qubit_ids.value = 0
    code = main(seed_args + ["traffic", "--topology", "ring", "--size", "5",
                             "--circuits", "2", "--horizon", "0.4",
                             "--fail-links", "1", "--formalism", "bell"])
    out = capsys.readouterr().out
    assert code == 0
    return re.sub(r"vc\d+:", "vc_:", out)


def test_traffic_recovery_run_honours_seed_and_is_deterministic(capsys):
    """--seed (global position) steers faulted traffic runs and the same
    seed reproduces the identical report — the PR 2 global-flag handling
    regression check for the recovery path."""
    first = _traffic_recovery_output(capsys, ["--seed", "31"])
    second = _traffic_recovery_output(capsys, ["--seed", "31"])
    other = _traffic_recovery_output(capsys, ["--seed", "32"])
    assert first == second
    assert first != other
    assert "routing and recovery" in first
    assert "link failures: 1 down events" in first


def test_traffic_runs(capsys):
    code = main(["traffic", "--topology", "ring", "--size", "4",
                 "--circuits", "2", "--horizon", "0.3", "--seed", "2",
                 "--formalism", "bell"])
    assert code == 0
    out = capsys.readouterr().out
    assert "installed 2 circuits" in out
    assert "admission and completion by priority class" in out
    assert "per-link utilisation" in out
    assert "pairs/s end-to-end" in out


def test_traffic_apps_flag_runs_slo_section(capsys):
    code = main(["traffic", "--topology", "ring", "--size", "5",
                 "--circuits", "2", "--horizon", "0.3", "--seed", "7",
                 "--formalism", "bell", "--apps", "teleport,certify"])
    assert code == 0
    out = capsys.readouterr().out
    assert "apps teleport,certify" in out
    assert "application sessions (per circuit)" in out
    assert "application SLOs (per app)" in out
    assert "teleport" in out and "certify" in out


def test_traffic_apps_flag_validated():
    with pytest.raises(SystemExit, match="bad --apps"):
        main(["traffic", "--apps", "minesweeper"])
    with pytest.raises(SystemExit, match="at least one"):
        main(["traffic", "--apps", " , "])


def test_apps_subcommand_lists_registry(capsys):
    code = main(["apps"])
    assert code == 0
    out = capsys.readouterr().out
    assert "registered application services" in out
    for name in ("qkd", "distil", "teleport", "certify"):
        assert name in out
    assert "demands F >= 0.9" in out  # qkd's fidelity demand
    assert "SLO:" in out


def test_apps_demo_parser_wiring():
    args = build_parser().parse_args(["apps", "--demo"])
    assert args.demo is True
    assert callable(args.fn)


def test_quickstart_runs_on_bell_backend(capsys):
    code = main(["--seed", "3", "--formalism", "bell", "quickstart",
                 "--pairs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "status completed" in out
    assert "F=" in out


def test_custom_options_reflected(capsys):
    main(["--seed", "6", "chain", "--nodes", "3", "--pairs", "2",
          "--fidelity", "0.85"])
    out = capsys.readouterr().out
    assert out.count("pair ") == 2
