"""Tests for the fair-share link scheduler."""

import pytest

from repro.linklayer import FairShareScheduler


def test_add_and_pick_single():
    scheduler = FairShareScheduler()
    scheduler.add("a", 1.0)
    assert scheduler.pick(["a"]) == "a"


def test_pick_prefers_least_served():
    scheduler = FairShareScheduler()
    scheduler.add("a", 1.0)
    scheduler.add("b", 1.0)
    scheduler.charge("a", 100.0)
    assert scheduler.pick(["a", "b"]) == "b"


def test_equal_weights_share_time_equally():
    scheduler = FairShareScheduler()
    scheduler.add("a", 1.0)
    scheduler.add("b", 1.0)
    served = {"a": 0.0, "b": 0.0}
    for _ in range(1000):
        pick = scheduler.pick(["a", "b"])
        scheduler.charge(pick, 10.0)
        served[pick] += 10.0
    assert served["a"] == pytest.approx(served["b"], rel=0.02)


def test_weighted_shares_proportional_to_demand():
    scheduler = FairShareScheduler()
    scheduler.add("heavy", 3.0)
    scheduler.add("light", 1.0)
    served = {"heavy": 0.0, "light": 0.0}
    for _ in range(4000):
        pick = scheduler.pick(["heavy", "light"])
        scheduler.charge(pick, 5.0)
        served[pick] += 5.0
    assert served["heavy"] / served["light"] == pytest.approx(3.0, rel=0.05)


def test_excess_capacity_flows_to_eligible():
    scheduler = FairShareScheduler()
    scheduler.add("a", 1.0)
    scheduler.add("b", 1.0)
    # b never eligible (e.g. blocked on memory): a gets everything.
    for _ in range(10):
        assert scheduler.pick(["a"]) == "a"
        scheduler.charge("a", 10.0)


def test_new_purpose_does_not_starve_existing():
    scheduler = FairShareScheduler()
    scheduler.add("old", 1.0)
    for _ in range(100):
        scheduler.charge("old", 10.0)
    scheduler.add("new", 1.0)
    # The newcomer starts at the current minimum, not at zero.
    picks = []
    for _ in range(10):
        pick = scheduler.pick(["old", "new"])
        scheduler.charge(pick, 10.0)
        picks.append(pick)
    assert "old" in picks  # old still gets service promptly


def test_remove_and_membership():
    scheduler = FairShareScheduler()
    scheduler.add("a", 1.0)
    assert "a" in scheduler
    scheduler.remove("a")
    assert "a" not in scheduler
    with pytest.raises(KeyError):
        scheduler.charge("a", 1.0)


def test_update_weight():
    scheduler = FairShareScheduler()
    scheduler.add("a", 1.0)
    scheduler.update_weight("a", 5.0)
    assert scheduler.weight("a") == 5.0


def test_validation():
    scheduler = FairShareScheduler()
    with pytest.raises(ValueError):
        scheduler.add("a", 0.0)
    scheduler.add("a", 1.0)
    with pytest.raises(ValueError):
        scheduler.add("a", 1.0)
    with pytest.raises(ValueError):
        scheduler.update_weight("a", -1.0)
    with pytest.raises(ValueError):
        scheduler.charge("a", -1.0)
    with pytest.raises(KeyError):
        scheduler.pick(["ghost"])


def test_pick_empty_returns_none():
    scheduler = FairShareScheduler()
    assert scheduler.pick([]) is None
