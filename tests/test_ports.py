"""Unit tests for the typed component-and-port wiring layer."""

import pickle

import pytest

from repro.netsim import ClassicalChannel, Simulator
from repro.netsim.ports import (
    CallbackComponent,
    Component,
    Port,
    PortAlreadyConnectedError,
    PortError,
    PortNotConnectedError,
    ProtocolMismatchError,
    connect,
    subscribe,
)


class Recorder(Component):
    """Minimal component with one inbound port (picklable handler)."""

    def __init__(self, name, protocol="test"):
        self.name = name
        self.inbox = []
        self.rx = self.add_port("rx", protocol, handler=self.on_message)
        self.tx_port = self.add_port("tx", protocol)

    def on_message(self, message):
        self.inbox.append(message)


class TestConnectValidation:
    def test_protocol_mismatch_is_typed_and_names_components(self):
        a = Recorder("alpha", protocol="classical")
        b = Recorder("beta", protocol="photon")
        with pytest.raises(ProtocolMismatchError) as err:
            connect(a.rx, b.rx)
        message = str(err.value)
        assert "alpha.rx" in message and "beta.rx" in message
        assert "classical" in message and "photon" in message

    def test_protocol_mismatch_is_a_type_error(self):
        a = Recorder("alpha", protocol="x")
        b = Recorder("beta", protocol="y")
        with pytest.raises(TypeError):
            connect(a.rx, b.rx)

    def test_double_connect_raises_and_names_existing_peer(self):
        a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
        connect(a.rx, b.tx_port)
        with pytest.raises(PortAlreadyConnectedError) as err:
            connect(a.rx, c.tx_port)
        assert "a.rx" in str(err.value) and "b.tx" in str(err.value)

    def test_double_connect_checks_both_sides(self):
        a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
        connect(a.rx, b.tx_port)
        with pytest.raises(PortAlreadyConnectedError):
            connect(c.rx, b.tx_port)

    def test_self_connect_rejected(self):
        a = Recorder("a")
        with pytest.raises(ProtocolMismatchError):
            connect(a.rx, a.rx)

    def test_connecting_a_non_port_is_a_type_error(self):
        a = Recorder("a")
        with pytest.raises(TypeError):
            a.rx.connect("not a port")

    def test_typed_errors_are_runtime_errors_for_back_compat(self):
        assert issubclass(PortAlreadyConnectedError, RuntimeError)
        assert issubclass(PortNotConnectedError, RuntimeError)
        assert issubclass(PortAlreadyConnectedError, PortError)
        assert issubclass(PortNotConnectedError, PortError)


class TestMessaging:
    def test_tx_on_unconnected_port_names_the_component(self):
        a = Recorder("lonely")
        with pytest.raises(PortNotConnectedError) as err:
            a.tx_port.tx("hello")
        assert "lonely.tx" in str(err.value)

    def test_tx_to_handlerless_peer_raises_port_error(self):
        a, b = Recorder("a"), Recorder("b")
        connect(a.rx, b.tx_port)  # b.tx has no handler
        with pytest.raises(PortError) as err:
            a.rx.tx("hello")
        assert "b.tx" in str(err.value)

    def test_tx_delivers_synchronously(self):
        a, b = Recorder("a"), Recorder("b")
        connect(a.tx_port, b.rx)
        a.tx_port.tx("ping")
        assert b.inbox == ["ping"]

    def test_disconnect_then_reconnect(self):
        a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
        connect(a.tx_port, b.rx)
        a.tx_port.disconnect()
        assert not a.tx_port.connected and not b.rx.connected
        connect(a.tx_port, c.rx)
        a.tx_port.tx("ping")
        assert c.inbox == ["ping"] and b.inbox == []

    def test_disconnect_unconnected_is_a_noop(self):
        a = Recorder("a")
        a.rx.disconnect()
        assert not a.rx.connected


class TestComponent:
    def test_duplicate_port_name_rejected(self):
        a = Recorder("a")
        with pytest.raises(ValueError) as err:
            a.add_port("rx", "test")
        assert "a" in str(err.value) and "rx" in str(err.value)

    def test_port_lookup_error_names_component(self):
        a = Recorder("a")
        with pytest.raises(KeyError) as err:
            a.port("nope")
        assert "a" in str(err.value) and "nope" in str(err.value)

    def test_port_names_and_has_port(self):
        a = Recorder("a")
        assert a.port_names() == ["rx", "tx"]
        assert a.has_port("rx") and not a.has_port("nope")

    def test_unnamed_component_falls_back_to_class_name(self):
        class Bare(Component):
            pass

        bare = Bare()
        port = bare.add_port("p", "test")
        assert port.full_name == "Bare.p"


class TestAdapters:
    def test_subscribe_routes_messages_to_callable(self):
        a = Recorder("a")
        inbox = []
        subscribe(a.tx_port, inbox.append)
        a.tx_port.tx("out")
        assert inbox == ["out"]

    def test_subscribe_adapter_can_send_back(self):
        a = Recorder("a")
        adapter = subscribe(a.rx, lambda _: None)
        adapter.tx("in")
        assert a.inbox == ["in"]

    def test_callback_component_protocol_enforced(self):
        a = Recorder("a", protocol="classical")
        adapter = CallbackComponent(lambda _: None, "photon")
        with pytest.raises(ProtocolMismatchError):
            connect(a.tx_port, adapter.io)


class TestPickle:
    def test_connected_components_round_trip(self):
        a, b = Recorder("a"), Recorder("b")
        connect(a.tx_port, b.rx)
        a2, b2 = pickle.loads(pickle.dumps((a, b)))
        a2.tx_port.tx("after-restore")
        assert b2.inbox == ["after-restore"]
        assert a2.tx_port.peer is b2.rx

    def test_wired_channel_round_trips_through_pickle(self):
        sim = Simulator()
        channel = ClassicalChannel(sim, length_km=1.0, name="c")
        rec = Recorder("sink", protocol="classical")
        connect(channel.port("b"), rec.rx)
        sim2, channel2, rec2 = pickle.loads(pickle.dumps((sim, channel, rec)))
        channel2._transmit(0, "hello")
        sim2.run()
        assert rec2.inbox == ["hello"]


class TestDeprecationShims:
    def test_channel_end_connect_warns_and_still_delivers(self):
        sim = Simulator()
        channel = ClassicalChannel(sim, length_km=1.0)
        inbox = []
        with pytest.warns(DeprecationWarning):
            channel.ends[1].connect(inbox.append)
        channel.ends[0].send("legacy")
        sim.run()
        assert inbox == ["legacy"]

    def test_channel_end_connect_overwrites_previous_receiver(self):
        sim = Simulator()
        channel = ClassicalChannel(sim, length_km=1.0)
        first, second = [], []
        with pytest.warns(DeprecationWarning):
            channel.ends[1].connect(first.append)
            channel.ends[1].connect(second.append)
        channel.ends[0].send("msg")
        sim.run()
        assert first == [] and second == ["msg"]

    def test_node_register_handler_warns(self):
        from repro.hardware.parameters import SIMULATION
        from repro.network.node import QuantumNode

        sim = Simulator()
        node = QuantumNode(sim, "n0", SIMULATION)
        with pytest.warns(DeprecationWarning):
            node.register_handler("ping", lambda sender, payload: None)

    def test_link_register_handler_warns(self):
        from repro.network.builder import Network
        from repro.hardware.parameters import SIMULATION

        net = Network(Simulator(seed=1), SIMULATION)
        net.add_node("a")
        net.add_node("b")
        link = net.connect("a", "b", 0.002)
        with pytest.warns(DeprecationWarning):
            link.register_handler("a", lambda delivery: None)
