"""Tests for circuit liveness monitoring, failure injection and tracing."""

import pytest

from repro.analysis import EventLog, attach_trace
from repro.core import RequestStatus, UserRequest
from repro.network.builder import build_chain_network


class TestChannelCut:
    def test_cut_channel_drops_messages(self):
        from repro.netsim import ClassicalChannel, Simulator

        sim = Simulator()
        channel = ClassicalChannel(sim, length_km=1.0)
        inbox = []
        channel.ends[1].connect(inbox.append)
        channel.ends[0].connect(lambda m: None)
        channel.cut()
        channel.ends[0].send("lost")
        sim.run()
        assert inbox == []
        channel.restore()
        channel.ends[0].send("found")
        sim.run()
        assert inbox == ["found"]


class TestLiveness:
    def test_healthy_circuit_stays_up(self):
        net = build_chain_network(3, seed=31)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        net.watch_circuit(circuit_id, interval_ms=20.0)
        net.run(until_s=1.0)
        assert net.liveness["node0"].is_watching(circuit_id)
        assert circuit_id in net.qnps["node0"].circuit_ids

    def test_cut_tears_circuit_down_and_aborts_requests(self):
        net = build_chain_network(3, seed=32)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        net.watch_circuit(circuit_id, interval_ms=20.0, miss_limit=3)
        handle = net.submit(circuit_id, UserRequest(num_pairs=10 ** 6))
        net.run(until_s=0.2)
        assert handle.status == RequestStatus.ACTIVE
        # Sever the second hop's classical channel.
        net.channels[1].cut()
        net.run(until_s=1.0)
        assert handle.status == RequestStatus.ABORTED
        assert circuit_id not in net.qnps["node0"].circuit_ids
        assert not net.liveness["node0"].is_watching(circuit_id)

    def test_watch_requires_head_end(self):
        net = build_chain_network(3, seed=33)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        route = net.route_of(circuit_id)
        with pytest.raises(ValueError):
            net.liveness["node2"].watch(circuit_id, route.path)

    def test_duplicate_watch_rejected(self):
        net = build_chain_network(3, seed=34)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        net.watch_circuit(circuit_id)
        with pytest.raises(ValueError):
            net.watch_circuit(circuit_id)

    def test_unwatch_stops_monitoring(self):
        net = build_chain_network(3, seed=35)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        net.watch_circuit(circuit_id)
        net.liveness["node0"].unwatch(circuit_id)
        net.channels[0].cut()
        net.run(until_s=1.0)
        # No monitor → no teardown.
        assert circuit_id in net.qnps["node0"].circuit_ids


class TestTracing:
    def run_traced(self, num_pairs=2, seed=36):
        net = build_chain_network(3, seed=seed)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        log = attach_trace(net)
        handle = net.submit(circuit_id, UserRequest(num_pairs=num_pairs))
        net.run_until_complete([handle], timeout_s=120)
        return net, log, handle

    def test_sequence_of_kinds(self):
        net, log, handle = self.run_traced()
        kinds = [event.kind for event in log]
        assert kinds[0] == "REQUEST"
        for expected in ("FORWARD", "LINK_PAIR", "SWAP", "TRACK", "PAIR",
                         "COMPLETE"):
            assert expected in kinds, expected

    def test_forward_precedes_first_swap(self):
        net, log, handle = self.run_traced()
        first_forward = log.first("FORWARD")
        first_swap = log.first("SWAP")
        assert first_forward.time <= first_swap.time

    def test_swaps_only_at_intermediate(self):
        net, log, handle = self.run_traced()
        assert all(event.node == "node1" for event in log.of_kind("SWAP"))

    def test_pair_events_at_both_ends(self):
        net, log, handle = self.run_traced()
        pair_nodes = {event.node for event in log.of_kind("PAIR")}
        assert pair_nodes == {"node0", "node2"}

    def test_filters(self):
        net, log, handle = self.run_traced()
        assert len(log.at_node("node1")) > 0
        assert log.first("NOPE") is None
        assert len(log.of_kind("SWAP", "PAIR")) == \
            len(log.of_kind("SWAP")) + len(log.of_kind("PAIR"))

    def test_render_sequence(self):
        net, log, handle = self.run_traced()
        text = log.render_sequence(["node0", "node1", "node2"], max_events=40)
        lines = text.splitlines()
        assert "node0" in lines[0] and "node2" in lines[0]
        assert any("SWAP" in line for line in lines)

    def test_event_str(self):
        log = EventLog()
        log.record(1.5e6, "n", "KIND", foo=1)
        assert "KIND" in str(log.events[0])
        assert "foo=1" in str(log.events[0])
