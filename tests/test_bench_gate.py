"""Tests for the CI bench-regression gate (`benchmarks/compare_bench.py`).

The gate itself runs in CI against a fresh `run_bench.py` JSON; here its
comparison logic is pinned — including the acceptance-criterion case
that an injected synthetic slowdown demonstrably fails the gate against
the repository's real committed baseline.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_gate():
    spec = importlib.util.spec_from_file_location(
        "compare_bench", REPO_ROOT / "benchmarks" / "compare_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


gate = _load_gate()


def _payload(results):
    return {"revision": "test", "unit": "ns_per_op_median",
            "results": results}


class TestCompare:
    def test_no_regression_passes(self):
        rows, regressions = gate.compare(
            _payload({"op_a": 100.0, "op_b": 200.0}),
            _payload({"op_a": 110.0, "op_b": 150.0}))
        assert regressions == []
        assert all(row["status"] == "ok" for row in rows)

    def test_injected_slowdown_fails(self):
        rows, regressions = gate.compare(
            _payload({"op_a": 100.0, "op_b": 200.0}),
            _payload({"op_a": 100.0, "op_b": 650.0}), threshold=3.0)
        assert regressions == ["op_b"]
        row = next(row for row in rows if row["op"] == "op_b")
        assert row["status"] == "REGRESSION"
        assert row["ratio"] == pytest.approx(3.25)

    def test_threshold_is_strict(self):
        # exactly 3.0x is noise-tolerable; the gate fires only above it
        _, regressions = gate.compare(
            _payload({"op": 100.0}), _payload({"op": 300.0}), threshold=3.0)
        assert regressions == []
        _, regressions = gate.compare(
            _payload({"op": 100.0}), _payload({"op": 300.1}), threshold=3.0)
        assert regressions == ["op"]

    def test_one_sided_ops_never_fail(self):
        rows, regressions = gate.compare(
            _payload({"retired_op": 100.0}),
            _payload({"new_op": 99999.0}))
        assert regressions == []
        statuses = {row["op"]: row["status"] for row in rows}
        assert statuses == {"retired_op": "baseline-only", "new_op": "new"}

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            gate.compare(_payload({}), _payload({}), threshold=1.0)


class TestSpeedupFloors:
    """The bell-vs-dm ratio gate (`--check-speedups`).

    BENCH_c001c5d.json recorded the old link-generation op with bell
    *slower* than dm (0.84x); the floors make that class of regression a
    hard CI failure instead of a silent JSON entry.
    """

    def test_floors_cover_the_delivery_round(self):
        assert gate.SPEEDUP_FLOORS["link_delivery_round"] >= 1.0

    def test_bell_not_slower_passes(self):
        payload = {"speedup_bell_over_dm":
                   {"bsm": 26.0, "link_delivery_round": 1.4,
                    "traffic_round": 2.1}}
        assert gate.check_speedups(payload) == []

    def test_bell_slower_than_dm_fails(self):
        # the exact regression shape of BENCH_c001c5d.json
        payload = {"speedup_bell_over_dm": {"link_delivery_round": 0.84}}
        violations = gate.check_speedups(payload)
        assert len(violations) == 1
        assert "link_delivery_round" in violations[0]
        assert "0.84" in violations[0]

    def test_missing_ops_are_skipped(self):
        # --only subsets omit ratios; absence must not fail the gate
        assert gate.check_speedups({}) == []
        assert gate.check_speedups({"speedup_bell_over_dm": {}}) == []

    def test_custom_floor_applies(self):
        payload = {"speedup_bell_over_dm": {"bsm": 4.0}}
        assert gate.check_speedups(payload, floors={"bsm": 5.0})
        assert not gate.check_speedups(payload, floors={"bsm": 3.0})

    def test_cli_flag_enforces_floors(self, tmp_path, capsys):
        baseline = gate.newest_baseline()
        payload = json.loads(baseline.read_text())
        payload["speedup_bell_over_dm"] = {"link_delivery_round": 0.84}
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(payload))
        code = gate.main([str(fresh), "--check-speedups",
                          "--baseline", str(baseline)])
        assert code == 1
        assert "floors violated" in capsys.readouterr().out

    def test_cli_flag_passes_on_healthy_ratios(self, tmp_path, capsys):
        baseline = gate.newest_baseline()
        payload = json.loads(baseline.read_text())
        payload["speedup_bell_over_dm"] = {
            "bsm": 26.0, "link_delivery_round": 1.5, "traffic_round": 2.0}
        payload["traffic_pairs_per_s"] = {"bell": 10000.0, "dm": 9900.0}
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(payload))
        code = gate.main([str(fresh), "--check-speedups",
                          "--baseline", str(baseline)])
        assert code == 0
        assert "throughput and memory floors hold" in capsys.readouterr().out


class TestThroughputFloors:
    """The simulated pairs-per-second gate (also under `--check-speedups`).

    The vectorised-core acceptance criterion: the traffic_soak scenario
    must sustain >= 9360 pairs per simulated second on the bell formalism
    (10x the PR 5 scenario's 936).  Simulated rate is seed-deterministic,
    so the floor has no noise tolerance to manage.
    """

    def test_floor_is_10x_the_pre_vectorised_rate(self):
        assert gate.THROUGHPUT_FLOORS["bell"] == pytest.approx(9360.0)

    def test_rate_above_floor_passes(self):
        payload = {"traffic_pairs_per_s": {"bell": 10285.0}}
        assert gate.check_throughput(payload) == []

    def test_rate_below_floor_fails(self):
        payload = {"traffic_pairs_per_s": {"bell": 936.0}}
        violations = gate.check_throughput(payload)
        assert len(violations) == 1
        assert "bell" in violations[0]
        assert "936" in violations[0]

    def test_missing_section_is_skipped(self):
        assert gate.check_throughput({}) == []
        assert gate.check_throughput({"traffic_pairs_per_s": {}}) == []
        # dm has no floor; its presence alone must not fail anything.
        assert gate.check_throughput(
            {"traffic_pairs_per_s": {"dm": 1.0}}) == []

    def test_custom_floor_applies(self):
        payload = {"traffic_pairs_per_s": {"bell": 500.0}}
        assert gate.check_throughput(payload, floors={"bell": 600.0})
        assert not gate.check_throughput(payload, floors={"bell": 400.0})

    def test_cli_flag_enforces_throughput_floor(self, tmp_path, capsys):
        baseline = gate.newest_baseline()
        payload = json.loads(baseline.read_text())
        payload["speedup_bell_over_dm"] = {
            "bsm": 26.0, "link_delivery_round": 1.5, "traffic_round": 2.5}
        payload["traffic_pairs_per_s"] = {"bell": 5000.0}
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(payload))
        code = gate.main([str(fresh), "--check-speedups",
                          "--baseline", str(baseline)])
        assert code == 1
        assert "floors violated" in capsys.readouterr().out

    def test_committed_baseline_passes_its_own_floors(self):
        """The repository's own newest BENCH json must satisfy the gates
        it ships — otherwise CI is red on an untouched checkout."""
        payload = json.loads(gate.newest_baseline().read_text())
        assert gate.check_throughput(payload) == []
        assert gate.check_speedups(payload) == []
        assert gate.check_rss(payload) == []


class TestRssCeilings:
    """The soak memory gate (also under `--check-speedups`).

    The checkpoint/retirement PR's leak tripwire: the bell traffic_soak
    scenario's peak RSS must stay under the ceiling, or session-state
    growth (handle graphs that retirement should have freed) is creeping
    back in.
    """

    def test_ceiling_covers_the_bell_soak(self):
        assert gate.RSS_CEILINGS["traffic_soak_bell"] == 220_000

    def test_rss_below_ceiling_passes(self):
        payload = {"soak_max_rss_kb": {"traffic_soak_bell": 110_000}}
        assert gate.check_rss(payload) == []

    def test_rss_above_ceiling_fails(self):
        payload = {"soak_max_rss_kb": {"traffic_soak_bell": 400_000}}
        violations = gate.check_rss(payload)
        assert len(violations) == 1
        assert "traffic_soak_bell" in violations[0]
        assert "400000" in violations[0]

    def test_missing_section_is_skipped(self):
        assert gate.check_rss({}) == []
        assert gate.check_rss({"soak_max_rss_kb": {}}) == []
        # dm has no ceiling; its presence alone must not fail anything.
        assert gate.check_rss(
            {"soak_max_rss_kb": {"traffic_soak_dm": 10 ** 9}}) == []

    def test_custom_ceiling_applies(self):
        payload = {"soak_max_rss_kb": {"traffic_soak_bell": 150_000}}
        assert gate.check_rss(payload,
                              ceilings={"traffic_soak_bell": 120_000})
        assert not gate.check_rss(payload,
                                  ceilings={"traffic_soak_bell": 200_000})

    def test_cli_flag_enforces_the_ceiling(self, tmp_path, capsys):
        baseline = gate.newest_baseline()
        payload = json.loads(baseline.read_text())
        payload["soak_max_rss_kb"] = {"traffic_soak_bell": 500_000}
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(payload))
        code = gate.main([str(fresh), "--check-speedups",
                          "--baseline", str(baseline)])
        assert code == 1
        assert "floors violated" in capsys.readouterr().out


class TestBaselineSelection:
    def test_newest_baseline_is_a_committed_bench_file(self):
        baseline = gate.newest_baseline()
        assert baseline.name.startswith("BENCH_")
        assert baseline.suffix == ".json"
        payload = json.loads(baseline.read_text())
        assert "results" in payload and payload["results"]

    def test_no_baseline_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no BENCH_"):
            gate.newest_baseline(tmp_path)

    def test_newest_by_mtime_outside_git(self, tmp_path):
        old = tmp_path / "BENCH_old.json"
        new = tmp_path / "BENCH_new.json"
        old.write_text("{}")
        new.write_text("{}")
        import os
        os.utime(old, (1, 1))
        os.utime(new, (2_000_000_000, 2_000_000_000))
        assert gate.newest_baseline(tmp_path) == new

    def test_untracked_baseline_is_not_trusted(self, tmp_path):
        """A locally produced, uncommitted BENCH file must never become
        the baseline — the gate would compare fresh vs fresh.  Uses a
        throwaway git repo so nothing shared with other (xdist) workers
        is touched."""
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t",
                 *argv], cwd=tmp_path, check=True, capture_output=True)

        git("init", "-q")
        committed = tmp_path / "BENCH_committed.json"
        committed.write_text("{}")
        git("add", "BENCH_committed.json")
        git("commit", "-qm", "baseline")
        untracked = tmp_path / "BENCH_zzz_untracked.json"
        untracked.write_text("{}")  # newer mtime, lexically later name
        assert gate.newest_baseline(tmp_path) == committed

    def test_exclusion_removes_pr_baselines(self):
        committed = gate.newest_baseline()
        with pytest.raises(FileNotFoundError, match="no BENCH_"):
            gate.newest_baseline(
                exclude={path.name
                         for path in gate.baseline_candidates()})
        # excluding the winner falls back to the next-newest, not an error
        remaining = gate.newest_baseline(exclude={committed.name})
        assert remaining != committed

    def test_changed_since_returns_bench_names_only(self):
        changed = gate.changed_since("HEAD")
        assert isinstance(changed, set)
        assert all(name.startswith("BENCH_") for name in changed)


class TestGateEndToEnd:
    def test_real_baseline_with_synthetic_slowdown_fails(self, tmp_path,
                                                         capsys):
        """Acceptance pin: a 4x slowdown on a tracked op trips the gate
        against the newest *committed* baseline."""
        baseline = gate.newest_baseline()
        payload = json.loads(baseline.read_text())
        op = sorted(payload["results"])[0]
        payload["results"][op] *= 4.0
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(payload))
        code = gate.main([str(fresh)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert op in out

    def test_identical_payload_passes(self, tmp_path, capsys):
        baseline = gate.newest_baseline()
        fresh = tmp_path / "fresh.json"
        fresh.write_text(baseline.read_text())
        code = gate.main([str(fresh), "--threshold", "3.0"])
        assert code == 0
        assert "OK: no tracked op regressed" in capsys.readouterr().out

    def test_explicit_baseline_flag(self, tmp_path, capsys):
        base = tmp_path / "BENCH_x.json"
        base.write_text(json.dumps(_payload({"op": 10.0})))
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(_payload({"op": 100.0})))
        code = gate.main([str(fresh), "--baseline", str(base)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
