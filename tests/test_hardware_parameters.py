"""Tables 1 and 2 of the paper, asserted value by value."""

import math

import pytest

from repro.hardware import NEAR_TERM, SIMULATION
from repro.netsim.units import MINUTE, NS, S, US


class TestTable1Simulation:
    gates = SIMULATION.gates

    def test_electron_single_qubit_gate(self):
        assert self.gates.electron_single_qubit_fidelity == 1.0
        assert self.gates.electron_single_qubit_duration == 5 * NS

    def test_two_qubit_gate(self):
        assert self.gates.two_qubit_gate_fidelity == 0.998
        assert self.gates.two_qubit_gate_duration == 500 * US

    def test_electron_init(self):
        assert self.gates.electron_init_fidelity == 0.99
        assert self.gates.electron_init_duration == 2 * US

    def test_electron_readout(self):
        assert self.gates.electron_readout_fidelity0 == 0.998
        assert self.gates.electron_readout_fidelity1 == 0.998
        assert self.gates.electron_readout_duration == 3.7 * US


class TestTable1NearTerm:
    gates = NEAR_TERM.gates

    def test_two_qubit_gate(self):
        assert self.gates.two_qubit_gate_fidelity == 0.992
        assert self.gates.two_qubit_gate_duration == 500 * US

    def test_carbon_gates(self):
        assert self.gates.carbon_rot_z_fidelity == 1.0
        assert self.gates.carbon_rot_z_duration == 20 * US
        assert self.gates.carbon_init_fidelity == 0.95
        assert self.gates.carbon_init_duration == 300 * US

    def test_electron_readout_asymmetric(self):
        assert self.gates.electron_readout_fidelity0 == 0.95
        assert self.gates.electron_readout_fidelity1 == 0.995


class TestTable2:
    def test_electron_lifetimes(self):
        assert SIMULATION.electron_t1 >= 3600 * S
        assert SIMULATION.electron_t2 == 60 * S
        assert NEAR_TERM.electron_t2 == pytest.approx(1.46 * S)

    def test_carbon_lifetimes(self):
        assert NEAR_TERM.carbon_t1 >= 6 * MINUTE
        assert NEAR_TERM.carbon_t2 == 60 * S

    def test_optics_simulation(self):
        assert SIMULATION.tau_w == 25.0
        assert SIMULATION.tau_e == 6.0
        assert SIMULATION.delta_phi == pytest.approx(math.radians(2.0))
        assert SIMULATION.p_double_excitation == 0.0
        assert SIMULATION.p_zero_phonon == 0.75
        assert SIMULATION.collection_efficiency == pytest.approx(20.0e-3)
        assert SIMULATION.dark_count_rate == pytest.approx(20.0 / S)
        assert SIMULATION.p_detection == 0.8
        assert SIMULATION.visibility == 1.0

    def test_optics_near_term(self):
        assert NEAR_TERM.delta_omega == pytest.approx(2 * math.pi * 377e3 / S)
        assert NEAR_TERM.tau_d == 82.0
        assert NEAR_TERM.tau_e == pytest.approx(6.48)
        assert NEAR_TERM.delta_phi == pytest.approx(math.radians(10.6))
        assert NEAR_TERM.p_double_excitation == 0.04
        assert NEAR_TERM.p_zero_phonon == 0.46
        assert NEAR_TERM.collection_efficiency == pytest.approx(4.38e-3)
        assert NEAR_TERM.visibility == 0.9

    def test_resource_model(self):
        # Simulation: two communication qubits per link, links in parallel.
        assert SIMULATION.comm_qubits_per_link == 2
        assert SIMULATION.parallel_links
        # Near-term: one communication qubit, storage qubits, serial links.
        assert NEAR_TERM.comm_qubits_per_link == 1
        assert NEAR_TERM.storage_qubits > 0
        assert not NEAR_TERM.parallel_links


def test_with_t2_replaces_only_t2():
    varied = SIMULATION.with_t2(1.6 * S)
    assert varied.electron_t2 == 1.6 * S
    assert varied.electron_t1 == SIMULATION.electron_t1
    assert varied.gates == SIMULATION.gates


def test_dark_count_probability_is_tiny():
    # 20 Hz over a 25 ns window.
    assert SIMULATION.dark_count_probability() == pytest.approx(20 * 25e-9, rel=1e-6)


def test_readout_error_properties():
    assert SIMULATION.gates.readout_error0 == pytest.approx(0.002)
    assert NEAR_TERM.gates.readout_error0 == pytest.approx(0.05)
    assert NEAR_TERM.gates.readout_error1 == pytest.approx(0.005)


def test_bsm_duration():
    expected = 500 * US + 2 * 3.7 * US
    assert SIMULATION.gates.bsm_duration == pytest.approx(expected)
