"""Unit tests for the discrete-event kernel."""

import pytest

from repro.netsim import MS, S, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, lambda: fired.append("c"))
    sim.schedule(10, lambda: fired.append("a"))
    sim.schedule(20, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_fifo():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(5.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42.0]
    assert sim.now == 42.0


def test_schedule_with_args():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "payload")
    sim.run()
    assert out == ["payload"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10.0, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(10.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert not handle.active


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "early")
    sim.schedule(100.0, fired.append, "late")
    sim.run(until=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_includes_boundary_event():
    sim = Simulator()
    fired = []
    sim.schedule(50.0, fired.append, "edge")
    sim.run(until=50.0)
    assert fired == ["edge"]


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(RuntimeError):
        sim.run(max_events=100)


def test_rng_reproducible_across_runs():
    values_a = Simulator(seed=7).rng.random()
    values_b = Simulator(seed=7).rng.random()
    assert values_a == values_b
    assert Simulator(seed=8).rng.random() != values_a


def test_pending_events_count():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events() == 2
    h1.cancel()
    assert sim.pending_events() == 1


def test_cancelled_heap_compacts_beyond_half_dead():
    sim = Simulator()
    fired = []
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    keep = sim.schedule(1000.0, fired.append, 1)
    assert len(sim._queue) == 101
    # Cancelling past the 50% mark triggers an in-place compaction.
    for handle in handles:
        handle.cancel()
    assert len(sim._queue) < 101
    assert sim.pending_events() == 1
    assert keep.active
    sim.run()
    assert fired == [1]


def test_small_heaps_skip_compaction():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for handle in handles:
        handle.cancel()
    # Below _COMPACT_MIN_QUEUE the dead entries stay until popped.
    assert len(sim._queue) == 10
    assert sim.pending_events() == 0
    sim.run()
    assert sim.events_processed == 0


def test_compaction_during_run_keeps_order():
    sim = Simulator()
    fired = []
    victims = [sim.schedule(50.0 + i, fired.append, f"dead{i}")
               for i in range(100)]
    sim.schedule(1.0, lambda: [handle.cancel() for handle in victims])
    sim.schedule(40.0, fired.append, "a")
    sim.schedule(60.0 + 100, fired.append, "b")
    sim.run()
    assert fired == ["a", "b"]


def test_post_at_fires_in_fifo_order_with_schedule():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, fired.append, "handle")
    sim.post_at(5.0, fired.append, "pooled")
    sim.post(0.0, fired.append, "early")
    sim.run()
    assert fired == ["early", "handle", "pooled"]
    assert sim.now == 5.0


def test_post_at_recycles_handles():
    sim = Simulator()
    for _ in range(50):
        sim.post(1.0, lambda: None)
    sim.run()
    pool_size = len(sim._pool)
    assert pool_size > 0
    # A second wave reuses the pooled handles instead of growing the pool.
    for _ in range(pool_size):
        sim.post(1.0, lambda: None)
    assert len(sim._pool) == 0
    sim.run()
    assert len(sim._pool) == pool_size


def test_post_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.post_at(5.0, lambda: None)
    with pytest.raises(ValueError):
        sim.post(-1.0, lambda: None)


def test_run_until_advances_time_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=3 * S)
    assert sim.now == 3 * S


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1 * MS, lambda: None)
    sim.run()
    assert sim.events_processed == 4
