"""Property tests pinning the closed-form analytics to the exact engine."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import (
    averaged_swap_dm,
    bell_diagonal_dm,
    bell_diagonal_weights,
    bell_fidelity,
    decoherence_kraus,
    QState,
    Qubit,
    werner_dm,
)
from repro.quantum.analytic import (
    chain_fidelity,
    chain_weights,
    dephased_weights,
    depolarized_weights,
    fidelity_after_storage,
    qber_x,
    qber_z,
    required_link_fidelity,
    swap_fidelity,
    swap_weights,
    validate_weights,
    werner_weights,
)

fidelities = st.floats(min_value=0.3, max_value=1.0)
weight_lists = st.lists(st.floats(min_value=0.01, max_value=1.0),
                        min_size=4, max_size=4)


def normalised(raw):
    weights = np.array(raw)
    return weights / weights.sum()


@given(fidelities, fidelities)
@settings(max_examples=30, deadline=None)
def test_swap_weights_match_engine(f_a, f_b):
    """XOR-convolution vs the exact outcome-averaged swap map."""
    analytic = swap_weights(werner_weights(f_a), werner_weights(f_b))
    engine = bell_diagonal_weights(
        averaged_swap_dm(werner_dm(f_a), werner_dm(f_b)))
    assert np.allclose(analytic, engine, atol=1e-9)


@given(weight_lists, weight_lists)
@settings(max_examples=30, deadline=None)
def test_swap_weights_general_bell_diagonal(raw_a, raw_b):
    weights_a, weights_b = normalised(raw_a), normalised(raw_b)
    analytic = swap_weights(weights_a, weights_b)
    engine = bell_diagonal_weights(
        averaged_swap_dm(bell_diagonal_dm(weights_a),
                         bell_diagonal_dm(weights_b)))
    assert np.allclose(analytic, engine, atol=1e-9)
    assert analytic.sum() == pytest.approx(1.0)


@given(fidelities)
@settings(max_examples=20, deadline=None)
def test_swap_fidelity_closed_form(fidelity):
    expected = fidelity ** 2 + (1 - fidelity) ** 2 / 3.0
    assert swap_fidelity(fidelity, fidelity) == pytest.approx(expected)


@given(fidelities, st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_chain_fidelity_matches_iterated_weights(fidelity, num_links):
    via_weights = chain_weights(werner_weights(fidelity), num_links)[0]
    assert chain_fidelity(fidelity, num_links) == pytest.approx(via_weights)


def test_chain_fidelity_decays_towards_quarter():
    assert chain_fidelity(0.9, 1) == pytest.approx(0.9)
    long_chain = chain_fidelity(0.9, 50)
    assert 0.25 < long_chain < 0.3


@given(st.floats(min_value=0.3, max_value=0.95),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_required_link_fidelity_inverts_chain(target, num_links):
    link = required_link_fidelity(target, num_links)
    assert chain_fidelity(link, num_links) == pytest.approx(target, abs=1e-9)


@given(fidelities, st.floats(min_value=0.0, max_value=5e9))
@settings(max_examples=30, deadline=None)
def test_dephasing_matches_engine(fidelity, elapsed):
    """Analytic storage decay vs the Kraus channel on the dm (one side)."""
    t2 = 1e9
    analytic = dephased_weights(werner_weights(fidelity), elapsed, t2,
                                both_sides=False)
    qa, qb = Qubit(), Qubit()
    state = QState(werner_dm(fidelity), [qa, qb])
    state.apply_channel(decoherence_kraus(elapsed, math.inf, t2), [qa])
    engine = bell_diagonal_weights(state.dm)
    assert np.allclose(analytic, engine, atol=1e-9)


@given(fidelities, st.floats(min_value=0.0, max_value=5e9))
@settings(max_examples=30, deadline=None)
def test_dephasing_both_sides_matches_engine(fidelity, elapsed):
    t2 = 1e9
    analytic = dephased_weights(werner_weights(fidelity), elapsed, t2,
                                both_sides=True)
    qa, qb = Qubit(), Qubit()
    state = QState(werner_dm(fidelity), [qa, qb])
    channel = decoherence_kraus(elapsed, math.inf, t2)
    state.apply_channel(channel, [qa])
    state.apply_channel(channel, [qb])
    engine = bell_diagonal_weights(state.dm)
    assert np.allclose(analytic, engine, atol=1e-9)


def test_fidelity_after_storage_monotone_decreasing():
    previous = 1.0
    for elapsed in (0.0, 1e8, 1e9, 5e9):
        current = fidelity_after_storage(0.95, elapsed, t2=1e9)
        assert current <= previous + 1e-12
        previous = current
    # Long storage converges to the equal mixture of B0 and its
    # phase-flipped partner B2: (p0 + p2)/2.
    rest = 0.05 / 3
    assert fidelity_after_storage(0.95, 1e12, t2=1e9) == pytest.approx(
        (0.95 + rest) / 2, abs=1e-6)


@given(weight_lists, st.floats(min_value=0.0, max_value=0.9))
@settings(max_examples=30, deadline=None)
def test_depolarized_weights_valid(raw, p):
    out = depolarized_weights(normalised(raw), p)
    assert out.sum() == pytest.approx(1.0)
    assert np.all(out >= -1e-12)


def test_depolarized_full_noise_is_uniform():
    out = depolarized_weights(werner_weights(1.0), 15.0 / 16.0)
    assert np.allclose(out, 0.25)


def test_qber_definitions():
    weights = np.array([0.7, 0.1, 0.15, 0.05])
    assert qber_z(weights) == pytest.approx(0.15)
    assert qber_x(weights) == pytest.approx(0.20)
    # Fidelity bound used by the test-round service.
    assert 1 - qber_z(weights) - qber_x(weights) <= weights[0]


def test_validation_errors():
    with pytest.raises(ValueError):
        werner_weights(1.5)
    with pytest.raises(ValueError):
        validate_weights([0.5, 0.5, 0.5, -0.5])
    with pytest.raises(ValueError):
        chain_weights(werner_weights(0.9), 0)
    with pytest.raises(ValueError):
        required_link_fidelity(0.1, 2)
    with pytest.raises(ValueError):
        dephased_weights(werner_weights(0.9), -1.0, 1e9)
    with pytest.raises(ValueError):
        depolarized_weights(werner_weights(0.9), 1.5)


def test_engine_chain_vs_analytic_chain():
    """Three-link chain: engine composition equals analytic composition."""
    link = werner_weights(0.92)
    analytic = chain_weights(link, 3)
    rho = bell_diagonal_dm(link)
    for _ in range(2):
        rho = averaged_swap_dm(rho, bell_diagonal_dm(link))
    assert np.allclose(bell_diagonal_weights(rho), analytic, atol=1e-9)
    assert bell_fidelity(rho, 0) == pytest.approx(analytic[0])
