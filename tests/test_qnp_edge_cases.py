"""Edge-case and failure-path tests for the QNP."""

import pytest

from repro.core import (
    DeliveryStatus,
    RequestStatus,
    RequestType,
    UserRequest,
)
from repro.netsim.units import MS, S
from repro.network.builder import (
    build_chain_network,
    build_dumbbell_network,
    build_near_term_chain,
)


class TestEarlyDeliveryExpiry:
    def test_early_pair_can_expire_after_delivery(self):
        """EARLY hands the qubit over before tracking completes; if the
        chain breaks, the application must get the EXPIRED notification
        (Sec 4.1 'Early delivery')."""
        net = build_chain_network(3, seed=41)
        # Tight explicit cutoff: many chains break mid-flight.
        circuit_id = net.establish_circuit("node0", "node2", 0.8,
                                           cutoff_policy=2 * MS)
        events = []
        handle = net.submit(circuit_id,
                            UserRequest(num_pairs=5,
                                        request_type=RequestType.EARLY))
        handle.on_delivery(lambda d: events.append(d.status))
        net.run_until_complete([handle], timeout_s=600)
        assert handle.status == RequestStatus.COMPLETED
        assert DeliveryStatus.PENDING in events
        assert events.count(DeliveryStatus.CONFIRMED) == 5
        # With such a tight cutoff at least some early pairs expired.
        assert DeliveryStatus.EXPIRED in events or handle.expired_count == 0


class TestStragglerPairs:
    def test_pairs_after_completion_are_discarded_cleanly(self):
        net = build_chain_network(3, seed=42)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = net.submit(circuit_id, UserRequest(num_pairs=2))
        net.run_until_complete([handle], timeout_s=120)
        assert handle.status == RequestStatus.COMPLETED
        # Let any in-flight stragglers resolve; memory must drain back.
        net.run(until_s=net.sim.now / 1e9 + 3.0)
        for name in ("node0", "node1", "node2"):
            stats = net.node(name).qmm.stats()
            for pool, (in_use, capacity) in stats.items():
                assert in_use == 0, (name, pool)

    def test_exactly_requested_count_delivered(self):
        net = build_chain_network(3, seed=43)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = net.submit(circuit_id, UserRequest(num_pairs=7))
        net.run_until_complete([handle], timeout_s=120)
        net.run(until_s=net.sim.now / 1e9 + 2.0)
        confirmed = [d for d in handle.delivered
                     if d.status == DeliveryStatus.CONFIRMED]
        assert len(confirmed) == 7


class TestSharedLinksOppositeCircuits:
    def test_two_circuits_opposite_directions_share_a_link(self):
        """A0→B1 and A1→B0 traverse MA-MB in the same physical direction
        but are installed independently; both must complete."""
        net = build_dumbbell_network(seed=44)
        first = net.establish_circuit("A0", "B1", 0.8, "short")
        second = net.establish_circuit("B0", "A1", 0.8, "short")
        handle_a = net.submit(first, UserRequest(num_pairs=4))
        handle_b = net.submit(second, UserRequest(num_pairs=4))
        net.run_until_complete([handle_a, handle_b], timeout_s=600)
        assert handle_a.status == RequestStatus.COMPLETED
        assert handle_b.status == RequestStatus.COMPLETED

    def test_reversed_circuit_roles(self):
        """The same node is head for one circuit and tail for another."""
        net = build_chain_network(3, seed=45)
        forward = net.establish_circuit("node0", "node2", 0.8)
        backward = net.establish_circuit("node2", "node0", 0.8)
        handle_f = net.submit(forward, UserRequest(num_pairs=3))
        handle_b = net.submit(backward, UserRequest(num_pairs=3))
        net.run_until_complete([handle_f, handle_b], timeout_s=600)
        assert handle_f.status == RequestStatus.COMPLETED
        assert handle_b.status == RequestStatus.COMPLETED


class TestLongerChains:
    def test_five_node_chain(self):
        net = build_chain_network(5, seed=46)
        circuit_id = net.establish_circuit("node0", "node4", 0.7)
        handle = net.submit(circuit_id, UserRequest(num_pairs=3),
                            record_fidelity=True)
        net.run_until_complete([handle], timeout_s=600)
        assert handle.status == RequestStatus.COMPLETED
        for matched in handle.matched_pairs:
            assert matched.fidelity >= 0.7 - 0.05
        # Three repeaters all swapped.
        for name in ("node1", "node2", "node3"):
            assert net.qnps[name].swaps_performed >= 3


class TestMixedAggregation:
    def test_keep_and_measure_share_circuit(self):
        net = build_chain_network(3, seed=47)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        keep = net.submit(circuit_id, UserRequest(num_pairs=3))
        measure = net.submit(circuit_id,
                             UserRequest(num_pairs=3,
                                         request_type=RequestType.MEASURE))
        net.run_until_complete([keep, measure], timeout_s=600)
        assert keep.status == RequestStatus.COMPLETED
        assert measure.status == RequestStatus.COMPLETED
        assert all(d.qubit is not None for d in keep.delivered
                   if d.status == DeliveryStatus.CONFIRMED)
        assert all(d.measurement in (0, 1) for d in measure.delivered)


class TestUninstall:
    def test_uninstall_mid_request_aborts(self):
        net = build_chain_network(3, seed=48)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        handle = net.submit(circuit_id, UserRequest(num_pairs=10 ** 6))
        net.run(until_s=0.5)
        net.teardown_circuit(circuit_id)
        assert handle.status == RequestStatus.ABORTED
        net.run(until_s=1.5)
        # Links stop generating for the torn circuit.
        link = net.link_between("node0", "node1")
        assert not link.has_request(f"label:{circuit_id}")

    def test_messages_for_torn_circuit_dropped(self):
        net = build_chain_network(3, seed=49)
        circuit_id = net.establish_circuit("node0", "node2", 0.8)
        net.submit(circuit_id, UserRequest(num_pairs=10 ** 6))
        net.run(until_s=0.2)
        net.teardown_circuit(circuit_id)
        # In-flight TRACK/EXPIRE messages must not crash the engines.
        net.run(until_s=1.0)


class TestNearTermStoragePath:
    def test_intermediate_moves_pairs_to_storage(self):
        """With one comm qubit per node the middle node must park the
        first pair in carbon storage to free the electron (Sec 5.3)."""
        net = build_near_term_chain(num_nodes=3, seed=50)
        circuit_id = net.establish_circuit_manual(
            ["node0", "node1", "node2"], link_fidelity=0.8,
            cutoff=3.0 * S, max_eer=5.0, estimated_fidelity=0.55)
        handle = net.submit(circuit_id, UserRequest(num_pairs=2),
                            record_fidelity=True)
        net.run_until_complete([handle], timeout_s=600)
        assert handle.status == RequestStatus.COMPLETED
        # Storage pool was actually exercised.
        assert net.node("node1").params.storage_qubits > 0
        for matched in handle.matched_pairs:
            assert matched.fidelity > 0.4

    def test_near_term_serial_links_still_complete(self):
        net = build_near_term_chain(num_nodes=3, seed=51)
        circuit_id = net.establish_circuit_manual(
            ["node0", "node1", "node2"], link_fidelity=0.75,
            cutoff=4.0 * S, max_eer=5.0, estimated_fidelity=0.5)
        handle = net.submit(circuit_id, UserRequest(num_pairs=1))
        net.run_until_complete([handle], timeout_s=600)
        assert handle.status == RequestStatus.COMPLETED


class TestMessageDataclasses:
    def test_direction_reverse(self):
        from repro.core.messages import Direction

        assert Direction.DOWNSTREAM.reverse is Direction.UPSTREAM
        assert Direction.UPSTREAM.reverse is Direction.DOWNSTREAM

    def test_routing_entry_validation(self):
        from repro.core import RoutingEntry

        with pytest.raises(ValueError):
            RoutingEntry(circuit_id="c", node="n", upstream_node=None,
                         downstream_node=None, upstream_link=None,
                         downstream_link=None, upstream_link_label=None,
                         downstream_link_label=None,
                         downstream_min_fidelity=None,
                         downstream_max_lpr=None, circuit_max_eer=1.0,
                         cutoff=None)
        with pytest.raises(ValueError):
            RoutingEntry(circuit_id="c", node="n", upstream_node=None,
                         downstream_node="m", upstream_link=None,
                         downstream_link=None, upstream_link_label=None,
                         downstream_link_label=None,
                         downstream_min_fidelity=0.9,
                         downstream_max_lpr=10.0, circuit_max_eer=1.0,
                         cutoff=None)

    def test_circuit_roles(self):
        from repro.core import CircuitRole, RoutingEntry

        head = RoutingEntry(circuit_id="c", node="a", upstream_node=None,
                            downstream_node="b", upstream_link=None,
                            downstream_link="l", upstream_link_label=None,
                            downstream_link_label="L",
                            downstream_min_fidelity=0.9,
                            downstream_max_lpr=10.0, circuit_max_eer=1.0,
                            cutoff=None)
        assert head.role == CircuitRole.HEAD
        tail = RoutingEntry(circuit_id="c", node="b", upstream_node="a",
                            downstream_node=None, upstream_link="l",
                            downstream_link=None, upstream_link_label="L",
                            downstream_link_label=None,
                            downstream_min_fidelity=None,
                            downstream_max_lpr=None, circuit_max_eer=1.0,
                            cutoff=None)
        assert tail.role == CircuitRole.TAIL
