"""Docstring coverage: no public API without documentation.

A pydocstyle-lite check over the control-plane and traffic packages
(the subsystems DESIGN.md documents in depth): every module, public
class, public function, and public method/property defined there must
carry a non-empty docstring.  Inherited members and private names
(``_underscore``) are exempt; so are dataclass-generated dunders.
"""

import importlib
import inspect
import pkgutil

import pytest

PACKAGES = ("repro.apps", "repro.campaign", "repro.control",
            "repro.obs", "repro.persist", "repro.traffic")


def _modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            names.append(f"{package_name}.{info.name}")
    return names


def _missing_docstrings(module):
    """All public API objects of ``module`` lacking a docstring."""
    missing = []
    if not (module.__doc__ or "").strip():
        missing.append(module.__name__)
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; checked where it is defined
        if not (inspect.getdoc(obj) or "").strip():
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            missing.extend(_missing_member_docstrings(module, obj, name))
    return missing


def _missing_member_docstrings(module, cls, cls_name):
    missing = []
    for member_name, member in vars(cls).items():
        if member_name.startswith("_"):
            continue
        if isinstance(member, property):
            target = member.fget
        elif inspect.isfunction(member):
            target = member
        else:
            continue
        if not (inspect.getdoc(target) or "").strip():
            missing.append(f"{module.__name__}.{cls_name}.{member_name}")
    return missing


@pytest.mark.parametrize("module_name", _modules())
def test_public_api_is_documented(module_name):
    module = importlib.import_module(module_name)
    missing = _missing_docstrings(module)
    assert not missing, (
        f"public API without docstrings in {module_name}: "
        + ", ".join(missing))
