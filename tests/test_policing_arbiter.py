"""Policer shaping and DeviceArbiter FIFO under multi-circuit contention."""

import pytest

from repro.core.policing import Policer, PolicerDecision
from repro.core.requests import RequestStatus, UserRequest
from repro.netsim.scheduler import Simulator
from repro.network.arbiter import DeviceArbiter, acquire_ordered, release_all
from repro.network.builder import build_chain_network


def _request(pairs: int, eer: float) -> UserRequest:
    """A request demanding exactly ``eer`` pairs/s."""
    return UserRequest(num_pairs=pairs, delta_t=pairs / eer * 1e9)


# ----------------------------------------------------------------------
# Policer: ACCEPT → QUEUE → start-on-free
# ----------------------------------------------------------------------

def test_policer_accept_then_queue_then_start_on_free():
    policer = Policer(max_eer=10.0)
    first = _request(4, 6.0)
    second = _request(4, 6.0)
    assert policer.admit(first) == PolicerDecision.ACCEPT
    assert policer.admit(second) == PolicerDecision.QUEUE
    assert policer.queued == 1
    assert policer.allocated_eer == pytest.approx(6.0)
    # Nothing startable while the first request holds the bandwidth.
    assert policer.next_startable() is None
    policer.release(first.request_id)
    started = policer.next_startable()
    assert started is second
    assert policer.queued == 0
    assert policer.allocated_eer == pytest.approx(6.0)
    assert policer.accepted_count == 1
    assert policer.queued_count == 1
    assert policer.rejected_count == 0


def test_policer_rejects_infeasible_and_counts():
    policer = Policer(max_eer=5.0)
    assert policer.admit(_request(10, 8.0)) == PolicerDecision.REJECT
    assert policer.rejected_count == 1
    # Rejection reserves nothing.
    assert policer.allocated_eer == 0.0
    assert policer.queued == 0


def test_policer_queue_is_fifo_no_overtaking():
    """A small request never overtakes the queued head (head-of-line)."""
    policer = Policer(max_eer=10.0)
    big = _request(8, 8.0)
    blocked = _request(8, 8.0)
    small = _request(3, 3.0)
    assert policer.admit(big) == PolicerDecision.ACCEPT
    assert policer.admit(blocked) == PolicerDecision.QUEUE
    # 2 pairs/s are free and `small` alone would be accepted on an empty
    # queue, but the queue is non-empty: FIFO shaping queues it behind
    # `blocked` rather than letting it overtake.
    assert policer.admit(small) == PolicerDecision.QUEUE
    policer.release(big.request_id)
    assert policer.next_startable() is blocked
    assert policer.next_startable() is None  # small doesn't fit beside blocked
    policer.release(blocked.request_id)
    assert policer.next_startable() is small


def test_policer_drop_queued():
    policer = Policer(max_eer=4.0)
    active = _request(4, 4.0)
    queued = _request(4, 4.0)
    policer.admit(active)
    policer.admit(queued)
    assert policer.drop_queued(queued.request_id) is True
    assert policer.drop_queued(queued.request_id) is False
    policer.release(active.request_id)
    assert policer.next_startable() is None


# ----------------------------------------------------------------------
# DeviceArbiter: FIFO ordering under contention
# ----------------------------------------------------------------------

def test_arbiter_fifo_order_and_wait_stats():
    sim = Simulator(seed=0)
    arbiter = DeviceArbiter(sim, name="dev", serialize=True)
    grants: list[str] = []

    def worker(tag: str, hold_ns: float):
        def on_grant():
            grants.append(tag)
            sim.schedule(hold_ns, arbiter.release)
        arbiter.acquire(on_grant)

    # Three circuits contend at t=0; two more join at t=5.
    for index in range(3):
        sim.schedule(0.0, worker, f"c{index}", 10.0)
    sim.schedule(5.0, worker, "c3", 10.0)
    sim.schedule(5.0, worker, "c4", 10.0)
    sim.run()
    assert grants == ["c0", "c1", "c2", "c3", "c4"]
    assert arbiter.grants == 5
    # c1 and c2 queue at t=0; c3 and c4 join at t=5, all before the first
    # release at t=10 — the queue peaks at four waiters.
    assert arbiter.max_queue_length == 4
    # c1 waited 10, c2 waited 20, c3 waited 25, c4 waited 35 ns.
    assert arbiter.total_wait == pytest.approx(10.0 + 20.0 + 25.0 + 35.0)
    assert arbiter.mean_wait == pytest.approx(arbiter.total_wait / 5)
    assert not arbiter.busy


def test_arbiter_parallel_mode_counts_grants_without_wait():
    sim = Simulator(seed=0)
    arbiter = DeviceArbiter(sim, name="dev", serialize=False)
    grants = []
    for _ in range(4):
        arbiter.acquire(lambda: grants.append(sim.now))
    sim.run()
    assert len(grants) == 4
    assert arbiter.grants == 4
    assert arbiter.total_wait == 0.0
    assert arbiter.mean_wait == 0.0


def test_arbiter_release_without_acquire_raises():
    sim = Simulator(seed=0)
    arbiter = DeviceArbiter(sim, name="dev", serialize=True)
    with pytest.raises(RuntimeError):
        arbiter.release()


def test_acquire_ordered_no_deadlock_on_crossed_requests():
    """Two multi-device reservations in opposite order both complete."""
    sim = Simulator(seed=0)
    a = DeviceArbiter(sim, name="a", serialize=True)
    b = DeviceArbiter(sim, name="b", serialize=True)
    done = []

    def reserve(tag, devices):
        def on_all():
            done.append(tag)
            sim.schedule(1.0, release_all, devices)
        acquire_ordered(devices, on_all)

    sim.schedule(0.0, reserve, "ab", [a, b])
    sim.schedule(0.0, reserve, "ba", [b, a])
    sim.run()
    assert sorted(done) == ["ab", "ba"]
    assert not a.busy and not b.busy


# ----------------------------------------------------------------------
# Integration: shaping + teardown on a real circuit
# ----------------------------------------------------------------------

def test_queued_requests_start_when_bandwidth_frees():
    net = build_chain_network(3, seed=11, formalism="bell")
    circuit_id = net.establish_circuit("node0", "node2", 0.7, "short",
                                      max_eer=6.0)
    first = net.submit(circuit_id, _request(3, 5.0))
    second = net.submit(circuit_id, _request(3, 5.0))
    assert first.status == RequestStatus.ACTIVE
    assert second.status == RequestStatus.QUEUED
    net.run_until_complete([first, second], timeout_s=600.0)
    assert first.status == RequestStatus.COMPLETED
    assert second.status == RequestStatus.COMPLETED
    assert second.t_started is not None
    assert second.t_started >= first.t_completed


def test_teardown_aborts_queued_requests():
    """A torn-down circuit must abort shaped (queued) requests too."""
    net = build_chain_network(3, seed=12, formalism="bell")
    circuit_id = net.establish_circuit("node0", "node2", 0.7, "short",
                                      max_eer=6.0)
    active = net.submit(circuit_id, _request(3, 5.0))
    queued = net.submit(circuit_id, _request(3, 5.0))
    assert queued.status == RequestStatus.QUEUED
    net.teardown_circuit(circuit_id)
    assert active.status == RequestStatus.ABORTED
    assert queued.status == RequestStatus.ABORTED
    # run_until_complete returns immediately: every handle is terminal.
    net.run_until_complete([active, queued], timeout_s=1.0)


def test_multi_circuit_contention_on_shared_link():
    """Several circuits through one bottleneck all make progress."""
    net = build_chain_network(4, seed=13, formalism="bell")
    circuits = [net.establish_circuit("node0", "node3", 0.7, "short")
                for _ in range(3)]
    handles = [net.submit(circuit_id, UserRequest(num_pairs=2))
               for circuit_id in circuits]
    net.run_until_complete(handles, timeout_s=900.0)
    for handle in handles:
        assert handle.status == RequestStatus.COMPLETED
        # Deliveries arrive in sequence order per circuit (FIFO demux).
        sequences = [delivery.sequence for delivery in handle.delivered]
        assert sequences == sorted(sequences)
