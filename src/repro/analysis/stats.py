"""Statistics helpers for the evaluation harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def standard_error(values: Sequence[float]) -> float:
    """Standard error of the mean (0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    variance = sum((v - mu) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass
class Cdf:
    """Empirical cumulative distribution function."""

    xs: list[float]
    ps: list[float]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Cdf":
        ordered = sorted(samples)
        if not ordered:
            raise ValueError("CDF of empty sample set")
        n = len(ordered)
        return cls(xs=ordered, ps=[(i + 1) / n for i in range(n)])

    def quantile(self, p: float) -> float:
        """Smallest x with CDF(x) ≥ p."""
        if not 0.0 < p <= 1.0:
            raise ValueError("quantile probability must be in (0, 1]")
        for x, cumulative in zip(self.xs, self.ps):
            if cumulative >= p:
                return x
        return self.xs[-1]

    def at(self, x: float) -> float:
        """Fraction of samples ≤ x."""
        count = sum(1 for sample in self.xs if sample <= x)
        return count / len(self.xs)

    def resample(self, points: int) -> list[tuple[float, float]]:
        """Evenly spaced (x, p) pairs for plotting/printing."""
        if points < 2:
            raise ValueError("need at least two points")
        lo, hi = self.xs[0], self.xs[-1]
        step = (hi - lo) / (points - 1)
        return [(lo + i * step, self.at(lo + i * step)) for i in range(points)]


def throughput(event_times: Sequence[float], window: tuple[float, float]) -> float:
    """Events per second within a (start, end) window (times in ns)."""
    start, end = window
    if end <= start:
        raise ValueError("window must have positive length")
    count = sum(1 for t in event_times if start <= t < end)
    return count / ((end - start) / 1e9)


@dataclass
class LatencySummary:
    """Latency statistics for a batch of requests (values in ns)."""

    count: int
    mean: float
    p5: float
    p50: float
    p95: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        return cls(
            count=len(samples),
            mean=mean(samples),
            p5=percentile(samples, 5),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
        )
