"""Statistics helpers for the evaluation harness."""

from __future__ import annotations

import math
import random
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def standard_error(values: Sequence[float]) -> float:
    """Standard error of the mean (0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    variance = sum((v - mu) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass
class Cdf:
    """Empirical cumulative distribution function."""

    xs: list[float]
    ps: list[float]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Cdf":
        ordered = sorted(samples)
        if not ordered:
            raise ValueError("CDF of empty sample set")
        n = len(ordered)
        return cls(xs=ordered, ps=[(i + 1) / n for i in range(n)])

    def quantile(self, p: float) -> float:
        """Smallest x with CDF(x) ≥ p."""
        if not 0.0 < p <= 1.0:
            raise ValueError("quantile probability must be in (0, 1]")
        for x, cumulative in zip(self.xs, self.ps):
            if cumulative >= p:
                return x
        return self.xs[-1]

    def at(self, x: float) -> float:
        """Fraction of samples ≤ x (``xs`` is sorted, so one bisection)."""
        return bisect_right(self.xs, x) / len(self.xs)

    def resample(self, points: int) -> list[tuple[float, float]]:
        """Evenly spaced (x, p) pairs for plotting/printing."""
        if points < 2:
            raise ValueError("need at least two points")
        lo, hi = self.xs[0], self.xs[-1]
        step = (hi - lo) / (points - 1)
        return [(lo + i * step, self.at(lo + i * step)) for i in range(points)]


@dataclass
class P2Quantile:
    """Bounded-memory streaming quantile estimator (P² algorithm).

    Jain & Chlamtac's piecewise-parabolic estimator tracks one quantile
    ``q`` (a probability in (0, 1)) with exactly five markers — five
    heights plus five positions — regardless of how many samples it has
    seen, so a soak run can report latency/fidelity percentiles without
    keeping every sample alive the way :func:`percentile` requires.  The
    first five observations are buffered and answered exactly; from the
    sixth on the markers track the running quantile to within a small
    bias (property-tested against :func:`percentile` in
    ``tests/test_obs.py``).
    """

    q: float
    count: int = 0
    _heights: list[float] = field(default_factory=list)
    _positions: list[float] = field(default_factory=list)
    _desired: list[float] = field(default_factory=list)

    def __post_init__(self):
        if not 0.0 < self.q < 1.0:
            raise ValueError("quantile probability must be in (0, 1)")

    def observe(self, x: float) -> None:
        """Fold one sample into the estimate (O(1) time and memory)."""
        x = float(x)
        self.count += 1
        if self.count <= 5:
            insort(self._heights, x)
            if self.count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * self.q, 1.0 + 4.0 * self.q,
                                 3.0 + 2.0 * self.q, 5.0]
            return
        heights, positions = self._heights, self._positions
        if x < heights[0]:
            heights[0] = x
            cell = 0
        elif x >= heights[4]:
            heights[4] = x
            cell = 3
        else:
            cell = 0
            while x >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        increments = (0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0)
        for i in range(5):
            self._desired[i] += increments[i]
        for i in (1, 2, 3):
            gap = self._desired[i] - positions[i]
            ahead = positions[i + 1] - positions[i]
            behind = positions[i - 1] - positions[i]
            if (gap >= 1.0 and ahead > 1.0) or (gap <= -1.0 and behind < -1.0):
                step = 1.0 if gap >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, step)
                heights[i] = candidate
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate (exact while fewer than six samples seen)."""
        if self.count == 0:
            raise ValueError("P2Quantile.value() before any observation")
        if self.count <= 5:
            return percentile(self._heights, self.q * 100.0)
        return self._heights[2]


class ReservoirSample:
    """Bounded-memory uniform sample of an unbounded stream (Algorithm R).

    Complements :class:`P2Quantile`: where P² tracks one pre-chosen
    quantile in O(1), a reservoir keeps ``capacity`` samples drawn
    uniformly (without replacement) from everything observed so far, so
    *any* quantile — or the whole empirical distribution — can be
    estimated after the fact from a soak run too long to keep in memory.
    Vitter's Algorithm R: the first ``capacity`` observations fill the
    reservoir; observation ``n`` then replaces a random slot with
    probability ``capacity / n``.  Deterministic for a given ``seed``.
    """

    def __init__(self, capacity: int, seed: int = 0):
        if capacity < 1:
            raise ValueError("reservoir capacity must be at least 1")
        self.capacity = capacity
        self.count = 0
        self._rng = random.Random(seed)
        self._samples: list[float] = []

    def observe(self, x: float) -> None:
        """Fold one sample into the reservoir (O(1) time, O(capacity) memory)."""
        self.count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(float(x))
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._samples[slot] = float(x)

    def samples(self) -> list[float]:
        """The current reservoir contents (a copy, unsorted)."""
        return list(self._samples)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (q in (0, 1)) from the reservoir."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile probability must be in (0, 1)")
        if not self._samples:
            raise ValueError("ReservoirSample.quantile() before any observation")
        return percentile(self._samples, q * 100.0)

    def __len__(self) -> int:
        return len(self._samples)


def throughput(event_times: Sequence[float], window: tuple[float, float]) -> float:
    """Events per second within a (start, end) window (times in ns)."""
    start, end = window
    if end <= start:
        raise ValueError("window must have positive length")
    count = sum(1 for t in event_times if start <= t < end)
    return count / ((end - start) / 1e9)


@dataclass
class LatencySummary:
    """Latency statistics for a batch of requests (values in ns)."""

    count: int
    mean: float
    p5: float
    p50: float
    p95: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        return cls(
            count=len(samples),
            mean=mean(samples),
            p5=percentile(samples, 5),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
        )
