"""Protocol event tracing: flat event logs and causal span trees.

A lightweight event log that the QNP engines and link-layer EGPs append
to when attached.  Used for debugging, for the tests that assert
protocol-level orderings, and by ``examples/sequence_trace.py`` to render
the paper's Fig 6 message sequence from a live run.

:class:`SpanTracer` extends the flat log with *causal spans*: every
recorded event becomes a point span with an ID and a parent link, and
long-lived activities (a circuit's lifetime, a session from submit to
completion) become interval spans, so one session's lifecycle is a
walkable tree (submit → route → install → generate → swap → deliver →
app consume).  The flat :class:`EventLog` API — ``of_kind``,
``render_sequence`` and friends — keeps working on a tracer unchanged:
it is simply a view over the point spans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One protocol-level event at one node."""

    time: float
    node: str
    kind: str
    detail: dict

    def __str__(self) -> str:
        pieces = " ".join(f"{key}={value}" for key, value in self.detail.items())
        return f"[{self.time / 1e6:10.3f} ms] {self.node:<8} {self.kind:<14} {pieces}"


class EventLog:
    """Append-only trace shared by all nodes of a network."""

    def __init__(self):
        self.events: list[TraceEvent] = []

    def record(self, time: float, node: str, kind: str, **detail) -> None:
        self.events.append(TraceEvent(time=time, node=node, kind=kind,
                                      detail=detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def at_node(self, node: str) -> list[TraceEvent]:
        return [event for event in self.events if event.node == node]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def render_sequence(self, nodes: Iterable[str],
                        max_events: int = 200) -> str:
        """Render a Fig 6-style sequence diagram: one column per node,
        events in time order."""
        nodes = list(nodes)
        width = 16
        header = f"{'time (ms)':>12}  " + "".join(f"{n:<{width}}" for n in nodes)
        rule = "-" * len(header)
        lines = [header, rule]
        for event in self.events[:max_events]:
            if event.node not in nodes:
                continue
            column = nodes.index(event.node)
            label = event.kind
            if "to" in event.detail:
                label = f"{event.kind}->{event.detail['to']}"
            cells = [" " * width] * len(nodes)
            cells[column] = f"{label:<{width}}"[:width]
            lines.append(f"{event.time / 1e6:>12.3f}  " + "".join(cells))
        return "\n".join(lines)


@dataclass
class Span:
    """One node of a causal span tree.

    A span is either an *interval* (``t_end`` set when the activity
    closes, ``None`` while it is still open) or a *point* event
    (``t_end == t_start``).  ``parent_id`` links it into the tree;
    root spans (circuits) have ``parent_id is None``.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    node: str
    t_start: float
    t_end: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Span length in ns, or None while the span is still open."""
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        """JSON-serialisable representation (one JSONL line)."""
        return {"span_id": self.span_id, "parent_id": self.parent_id,
                "name": self.name, "node": self.node,
                "t_start": self.t_start, "t_end": self.t_end,
                "attrs": self.attrs}


#: Detail keys that resolve a recorded event's parent span, tried in
#: order: a ``request=`` detail parents under that session's span, a
#: ``purpose=`` detail under the circuit owning that link label (the
#: network registers the aliases at install time), a ``circuit=`` detail
#: under the circuit span itself.
_PARENT_KEYS = (("request", "session"), ("purpose", "purpose"),
                ("circuit", "circuit"))


class SpanTracer(EventLog):
    """An :class:`EventLog` whose events form a causal span tree.

    Producers keep calling the flat :meth:`record` API; the tracer turns
    each event into a point span and infers its parent from the event's
    detail (``request=`` → session span, ``circuit=``/``purpose=`` →
    circuit span).  Interval spans are opened with :meth:`begin` under a
    lookup *key* — e.g. ``("circuit", circuit_id)`` or ``("session",
    request_id)`` — and closed with :meth:`end`.  Keys stay resolvable
    after a span closes, so late events (an EXPIRE racing a completed
    request) still land in the right subtree.
    """

    def __init__(self):
        super().__init__()
        self.spans: list[Span] = []
        self._index: dict[tuple, Span] = {}
        self._next_id = 1

    def _new_span(self, name: str, node: str, t_start: float,
                  t_end: Optional[float], parent: Optional[Span],
                  attrs: dict) -> Span:
        span = Span(span_id=self._next_id,
                    parent_id=None if parent is None else parent.span_id,
                    name=name, node=node, t_start=t_start, t_end=t_end,
                    attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        return span

    def begin(self, name: str, node: str, time: float, key: tuple = None,
              parent: Optional[Span] = None, **attrs) -> Span:
        """Open an interval span, optionally registered under ``key``."""
        span = self._new_span(name, node, time, None, parent, attrs)
        if key is not None:
            self._index[key] = span
        return span

    def end(self, key_or_span, time: float) -> Optional[Span]:
        """Close an interval span by lookup key or by the span itself."""
        span = (key_or_span if isinstance(key_or_span, Span)
                else self._index.get(key_or_span))
        if span is not None and span.t_end is None:
            span.t_end = time
        return span

    def alias(self, key: tuple, span: Span) -> None:
        """Register an extra lookup key for ``span`` (e.g. link labels)."""
        self._index[key] = span

    def lookup(self, key: tuple) -> Optional[Span]:
        """The span registered under ``key``, or None."""
        return self._index.get(key)

    def point(self, name: str, node: str, time: float,
              parent: Optional[Span] = None, **attrs) -> Span:
        """Add a point span (an instantaneous event) to the tree."""
        return self._new_span(name, node, time, time, parent, attrs)

    def record(self, time: float, node: str, kind: str, **detail) -> None:
        """Flat-log API: also files the event as a point span."""
        super().record(time, node, kind, **detail)
        parent = None
        for detail_key, prefix in _PARENT_KEYS:
            if detail_key in detail:
                parent = self._index.get((prefix, detail[detail_key]))
                if parent is not None:
                    break
        self.point(kind, node, time, parent=parent, **detail)
        if kind == "REQUEST_DONE" and "request" in detail:
            self.end(("session", detail["request"]), time)

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in creation order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        """Spans with no parent (circuit spans, orphan events)."""
        return [s for s in self.spans if s.parent_id is None]

    def walk(self, span: Span):
        """Yield ``(depth, span)`` over the subtree rooted at ``span``."""
        stack = [(0, span)]
        by_parent: dict[int, list[Span]] = {}
        for s in self.spans:
            if s.parent_id is not None:
                by_parent.setdefault(s.parent_id, []).append(s)
        while stack:
            depth, current = stack.pop()
            yield depth, current
            for child in reversed(by_parent.get(current.span_id, [])):
                stack.append((depth + 1, child))

    def render_tree(self, span: Span) -> str:
        """Indented text rendering of the subtree rooted at ``span``."""
        lines = []
        for depth, current in self.walk(span):
            stamp = f"{current.t_start / 1e6:10.3f} ms"
            tail = "" if current.t_end is None else (
                "" if current.t_end == current.t_start
                else f" (+{(current.t_end - current.t_start) / 1e6:.3f} ms)")
            attrs = " ".join(f"{k}={v}" for k, v in current.attrs.items())
            lines.append(f"[{stamp}] {'  ' * depth}{current.name}"
                         f"{tail}{' ' + attrs if attrs else ''}")
        return "\n".join(lines)

    def write_jsonl(self, path) -> int:
        """Write every span as one JSON line; returns the span count."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict()) + "\n")
        return len(self.spans)


def attach_trace(net, log: Optional[EventLog] = None) -> EventLog:
    """Attach a shared event log to every QNP engine and link-layer EGP.

    Pass an existing log (e.g. a :class:`SpanTracer`) to share it;
    span tracers are additionally registered on the network so it can
    open circuit/session interval spans (see :func:`attach_tracer`).
    """
    log = EventLog() if log is None else log
    for qnp in net.qnps.values():
        qnp.trace = log
    for link in net.links.values():
        link.trace = log
    if isinstance(log, SpanTracer):
        net.tracer = log
    return log


def attach_tracer(net) -> SpanTracer:
    """Attach a causal :class:`SpanTracer` to a network.

    Equivalent to ``attach_trace(net, SpanTracer())``: the tracer
    receives every QNP and EGP event as a point span and the network
    opens circuit/session interval spans around them.
    """
    tracer = SpanTracer()
    attach_trace(net, tracer)
    return tracer
