"""Protocol event tracing.

A lightweight event log that the QNP engines append to when attached.
Used for debugging, for the tests that assert protocol-level orderings,
and by ``examples/sequence_trace.py`` to render the paper's Fig 6 message
sequence from a live run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One protocol-level event at one node."""

    time: float
    node: str
    kind: str
    detail: dict

    def __str__(self) -> str:
        pieces = " ".join(f"{key}={value}" for key, value in self.detail.items())
        return f"[{self.time / 1e6:10.3f} ms] {self.node:<8} {self.kind:<14} {pieces}"


class EventLog:
    """Append-only trace shared by all nodes of a network."""

    def __init__(self):
        self.events: list[TraceEvent] = []

    def record(self, time: float, node: str, kind: str, **detail) -> None:
        self.events.append(TraceEvent(time=time, node=node, kind=kind,
                                      detail=detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def at_node(self, node: str) -> list[TraceEvent]:
        return [event for event in self.events if event.node == node]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def render_sequence(self, nodes: Iterable[str],
                        max_events: int = 200) -> str:
        """Render a Fig 6-style sequence diagram: one column per node,
        events in time order."""
        nodes = list(nodes)
        width = 16
        header = f"{'time (ms)':>12}  " + "".join(f"{n:<{width}}" for n in nodes)
        rule = "-" * len(header)
        lines = [header, rule]
        for event in self.events[:max_events]:
            if event.node not in nodes:
                continue
            column = nodes.index(event.node)
            label = event.kind
            if "to" in event.detail:
                label = f"{event.kind}->{event.detail['to']}"
            cells = [" " * width] * len(nodes)
            cells[column] = f"{label:<{width}}"[:width]
            lines.append(f"{event.time / 1e6:>12.3f}  " + "".join(cells))
        return "\n".join(lines)


def attach_trace(net) -> EventLog:
    """Attach a shared event log to every QNP engine in a network."""
    log = EventLog()
    for qnp in net.qnps.values():
        qnp.trace = log
    return log
