"""Evaluation helpers: statistics, seed sweeps, table rendering."""

from .experiments import (
    SeedSweep,
    map_parallel,
    render_series,
    render_table,
    run_seeds,
)
from .stats import (
    Cdf,
    LatencySummary,
    P2Quantile,
    ReservoirSample,
    mean,
    percentile,
    standard_error,
    throughput,
)
from .tracing import EventLog, Span, SpanTracer, TraceEvent, attach_trace, attach_tracer

__all__ = [
    "EventLog",
    "Span",
    "SpanTracer",
    "TraceEvent",
    "attach_trace",
    "attach_tracer",
    "Cdf",
    "P2Quantile",
    "ReservoirSample",
    "LatencySummary",
    "mean",
    "percentile",
    "standard_error",
    "throughput",
    "SeedSweep",
    "map_parallel",
    "run_seeds",
    "render_table",
    "render_series",
]
