"""Evaluation helpers: statistics, seed sweeps, table rendering."""

from .experiments import (
    SeedSweep,
    map_parallel,
    render_series,
    render_table,
    run_seeds,
)
from .stats import Cdf, LatencySummary, mean, percentile, standard_error, throughput
from .tracing import EventLog, TraceEvent, attach_trace

__all__ = [
    "EventLog",
    "TraceEvent",
    "attach_trace",
    "Cdf",
    "LatencySummary",
    "mean",
    "percentile",
    "standard_error",
    "throughput",
    "SeedSweep",
    "map_parallel",
    "run_seeds",
    "render_table",
    "render_series",
]
