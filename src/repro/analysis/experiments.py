"""Experiment harness utilities: seed sweeps and text rendering.

The benchmarks print their figures as aligned text tables and series —
the repository has no plotting dependency, and the point of the harness is
the *numbers* (who wins, by what factor, where crossovers fall).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from .stats import mean, standard_error


def map_parallel(fn, items: Sequence, workers: Optional[int] = None) -> list:
    """Order-preserving map, optionally sharded over a process pool.

    The sharding core shared by :meth:`SeedSweep.run` and the campaign
    runner (:func:`repro.campaign.run_campaign`): ``items`` are fanned out
    across ``workers`` ``multiprocessing`` processes (default one per CPU,
    capped at the item count) and the results come back **in input
    order**, so a sharded map aggregates identically to the serial one
    whenever each call is self-contained in its item.  ``workers=1`` (or
    a single item) is the serial path — no pool, no pickling requirement
    on ``fn`` or ``items``.
    """
    items = list(items)
    if workers is None:
        workers = min(len(items), os.cpu_count() or 1)
    if workers > 1 and len(items) > 1:
        import multiprocessing

        with multiprocessing.Pool(processes=workers) as pool:
            return pool.map(fn, items)
    return [fn(item) for item in items]


@dataclass
class SeedSweep:
    """Run a scenario across seeds and aggregate per-seed scalars."""

    scenario: Callable[[int], float]
    seeds: Sequence[int]
    samples: list[float] = field(default_factory=list)

    def run(self, parallel: bool = False,
            workers: Optional[int] = None) -> "SeedSweep":
        """Evaluate the scenario on every seed.

        ``parallel=True`` fans the seeds out over a ``multiprocessing`` pool
        via :func:`map_parallel` (``workers`` processes, default one per
        CPU up to the seed count).  Results are deterministic and identical
        to the serial run: each scenario call is self-contained in its
        seed, and ``samples`` keeps the seed order regardless of completion
        order.  ``workers=1`` (or a single seed) falls back to the serial
        path — no pool, no pickling requirements on ``scenario``.
        """
        if parallel:
            self.samples = [float(sample) for sample
                            in map_parallel(self.scenario, self.seeds,
                                            workers=workers)]
            return self
        self.samples = [float(self.scenario(seed)) for seed in self.seeds]
        return self

    @property
    def mean(self) -> float:
        return mean(self.samples)

    @property
    def sem(self) -> float:
        return standard_error(self.samples)


def run_seeds(scenario: Callable[[int], float], seeds: Iterable[int],
              parallel: bool = False,
              workers: Optional[int] = None) -> SeedSweep:
    """Convenience wrapper: ``run_seeds(fn, range(5)).mean``.

    Pass ``parallel=True`` for a multiprocessing sweep (``scenario`` must
    then be picklable, i.e. a module-level function).
    """
    return SeedSweep(scenario=scenario, seeds=list(seeds)).run(
        parallel=parallel, workers=workers)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned text table (benchmark output format)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence, ys: Sequence,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series as a two-column table."""
    return render_table([x_label, y_label], list(zip(xs, ys)), title=name)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
