"""Campaign aggregation: per-cell tables, axis marginals, JSON artifact.

A :class:`CampaignResult` renders like every other table in the
repository (through :func:`repro.analysis.experiments.render_table`) and
serialises to ``CAMPAIGN_<rev>.json`` so studies are diffable across
revisions the same way ``BENCH_<rev>.json`` tracks the perf trajectory.

Everything rendered or serialised here is a pure function of the spec
and the cell results — no wall-clock times, worker counts or
process-global labels — which is what lets a sharded run's report be
byte-identical to the serial run's.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, TYPE_CHECKING

from ..analysis.experiments import render_table
from ..analysis.stats import mean
from .spec import AXIS_ORDER, CampaignCell, CampaignSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import CellResult


def git_revision(anchor: Optional[Path] = None) -> str:
    """Short git revision for artifact names ("dev" outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], capture_output=True,
            text=True, check=True,
            cwd=anchor or Path(__file__).resolve().parent)
        return out.stdout.strip() or "dev"
    except Exception:
        return "dev"


@dataclass
class CampaignResult:
    """All cells of one executed campaign, plus aggregation views."""

    spec: CampaignSpec
    cells: Sequence[CampaignCell]
    results: Sequence["CellResult"]

    @property
    def completed_cells(self) -> int:
        """Cells that ran to completion (no install/run error)."""
        return sum(1 for result in self.results if not result.error)

    @property
    def failed_cells(self) -> int:
        """Cells that recorded an error instead of telemetry."""
        return len(self.results) - self.completed_cells

    @property
    def total_pairs(self) -> int:
        """Confirmed end-to-end pairs across the whole grid."""
        return sum(result.pairs for result in self.results)

    @property
    def total_sessions(self) -> int:
        """Sessions submitted across the whole grid."""
        return sum(result.sessions for result in self.results)

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """The campaign report: totals, per-cell table, axis marginals."""
        blocks = [self._render_totals(), self._render_cells()]
        for axis in AXIS_ORDER:
            if len(self.spec.axes[axis]) > 1:
                blocks.append(self._render_marginal(axis))
        failures = [result for result in self.results if result.error]
        if failures:
            blocks.append(render_table(
                ["cell", "error"],
                [[result.label, result.error] for result in failures],
                title="failed cells"))
        return "\n\n".join(blocks)

    def _render_totals(self) -> str:
        lines = [
            f"campaign {self.spec.name} — {len(self.results)} cells "
            f"({', '.join(self._axis_summary())}), "
            f"horizon {self.spec.horizon_s:g} s/cell",
            f"  {self.completed_cells} cells completed, "
            f"{self.failed_cells} failed; "
            f"{self.total_sessions} sessions, "
            f"{self.total_pairs} confirmed pairs",
        ]
        fidelities = [result.mean_fidelity for result in self.results
                      if result.mean_fidelity is not None]
        if fidelities:
            lines.append(f"  mean cell fidelity {mean(fidelities):.4f} "
                         f"(min {min(fidelities):.4f}, "
                         f"max {max(fidelities):.4f})")
        return "\n".join(lines)

    def _axis_summary(self) -> list[str]:
        summary = []
        for axis in AXIS_ORDER:
            count = len(self.spec.axes[axis])
            if count > 1:
                summary.append(f"{count} {axis}")
        return summary or ["single point"]

    def _render_cells(self) -> str:
        rows = []
        for cell, result in zip(self.cells, self.results):
            if result.error:
                rows.append([result.index, cell.topology, cell.size,
                             cell.formalism, cell.metric,
                             cell.faults.label(), cell.app or "-",
                             cell.seed, "ERROR", "-", "-", "-", "-"])
                continue
            rows.append([
                result.index, cell.topology, cell.size, cell.formalism,
                cell.metric, cell.faults.label(), cell.app or "-",
                cell.seed, result.sessions, result.pairs,
                f"{result.throughput_pairs_per_s:.2f}",
                ("-" if result.mean_fidelity is None
                 else f"{result.mean_fidelity:.4f}"),
                f"{result.circuits_recovered}/{result.circuits_lost}",
            ])
        return render_table(
            ["cell", "topology", "size", "formalism", "metric", "faults",
             "app", "seed", "sessions", "pairs", "pairs/s", "mean F",
             "rec/lost"],
            rows, title="per-cell telemetry")

    def _render_marginal(self, axis: str) -> str:
        """Aggregate the grid down one axis (mean over the other axes).

        The ``app`` marginal additionally rolls up the application-level
        telemetry: consumed pairs, SLO attainment and the app's headline
        metric (apps differ in what that metric *is*, so it renders as a
        bare mean per app value).
        """
        groups: dict[str, list] = {}
        for cell, result in zip(self.cells, self.results):
            if result.error:
                continue
            groups.setdefault(self._axis_value_label(axis, cell),
                              []).append(result)
        # The app columns reuse the artifact's own rollup so the rendered
        # marginal can never disagree with the CAMPAIGN_<rev>.json "apps"
        # section (both views group the same non-error cells).
        per_app = self.per_app() if axis == "app" else {}
        rows = []
        for label, members in groups.items():
            fidelities = [result.mean_fidelity for result in members
                          if result.mean_fidelity is not None]
            row = [
                label, len(members),
                f"{mean([r.throughput_pairs_per_s for r in members]):.2f}",
                ("-" if not fidelities else f"{mean(fidelities):.4f}"),
                sum(result.sessions_recovered for result in members),
                sum(result.sessions_lost for result in members),
            ]
            if axis == "app":
                entry = per_app.get(label)
                if entry is None:  # the app-less "-" value of the axis
                    row.extend([0, "-", "-"])
                else:
                    row.extend([
                        entry["pairs_consumed"],
                        (f"{entry['circuits_slo_met']}"
                         f"/{entry['circuits']}"),
                        ("-" if entry["mean_headline"] is None
                         else f"{entry['mean_headline']:.4f}"),
                    ])
            rows.append(row)
        header = [axis, "cells", "mean pairs/s", "mean F", "rec", "lost"]
        if axis == "app":
            header.extend(["app pairs", "SLO met", "headline"])
        return render_table(header, rows, title=f"marginal by {axis}")

    @staticmethod
    def _axis_value_label(axis: str, cell: CampaignCell) -> str:
        if axis == "topology":
            return f"{cell.topology}:{cell.size}"
        if axis == "faults":
            return cell.faults.label()
        if axis == "app":
            return cell.app or "-"
        return str(getattr(cell, axis))

    # -- serialisation ---------------------------------------------------

    def per_app(self) -> dict:
        """Per-app rollup across the grid (the ``app`` axis marginal)."""
        apps: dict[str, dict] = {}
        for result in self.results:
            if result.error or not result.app:
                continue
            entry = apps.setdefault(result.app, {
                "cells": 0, "pairs_consumed": 0, "circuits": 0,
                "circuits_slo_met": 0, "_headlines": []})
            entry["cells"] += 1
            entry["pairs_consumed"] += result.app_pairs
            entry["circuits"] += result.app_circuits
            entry["circuits_slo_met"] += result.app_circuits_met
            if result.app_headline is not None:
                entry["_headlines"].append(result.app_headline)
        for entry in apps.values():
            headlines = entry.pop("_headlines")
            entry["mean_headline"] = (None if not headlines
                                      else round(mean(headlines), 4))
        return dict(sorted(apps.items()))

    def to_payload(self) -> dict:
        """The machine-readable campaign artifact (JSON-ready dict)."""
        return {
            "campaign": self.spec.name,
            "spec": self.spec.to_dict(),
            "cell_count": len(self.results),
            "completed_cells": self.completed_cells,
            "failed_cells": self.failed_cells,
            "totals": {
                "sessions": self.total_sessions,
                "pairs": self.total_pairs,
            },
            "apps": self.per_app(),
            "cells": [result.to_dict() for result in self.results],
        }

    def write_json(self, path: Path,
                   revision: Optional[str] = None) -> Path:
        """Write the artifact (with its revision stamp) to ``path``."""
        payload = self.to_payload()
        payload["revision"] = revision or git_revision(Path.cwd())
        path = Path(path)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path
