"""Campaign execution: run every cell, serial or sharded, deterministically.

Each :class:`~repro.campaign.spec.CampaignCell` is executed through the
normal :class:`~repro.traffic.workload.TrafficEngine` path — build the
cell's topology, install its circuits with its routing metric, run its
Poisson workload (with its fault schedule, when one is declared) — and
reduced to a :class:`CellResult` of plain scalars.

Sharding goes through :func:`repro.analysis.experiments.map_parallel`:
cells are fanned out across a ``multiprocessing`` pool and the results
come back in cell order, so ``workers=8`` aggregates **byte-identically**
to ``workers=1`` for the same spec.  Two rules keep that true:

* every cell is self-contained in its parameters — the network seed, the
  workload seed and the fault stream all derive from the cell's ``seed``;
* :class:`CellResult` carries *counts and rates only*, never process-level
  labels (circuit IDs draw from a process-global counter, which differs
  between a fresh pool worker and a long-lived serial process).

A cell that fails to install (e.g. more circuits than a small topology
can route) records its error string instead of sinking the campaign —
errors are deterministic too, so they shard identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Optional

from ..analysis.experiments import map_parallel
from ..traffic.topologies import build_topology
from ..traffic.workload import TrafficEngine
from .report import CampaignResult
from .spec import CampaignCell, CampaignSpec


@dataclass(frozen=True)
class ObsConfig:
    """Where a campaign's per-cell observability artifacts go.

    Frozen and field-picklable on purpose: the config rides into the
    pool workers via :func:`functools.partial`, so sharded campaigns
    stream the same per-cell files as serial ones.  Each cell writes
    ``cell<index>.jsonl`` under the configured directories (kept apart
    by index, which is shard-order independent).
    """

    #: Directory for per-cell metrics snapshots (None = no snapshots).
    metrics_dir: Optional[str] = None
    #: Directory for per-cell span traces (None = no tracing).
    trace_dir: Optional[str] = None
    #: Simulated seconds between snapshot frames.
    snapshot_interval_s: float = 0.5

    def metrics_path(self, cell: "CampaignCell") -> Optional[str]:
        """This cell's snapshot file (None when snapshots are off)."""
        if self.metrics_dir is None:
            return None
        return str(Path(self.metrics_dir) / f"cell{cell.index}.jsonl")

    def trace_path(self, cell: "CampaignCell") -> Optional[str]:
        """This cell's span-trace file (None when tracing is off)."""
        if self.trace_dir is None:
            return None
        return str(Path(self.trace_dir) / f"cell{cell.index}.jsonl")


@dataclass(frozen=True)
class PersistConfig:
    """Durability knobs for a campaign's cells.

    Frozen and field-picklable like :class:`ObsConfig` — it rides into
    the pool workers via :func:`functools.partial`.  With a
    ``checkpoint_dir``, every cell writes its own durable checkpoint
    (``cell<index>.ckpt``) on the configured interval; with ``resume``,
    cells whose checkpoint file survived a kill pick up from it instead
    of starting over (cells without one run fresh — resuming a campaign
    is always safe).
    """

    #: Directory for per-cell checkpoints (None = checkpointing off).
    checkpoint_dir: Optional[str] = None
    #: Simulated seconds between checkpoint writes.
    checkpoint_interval_s: float = 1.0
    #: Resume cells from surviving checkpoints instead of starting over.
    resume: bool = False
    #: Bound per-cell memory by retiring finished sessions.
    retire_sessions: bool = False

    def checkpoint_path(self, cell: "CampaignCell") -> Optional[str]:
        """This cell's checkpoint file (None when checkpointing is off)."""
        if self.checkpoint_dir is None:
            return None
        return str(Path(self.checkpoint_dir) / f"cell{cell.index}.ckpt")


@dataclass(frozen=True)
class CellResult:
    """One executed cell, reduced to shard-order-independent scalars."""

    index: int
    #: Cell label ("topology:size formalism metric faults seed").
    label: str
    nodes: int
    links: int
    circuits_installed: int
    max_link_share: float
    sessions: int
    accepted: int
    queued: int
    rejected: int
    completed: int
    pairs: int
    throughput_pairs_per_s: float
    mean_fidelity: Optional[float]
    link_down_events: int
    circuits_recovered: int
    circuits_lost: int
    sessions_recovered: int
    sessions_lost: int
    route_computations: int
    #: The cell's application service ("" for app-less cells).
    app: str = ""
    #: Pairs the app consumed across the cell's circuits.
    app_pairs: int = 0
    #: Circuits whose app session met every SLO objective / circuits run.
    app_circuits_met: int = 0
    app_circuits: int = 0
    #: Mean of the app's headline metric over the cell's circuits.
    app_headline: Optional[float] = None
    #: Non-empty when the cell failed; every telemetry field is then 0.
    error: str = ""

    def to_dict(self) -> dict:
        """JSON-ready row for the ``CAMPAIGN_<rev>.json`` artifact."""
        return {
            "index": self.index,
            "label": self.label,
            "nodes": self.nodes,
            "links": self.links,
            "circuits_installed": self.circuits_installed,
            "max_link_share": round(self.max_link_share, 4),
            "sessions": self.sessions,
            "accepted": self.accepted,
            "queued": self.queued,
            "rejected": self.rejected,
            "completed": self.completed,
            "pairs": self.pairs,
            "throughput_pairs_per_s": round(self.throughput_pairs_per_s, 2),
            "mean_fidelity": (None if self.mean_fidelity is None
                              else round(self.mean_fidelity, 4)),
            "link_down_events": self.link_down_events,
            "circuits_recovered": self.circuits_recovered,
            "circuits_lost": self.circuits_lost,
            "sessions_recovered": self.sessions_recovered,
            "sessions_lost": self.sessions_lost,
            "route_computations": self.route_computations,
            "app": self.app,
            "app_pairs": self.app_pairs,
            "app_circuits_met": self.app_circuits_met,
            "app_circuits": self.app_circuits,
            "app_headline": (None if self.app_headline is None
                             else round(self.app_headline, 4)),
            "error": self.error,
        }


def run_cell(cell: CampaignCell,
             obs: Optional[ObsConfig] = None,
             persist: Optional["PersistConfig"] = None) -> CellResult:
    """Execute one campaign cell end to end and reduce its telemetry.

    Module-level (picklable) on purpose: this is the function the pool
    workers receive.  Deterministic in the cell alone; ``obs`` adds
    per-cell metrics/trace files and ``persist`` per-cell durable
    checkpoints without touching the telemetry scalars.  With
    ``persist.resume``, a cell whose checkpoint file survived a kill is
    loaded and finished instead of re-run from scratch.
    """
    obs = obs or ObsConfig()
    persist = persist or PersistConfig()
    checkpoint = persist.checkpoint_path(cell)
    try:
        if (persist.resume and checkpoint is not None
                and Path(checkpoint).exists()):
            from ..persist import load_checkpoint

            engine = load_checkpoint(checkpoint)
            net = engine.net
            report = engine.resume_run()
        else:
            net = build_topology(cell.topology, cell.size, seed=cell.seed,
                                 formalism=cell.formalism)
            engine = TrafficEngine(
                net, circuits=cell.circuits, load=cell.load,
                target_fidelity=cell.target_fidelity, seed=cell.seed,
                metric=cell.metric, fail_links=cell.faults.fail_links,
                mtbf_s=cell.faults.mtbf_s, mttr_s=cell.faults.mttr_s,
                apps=None if cell.app is None else [cell.app],
                metrics_out=obs.metrics_path(cell),
                snapshot_interval_s=obs.snapshot_interval_s,
                trace_out=obs.trace_path(cell),
                checkpoint_out=checkpoint,
                checkpoint_interval_s=persist.checkpoint_interval_s,
                retire_sessions=persist.retire_sessions)
            report = engine.run(horizon_s=cell.horizon_s,
                                drain_s=cell.drain_s)
    except (ValueError, RuntimeError) as exc:
        return _error_result(cell, f"{type(exc).__name__}: {exc}")
    recovery = report.recovery
    summary = report.app_summaries.get(cell.app) if cell.app else None
    return CellResult(
        index=cell.index,
        label=cell.label(),
        nodes=len(net.nodes),
        links=len(net.links),
        circuits_installed=len(engine.circuits),
        max_link_share=engine.max_link_share,
        sessions=report.total_sessions,
        accepted=sum(t.accepted for t in report.classes.values()),
        queued=sum(t.queued for t in report.classes.values()),
        rejected=sum(t.rejected for t in report.classes.values()),
        completed=sum(t.completed for t in report.classes.values()),
        pairs=report.total_confirmed_pairs,
        throughput_pairs_per_s=report.throughput_pairs_per_s,
        mean_fidelity=report.mean_fidelity,
        link_down_events=(recovery.link_down_events if recovery else 0),
        circuits_recovered=(recovery.circuits_recovered if recovery else 0),
        circuits_lost=(recovery.circuits_lost if recovery else 0),
        sessions_recovered=(recovery.sessions_recovered if recovery else 0),
        sessions_lost=(recovery.sessions_lost if recovery else 0),
        route_computations=(recovery.route_computations if recovery else 0),
        app=cell.app or "",
        app_pairs=summary.pairs_consumed if summary else 0,
        app_circuits_met=summary.circuits_met if summary else 0,
        app_circuits=summary.circuits if summary else 0,
        app_headline=summary.headline if summary else None,
    )


def _error_result(cell: CampaignCell, message: str) -> CellResult:
    """A zeroed result recording why the cell could not run."""
    return CellResult(
        index=cell.index, label=cell.label(), nodes=0, links=0,
        circuits_installed=0, max_link_share=0.0, sessions=0, accepted=0,
        queued=0, rejected=0, completed=0, pairs=0,
        throughput_pairs_per_s=0.0, mean_fidelity=None, link_down_events=0,
        circuits_recovered=0, circuits_lost=0, sessions_recovered=0,
        sessions_lost=0, route_computations=0, error=message)


def run_campaign(spec: CampaignSpec, workers: int = 1,
                 cells: Optional[list[CampaignCell]] = None,
                 obs: Optional[ObsConfig] = None,
                 persist: Optional[PersistConfig] = None) -> CampaignResult:
    """Expand a spec and execute every cell, sharded over ``workers``.

    ``workers=1`` runs serially in-process; ``workers>1`` shards the cell
    list over a ``multiprocessing`` pool.  Both orders of execution
    produce the identical :class:`~repro.campaign.report.CampaignResult`
    (and hence byte-identical rendered reports and JSON artifacts) for
    the same spec — the determinism the CI smoke test pins.

    ``cells`` lets a caller that already called ``spec.expand()`` (e.g.
    to print the grid size up front) reuse the expansion; it must be
    exactly that — expansion is deterministic, so any other list would
    desynchronise results from the spec.

    ``obs`` turns on per-cell observability artifacts (metrics snapshot
    and span-trace JSONL files named by cell index) — the directories
    are created up front so pool workers never race on mkdir.
    ``persist`` adds per-cell durable checkpoints the same way
    (``cell<index>.ckpt``), and with ``persist.resume`` finishes killed
    cells from their surviving checkpoints.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if cells is None:
        cells = spec.expand()
    if not cells:  # pragma: no cover - load_spec forbids empty axes
        raise ValueError("campaign expands to zero cells")
    if obs is not None:
        for directory in (obs.metrics_dir, obs.trace_dir):
            if directory is not None:
                Path(directory).mkdir(parents=True, exist_ok=True)
    if persist is not None and persist.checkpoint_dir is not None:
        Path(persist.checkpoint_dir).mkdir(parents=True, exist_ok=True)
    runner = run_cell
    if obs is not None or persist is not None:
        runner = partial(run_cell, obs=obs, persist=persist)
    results = map_parallel(runner, cells, workers=workers)
    return CampaignResult(spec=spec, cells=cells, results=list(results))
