"""Campaign harness: declarative scenario grids, sharded deterministically.

The subsystem behind ``python -m repro campaign``: declare a parameter
grid over topology × formalism × routing metric × fault schedule × load ×
seeds as data (:mod:`~repro.campaign.spec`), expand it into
self-contained cells, execute every cell through the traffic engine —
serially or sharded across a ``multiprocessing`` pool
(:mod:`~repro.campaign.runner`) — and aggregate the telemetry into one
report plus a machine-readable ``CAMPAIGN_<rev>.json`` artifact
(:mod:`~repro.campaign.report`).  Entry points::

    from repro.campaign import load_spec, run_campaign

    spec = load_spec("examples/campaign_grid.json")
    result = run_campaign(spec, workers=4)
    print(result.render())
    result.write_json("CAMPAIGN_dev.json")

Sharded and serial runs aggregate byte-identically for the same spec —
see :func:`~repro.campaign.runner.run_campaign`.
"""

from .report import CampaignResult, git_revision
from .runner import (CellResult, ObsConfig, PersistConfig, run_campaign,
                     run_cell)
from .spec import (
    AXIS_DEFAULTS,
    AXIS_ORDER,
    CampaignCell,
    CampaignSpec,
    FaultSpec,
    load_spec,
)

__all__ = [
    "AXIS_DEFAULTS",
    "AXIS_ORDER",
    "CampaignCell",
    "CampaignResult",
    "CampaignSpec",
    "CellResult",
    "FaultSpec",
    "ObsConfig",
    "PersistConfig",
    "git_revision",
    "load_spec",
    "run_campaign",
    "run_cell",
]
