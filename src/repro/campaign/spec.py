"""Declarative campaign specs: axes, validation and grid expansion.

A campaign spec declares *axes* — lists of values per dimension — and the
harness expands their cross-product into :class:`CampaignCell`\\ s, one
self-contained scenario each.  Specs are plain dicts (or JSON files), so
a study is data, not a hand-written ``bench_*`` script::

    {
      "name": "grid-demo",
      "axes": {
        "topology":  ["grid:3", "ring:6"],
        "formalism": ["dm", "bell"],
        "metric":    ["hops", "utilisation"],
        "faults":    [null, {"fail_links": 1}],
        "circuits":  [4],
        "load":      [0.7],
        "seed":      [7]
      },
      "horizon_s": 0.5
    }

Axis values draw their vocabulary from the subsystems the cells execute:
``topology`` from :data:`repro.traffic.topologies.TOPOLOGIES`,
``formalism`` from :data:`repro.quantum.backends.FORMALISMS`, ``metric``
from :data:`repro.control.routing.PATH_METRICS`, ``faults`` from the
keyword surface of :func:`repro.traffic.faults.fault_schedule` and
``app`` from the :mod:`repro.apps` registry (``null`` = app-less).  Every
validation failure raises :class:`ValueError` naming the offending axis
and the accepted vocabulary; expansion order is deterministic (the fixed
``AXIS_ORDER``, values in spec order), which is what makes sharded runs
aggregate identically to serial ones.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..apps import app_names
from ..control.routing import PATH_METRICS
from ..quantum.backends import FORMALISMS
from ..traffic.topologies import TOPOLOGIES

#: Cross-product expansion order (outermost axis first).
AXIS_ORDER = ("topology", "formalism", "metric", "faults", "app",
              "circuits", "load", "seed")

#: Axes that may be omitted, and the single-value default they get.
AXIS_DEFAULTS = {
    "formalism": ["dm"],
    "metric": ["hops"],
    "faults": [None],
    "app": [None],
    "circuits": [4],
    "load": [0.7],
    "seed": [0],
}

_FAULT_KEYS = ("fail_links", "mtbf_s", "mttr_s")


@dataclass(frozen=True)
class FaultSpec:
    """One value of the ``faults`` axis: the outage model of a cell."""

    fail_links: int
    mtbf_s: Optional[float] = None
    mttr_s: Optional[float] = None

    def label(self) -> str:
        """Short tag for tables ("-" when the cell runs fault-free)."""
        if self.fail_links == 0:
            return "-"
        tag = f"fail={self.fail_links}"
        if self.mtbf_s is not None:
            tag += f",mtbf={self.mtbf_s:g}"
        if self.mttr_s is not None:
            tag += f",mttr={self.mttr_s:g}"
        return tag


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell: a fully specified, self-contained scenario.

    Cells are frozen and picklable so the runner can ship them to pool
    workers; the scenario constants (horizon, drain, target fidelity) are
    denormalised onto every cell for the same reason.
    """

    index: int
    topology: str
    size: int
    formalism: str
    metric: str
    faults: FaultSpec
    #: Application service every circuit of the cell runs (None = none).
    app: Optional[str]
    circuits: int
    load: float
    seed: int
    horizon_s: float
    drain_s: float
    target_fidelity: float

    def label(self) -> str:
        """Human-readable cell tag used in report tables."""
        return (f"{self.topology}:{self.size} {self.formalism} "
                f"{self.metric} {self.faults.label()} "
                f"{self.app or '-'} s{self.seed}")


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: axes plus the per-cell scenario constants."""

    name: str
    axes: dict
    horizon_s: float = 0.5
    drain_s: Optional[float] = None
    target_fidelity: float = 0.7

    def expand(self) -> list[CampaignCell]:
        """Expand the axes' cross-product into the cell list.

        Deterministic: axes iterate in :data:`AXIS_ORDER` (outermost
        first), values in the order the spec listed them.
        """
        drain = self.horizon_s / 2 if self.drain_s is None else self.drain_s
        cells = []
        for values in itertools.product(*(self.axes[axis]
                                          for axis in AXIS_ORDER)):
            (topology, formalism, metric, faults, app, circuits, load,
             seed) = values
            kind, size = topology
            cells.append(CampaignCell(
                index=len(cells), topology=kind, size=size,
                formalism=formalism, metric=metric, faults=faults,
                app=app, circuits=circuits, load=load, seed=seed,
                horizon_s=self.horizon_s, drain_s=drain,
                target_fidelity=self.target_fidelity))
        return cells

    def to_dict(self) -> dict:
        """The normalised spec as JSON-ready data (for the artifact)."""
        axes = {}
        for axis in AXIS_ORDER:
            values = self.axes[axis]
            if axis == "topology":
                axes[axis] = [f"{kind}:{size}" for kind, size in values]
            elif axis == "faults":
                axes[axis] = [None if fault.fail_links == 0 else {
                    key: getattr(fault, key)
                    for key in _FAULT_KEYS
                    if getattr(fault, key) not in (None, 0)}
                    for fault in values]
            else:
                axes[axis] = list(values)
        return {"name": self.name, "axes": axes,
                "horizon_s": self.horizon_s,
                "drain_s": self.horizon_s / 2 if self.drain_s is None
                else self.drain_s,
                "target_fidelity": self.target_fidelity}


def load_spec(source: Union[str, Path, dict]) -> CampaignSpec:
    """Build a validated :class:`CampaignSpec` from a dict or JSON file.

    Raises :class:`ValueError` for unknown axes, empty grids and values
    outside each axis's vocabulary — the message always names the axis
    and what would have been accepted.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        if not path.exists():
            raise ValueError(f"campaign spec file not found: {path}")
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"campaign spec {path} is not valid JSON: "
                             f"{exc}") from None
    else:
        data = source
    if not isinstance(data, dict):
        raise ValueError("a campaign spec must be a JSON object / dict")
    unknown_top = sorted(set(data) - {"name", "axes", "horizon_s", "drain_s",
                                      "target_fidelity"})
    if unknown_top:
        raise ValueError(f"unknown campaign spec keys: "
                         f"{', '.join(unknown_top)}")
    axes_in = data.get("axes")
    if not isinstance(axes_in, dict) or not axes_in:
        raise ValueError("campaign spec needs a non-empty 'axes' object")
    unknown = sorted(set(axes_in) - set(AXIS_ORDER))
    if unknown:
        raise ValueError(
            f"unknown campaign axis {', '.join(map(repr, unknown))} "
            f"(have: {', '.join(AXIS_ORDER)})")
    if "topology" not in axes_in:
        raise ValueError("campaign spec needs a 'topology' axis "
                         "(e.g. [\"grid:3\"])")
    axes = {}
    for axis in AXIS_ORDER:
        raw = axes_in.get(axis, AXIS_DEFAULTS.get(axis))
        if not isinstance(raw, (list, tuple)) or len(raw) == 0:
            raise ValueError(
                f"axis {axis!r} must be a non-empty list "
                f"(an empty axis would make the whole grid empty)")
        axes[axis] = tuple(_validate_axis_value(axis, value)
                           for value in raw)
    horizon_s = data.get("horizon_s", 0.5)
    if not _is_number(horizon_s) or horizon_s <= 0:
        raise ValueError("horizon_s must be a positive number")
    drain_s = data.get("drain_s")
    if drain_s is not None and (not _is_number(drain_s) or drain_s < 0):
        raise ValueError("drain_s must be a non-negative number")
    target = data.get("target_fidelity", 0.7)
    # Same bound the routing layer enforces per circuit: anything below
    # 0.5 would pass here only to fail every establish_circuit at run
    # time, and a campaign should die before its first cell.
    if not _is_number(target) or not 0.5 <= target < 1:
        raise ValueError("target_fidelity must be in [0.5, 1)")
    return CampaignSpec(name=str(data.get("name", "campaign")), axes=axes,
                        horizon_s=float(horizon_s),
                        drain_s=None if drain_s is None else float(drain_s),
                        target_fidelity=float(target))


def _is_number(value) -> bool:
    """True for real numbers; booleans are not numbers in a spec."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_axis_value(axis: str, value):
    """Normalise and validate one axis entry; raise a naming ValueError."""
    if axis == "topology":
        return _parse_topology(value)
    if axis == "formalism":
        if value not in FORMALISMS:
            raise ValueError(
                f"axis 'formalism': unknown formalism {value!r} "
                f"(have: {', '.join(FORMALISMS)})")
        return value
    if axis == "metric":
        if value not in PATH_METRICS:
            raise ValueError(
                f"axis 'metric': unknown path metric {value!r} "
                f"(have: {', '.join(PATH_METRICS)})")
        return value
    if axis == "faults":
        return _parse_faults(value)
    if axis == "app":
        if value is None:
            return None
        names = app_names()
        if value not in names:
            raise ValueError(
                f"axis 'app': unknown app {value!r} "
                f"(have: {', '.join(names)}, or null for app-less cells)")
        return value
    if axis == "circuits":
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ValueError(
                f"axis 'circuits': need a positive integer, got {value!r}")
        return value
    if axis == "load":
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value <= 0:
            raise ValueError(
                f"axis 'load': need a positive number, got {value!r}")
        return float(value)
    if axis == "seed":
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(
                f"axis 'seed': need an integer, got {value!r}")
        return value
    raise ValueError(f"unknown campaign axis {axis!r}")  # pragma: no cover


def _parse_topology(value) -> tuple[str, int]:
    """Accept ``"grid:3"`` or ``{"kind": "grid", "size": 3}``."""
    if isinstance(value, str):
        kind, sep, size_text = value.partition(":")
        if not sep or not size_text:
            raise ValueError(
                f"axis 'topology': use 'kind:size' (e.g. 'grid:3') or a "
                f"{{kind, size}} object, got {value!r}")
        try:
            size = int(size_text)
        except ValueError:
            raise ValueError(
                f"axis 'topology': size in {value!r} is not an integer"
            ) from None
    elif isinstance(value, dict):
        extra = sorted(set(value) - {"kind", "size"})
        if extra:
            raise ValueError(
                f"axis 'topology': unknown keys {', '.join(extra)} "
                f"(allowed: kind, size)")
        kind = value.get("kind")
        size = value.get("size")
        if not isinstance(size, int) or isinstance(size, bool):
            raise ValueError(
                f"axis 'topology': size must be an integer, got {size!r}")
    else:
        raise ValueError(
            f"axis 'topology': entries are 'kind:size' strings or "
            f"{{kind, size}} objects, got {value!r}")
    if kind not in TOPOLOGIES:
        raise ValueError(
            f"axis 'topology': unknown topology {kind!r} "
            f"(have: {', '.join(sorted(TOPOLOGIES))})")
    if size < 1:
        raise ValueError(
            f"axis 'topology': size must be >= 1, got {size}")
    return kind, size


def _parse_faults(value) -> FaultSpec:
    """Accept ``null`` (fault-free) or a ``fault_schedule`` kwargs object."""
    if value is None:
        return FaultSpec(fail_links=0)
    if isinstance(value, FaultSpec):
        return value
    if not isinstance(value, dict):
        raise ValueError(
            f"axis 'faults': entries are null or objects with "
            f"{', '.join(_FAULT_KEYS)}, got {value!r}")
    extra = sorted(set(value) - set(_FAULT_KEYS))
    if extra:
        raise ValueError(
            f"axis 'faults': unknown keys {', '.join(extra)} "
            f"(allowed: {', '.join(_FAULT_KEYS)})")
    fail_links = value.get("fail_links", 0)
    if not isinstance(fail_links, int) or isinstance(fail_links, bool) \
            or fail_links < 0:
        raise ValueError(
            f"axis 'faults': fail_links must be a non-negative integer, "
            f"got {fail_links!r}")
    mtbf_s = value.get("mtbf_s")
    mttr_s = value.get("mttr_s")
    for key, knob in (("mtbf_s", mtbf_s), ("mttr_s", mttr_s)):
        if knob is not None and (not _is_number(knob) or knob <= 0):
            raise ValueError(
                f"axis 'faults': {key} must be a positive number, "
                f"got {knob!r}")
    if fail_links == 0 and (mtbf_s is not None or mttr_s is not None):
        raise ValueError(
            "axis 'faults': mtbf_s/mttr_s need fail_links > 0 "
            "(without victims they would be silently ignored)")
    return FaultSpec(fail_links=fail_links,
                     mtbf_s=None if mtbf_s is None else float(mtbf_s),
                     mttr_s=None if mttr_s is None else float(mttr_s))
