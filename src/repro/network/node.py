"""The quantum node: hardware + OS services + protocol attachment points.

Mirrors Fig 4 of the paper: each node owns a quantum device, a quantum
memory management unit, a task scheduler (device arbiter), classical
channels to its neighbours, and the network stack (link layer endpoints and
the QNP engine) that gets attached by the topology builder.

Wiring (the component-and-port layer, see :mod:`repro.netsim.ports`):

* one ``cl:<neighbour>`` port per neighbour (protocol ``"classical"``),
  connected by the builder to the classical channel towards that
  neighbour; inbound messages are ``(kind, sender, payload)`` tuples;
* one ``svc:<kind>`` port per message kind (protocol ``"svc:<kind>"``),
  connected by the protocol agent that serves the kind (QNP engine,
  signalling, liveness); the node demultiplexes inbound classical
  messages onto these ports as ``(sender, payload)``.

The pre-port ``register_handler``/``attach_channel`` methods survive as
deprecated shims that route through the same ports.
"""

from __future__ import annotations

import warnings
from functools import partial
from typing import Any, Callable, Optional

from ..hardware.nv import NVDevice
from ..hardware.parameters import HardwareParams
from ..netsim.channels import CLASSICAL, ChannelEnd
from ..netsim.entity import Entity
from ..netsim.ports import CallbackComponent, Component, Port, _Unpack, connect
from ..netsim.scheduler import Simulator
from ..quantum.backends import Backend, get_backend
from .arbiter import DeviceArbiter
from .qmm import QuantumMemoryManager


def service_protocol(kind: str) -> str:
    """Protocol tag of a node service port for a message kind."""
    return f"svc:{kind}"


class QuantumNode(Entity, Component):
    """One node of the quantum network."""

    def __init__(self, sim: Simulator, name: str, params: HardwareParams,
                 backend: Optional[Backend] = None):
        super().__init__(sim, name)
        self.params = params
        #: State formalism the node's pairs live in (threaded to the QMM and
        #: every attached link by the topology builder).
        self.backend = get_backend(backend)
        self.device = NVDevice(sim, params, name=f"{name}.device")
        self.qmm = QuantumMemoryManager(name, backend=self.backend)
        self.arbiter = DeviceArbiter(sim, name=f"{name}.arbiter",
                                     serialize=not params.parallel_links)
        if params.storage_qubits:
            self.qmm.configure_storage(params.storage_qubits)
        #: Link-layer endpoints by link name (set by the builder).
        self.links: dict[str, Any] = {}
        #: Classical ports by neighbour node name.
        self._classical: dict[str, Port] = {}
        #: Service ports by message kind (demux table for ``_on_message``).
        self._services: dict[str, Port] = {}
        #: Neighbour name per link name.
        self.link_neighbour: dict[str, str] = {}
        #: The QNP engine (attached by the builder).
        self.qnp: Optional[Any] = None

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------

    def attach_link(self, link: Any, neighbour: str) -> None:
        """Register a link endpoint and its comm-qubit pool."""
        if link.name in self.links:
            raise ValueError(f"{self.name}: link {link.name} already attached")
        self.links[link.name] = link
        self.link_neighbour[link.name] = neighbour
        self.qmm.register_link(link.name, self.params.comm_qubits_per_link)

    def link_to(self, neighbour: str) -> Any:
        """The link object connecting this node to a neighbour."""
        for link_name, other in self.link_neighbour.items():
            if other == neighbour:
                return self.links[link_name]
        raise KeyError(f"{self.name}: no link to {neighbour}")

    # ------------------------------------------------------------------
    # Classical communication
    # ------------------------------------------------------------------

    def classical_port(self, neighbour: str) -> Port:
        """The port carrying classical traffic towards ``neighbour``.

        Created on first use; the builder connects it to one end of the
        :class:`~repro.netsim.channels.ClassicalChannel` for the hop.
        The inbound handler demultiplexes ``(kind, sender, payload)``
        tuples onto the matching ``svc:<kind>`` port.
        """
        port = self._classical.get(neighbour)
        if port is None:
            port = self.add_port(f"cl:{neighbour}", CLASSICAL,
                                 handler=partial(self._on_message, neighbour))
            self._classical[neighbour] = port
        return port

    def service_port(self, kind: str) -> Port:
        """The port a protocol agent connects to serve message ``kind``.

        Created on first use.  Messages travelling node → agent are
        ``(sender, payload)`` tuples.
        """
        port = self._services.get(kind)
        if port is None:
            port = self.add_port(f"svc:{kind}", service_protocol(kind))
            self._services[kind] = port
        return port

    def attach_channel(self, neighbour: str, end: ChannelEnd) -> None:
        """Deprecated: register the classical channel towards a neighbour.

        New code connects ``node.classical_port(neighbour)`` to the
        channel port directly; this shim does exactly that.
        """
        warnings.warn(
            "QuantumNode.attach_channel() is deprecated; connect "
            "node.classical_port(neighbour) to the channel port instead",
            DeprecationWarning, stacklevel=2)
        port = self.classical_port(neighbour)
        if port.connected:
            raise ValueError(
                f"{self.name}: channel to {neighbour} already attached")
        connect(port, end.port)

    def send(self, neighbour: str, kind: str, payload: Any) -> None:
        """Send a classical control message to a directly connected node."""
        port = self._classical.get(neighbour)
        if port is None:
            raise KeyError(f"{self.name}: no classical channel to {neighbour}")
        port.tx((kind, self.name, payload))

    def register_handler(self, kind: str, handler: Callable[[str, Any], None]) -> None:
        """Deprecated: register the receiver for a message kind.

        New code (protocol agents) connects its own port to
        ``node.service_port(kind)``; this shim wraps the bare callback in
        a :class:`~repro.netsim.ports.CallbackComponent`, replacing any
        existing connection (the historical overwrite semantics).
        """
        warnings.warn(
            "QuantumNode.register_handler() is deprecated; connect an agent "
            "port to node.service_port(kind) instead",
            DeprecationWarning, stacklevel=2)
        port = self.service_port(kind)
        if port.connected:
            port.disconnect()
        adapter = CallbackComponent(_Unpack(handler), service_protocol(kind),
                                    name=f"{self.name}.handler:{kind}")
        connect(port, adapter.io)

    def _on_message(self, neighbour: str, message: Any) -> None:
        kind, sender, payload = message
        port = self._services.get(kind)
        if port is None or not port.connected:
            raise RuntimeError(f"{self.name}: no handler for message kind {kind!r}")
        port.tx((sender, payload))

    @property
    def neighbours(self) -> list[str]:
        return sorted(self._classical)
