"""The quantum node: hardware + OS services + protocol attachment points.

Mirrors Fig 4 of the paper: each node owns a quantum device, a quantum
memory management unit, a task scheduler (device arbiter), classical
channels to its neighbours, and the network stack (link layer endpoints and
the QNP engine) that gets attached by the topology builder.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Optional

from ..hardware.nv import NVDevice
from ..hardware.parameters import HardwareParams
from ..netsim.channels import ChannelEnd
from ..netsim.entity import Entity
from ..netsim.scheduler import Simulator
from ..quantum.backends import Backend, get_backend
from .arbiter import DeviceArbiter
from .qmm import QuantumMemoryManager


class QuantumNode(Entity):
    """One node of the quantum network."""

    def __init__(self, sim: Simulator, name: str, params: HardwareParams,
                 backend: Optional[Backend] = None):
        super().__init__(sim, name)
        self.params = params
        #: State formalism the node's pairs live in (threaded to the QMM and
        #: every attached link by the topology builder).
        self.backend = get_backend(backend)
        self.device = NVDevice(sim, params, name=f"{name}.device")
        self.qmm = QuantumMemoryManager(name, backend=self.backend)
        self.arbiter = DeviceArbiter(sim, name=f"{name}.arbiter",
                                     serialize=not params.parallel_links)
        if params.storage_qubits:
            self.qmm.configure_storage(params.storage_qubits)
        #: Link-layer endpoints by link name (set by the builder).
        self.links: dict[str, Any] = {}
        #: Classical channel ends by neighbour node name.
        self._channels: dict[str, ChannelEnd] = {}
        #: Neighbour name per link name.
        self.link_neighbour: dict[str, str] = {}
        #: The QNP engine (attached by the builder).
        self.qnp: Optional[Any] = None
        #: Message dispatch: "kind" → handler(sender_name, message).
        self._dispatch: dict[str, Callable[[str, Any], None]] = {}

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------

    def attach_link(self, link: Any, neighbour: str) -> None:
        """Register a link endpoint and its comm-qubit pool."""
        if link.name in self.links:
            raise ValueError(f"{self.name}: link {link.name} already attached")
        self.links[link.name] = link
        self.link_neighbour[link.name] = neighbour
        self.qmm.register_link(link.name, self.params.comm_qubits_per_link)

    def link_to(self, neighbour: str) -> Any:
        """The link object connecting this node to a neighbour."""
        for link_name, other in self.link_neighbour.items():
            if other == neighbour:
                return self.links[link_name]
        raise KeyError(f"{self.name}: no link to {neighbour}")

    # ------------------------------------------------------------------
    # Classical communication
    # ------------------------------------------------------------------

    def attach_channel(self, neighbour: str, end: ChannelEnd) -> None:
        """Register the classical channel towards a neighbour."""
        if neighbour in self._channels:
            raise ValueError(f"{self.name}: channel to {neighbour} already attached")
        self._channels[neighbour] = end
        end.connect(partial(self._on_message, neighbour))

    def send(self, neighbour: str, kind: str, payload: Any) -> None:
        """Send a classical control message to a directly connected node."""
        try:
            end = self._channels[neighbour]
        except KeyError:
            raise KeyError(f"{self.name}: no classical channel to {neighbour}") from None
        end.send((kind, self.name, payload))

    def register_handler(self, kind: str, handler: Callable[[str, Any], None]) -> None:
        """Register the receiver for a message kind (e.g. "qnp", "signalling")."""
        self._dispatch[kind] = handler

    def _on_message(self, neighbour: str, message: Any) -> None:
        kind, sender, payload = message
        handler = self._dispatch.get(kind)
        if handler is None:
            raise RuntimeError(f"{self.name}: no handler for message kind {kind!r}")
        handler(sender, payload)

    @property
    def neighbours(self) -> list[str]:
        return sorted(self._channels)
