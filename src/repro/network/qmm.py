"""Quantum memory management unit (Fig 4).

The QMM owns the node's qubit slots and the correlator → qubit mapping that
Appendix C's rules use (``qmm.get(correlator)`` / ``qmm.free(correlator)``).

Memory is the scarcest resource in the evaluation: the simulation model has
**two communication qubits per attached link** (not shared between links),
so a link stalls as soon as both of its local qubits hold unconsumed pairs —
the mechanism behind the Fig 8c "quantum congestion collapse".  The
near-term model has a single communication qubit per node plus a handful of
storage qubits.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..quantum.qubit import Qubit

Correlator = tuple  # (link name, sequence number)


class Slot:
    """One qubit-sized parking spot, tied to a link (or the storage pool)."""

    __slots__ = ("pool", "qubit", "correlator")

    def __init__(self, pool: "SlotPool"):
        self.pool = pool
        self.qubit: Optional[Qubit] = None
        self.correlator: Optional[Correlator] = None

    def commit(self, qubit: Qubit, correlator: Optional[Correlator] = None) -> None:
        """Park a generated qubit in this reserved slot."""
        self.qubit = qubit
        self.correlator = correlator
        qubit.owner = self

    def release(self) -> None:
        """Return the slot to its pool (qubit consumed, discarded or round failed)."""
        if self.qubit is not None and self.qubit.owner is self:
            self.qubit.owner = None
        self.qubit = None
        self.correlator = None
        self.pool._release(self)


class SlotPool:
    """Fixed-capacity pool of qubit slots.

    Released :class:`Slot` objects are parked on a small free list and
    reused — the link layer acquires and releases two slots per generation
    round, millions of times per run.
    """

    def __init__(self, name: str, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._spare: list[Slot] = []

    @property
    def free(self) -> int:
        return self.capacity - self.in_use

    def try_acquire(self) -> Optional[Slot]:
        if self.in_use >= self.capacity:
            return None
        self.in_use += 1
        if self._spare:
            return self._spare.pop()
        return Slot(self)

    def _release(self, slot: Slot) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"pool {self.name} released more slots than acquired")
        self.in_use -= 1
        if len(self._spare) < self.capacity:
            self._spare.append(slot)


class QuantumMemoryManager:
    """Per-node memory arbiter and correlator registry."""

    def __init__(self, node_name: str, backend=None):
        self.node_name = node_name
        #: The state formalism pairs parked here live in (``None`` until the
        #: builder threads one through; diagnostics and services read it via
        #: :attr:`formalism`).
        self.backend = backend
        #: Immutable copy of the listener list — iterated on every slot
        #: release, so it must not be rebuilt (or mutated) per call.
        self._listener_snapshot: tuple = ()
        self._link_pools: dict[str, SlotPool] = {}
        self._storage_pool = SlotPool("storage", 0)
        self._by_correlator: dict[Correlator, Qubit] = {}
        self._free_listeners: list[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def register_link(self, link_name: str, capacity: int) -> None:
        """Declare the communication-qubit pool for an attached link."""
        if link_name in self._link_pools:
            raise ValueError(f"link {link_name} already registered")
        self._link_pools[link_name] = SlotPool(link_name, capacity)

    def configure_storage(self, capacity: int) -> None:
        """Declare the storage (carbon) qubit pool (near-term model)."""
        self._storage_pool = SlotPool("storage", capacity)

    # ------------------------------------------------------------------
    # Slot allocation
    # ------------------------------------------------------------------

    def try_acquire_comm(self, link_name: str) -> Optional[Slot]:
        """Reserve a communication qubit slot on a link, if one is free."""
        return self._pool(link_name).try_acquire()

    def try_acquire_storage(self) -> Optional[Slot]:
        """Reserve a storage slot (near-term model)."""
        return self._storage_pool.try_acquire()

    def free_comm(self, link_name: str) -> int:
        """Free slots currently available on a link."""
        return self._pool(link_name).free

    def comm_pool(self, link_name: str) -> SlotPool:
        """The communication-qubit pool itself (hot-path accessor: the link
        layer caches it to skip the per-round name lookup)."""
        return self._pool(link_name)

    def free_storage(self) -> int:
        return self._storage_pool.free

    def on_slot_freed(self, listener: Callable[[str], None]) -> None:
        """Subscribe to slot releases (the link scheduler wakes on these).

        The listener receives the pool name (link name or ``"storage"``).
        """
        self._free_listeners.append(listener)
        self._listener_snapshot = tuple(self._free_listeners)

    # ------------------------------------------------------------------
    # Correlator registry (Appendix C's qmm.get / qmm.free)
    # ------------------------------------------------------------------

    def bind(self, correlator: Correlator, qubit: Qubit) -> None:
        """Associate a link-pair correlator with the local qubit."""
        if correlator in self._by_correlator:
            raise ValueError(f"correlator {correlator} already bound")
        self._by_correlator[correlator] = qubit

    def get(self, correlator: Correlator) -> Optional[Qubit]:
        """Look up the local qubit for a correlator (None if gone)."""
        return self._by_correlator.get(correlator)

    def free(self, correlator: Correlator) -> Optional[Qubit]:
        """Drop the correlator mapping and release the qubit's slot.

        Returns the qubit (still physically intact — the caller decides
        whether to discard its state or hand it to an application).
        """
        qubit = self._by_correlator.pop(correlator, None)
        if qubit is None:
            return None
        self.release_qubit(qubit)
        return qubit

    def release_qubit(self, qubit: Qubit) -> None:
        """Release the slot holding a qubit and notify waiters."""
        slot = qubit.owner
        if slot is None:
            return
        pool_name = slot.pool.name
        slot.release()
        for listener in self._listener_snapshot:
            listener(pool_name)

    def rebind_slot(self, qubit: Qubit, new_slot: Slot) -> None:
        """Move a qubit to a different slot (comm → storage moves)."""
        old_slot = qubit.owner
        correlator = old_slot.correlator if old_slot is not None else None
        new_slot.commit(qubit, correlator)
        if old_slot is not None and old_slot is not new_slot:
            old_pool = old_slot.pool.name
            old_slot.qubit = None
            old_slot.correlator = None
            old_slot.pool._release(old_slot)
            qubit.owner = new_slot
            for listener in self._listener_snapshot:
                listener(old_pool)

    # ------------------------------------------------------------------

    def _pool(self, link_name: str) -> SlotPool:
        try:
            return self._link_pools[link_name]
        except KeyError:
            raise KeyError(f"{self.node_name}: unknown link {link_name!r}") from None

    @property
    def formalism(self) -> str:
        """Name of the active state formalism (``"dm"`` when unset)."""
        return self.backend.name if self.backend is not None else "dm"

    def stats(self) -> dict[str, tuple[int, int]]:
        """(in_use, capacity) per pool — diagnostics for tests/benches."""
        out = {name: (pool.in_use, pool.capacity)
               for name, pool in self._link_pools.items()}
        out["storage"] = (self._storage_pool.in_use, self._storage_pool.capacity)
        return out
