"""Quantum task scheduler / device-time arbiter (Fig 4).

Current NV hardware cannot do two things at once: the electron spin is both
the processor and the network interface.  In the paper's simplified
simulation model all qubits act as communication qubits and links run in
parallel, so the arbiter grants everything immediately.  In the near-term
model (Sec 5.3) the arbiter serialises device usage: entanglement
generation bursts, storage moves and Bell-state measurements queue FIFO.

To reserve several devices at once (a link needs both endpoints) callers
acquire in a globally consistent order (node name), which rules out
deadlock.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..netsim.entity import Entity
from ..netsim.scheduler import Simulator


class DeviceArbiter(Entity):
    """FIFO arbiter for one node's quantum device time."""

    def __init__(self, sim: Simulator, name: str = "", serialize: bool = False):
        super().__init__(sim, name or "arbiter")
        self.serialize = serialize
        self._busy = False
        self._waiters: deque[tuple[Callable[[], None], float]] = deque()
        # Telemetry (the traffic report reads these): grants issued, total
        # simulated time spent queued before a grant, deepest queue seen.
        self.grants = 0
        self.total_wait = 0.0
        self.max_queue_length = 0

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def mean_wait(self) -> float:
        """Mean queueing delay per grant (ns; 0 when nothing was granted)."""
        return self.total_wait / self.grants if self.grants else 0.0

    def acquire(self, on_grant: Callable[[], None]) -> None:
        """Request the device; ``on_grant`` fires (via the event queue) when
        it is ours.  In parallel mode the grant is immediate."""
        if not self.serialize:
            self.grants += 1
            self.call_in(0.0, on_grant)
            return
        if not self._busy:
            self._busy = True
            self.grants += 1
            self.call_in(0.0, on_grant)
        else:
            self._waiters.append((on_grant, self.now))
            if len(self._waiters) > self.max_queue_length:
                self.max_queue_length = len(self._waiters)

    def release(self) -> None:
        """Give the device back; the next waiter (if any) is granted."""
        if not self.serialize:
            return
        if not self._busy:
            raise RuntimeError(f"{self.name}: release without acquire")
        if self._waiters:
            next_grant, enqueued_at = self._waiters.popleft()
            self.grants += 1
            self.total_wait += self.now - enqueued_at
            self.call_in(0.0, next_grant)
        else:
            self._busy = False


class _OrderedAcquire:
    """Continuation of an in-flight :func:`acquire_ordered` chain.

    A picklable callable (the grant callbacks sit in arbiter queues and the
    event heap, both of which engine checkpoints serialise).
    """

    __slots__ = ("ordered", "on_all_granted", "index")

    def __init__(self, ordered: list, on_all_granted: Callable[[], None],
                 index: int):
        self.ordered = ordered
        self.on_all_granted = on_all_granted
        self.index = index

    def __call__(self) -> None:
        if self.index == len(self.ordered):
            self.on_all_granted()
            return
        self.ordered[self.index].acquire(
            _OrderedAcquire(self.ordered, self.on_all_granted, self.index + 1))


def acquire_ordered(arbiters: list[DeviceArbiter], on_all_granted: Callable[[], None]) -> None:
    """Acquire several devices in a canonical order, then fire the callback.

    Ordering by arbiter name makes concurrent multi-device reservations
    deadlock-free (resource-ordering discipline).
    """
    ordered = sorted(arbiters, key=lambda a: a.name)
    _OrderedAcquire(ordered, on_all_granted, 0)()


def release_all(arbiters: list[DeviceArbiter]) -> None:
    """Release a set of devices acquired with :func:`acquire_ordered`."""
    for arbiter in arbiters:
        arbiter.release()
