"""Network assembly: nodes, memory management, device arbitration, topologies."""

from .arbiter import DeviceArbiter, acquire_ordered, release_all
from .node import QuantumNode, service_protocol
from .qmm import QuantumMemoryManager, Slot, SlotPool

__all__ = [
    "QuantumNode",
    "service_protocol",
    "QuantumMemoryManager",
    "Slot",
    "SlotPool",
    "DeviceArbiter",
    "acquire_ordered",
    "release_all",
]
