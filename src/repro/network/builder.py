"""Topology construction and the user-facing :class:`Network` façade.

Builds the evaluation networks of the paper:

* :func:`build_dumbbell_network` — the Fig 7 six-node topology with the
  MA–MB bottleneck link and four end-nodes (A0, A1, B0, B1),
* :func:`build_chain_network` — linear repeater chains,
* :func:`build_near_term_chain` — the Fig 11 three-node, 25 km chain on
  near-term hardware.

The façade wraps circuit establishment (routing + signalling), request
submission (with both end-points wired up), simulation driving, the
Fig 10c classical-message-delay knob, and the evaluation-side fidelity
oracle used by the paper's "simpler protocol" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional

import networkx as nx

from ..control.liveness import LivenessAgent
from ..control.routing import CentralController, RouteComputation
from ..control.signalling import SignallingAgent, allocate_circuit_id
from ..core.qnp import QNPNode
from ..core.requests import (
    DeliveryStatus,
    PairDelivery,
    RequestHandle,
    RequestStatus,
    UserRequest,
)
from ..hardware.fibre import HeraldedConnection
from ..hardware.heralded import (
    MidpointHeraldModel,
    MidpointStation,
    SingleClickModel,
)
from ..hardware.parameters import HardwareParams, NEAR_TERM, SIMULATION
from ..linklayer.egp import Link
from ..netsim.channels import ClassicalChannel
from ..netsim.ports import connect as connect_ports
from ..netsim.scheduler import Simulator
from ..obs.registry import MetricsRegistry
from ..netsim.units import (
    LAB_WAVELENGTH_ATTENUATION_DB_PER_KM,
    S,
    TELECOM_ATTENUATION_DB_PER_KM,
)
from ..quantum.backends import Backend, get_backend
from ..quantum.fidelity import pair_fidelity
from ..quantum.operations import NoisyOpParams
from .node import QuantumNode


@dataclass
class MatchedPair:
    """Evaluation-side record of one end-to-end pair seen at both ends."""

    pair_id: tuple
    head_delivery: PairDelivery
    tail_delivery: PairDelivery
    #: Ground-truth fidelity read from the simulation (oracle only).
    fidelity: Optional[float] = None
    accepted: bool = True


@dataclass
class _Submission:
    handle: RequestHandle
    tail_deliveries: list = field(default_factory=list)
    matched: list = field(default_factory=list)
    oracle_min_fidelity: Optional[float] = None
    record_fidelity: bool = False
    #: Evaluation-side consumer invoked with each :class:`MatchedPair`
    #: (application services); a truthy return takes qubit ownership.
    on_matched: Optional[object] = None
    _pending: dict = field(default_factory=dict)


#: Physical-layer models the builder can wire per link: the analytic
#: fast-forward (the paper's model, byte-identical default) or the
#: time-windowed midpoint heralding station.
PHYSICAL_MODELS = ("analytic", "midpoint")


class Network:
    """A fully wired quantum network plus control plane.

    ``formalism`` selects the quantum-state backend every node and link run
    on: ``"dm"`` (exact density matrices) or ``"bell"`` (fast Bell-diagonal
    weights) — see :mod:`repro.quantum.backends`.  ``physical`` selects
    the default physical-layer model for new links (see
    :data:`PHYSICAL_MODELS`; overridable per link in :meth:`connect`).
    """

    def __init__(self, sim: Simulator, params: HardwareParams,
                 formalism: str | Backend = "dm",
                 physical: str = "analytic"):
        if physical not in PHYSICAL_MODELS:
            raise ValueError(
                f"unknown physical model {physical!r} "
                f"(have: {', '.join(PHYSICAL_MODELS)})")
        self.sim = sim
        self.params = params
        self.backend = get_backend(formalism)
        self.physical = physical
        self.nodes: dict[str, QuantumNode] = {}
        self.links: dict[frozenset, Link] = {}
        #: Midpoint heralding stations by edge (``physical="midpoint"``).
        self.stations: dict[frozenset, MidpointStation] = {}
        self.channels: list[ClassicalChannel] = []
        self._channel_by_edge: dict[frozenset, ClassicalChannel] = {}
        self.qnps: dict[str, QNPNode] = {}
        self.signalling: dict[str, SignallingAgent] = {}
        self.liveness: dict[str, LivenessAgent] = {}
        self.controller: Optional[CentralController] = None
        self._graph = nx.Graph()
        self._circuit_meta: dict[str, dict] = {}
        # Keyed by handle (identity hash) so session retirement can free a
        # finished submission in O(1) — see :meth:`discard_submission`.
        self._submissions: dict[RequestHandle, _Submission] = {}
        self._identifier_counter = 0
        #: Optional causal span tracer (set by ``attach_trace``/
        #: ``attach_tracer`` — see :mod:`repro.analysis.tracing`).  When
        #: present the façade opens circuit/session interval spans around
        #: the flat protocol events.
        self.tracer = None
        #: The network's metrics registry (:mod:`repro.obs`).  Scheduler,
        #: link-layer, QNP and arbiter instruments are pull-based — they
        #: poll the stats the components already keep, so registration
        #: here costs nothing on the hot path.
        self.obs = MetricsRegistry()
        self._register_instruments()

    def _register_instruments(self) -> None:
        """Register the pull-based core instruments on ``self.obs``.

        Every source is a bound method (not a lambda) so the registry —
        which an engine checkpoint pickles wholesale — stays serialisable.
        """
        obs, sim = self.obs, self.sim
        obs.counter("sim.events_processed", source=self._src_sim_events)
        obs.counter("sim.pool_hits", source=self._src_sim_pool_hits)
        obs.gauge("sim.heap_size", source=self._src_sim_heap)
        obs.gauge("sim.pending_events", source=sim.pending_events)
        obs.counter("egp.attempts", source=self._src_egp_attempts)
        obs.counter("egp.pairs_generated", source=self._src_egp_pairs)
        obs.gauge("egp.busy_time_s", source=self._src_egp_busy_s)
        obs.histogram("egp.chain_slices")
        obs.counter("qnp.swaps", source=self._src_qnp_swaps)
        obs.counter("qnp.pairs_delivered", source=self._src_qnp_delivered)
        obs.counter("qnp.pairs_discarded", source=self._src_qnp_discarded)
        obs.counter("qnp.pairs_expired", source=self._src_qnp_expired)
        obs.counter("qnp.expires_sent", source=self._src_qnp_expires_sent)
        obs.counter("qnp.tracks_relayed", source=self._src_qnp_tracks)
        obs.gauge("policer.queue_depth", source=self._src_policer_queue)
        obs.counter("arbiter.grants", source=self._src_arbiter_grants)
        obs.counter("arbiter.wait_ns", source=self._src_arbiter_wait)
        obs.gauge("arbiter.max_queue", source=self._src_arbiter_max_queue)
        # Push-style admission counters (incremented by :meth:`submit`).
        for name in ("policer.accepted", "policer.queued",
                     "policer.rejected"):
            obs.counter(name)
        obs.histogram("traffic.fidelity")

    # Pull-source methods for the registry (picklable bound methods).

    def _src_sim_events(self) -> int:
        return self.sim.events_processed

    def _src_sim_pool_hits(self) -> int:
        return self.sim.pool_hits

    def _src_sim_heap(self) -> int:
        return self.sim.heap_size

    def _src_egp_attempts(self) -> int:
        return sum(link.attempts_made for link in self.links.values())

    def _src_egp_pairs(self) -> int:
        return sum(link.pairs_generated for link in self.links.values())

    def _src_egp_busy_s(self) -> float:
        return sum(link.busy_time for link in self.links.values()) / S

    def _src_qnp_swaps(self) -> int:
        return sum(qnp.swaps_performed for qnp in self.qnps.values())

    def _src_qnp_delivered(self) -> int:
        return sum(qnp.pairs_delivered for qnp in self.qnps.values())

    def _src_qnp_discarded(self) -> int:
        return sum(qnp.pairs_discarded for qnp in self.qnps.values())

    def _src_qnp_expired(self) -> int:
        return sum(qnp.pairs_expired for qnp in self.qnps.values())

    def _src_qnp_expires_sent(self) -> int:
        return sum(qnp.expires_sent for qnp in self.qnps.values())

    def _src_qnp_tracks(self) -> int:
        return sum(qnp.tracks_relayed for qnp in self.qnps.values())

    def _src_policer_queue(self) -> int:
        return sum(runtime.policer.queued
                   for qnp in self.qnps.values()
                   for runtime in qnp._circuits.values()
                   if runtime.policer is not None)

    def _src_arbiter_grants(self) -> int:
        return sum(node.arbiter.grants for node in self.nodes.values())

    def _src_arbiter_wait(self) -> float:
        return sum(node.arbiter.total_wait for node in self.nodes.values())

    def _src_arbiter_max_queue(self) -> int:
        return max((node.arbiter.max_queue_length
                    for node in self.nodes.values()), default=0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def formalism(self) -> str:
        """Name of the active state formalism."""
        return self.backend.name

    @property
    def graph(self) -> nx.Graph:
        """The wired topology (read-only view used by traffic tooling)."""
        return self._graph

    def add_node(self, name: str) -> QuantumNode:
        node = QuantumNode(self.sim, name, self.params, backend=self.backend)
        self.nodes[name] = node
        self.qnps[name] = QNPNode(node)
        self.signalling[name] = SignallingAgent(node)
        self.liveness[name] = LivenessAgent(node)
        self._graph.add_node(name)
        return node

    def connect(self, name_a: str, name_b: str, length_km: float,
                attenuation: float = LAB_WAVELENGTH_ATTENUATION_DB_PER_KM,
                slice_attempts: int = 100,
                physical: Optional[str] = None) -> Link:
        """Wire a heralded quantum link plus a classical channel.

        ``physical`` overrides the network-wide physical-layer model for
        this link (see :data:`PHYSICAL_MODELS`).
        """
        physical = self.physical if physical is None else physical
        if physical not in PHYSICAL_MODELS:
            raise ValueError(
                f"unknown physical model {physical!r} "
                f"(have: {', '.join(PHYSICAL_MODELS)})")
        node_a, node_b = self.nodes[name_a], self.nodes[name_b]
        connection = HeraldedConnection.symmetric(length_km, attenuation)
        if physical == "midpoint":
            model = MidpointHeraldModel(self.params, connection)
        else:
            model = SingleClickModel(self.params, connection)
        link = Link(self.sim, f"{name_a}~{name_b}", node_a, node_b, model,
                    slice_attempts, backend=self.backend)
        link.chain_hist = self.obs.histogram("egp.chain_slices")
        node_a.attach_link(link, name_b)
        node_b.attach_link(link, name_a)
        if physical == "midpoint":
            station = MidpointStation(
                self.sim, name=f"mid:{name_a}~{name_b}",
                coincidence_window=model.coincidence_window)
            link.attach_station(station)
            self.stations[frozenset((name_a, name_b))] = station
        channel = ClassicalChannel(self.sim, length_km,
                                   name=f"c:{name_a}~{name_b}")
        connect_ports(node_a.classical_port(name_b), channel.port("a"))
        connect_ports(node_b.classical_port(name_a), channel.port("b"))
        self.channels.append(channel)
        self.links[frozenset((name_a, name_b))] = link
        self._channel_by_edge[frozenset((name_a, name_b))] = channel
        self._graph.add_edge(name_a, name_b)
        return link

    def finalise(self) -> None:
        """Create the central controller once the topology is complete."""
        device_ops = NoisyOpParams(
            two_qubit_gate_fidelity=self.params.gates.two_qubit_gate_fidelity,
            single_qubit_gate_fidelity=self.params.gates.electron_single_qubit_fidelity,
            readout_error0=self.params.gates.readout_error0,
            readout_error1=self.params.gates.readout_error1,
        )
        self.controller = CentralController(
            self._graph, self.links,
            memory_t1=self.params.electron_t1,
            memory_t2=self.params.electron_t2,
            ops=device_ops,
        )

    # ------------------------------------------------------------------
    # Control plane operations
    # ------------------------------------------------------------------

    def establish_circuit(self, head: str, tail: str, target_fidelity: float,
                          cutoff_policy="loss",
                          max_eer: Optional[float] = None,
                          metric: Optional[str] = None) -> str:
        """Route, signal and install a virtual circuit; returns its ID.

        ``metric`` selects the path-selection metric for this circuit
        (defaults to the controller's — see
        :data:`repro.control.routing.PATH_METRICS`).  Drives the
        simulation until the RESV confirms installation (the handshake
        takes a few propagation delays).
        """
        if self.controller is None:
            self.finalise()
        route = self.controller.compute_route(head, tail, target_fidelity,
                                              cutoff_policy, metric=metric)
        return self._install(route, max_eer, cutoff_policy=cutoff_policy)

    def establish_circuit_manual(self, path: list[str], link_fidelity: float,
                                 cutoff: Optional[float],
                                 max_eer: float = 1.0,
                                 estimated_fidelity: float = 0.0) -> str:
        """Manually populated routing tables (the Fig 11 workflow)."""
        if self.controller is None:
            self.finalise()
        link_names = []
        for i in range(len(path) - 1):
            link_names.append(self.links[frozenset((path[i], path[i + 1]))].name)
        max_lpr = min(self.links[frozenset((path[i], path[i + 1]))]
                      .max_lpr(link_fidelity) for i in range(len(path) - 1))
        route = RouteComputation(
            path=path, link_names=link_names, link_fidelity=link_fidelity,
            cutoff=cutoff, max_lpr=max_lpr, eer=max_eer,
            estimated_fidelity=estimated_fidelity,
            target_fidelity=estimated_fidelity)
        return self._install(route, max_eer)

    def _install_async(self, route: RouteComputation,
                       max_eer: Optional[float] = None,
                       cutoff_policy=None,
                       on_ready=None) -> str:
        """Start the PATH/RESV handshake for a route without driving the
        simulation; ``on_ready`` fires when the RESV reaches the head."""
        circuit_id = allocate_circuit_id(route.path[0], route.path[-1])
        entries = self.controller.build_entries(circuit_id, route, max_eer)
        if self.tracer is not None:
            on_ready = self._trace_install(circuit_id, route, entries,
                                           on_ready)
        self.signalling[route.path[0]].establish(entries, on_ready=on_ready)
        self._circuit_meta[circuit_id] = {
            "route": route, "max_eer": max_eer,
            "cutoff_policy": cutoff_policy,
        }
        self.controller.register_install(circuit_id, route)
        return circuit_id

    def _trace_install(self, circuit_id: str, route: RouteComputation,
                       entries, on_ready):
        """Open a circuit span and wrap ``on_ready`` with an INSTALL mark.

        The circuit span is the root of the causal tree: the route
        computation is its first point child, the link labels of every
        hop are aliased to it (so link-layer ``EGP_*`` events file under
        it), and sessions submitted on the circuit parent under it.
        """
        tracer = self.tracer
        head = route.path[0]
        span = tracer.begin("circuit", head, self.sim.now,
                            key=("circuit", circuit_id),
                            circuit=circuit_id, path="-".join(route.path))
        tracer.point("ROUTE", head, self.sim.now, parent=span,
                     circuit=circuit_id, path="-".join(route.path),
                     estimated_fidelity=round(route.estimated_fidelity, 4))
        for entry in entries:
            for label in (entry.upstream_link_label,
                          entry.downstream_link_label):
                if label is not None:
                    tracer.alias(("purpose", label), span)

        return partial(self._traced_ready, span, head, circuit_id, on_ready)

    def _traced_ready(self, span, head, circuit_id, on_ready,
                      ready_circuit_id: str) -> None:
        """INSTALL mark + chained ``on_ready`` for a traced circuit."""
        self.tracer.point("INSTALL", head, self.sim.now, parent=span,
                          circuit=circuit_id)
        if on_ready is not None:
            on_ready(ready_circuit_id)

    def _install(self, route: RouteComputation, max_eer: Optional[float],
                 cutoff_policy=None) -> str:
        """Install a route and drive the simulation until it is ready."""
        ready = []
        circuit_id = self._install_async(route, max_eer,
                                         cutoff_policy=cutoff_policy,
                                         on_ready=ready.append)
        # The handshake needs a few propagation delays of simulated time.
        # Budget in *time*, not event count: when other circuits are already
        # carrying traffic, thousands of unrelated link events fire per
        # propagation delay and an event-count guard trips spuriously.
        deadline = self.sim.now + 60.0 * S
        while not ready:
            if self.sim.now >= deadline or self.sim.pending_events() == 0:
                # Undo the eager registration so a failed install leaves
                # no phantom load behind for the utilisation metric.
                self._circuit_meta.pop(circuit_id, None)
                self.controller.register_teardown(circuit_id)
                raise RuntimeError(f"circuit {circuit_id} installation stalled")
            self._step(limit=deadline)
        return circuit_id

    def teardown_circuit(self, circuit_id: str) -> None:
        """Remove a circuit: unwatch, free its routed LPR share, TEAR."""
        meta = self._circuit_meta.pop(circuit_id, None)
        if meta is None:
            return
        path = meta["route"].path
        if self.tracer is not None:
            self.tracer.end(("circuit", circuit_id), self.sim.now)
        self.liveness[path[0]].unwatch(circuit_id)
        if self.controller is not None:
            self.controller.register_teardown(circuit_id)
        self.signalling[path[0]].teardown(circuit_id, path)

    def watch_circuit(self, circuit_id: str, interval_ms: float = 50.0,
                      miss_limit: int = 3, on_failure=None) -> None:
        """Monitor a circuit's classical connectivity (Sec 4.1).

        When the keepalive fails, ``on_failure(circuit_id)`` runs; the
        default tears the circuit down from the head-end so its active
        requests abort — applications observe
        :attr:`RequestStatus.ABORTED` on their handles.  Recovery-aware
        callers (the traffic engine) pass their own handler, typically
        ending in :meth:`recover_circuit`.
        """
        from ..netsim.units import MS

        route = self.route_of(circuit_id)
        head = route.path[0]
        if on_failure is None:
            on_failure = self.teardown_circuit
        self.liveness[head].watch(
            circuit_id, route.path, interval=interval_ms * MS,
            miss_limit=miss_limit,
            on_failure=on_failure)

    def route_of(self, circuit_id: str) -> RouteComputation:
        """The :class:`RouteComputation` a circuit was installed with."""
        return self._circuit_meta[circuit_id]["route"]

    # ------------------------------------------------------------------
    # Failure injection and recovery
    # ------------------------------------------------------------------

    def fail_link(self, name_a: str, name_b: str) -> None:
        """Take a link down: quantum generation stalls, classical traffic
        over that hop is dropped, and the controller stops routing new
        circuits across it.  Liveness keepalives on circuits crossing the
        hop start missing and eventually declare those circuits dead."""
        edge = frozenset((name_a, name_b))
        self.links[edge].fail()
        self._channel_by_edge[edge].cut()
        if self.controller is not None:
            self.controller.set_link_state(edge, False)

    def restore_link(self, name_a: str, name_b: str) -> None:
        """Repair a failed link (generation resumes, routing re-enabled).

        Circuits that were re-routed away do not revert — path
        re-optimisation on repair is a policy decision left to operators.
        """
        edge = frozenset((name_a, name_b))
        self.links[edge].restore()
        self._channel_by_edge[edge].restore()
        if self.controller is not None:
            self.controller.set_link_state(edge, True)

    def link_is_up(self, name_a: str, name_b: str) -> bool:
        """Whether the physical link between two nodes is up."""
        return self.links[frozenset((name_a, name_b))].up

    def recover_circuit(self, circuit_id: str, on_ready=None) -> Optional[str]:
        """Re-establish a failed circuit over a surviving path.

        Management-plane teardown first: the old path may include the
        dead link, so a hop-by-hop TEAR cannot be trusted to propagate —
        instead the controller (which has out-of-band connectivity to
        every node, as in Sec 5) removes the circuit state directly at
        each node, aborting its in-flight requests.  Then a fresh route
        avoiding down links is computed with the circuit's original
        fidelity target, cutoff policy and metric, and re-signalled
        asynchronously; ``on_ready(new_circuit_id)`` fires when the new
        circuit's RESV returns.

        Returns the new circuit ID, or ``None`` when no feasible
        surviving path exists (the circuit is lost).
        """
        from ..control.routing import RouteError

        meta = self._circuit_meta.pop(circuit_id, None)
        if meta is None:
            return None
        route = meta["route"]
        self.liveness[route.path[0]].unwatch(circuit_id)
        self.controller.register_teardown(circuit_id)
        for node in route.path:
            self.qnps[node].uninstall_circuit(circuit_id)
        try:
            new_route = self.controller.compute_route(
                route.path[0], route.path[-1], route.target_fidelity,
                meta.get("cutoff_policy") or "loss", metric=route.metric)
        except RouteError:
            return None
        return self._install_async(new_route, meta.get("max_eer"),
                                   cutoff_policy=meta.get("cutoff_policy"),
                                   on_ready=on_ready)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def submit(self, circuit_id: str, request: UserRequest,
               oracle_min_fidelity: Optional[float] = None,
               record_fidelity: bool = False,
               on_matched=None) -> RequestHandle:
        """Submit a request at a circuit's head-end.

        ``record_fidelity`` matches head/tail deliveries and reads the
        ground-truth pair fidelity from the simulation; this is for
        evaluation only (the network cannot do it).  ``oracle_min_fidelity``
        additionally marks pairs below the threshold as rejected — the
        "simpler protocol" baseline of Fig 10.  ``on_matched`` registers an
        application-service consumer: it is called with each
        :class:`MatchedPair` the moment both halves were seen (fidelity
        already recorded), and a truthy return means the consumer took
        ownership of the pair's qubits — the façade then skips its own
        state cleanup for that pair.
        """
        route = self.route_of(circuit_id)
        head, tail = route.path[0], route.path[-1]
        if self.tracer is not None:
            self.tracer.begin("session", head, self.sim.now,
                              key=("session", request.request_id),
                              parent=self.tracer.lookup(
                                  ("circuit", circuit_id)),
                              request=request.request_id,
                              circuit=circuit_id)
        head_id = self._next_identifier()
        tail_id = self._next_identifier()
        submission = _Submission(
            handle=None,  # type: ignore[arg-type]
            oracle_min_fidelity=oracle_min_fidelity,
            record_fidelity=(record_fidelity
                             or oracle_min_fidelity is not None
                             or on_matched is not None),
            on_matched=on_matched,
        )
        self.qnps[tail].register_application(
            tail_id, partial(self._on_tail_delivery, submission))
        handle = self.qnps[head].submit(circuit_id, request,
                                        head_end_identifier=head_id,
                                        tail_end_identifier=tail_id)
        submission.handle = handle
        decision = {RequestStatus.ACTIVE: "policer.accepted",
                    RequestStatus.QUEUED: "policer.queued",
                    RequestStatus.REJECTED: "policer.rejected"}.get(
                        handle.status)
        if decision is not None:
            self.obs.counter(decision).inc()
        handle.tail_deliveries = submission.tail_deliveries  # type: ignore[attr-defined]
        handle.matched_pairs = submission.matched  # type: ignore[attr-defined]
        handle.on_delivery(partial(self._on_head_delivery, submission))
        self._submissions[handle] = submission
        return handle

    def discard_submission(self, handle: RequestHandle) -> None:
        """Drop the façade's book-keeping for a finished submission.

        Session retirement calls this once a session is terminal and its
        telemetry has been folded into aggregates, so the matched-pair and
        delivery lists (the per-session memory that grows with traffic) can
        be garbage collected.  Safe to call for unknown handles.
        """
        self._submissions.pop(handle, None)

    def _next_identifier(self) -> int:
        self._identifier_counter += 1
        return self._identifier_counter

    def _on_head_delivery(self, submission: _Submission,
                          delivery: PairDelivery) -> None:
        if delivery.status != DeliveryStatus.CONFIRMED:
            return
        self._match(submission, delivery, is_head=True)

    def _on_tail_delivery(self, submission: _Submission,
                          delivery: PairDelivery) -> None:
        submission.tail_deliveries.append(delivery)
        if delivery.status != DeliveryStatus.CONFIRMED:
            return
        self._match(submission, delivery, is_head=False)

    def _match(self, submission: _Submission, delivery: PairDelivery,
               is_head: bool) -> None:
        if not submission.record_fidelity:
            return
        other = submission._pending.pop((delivery.pair_id, not is_head), None)
        if other is None:
            submission._pending[(delivery.pair_id, is_head)] = delivery
            return
        head_delivery = delivery if is_head else other
        tail_delivery = other if is_head else delivery
        matched = MatchedPair(pair_id=delivery.pair_id,
                              head_delivery=head_delivery,
                              tail_delivery=tail_delivery)
        has_qubits = (head_delivery.qubit is not None
                      and tail_delivery.qubit is not None)
        if has_qubits:
            matched.fidelity = pair_fidelity(
                head_delivery.qubit, tail_delivery.qubit,
                int(head_delivery.bell_state))
            if submission.oracle_min_fidelity is not None:
                matched.accepted = matched.fidelity >= submission.oracle_min_fidelity
            self.obs.histogram("traffic.fidelity").observe(matched.fidelity)
        # Hand the pair to the application service first: it may measure
        # or buffer the qubits (truthy return = it owns them now).
        owned = (submission.on_matched is not None
                 and bool(submission.on_matched(matched)))
        if owned and self.tracer is not None:
            self.tracer.record(self.sim.now, "app", "APP_CONSUME",
                               request=delivery.request_id,
                               pair=delivery.pair_id)
        if has_qubits and not owned:
            # Consume the pair so long runs do not accumulate state.
            # Either side's state may already be gone: removing one half can
            # drop its partner, and under heavy traffic a cutoff discard can
            # race the delivery match.
            if head_delivery.qubit.state is not None:
                head_delivery.qubit.state.remove(head_delivery.qubit)
            if tail_delivery.qubit.state is not None:
                tail_delivery.qubit.state.remove(tail_delivery.qubit)
        submission.matched.append(matched)

    # ------------------------------------------------------------------
    # Simulation driving and knobs
    # ------------------------------------------------------------------

    def run(self, until_s: Optional[float] = None) -> None:
        """Run the simulation (``until_s`` in simulated seconds)."""
        self.sim.run(until=None if until_s is None else until_s * S)

    def run_until_complete(self, handles, timeout_s: float = 300.0,
                           deadline_s: Optional[float] = None) -> None:
        """Run until all handles reach a terminal state (or timeout).

        ``deadline_s`` is an *absolute* simulated-time cutoff overriding
        the relative ``timeout_s`` — checkpoint/resume drains use it so a
        resumed run stops at the same instant the uninterrupted one
        would have.
        """
        deadline = (self.sim.now + timeout_s * S if deadline_s is None
                    else deadline_s * S)
        terminal = (RequestStatus.COMPLETED, RequestStatus.REJECTED,
                    RequestStatus.ABORTED)
        while any(handle.status not in terminal for handle in handles):
            if self.sim.now >= deadline or self.sim.pending_events() == 0:
                break
            self._step(limit=deadline)

    def _step(self, limit: Optional[float] = None) -> None:
        """Advance the simulation by one event batch."""
        queue = self.sim._queue
        while queue and queue[0].cancelled:
            import heapq

            heapq.heappop(queue)
        if not queue:
            return
        target = queue[0].time
        if limit is not None:
            target = min(target, limit)
        self.sim.run(until=target)

    def set_message_delay(self, delay_ns: float) -> None:
        """Add a processing delay to every classical channel (Fig 10c)."""
        for channel in self.channels:
            channel.processing_delay = delay_ns

    # ------------------------------------------------------------------

    def node(self, name: str) -> QuantumNode:
        return self.nodes[name]

    def link_between(self, name_a: str, name_b: str) -> Link:
        return self.links[frozenset((name_a, name_b))]


# ----------------------------------------------------------------------
# Canonical topologies
# ----------------------------------------------------------------------

def build_network_from_graph(graph: nx.Graph, length_km: float = 0.002,
                             params: HardwareParams = SIMULATION,
                             seed: int = 0, slice_attempts: int = 100,
                             formalism: str | Backend = "dm",
                             attenuation: float =
                             LAB_WAVELENGTH_ATTENUATION_DB_PER_KM,
                             physical: str = "analytic") -> Network:
    """Wire an arbitrary connected graph into a full :class:`Network`.

    The generic entry point behind the topology catalogue
    (:mod:`repro.traffic.topologies`): every graph node becomes a quantum
    node (names are ``str(node)``) and every edge a heralded link plus a
    classical channel.  Nodes and edges are added in sorted order so the
    wiring — and therefore the event schedule — is deterministic for a
    given graph and seed.
    """
    if graph.number_of_nodes() < 2:
        raise ValueError("a network needs at least two nodes")
    if not nx.is_connected(graph):
        raise ValueError("the topology graph must be connected")
    names = {node: str(node) for node in graph.nodes}
    if len(set(names.values())) != len(names):
        raise ValueError("node names collide after str() conversion")
    net = Network(Simulator(seed=seed), params, formalism=formalism,
                  physical=physical)
    for node in sorted(graph.nodes, key=str):
        net.add_node(names[node])
    for edge_a, edge_b in sorted(graph.edges,
                                 key=lambda edge: tuple(sorted(map(str, edge)))):
        net.connect(names[edge_a], names[edge_b], length_km,
                    attenuation=attenuation, slice_attempts=slice_attempts)
    net.finalise()
    return net


def build_chain_network(num_nodes: int, length_km: float = 0.002,
                        params: HardwareParams = SIMULATION,
                        seed: int = 0, slice_attempts: int = 100,
                        formalism: str = "dm") -> Network:
    """A linear chain node0 — node1 — … — node(n−1)."""
    if num_nodes < 2:
        raise ValueError("a chain needs at least two nodes")
    net = Network(Simulator(seed=seed), params, formalism=formalism)
    names = [f"node{i}" for i in range(num_nodes)]
    for name in names:
        net.add_node(name)
    for left, right in zip(names, names[1:]):
        net.connect(left, right, length_km, slice_attempts=slice_attempts)
    net.finalise()
    return net


def build_dumbbell_network(length_km: float = 0.002,
                           params: HardwareParams = SIMULATION,
                           seed: int = 0, slice_attempts: int = 100,
                           formalism: str = "dm") -> Network:
    """The Fig 7 evaluation topology: A0,A1 — MA — MB — B0,B1."""
    net = Network(Simulator(seed=seed), params, formalism=formalism)
    for name in ("A0", "A1", "MA", "MB", "B0", "B1"):
        net.add_node(name)
    for pair in (("A0", "MA"), ("A1", "MA"), ("MA", "MB"),
                 ("MB", "B0"), ("MB", "B1")):
        net.connect(*pair, length_km, slice_attempts=slice_attempts)
    net.finalise()
    return net


def build_near_term_chain(num_nodes: int = 3, length_km: float = 25.0,
                          params: HardwareParams = NEAR_TERM,
                          seed: int = 0, slice_attempts: int = 2000,
                          formalism: str = "dm") -> Network:
    """The Fig 11 scenario: a 25 km-spaced chain on near-term hardware
    (telecom-converted photons, single communication qubit, storage)."""
    net = Network(Simulator(seed=seed), params, formalism=formalism)
    names = [f"node{i}" for i in range(num_nodes)]
    for name in names:
        net.add_node(name)
    for left, right in zip(names, names[1:]):
        net.connect(left, right, length_km,
                    attenuation=TELECOM_ATTENUATION_DB_PER_KM,
                    slice_attempts=slice_attempts)
    net.finalise()
    return net
