"""The Quantum Network Protocol — the paper's primary contribution."""

from .circuit import CircuitRole, RoutingEntry
from .demux import SymmetricDemultiplexer
from .epochs import EpochManager
from .messages import Complete, Direction, Expire, Forward, Track
from .policing import Policer, PolicerDecision
from .qnp import CircuitRuntime, QNPNode, RequestRecord
from .requests import (
    DeliveryStatus,
    PairDelivery,
    RequestHandle,
    RequestStatus,
    RequestType,
    UserRequest,
)
from .tracker import DirectionState, EndPairState, PairInfo, SwapRecord

__all__ = [
    "QNPNode",
    "CircuitRuntime",
    "RequestRecord",
    "RoutingEntry",
    "CircuitRole",
    "UserRequest",
    "RequestType",
    "RequestStatus",
    "RequestHandle",
    "PairDelivery",
    "DeliveryStatus",
    "Forward",
    "Complete",
    "Track",
    "Expire",
    "Direction",
    "EpochManager",
    "SymmetricDemultiplexer",
    "Policer",
    "PolicerDecision",
    "DirectionState",
    "PairInfo",
    "SwapRecord",
    "EndPairState",
]
