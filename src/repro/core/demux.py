"""Pair-to-request demultiplexing at the end-nodes (Sec 4.1, Appendix C.3).

Aggregation means the circuit carries pairs for many requests without
tagging them, so the end-nodes must agree on which request each pair
belongs to.  We implement the *symmetric* strategy as a distributed FIFO
queue (one of the schemes the paper suggests): both ends always assign the
next pair to the oldest unfinished request of the active epoch.

FIFO is the only strictly-local symmetric rule that stays consistent: the
two ends see *different* pair streams (their own links'), so any
index-based rotation drifts apart permanently, whereas "everything goes to
the front request" agrees except in short windows around request
completion and cutoff discards — which the cross-check on TRACK messages
cleans up, as Appendix C prescribes.  It also produces the linear
latency-vs-request-count scaling reported in Fig 8.
"""

from __future__ import annotations

from typing import Optional

from .epochs import EpochManager


class SymmetricDemultiplexer:
    """Distributed-FIFO assignment over the active epoch."""

    def __init__(self, epochs: EpochManager):
        self._epochs = epochs
        #: Requests that finished (or aborted) and must be skipped.
        self._finished: set[str] = set()
        self.cross_check_failures = 0

    def mark_finished(self, request_id: str) -> None:
        """Stop assigning pairs to a request (count reached / aborted)."""
        self._finished.add(request_id)

    def eligible_requests(self) -> list[str]:
        """Unfinished requests of the active epoch, in arrival order."""
        return [request_id for request_id in self._epochs.active_requests()
                if request_id not in self._finished]

    def next_request(self) -> Optional[str]:
        """Assign the next generated pair to a request (Alg 1 / Alg 4):
        the oldest unfinished request gets every pair until it completes."""
        eligible = self.eligible_requests()
        if not eligible:
            return None
        return eligible[0]

    def cross_check(self, local_request_id: Optional[str],
                    track_request_id: str) -> bool:
        """Verify both ends assigned the pair to the same request.

        Returns True when consistent.  A failure means a window condition
        (e.g. a mid-chain discard re-paired the qubits differently); the
        caller discards the pair (Alg 2 / Alg 5).
        """
        if local_request_id == track_request_id:
            return True
        self.cross_check_failures += 1
        return False
