"""Epoch bookkeeping for request aggregation (Sec 4.1, "Aggregation").

An epoch is a set of concurrently active requests on a circuit.  A new
epoch is *created* whenever a request arrives or completes, and *activates*
at each end-node once the pair carrying its number on a TRACK message is
delivered (head-end activates immediately — it is authoritative).  The
demultiplexer always assigns pairs against the active epoch, which keeps the
two end-nodes' assignments consistent up to windows that the TRACK
cross-check cleans up.
"""

from __future__ import annotations

from typing import Optional


class EpochManager:
    """Tracks epoch membership and activation at one end-node."""

    def __init__(self):
        self._epochs: dict[int, tuple[str, ...]] = {0: ()}
        self._latest = 0
        self._active = 0

    @property
    def active_epoch(self) -> int:
        return self._active

    @property
    def latest_epoch(self) -> int:
        return self._latest

    def active_requests(self) -> tuple[str, ...]:
        """Request IDs of the active epoch, in canonical order."""
        return self._epochs[self._active]

    def requests_of(self, epoch: int) -> tuple[str, ...]:
        return self._epochs.get(epoch, ())

    # ------------------------------------------------------------------
    # Head-end side: creates epochs
    # ------------------------------------------------------------------

    def create_epoch(self, request_ids: tuple[str, ...]) -> int:
        """Create the next epoch with the given membership."""
        self._latest += 1
        self._epochs[self._latest] = tuple(request_ids)
        return self._latest

    # ------------------------------------------------------------------
    # Both ends: learn / activate epochs
    # ------------------------------------------------------------------

    def learn_epoch(self, epoch: int, request_ids: tuple[str, ...]) -> None:
        """Record an epoch announced by the head-end (FORWARD/COMPLETE)."""
        self._epochs[epoch] = tuple(request_ids)
        self._latest = max(self._latest, epoch)

    def activate(self, epoch: Optional[int]) -> None:
        """Advance the active epoch (never backwards)."""
        if epoch is None or epoch <= self._active:
            return  # stale TRACK referencing an already-superseded epoch
        if epoch not in self._epochs:
            raise KeyError(f"unknown epoch {epoch}")
        self._active = epoch
        self._prune()

    def _prune(self) -> None:
        """Drop epochs that can no longer activate."""
        for number in [n for n in self._epochs if n < self._active]:
            del self._epochs[number]
