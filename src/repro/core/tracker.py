"""Swap records, discard records and pending-TRACK stores (Appendix C.3).

An intermediate node keeps, per circuit and per direction (upstream /
downstream link):

* a queue of **available pairs** waiting for a match on the other link,
  each with its cutoff timer,
* **qubit records** — after a swap, the mapping from the consumed pair's
  correlator to the continuing pair's correlator plus the combined Bell
  frame (what a passing TRACK needs),
* **pending TRACKs** — TRACK messages that arrived before the swap (or the
  expiry) of the pair they reference,
* **expire records** — correlators whose qubit was discarded by the cutoff
  timer before any TRACK arrived.

The Bell-frame combination is the XOR algebra of
:mod:`repro.quantum.bell`, verified against the density-matrix engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..netsim.timers import Timer
from ..quantum.bell import BellIndex
from ..quantum.qubit import Qubit
from .messages import Track


@dataclass
class PairInfo:
    """A link pair waiting at a node."""

    correlator: tuple
    qubit: Qubit
    bell_index: BellIndex
    goodness: float
    t_create: float
    timer: Optional[Timer] = None

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


@dataclass
class SwapRecord:
    """Result of an entanglement swap, seen from one direction.

    ``continuation_correlator`` is the pair on the *other* link;
    ``frame_delta`` is the Bell-frame contribution to XOR into a passing
    TRACK's outcome state: (other pair's Bell index) ⊕ (swap outcome).
    """

    continuation_correlator: tuple
    frame_delta: int


@dataclass
class DirectionState:
    """Per-direction bookkeeping at an intermediate node."""

    #: Pairs available for swapping, oldest first (Sec 5: "entanglement
    #: swaps always prefer the oldest unexpired pairs").
    available: deque[PairInfo] = field(default_factory=deque)
    #: correlator → SwapRecord (Alg 7's upstream/downstream_qubit_record).
    qubit_records: dict = field(default_factory=dict)
    #: correlator → pending Track (Alg 7/8's upstream/downstream_track).
    pending_tracks: dict = field(default_factory=dict)
    #: correlators discarded by the cutoff before any TRACK arrived.
    expire_records: set = field(default_factory=set)

    def pop_oldest(self) -> Optional[PairInfo]:
        if not self.available:
            return None
        return self.available.popleft()

    def remove(self, correlator: tuple) -> Optional[PairInfo]:
        for pair in self.available:
            if pair.correlator == correlator:
                self.available.remove(pair)
                return pair
        return None

    def take_pending_track(self, correlator: tuple) -> Optional[Track]:
        return self.pending_tracks.pop(correlator, None)


@dataclass
class EndPairState:
    """End-node view of one of its own link pairs (``in_transit``)."""

    correlator: tuple
    request_id: str
    #: Local qubit, until consumed (None for MEASURE after measuring).
    qubit: Optional[Qubit]
    bell_index: BellIndex
    goodness: float
    t_create: float
    #: Withheld measurement outcome (MEASURE requests).
    measurement: Optional[int] = None
    #: Delivery already made (EARLY requests) awaiting confirmation.
    early_delivery: Optional[object] = None
