"""Virtual circuit state: the data plane tables of Sec 4.1.

A virtual circuit (VC) is a fixed, directed path between a head-end and a
tail-end node, installed by the signalling protocol.  Each node on the path
holds a :class:`RoutingEntry` — the routing table row listed in Sec 4.1 —
and the QNP keeps per-circuit runtime state next to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class CircuitRole(Enum):
    HEAD = "head"
    INTERMEDIATE = "intermediate"
    TAIL = "tail"


@dataclass
class RoutingEntry:
    """Routing table entry for one circuit at one node (Sec 4.1).

    Contains: (i) next downstream node, (ii) next upstream node, (iii) the
    downstream link-label, (iv) the upstream link-label, (v) the downstream
    link min-fidelity, (vi) the downstream max-LPR, (vii) the circuit
    max-EER — plus the cutoff time distributed by the signalling protocol.
    """

    circuit_id: str
    node: str
    upstream_node: Optional[str]
    downstream_node: Optional[str]
    upstream_link: Optional[str]
    downstream_link: Optional[str]
    upstream_link_label: Optional[str]
    downstream_link_label: Optional[str]
    downstream_min_fidelity: Optional[float]
    downstream_max_lpr: Optional[float]
    circuit_max_eer: float
    #: Cutoff timeout in ns (None disables the mechanism — the Fig 10
    #: baseline and an ablation knob).
    cutoff: Optional[float]
    #: The routing protocol's worst-case end-to-end fidelity estimate.
    estimated_fidelity: float = 0.0

    @property
    def role(self) -> CircuitRole:
        if self.upstream_node is None:
            return CircuitRole.HEAD
        if self.downstream_node is None:
            return CircuitRole.TAIL
        return CircuitRole.INTERMEDIATE

    def __post_init__(self):
        if self.upstream_node is None and self.downstream_node is None:
            raise ValueError("a circuit needs at least two nodes")
        if self.downstream_node is not None:
            if self.downstream_link is None or self.downstream_link_label is None:
                raise ValueError("downstream side needs a link and a label")
        if self.upstream_node is not None:
            if self.upstream_link is None or self.upstream_link_label is None:
                raise ValueError("upstream side needs a link and a label")
