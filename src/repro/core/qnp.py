"""The Quantum Network Protocol engine — one instance per node.

This is the paper's contribution (Sec 4): a connection-oriented quantum
data plane protocol.  The engine

* holds the per-circuit runtime state (routing entry + Appendix C stores),
* receives link-pair deliveries from the link layer and runs the LINK rules,
* receives FORWARD / COMPLETE / TRACK / EXPIRE messages over the classical
  channels and runs the corresponding rules,
* manages the link layer requests of the circuit's downstream link
  (continuous generation at the routed LPR),
* at the head-end: polices/shapes incoming user requests against the
  circuit's EER and originates FORWARD/COMPLETE messages.

The actual rule bodies live in :mod:`repro.core.rules` next to the paper's
pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..linklayer.service import LinkPairDelivery
from ..netsim.entity import Entity
from ..netsim.ports import Component, connect
from ..network.node import QuantumNode, service_protocol
from ..quantum.bell import BellIndex
from .circuit import CircuitRole, RoutingEntry
from .demux import SymmetricDemultiplexer
from .epochs import EpochManager
from .messages import Complete, Direction, Expire, Forward, Track
from .policing import Policer, PolicerDecision
from .requests import (
    PairDelivery,
    RequestHandle,
    RequestStatus,
    RequestType,
    UserRequest,
)
from .rules import EndNodeRules, IntermediateRules
from .tracker import DirectionState


@dataclass
class RequestRecord:
    """Book-keeping for one request at an end-node (head or tail)."""

    request_id: str
    request_type: RequestType
    measure_basis: str
    final_state: Optional[BellIndex]
    number_of_pairs: Optional[int]
    rate: Optional[float]
    head_end_identifier: int
    tail_end_identifier: int
    delivered: int = 0
    expired: int = 0
    #: Head-end only: the caller's handle.
    handle: Optional[RequestHandle] = None
    user_request: Optional[UserRequest] = None


@dataclass
class CircuitRuntime:
    """All per-circuit state at one node."""

    entry: RoutingEntry
    # Intermediate-node stores (Appendix C.3).
    upstream: DirectionState = field(default_factory=DirectionState)
    downstream: DirectionState = field(default_factory=DirectionState)
    # End-node stores.
    epochs: EpochManager = field(default_factory=EpochManager)
    demux: SymmetricDemultiplexer = None  # type: ignore[assignment]
    in_transit: dict = field(default_factory=dict)
    requests: dict = field(default_factory=dict)
    # Head-end only.
    policer: Optional[Policer] = None
    link_request_active: bool = False

    def __post_init__(self):
        self.demux = SymmetricDemultiplexer(self.epochs)


class QNPNode(Entity, Component, EndNodeRules, IntermediateRules):
    """The QNP protocol machine at one quantum node."""

    def __init__(self, node: QuantumNode, blocking_tracking: bool = False):
        super().__init__(node.sim, name=f"{node.name}.qnp")
        self.node = node
        node.qnp = self
        connect(self.add_port("node", service_protocol("qnp"),
                              handler=self._on_node_message),
                node.service_port("qnp"))
        #: Ablation knob: wait for TRACK messages before swapping
        #: (the QNP never does this — Sec 4.1 "lazy entanglement tracking").
        self.blocking_tracking = blocking_tracking
        #: Extension knob: coordinated link scheduling — intermediate nodes
        #: boost circuits with an unmatched pair on the adjacent link (the
        #: "improved scheduling" the paper suggests against Fig 8c).
        self.coordinated_scheduling = False
        self._circuits: dict[str, CircuitRuntime] = {}
        self._labels: dict[tuple, str] = {}
        self._registered_links: set[str] = set()
        self._apps: dict[int, Callable[[PairDelivery], None]] = {}
        #: Optional shared event log (see :mod:`repro.analysis.tracing`).
        self.trace = None
        #: Name of the quantum-state formalism this node's pairs live in
        #: (``"dm"`` or ``"bell"`` — threaded from the topology builder;
        #: evaluation scripts and benchmarks read it to label results).
        backend = getattr(node, "backend", None)
        self.formalism = backend.name if backend is not None else "dm"
        # Statistics.
        self.swaps_performed = 0
        self.pairs_delivered = 0
        self.pairs_discarded = 0
        self.pairs_expired = 0
        self.expires_sent = 0
        self.tracks_relayed = 0

    # ------------------------------------------------------------------
    # Circuit management (driven by the signalling protocol)
    # ------------------------------------------------------------------

    def install_circuit(self, entry: RoutingEntry) -> None:
        """Install the data plane state for a virtual circuit."""
        if entry.circuit_id in self._circuits:
            raise ValueError(f"circuit {entry.circuit_id} already installed")
        runtime = CircuitRuntime(entry=entry)
        if entry.role == CircuitRole.HEAD:
            runtime.policer = Policer(entry.circuit_max_eer)
        self._circuits[entry.circuit_id] = runtime
        for link_name, label in ((entry.upstream_link, entry.upstream_link_label),
                                 (entry.downstream_link, entry.downstream_link_label)):
            if link_name is None:
                continue
            self._labels[(link_name, label)] = entry.circuit_id
            if link_name not in self._registered_links:
                # Take over the link's delivery port for this endpoint
                # (disconnect-then-connect mirrors the overwrite
                # semantics the old register_handler dict had).
                delivery = self.node.links[link_name].delivery_port(
                    self.node.name)
                if delivery.connected:
                    delivery.disconnect()
                connect(delivery,
                        self.add_port(f"link:{link_name}", "egp.delivery",
                                      handler=self._on_link_pair))
                self._registered_links.add(link_name)

    def uninstall_circuit(self, circuit_id: str) -> None:
        """Tear a circuit down, aborting its requests and freeing pairs."""
        runtime = self._circuits.pop(circuit_id, None)
        if runtime is None:
            return
        self._stop_downstream_link(runtime)
        for record in runtime.requests.values():
            if record.handle is not None and record.handle.status in (
                    RequestStatus.ACTIVE, RequestStatus.QUEUED):
                # Shaped (queued) requests must abort too: their bandwidth
                # will never free up on a circuit that no longer exists, and
                # a handle stuck in QUEUED stalls run_until_complete().
                record.handle.status = RequestStatus.ABORTED
                if runtime.policer is not None:
                    runtime.policer.abort(record.request_id)
        # Release every pair still parked for this circuit so its memory
        # slots return to the pool immediately — a management-plane
        # teardown after a link failure must not wait for cutoff timers
        # to drain slots that surviving circuits need.
        for direction in (runtime.upstream, runtime.downstream):
            while direction.available:
                pair = direction.available.popleft()
                pair.cancel_timer()
                self._discard_local_pair(pair.correlator)
        for correlator in list(runtime.in_transit):
            # EARLY/MEASURE pairs already freed their slot at delivery;
            # _discard_local_pair is a no-op for those.
            self._discard_local_pair(correlator)
        runtime.in_transit.clear()
        self._labels = {key: value for key, value in self._labels.items()
                        if value != circuit_id}

    def circuit(self, circuit_id: str) -> CircuitRuntime:
        return self._circuits[circuit_id]

    @property
    def circuit_ids(self) -> list[str]:
        return sorted(self._circuits)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------

    def register_application(self, identifier: int,
                             callback: Callable[[PairDelivery], None]) -> None:
        """Register the receiver for pairs addressed to an end-point
        identifier (the locator/identifier scheme of Appendix C.1)."""
        self._apps[identifier] = callback

    def submit(self, circuit_id: str, request: UserRequest,
               head_end_identifier: int = 0, tail_end_identifier: int = 0,
               ) -> RequestHandle:
        """Submit a user request at the head-end of a circuit.

        Runs policing and shaping (Sec 4.1): the handle's status tells the
        caller whether the request was accepted, queued or rejected.
        """
        runtime = self._circuits[circuit_id]
        if runtime.entry.role != CircuitRole.HEAD:
            raise ValueError("requests must be submitted at the head-end node "
                             "(tail-end applications forward them there)")
        handle = RequestHandle(request, runtime.entry.estimated_fidelity)
        handle.t_submitted = self.now
        record = RequestRecord(
            request_id=request.request_id,
            request_type=request.request_type,
            measure_basis=request.measure_basis,
            final_state=request.final_state,
            number_of_pairs=request.num_pairs,
            rate=request.rate,
            head_end_identifier=head_end_identifier,
            tail_end_identifier=tail_end_identifier,
            handle=handle,
            user_request=request,
        )
        self._emit("REQUEST", request=request.request_id)
        decision = runtime.policer.admit(request)
        self._emit("ADMIT", request=request.request_id,
                   decision=str(decision))
        if decision == PolicerDecision.REJECT:
            handle.status = RequestStatus.REJECTED
            return handle
        runtime.requests[request.request_id] = record
        if decision == PolicerDecision.ACCEPT:
            self._head_start_request(runtime, record)
        else:
            handle.status = RequestStatus.QUEUED
        return handle

    def cancel(self, circuit_id: str, request_id: str) -> None:
        """Cancel a request (rate-based requests finish this way)."""
        runtime = self._circuits[circuit_id]
        record = runtime.requests.get(request_id)
        if record is None:
            if runtime.policer is not None:
                runtime.policer.drop_queued(request_id)
            return
        handle = record.handle
        if handle is not None and handle.status == RequestStatus.QUEUED:
            # Still shaped: drop it before it ever starts.
            runtime.policer.drop_queued(request_id)
            handle.status = RequestStatus.ABORTED
            del runtime.requests[request_id]
            return
        if handle is not None and handle.status == RequestStatus.ACTIVE:
            self._head_complete_request(runtime, record)

    # ------------------------------------------------------------------
    # Head-end request lifecycle
    # ------------------------------------------------------------------

    def _head_start_request(self, runtime: CircuitRuntime,
                            record: RequestRecord) -> None:
        record.handle.status = RequestStatus.ACTIVE
        record.handle.t_started = self.now
        active_ids = self._active_request_ids(runtime)
        epoch = runtime.epochs.create_epoch(active_ids)
        runtime.epochs.activate(epoch)  # head-end is authoritative
        rate, rate_based_only = self._aggregate_rate(runtime)
        forward = Forward(
            circuit_id=runtime.entry.circuit_id,
            request_id=record.request_id,
            head_end_identifier=record.head_end_identifier,
            tail_end_identifier=record.tail_end_identifier,
            request_type=record.request_type,
            measure_info=record.measure_basis,
            number_of_pairs=record.number_of_pairs,
            final_state=record.final_state,
            rate=rate,
            rate_based_only=rate_based_only,
            epoch=epoch,
            epoch_requests=active_ids,
        )
        self._update_downstream_link(runtime, rate, rate_based_only,
                                     len(active_ids))
        self._send_circuit_message(runtime, Direction.DOWNSTREAM, forward)

    def _head_complete_request(self, runtime: CircuitRuntime,
                               record: RequestRecord) -> None:
        handle = record.handle
        if handle is not None:
            if handle.status != RequestStatus.ACTIVE:
                return  # already completed (late in-flight confirmation)
            handle.status = RequestStatus.COMPLETED
            handle.t_completed = self.now
            self._emit("REQUEST_DONE", request=record.request_id)
        runtime.demux.mark_finished(record.request_id)
        runtime.policer.release(record.request_id)
        active_ids = self._active_request_ids(runtime)
        epoch = runtime.epochs.create_epoch(active_ids)
        runtime.epochs.activate(epoch)
        rate, rate_based_only = self._aggregate_rate(runtime)
        complete = Complete(
            circuit_id=runtime.entry.circuit_id,
            request_id=record.request_id,
            head_end_identifier=record.head_end_identifier,
            tail_end_identifier=record.tail_end_identifier,
            rate=rate,
            rate_based_only=rate_based_only,
            epoch=epoch,
            epoch_requests=active_ids,
        )
        self._update_downstream_link(runtime, rate, rate_based_only,
                                     len(active_ids))
        self._send_circuit_message(runtime, Direction.DOWNSTREAM, complete)
        # Shaping: start queued requests that now fit.
        while True:
            queued = runtime.policer.next_startable()
            if queued is None:
                break
            next_record = runtime.requests.get(queued.request_id)
            if next_record is None:  # pragma: no cover - defensive
                continue
            self._head_start_request(runtime, next_record)

    def _active_request_ids(self, runtime: CircuitRuntime) -> tuple:
        """Active requests in arrival order (the distributed-FIFO order the
        demultiplexer serves; ``runtime.requests`` preserves insertion)."""
        return tuple(record.request_id for record in runtime.requests.values()
                     if record.handle is not None
                     and record.handle.status == RequestStatus.ACTIVE)

    def _aggregate_rate(self, runtime: CircuitRuntime) -> tuple[float, bool]:
        """Total EER needed by the active requests + rate-based-only flag."""
        total = 0.0
        rate_based_only = True
        found = False
        for record in runtime.requests.values():
            if record.handle is None \
                    or record.handle.status != RequestStatus.ACTIVE:
                continue
            found = True
            if record.user_request is not None:
                total += record.user_request.minimum_eer()
                if not record.user_request.is_rate_based:
                    rate_based_only = False
            else:  # pragma: no cover - defensive
                rate_based_only = False
        return total, (rate_based_only and found)

    # ------------------------------------------------------------------
    # Link layer management (continuous generation, Sec 4.1)
    # ------------------------------------------------------------------

    def _update_downstream_link(self, runtime: CircuitRuntime, rate: float,
                                rate_based_only: bool,
                                active_requests: int) -> None:
        entry = runtime.entry
        if entry.downstream_link is None:
            return
        link = self.node.links[entry.downstream_link]
        has_demand = active_requests > 0 and (rate > 0 or not rate_based_only)
        if not has_demand:
            if runtime.link_request_active:
                link.end_request(entry.downstream_link_label)
                runtime.link_request_active = False
            return
        lpr = entry.downstream_max_lpr
        if rate_based_only and entry.circuit_max_eer > 0:
            lpr = lpr * min(1.0, rate / entry.circuit_max_eer)
        link.set_request(entry.downstream_link_label,
                         entry.downstream_min_fidelity, lpr,
                         endorser=self.node.name)
        runtime.link_request_active = True

    def _endorse_upstream_link(self, runtime: CircuitRuntime) -> None:
        """Endorse the upstream link's request so generation may start.

        A link only generates once both endpoint network layers know about
        the request — otherwise pairs could reach this node before the
        FORWARD does and be dropped on the floor.
        """
        entry = runtime.entry
        if entry.upstream_link is not None:
            self.node.links[entry.upstream_link].endorse(
                entry.upstream_link_label, self.node.name)

    def _stop_downstream_link(self, runtime: CircuitRuntime) -> None:
        entry = runtime.entry
        if entry.downstream_link is not None and runtime.link_request_active:
            self.node.links[entry.downstream_link].end_request(
                entry.downstream_link_label)
            runtime.link_request_active = False

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _emit(self, kind: str, **detail) -> None:
        if self.trace is not None:
            self.trace.record(self.now, self.node.name, kind, **detail)

    def _send_circuit_message(self, runtime: CircuitRuntime,
                              direction: Direction, message) -> None:
        entry = runtime.entry
        neighbour = (entry.downstream_node if direction == Direction.DOWNSTREAM
                     else entry.upstream_node)
        if neighbour is None:
            raise RuntimeError(
                f"{self.name}: cannot send {type(message).__name__} "
                f"{direction.value} from a circuit {entry.role.value} node")
        self._emit(type(message).__name__.upper(), to=neighbour,
                   circuit=entry.circuit_id)
        self.node.send(neighbour, "qnp", message)

    def _on_node_message(self, message) -> None:
        """Port handler: unpack the node's ``(sender, payload)`` tuple."""
        self._on_message(*message)

    def _on_message(self, sender: str, message) -> None:
        runtime = self._circuits.get(message.circuit_id)
        if runtime is None:
            return  # circuit torn down; drop silently
        if isinstance(message, Forward):
            self._on_forward(runtime, message)
        elif isinstance(message, Complete):
            self._on_complete(runtime, message)
        elif isinstance(message, Track):
            self._on_track(runtime, message)
        elif isinstance(message, Expire):
            self._on_expire(runtime, message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected QNP message {message!r}")

    def _on_forward(self, runtime: CircuitRuntime, forward: Forward) -> None:
        role = runtime.entry.role
        if role == CircuitRole.TAIL:
            runtime.requests[forward.request_id] = RequestRecord(
                request_id=forward.request_id,
                request_type=forward.request_type,
                measure_basis=forward.measure_info or "Z",
                final_state=forward.final_state,
                number_of_pairs=forward.number_of_pairs,
                rate=forward.rate,
                head_end_identifier=forward.head_end_identifier,
                tail_end_identifier=forward.tail_end_identifier,
            )
            runtime.epochs.learn_epoch(forward.epoch, forward.epoch_requests)
            self._endorse_upstream_link(runtime)
            if not runtime.demux.eligible_requests():
                # The tail is not assigning pairs to anything right now, so
                # jumping straight to the announced epoch cannot create an
                # inconsistent assignment (otherwise we wait for the epoch
                # to arrive on a TRACK, per Sec 4.1).
                runtime.epochs.activate(forward.epoch)
            return
        self._endorse_upstream_link(runtime)
        self._update_downstream_link(runtime, forward.rate,
                                     forward.rate_based_only,
                                     len(forward.epoch_requests))
        self._send_circuit_message(runtime, Direction.DOWNSTREAM, forward)

    def _on_complete(self, runtime: CircuitRuntime, complete: Complete) -> None:
        role = runtime.entry.role
        if role == CircuitRole.TAIL:
            runtime.epochs.learn_epoch(complete.epoch, complete.epoch_requests)
            runtime.demux.mark_finished(complete.request_id)
            if not runtime.demux.eligible_requests():
                runtime.epochs.activate(complete.epoch)
            return
        self._update_downstream_link(runtime, complete.rate,
                                     complete.rate_based_only,
                                     len(complete.epoch_requests))
        self._send_circuit_message(runtime, Direction.DOWNSTREAM, complete)

    def _on_track(self, runtime: CircuitRuntime, track: Track) -> None:
        role = runtime.entry.role
        if role == CircuitRole.INTERMEDIATE:
            self._intermediate_track_rule(runtime, track)
        else:
            self._end_node_track_rule(runtime, track)

    def _on_expire(self, runtime: CircuitRuntime, expire: Expire) -> None:
        role = runtime.entry.role
        if role == CircuitRole.INTERMEDIATE:
            # Relay towards the origin end-node.
            self._send_circuit_message(runtime, expire.direction, expire)
        else:
            self._end_node_expire_rule(runtime, expire)

    # ------------------------------------------------------------------
    # Link-pair delivery dispatch (the LINK rules' entry point)
    # ------------------------------------------------------------------

    def _on_link_pair(self, delivery: LinkPairDelivery) -> None:
        circuit_id = self._labels.get((delivery.link_name, delivery.purpose_id))
        if circuit_id is None:
            # Pair for a circuit that no longer exists here.
            self._discard_local_pair(delivery.entanglement_id)
            return
        runtime = self._circuits[circuit_id]
        entry = runtime.entry
        role = entry.role
        if role == CircuitRole.INTERMEDIATE:
            from_upstream = delivery.link_name == entry.upstream_link
            self._intermediate_link_rule(runtime, delivery, from_upstream)
        else:
            self._end_node_link_rule(runtime, delivery)

    # ------------------------------------------------------------------
    # Delivery plumbing
    # ------------------------------------------------------------------

    def _deliver(self, runtime: CircuitRuntime, record: RequestRecord,
                 delivery: PairDelivery) -> None:
        if record.handle is not None:
            record.handle._notify(delivery)
        identifier = (record.head_end_identifier
                      if runtime.entry.role == CircuitRole.HEAD
                      else record.tail_end_identifier)
        callback = self._apps.get(identifier)
        if callback is not None:
            callback(delivery)

    def _notify_update(self, runtime: CircuitRuntime, record: RequestRecord,
                       delivery: PairDelivery) -> None:
        """Status change on an already-delivered EARLY pair."""
        if record.handle is not None:
            for listener in list(record.handle._listeners):
                listener(delivery)
        identifier = (record.head_end_identifier
                      if runtime.entry.role == CircuitRole.HEAD
                      else record.tail_end_identifier)
        callback = self._apps.get(identifier)
        if callback is not None:
            callback(delivery)
