"""The QNP rules — Algorithms 1–9 of Appendix C.

Three rule sets, all triggered by link-pair deliveries, TRACK messages,
EXPIRE messages or cutoff timers:

* **end-node rules** (head Algs 1–3, tail Algs 4–6): assign pairs to
  requests, originate TRACKs, deliver pairs/outcomes, handle expiry;
* **intermediate rules** (Algs 7–9): swap as soon as an upstream and a
  downstream pair are available, log swap records, relay TRACKs, discard on
  cutoff.

The rules are written as mixin classes over the shared state and helpers of
:class:`repro.core.qnp.QNPNode`, keeping each algorithm readable next to the
paper's pseudocode.
"""

from __future__ import annotations

from functools import partial

from ..linklayer.service import LinkPairDelivery
from ..netsim.timers import Timer
from ..quantum.bell import BellIndex, combine
from .circuit import CircuitRole
from .messages import Direction, Expire, Track
from .requests import DeliveryStatus, PairDelivery, RequestType
from .tracker import EndPairState, PairInfo, SwapRecord


class EndNodeRules:
    """Head-end and tail-end rules (Algorithms 1–6)."""

    # ------------------------------------------------------------------
    # LINK rules (Alg 1 head / Alg 4 tail)
    # ------------------------------------------------------------------

    def _end_node_link_rule(self, runtime, delivery: LinkPairDelivery) -> None:
        request_id = runtime.demux.next_request()
        if request_id is None:
            # Pair arrived with no active request (e.g. straggler after
            # COMPLETE): discard immediately so the slot frees up.
            self._discard_local_pair(delivery.entanglement_id)
            return
        record = runtime.requests.get(request_id)
        if record is None:  # pragma: no cover - defensive
            self._discard_local_pair(delivery.entanglement_id)
            return
        state = EndPairState(
            correlator=delivery.entanglement_id,
            request_id=request_id,
            qubit=delivery.qubit,
            bell_index=delivery.bell_index,
            goodness=delivery.goodness,
            t_create=delivery.t_create,
        )
        self._emit("LINK_PAIR", correlator=delivery.entanglement_id,
                   request=request_id)
        if record.request_type == RequestType.MEASURE:
            # Measure immediately, withhold the outcome (Sec 4.1 "Early
            # delivery"); the comm slot frees right away.
            bit, _ = self.node.device.measure(delivery.qubit, record.measure_basis)
            state.measurement = bit
            state.qubit = None
            self.node.qmm.free(delivery.entanglement_id)
        elif record.request_type == RequestType.EARLY:
            early = PairDelivery(
                request_id=request_id,
                sequence=record.delivered,
                status=DeliveryStatus.PENDING,
                qubit=delivery.qubit,
                measurement=None,
                bell_state=None,
                pair_id=delivery.entanglement_id,
                t_created=delivery.t_create,
                t_delivered=self.now,
                estimated_fidelity=runtime.entry.estimated_fidelity,
            )
            state.early_delivery = early
            # The application owns the qubit now; the memory slot frees.
            self.node.qmm.free(delivery.entanglement_id)
            self._deliver(runtime, record, early)
        runtime.in_transit[delivery.entanglement_id] = state

        is_head = runtime.entry.role == CircuitRole.HEAD
        track = Track(
            circuit_id=runtime.entry.circuit_id,
            direction=Direction.DOWNSTREAM if is_head else Direction.UPSTREAM,
            request_id=request_id,
            head_end_identifier=record.head_end_identifier,
            tail_end_identifier=record.tail_end_identifier,
            origin_correlator=delivery.entanglement_id,
            link_correlator=delivery.entanglement_id,
            outcome_state=delivery.bell_index,
            epoch=runtime.epochs.latest_epoch if is_head else None,
        )
        self._send_circuit_message(runtime, track.direction, track)

    # ------------------------------------------------------------------
    # TRACK rules (Alg 2 head / Alg 5 tail)
    # ------------------------------------------------------------------

    def _end_node_track_rule(self, runtime, track: Track) -> None:
        state = runtime.in_transit.pop(track.link_correlator, None)
        if state is None:
            # Our half is gone (expired, cross-check discard, or dropped as
            # a straggler).  Tell the other end its half is an orphan so it
            # does not wait forever — the EXPIRE semantics of Appendix C.
            self._discard_local_pair(track.link_correlator)
            expire = Expire(
                circuit_id=runtime.entry.circuit_id,
                direction=track.direction.reverse,
                origin_correlator=track.origin_correlator,
            )
            self.expires_sent += 1
            self._send_circuit_message(runtime, expire.direction, expire)
            return
        if not runtime.demux.cross_check(state.request_id, track.request_id):
            # Window condition (Sec 4.1 "Aggregation"): ends disagree on the
            # assignment — discard the pair.
            self._drop_end_pair(runtime, state, notify_expired=True)
            return
        record = runtime.requests.get(state.request_id)
        if record is None:  # pragma: no cover - defensive
            self._drop_end_pair(runtime, state, notify_expired=False)
            return
        if record.number_of_pairs is not None \
                and record.delivered >= record.number_of_pairs:
            # The request filled while this pair was in flight: drop the
            # excess (the demux already stopped assigning to it).
            self._drop_end_pair(runtime, state, notify_expired=False)
            return

        # Entangled pair identifier (Sec 3.2): both ends know their own
        # correlator and the other end's TRACK origin, so the sorted pair of
        # the two is a shared, unique end-to-end pair ID.
        pair_id = tuple(sorted((state.correlator, track.origin_correlator)))
        final_frame = BellIndex(track.outcome_state)
        if state.qubit is not None and record.final_state is not None \
                and runtime.entry.role == CircuitRole.HEAD:
            # Rotate the pair into the requested Bell state (FORWARD's
            # final_state; head-end responsibility per Appendix C.2).
            self.node.device.pauli_correct(
                state.qubit, int(final_frame) ^ int(record.final_state))
            final_frame = record.final_state

        if record.request_type == RequestType.MEASURE:
            delivery = PairDelivery(
                request_id=record.request_id,
                sequence=record.delivered,
                status=DeliveryStatus.CONFIRMED,
                qubit=None,
                measurement=state.measurement,
                bell_state=final_frame,
                pair_id=pair_id,
                t_created=state.t_create,
                t_delivered=self.now,
                estimated_fidelity=runtime.entry.estimated_fidelity,
            )
            self._deliver(runtime, record, delivery)
        elif record.request_type == RequestType.EARLY:
            early = state.early_delivery
            early.status = DeliveryStatus.CONFIRMED
            early.bell_state = final_frame
            early.pair_id = pair_id
            self._notify_update(runtime, record, early)
        else:  # KEEP
            delivery = PairDelivery(
                request_id=record.request_id,
                sequence=record.delivered,
                status=DeliveryStatus.CONFIRMED,
                qubit=state.qubit,
                measurement=None,
                bell_state=final_frame,
                pair_id=pair_id,
                t_created=state.t_create,
                t_delivered=self.now,
                estimated_fidelity=runtime.entry.estimated_fidelity,
            )
            # Hand the qubit to the application; the memory slot frees.
            self.node.qmm.free(state.correlator)
            self._deliver(runtime, record, delivery)

        record.delivered += 1
        self.pairs_delivered += 1
        self._emit("PAIR", request=record.request_id,
                   bell_state=str(final_frame))
        if runtime.entry.role == CircuitRole.TAIL:
            runtime.epochs.activate(track.epoch)
        if record.number_of_pairs is not None \
                and record.delivered >= record.number_of_pairs:
            runtime.demux.mark_finished(record.request_id)
            if runtime.entry.role == CircuitRole.HEAD:
                self._head_complete_request(runtime, record)

    # ------------------------------------------------------------------
    # EXPIRE rules (Alg 3 head / Alg 6 tail)
    # ------------------------------------------------------------------

    def _end_node_expire_rule(self, runtime, expire: Expire) -> None:
        state = runtime.in_transit.pop(expire.origin_correlator, None)
        if state is None:
            return
        self._drop_end_pair(runtime, state, notify_expired=True)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _drop_end_pair(self, runtime, state: EndPairState,
                       notify_expired: bool) -> None:
        """Discard an end-node pair after EXPIRE or a failed cross-check."""
        record = runtime.requests.get(state.request_id)
        if state.qubit is not None:
            self.node.device.discard(state.qubit)
            self.node.qmm.free(state.correlator)
        if record is not None:
            record.expired += 1
            if notify_expired and state.early_delivery is not None:
                state.early_delivery.status = DeliveryStatus.EXPIRED
                self._notify_update(runtime, record, state.early_delivery)
        self.pairs_expired += 1

    def _discard_local_pair(self, correlator: tuple) -> None:
        qubit = self.node.qmm.get(correlator)
        if qubit is not None:
            self.node.device.discard(qubit)
            self.node.qmm.free(correlator)


class IntermediateRules:
    """Intermediate node rules (Algorithms 7–9)."""

    # ------------------------------------------------------------------
    # LINK rule (Alg 7)
    # ------------------------------------------------------------------

    def _intermediate_link_rule(self, runtime, delivery: LinkPairDelivery,
                                from_upstream: bool) -> None:
        direction_state = runtime.upstream if from_upstream else runtime.downstream
        self._emit("LINK_PAIR", correlator=delivery.entanglement_id,
                   side="up" if from_upstream else "down",
                   circuit=runtime.entry.circuit_id)
        pair = PairInfo(
            correlator=delivery.entanglement_id,
            qubit=delivery.qubit,
            bell_index=delivery.bell_index,
            goodness=delivery.goodness,
            t_create=delivery.t_create,
        )
        if runtime.entry.cutoff is not None:
            pair.timer = Timer(self.sim, self._cutoff_rule, runtime,
                               direction_state, pair)
            pair.timer.start(runtime.entry.cutoff)
        direction_state.available.append(pair)
        if not self.node.params.parallel_links:
            other = runtime.downstream if from_upstream else runtime.upstream
            if not other.available:
                # Near-term hardware: park the pair in carbon storage so the
                # communication qubit frees up for the other link (Sec 5.3).
                self._move_pair_to_storage(pair)
        self._try_swaps(runtime)
        self._update_link_priorities(runtime)

    def _try_swaps(self, runtime) -> None:
        """Swap as soon as pairs are available on both links — without any
        further classical communication (Sec 4.1)."""
        while runtime.upstream.available and runtime.downstream.available:
            if self.blocking_tracking:
                # Ablation mode: refuse to swap until the tracking message
                # for the upstream pair has arrived (hop-by-hop style).
                head_corr = runtime.upstream.available[0].correlator
                if head_corr not in runtime.upstream.pending_tracks:
                    return
            up = runtime.upstream.pop_oldest()
            down = runtime.downstream.pop_oldest()
            up.cancel_timer()
            down.cancel_timer()
            self.node.arbiter.acquire(
                partial(self._perform_swap, runtime, up, down))

    def _perform_swap(self, runtime, up: PairInfo, down: PairInfo) -> None:
        outcome, duration = self.node.device.bell_state_measurement(
            up.qubit, down.qubit)
        self.swaps_performed += 1
        self._emit("SWAP", up=up.correlator, down=down.correlator,
                   outcome=outcome, circuit=runtime.entry.circuit_id)
        self.call_in(duration, self._complete_swap, runtime, up, down, outcome)

    def _complete_swap(self, runtime, up: PairInfo, down: PairInfo,
                       outcome: int) -> None:
        self.node.arbiter.release()
        # The two local qubits were measured out: their slots free now.
        self.node.qmm.free(up.correlator)
        self.node.qmm.free(down.correlator)

        # Downstream-travelling TRACKs reference the upstream pair.
        record_up = SwapRecord(continuation_correlator=down.correlator,
                               frame_delta=int(down.bell_index) ^ outcome)
        pending = runtime.upstream.take_pending_track(up.correlator)
        if pending is not None:
            self._relay_track(runtime, pending, record_up)
        else:
            runtime.upstream.qubit_records[up.correlator] = record_up

        # Upstream-travelling TRACKs reference the downstream pair.
        record_down = SwapRecord(continuation_correlator=up.correlator,
                                 frame_delta=int(up.bell_index) ^ outcome)
        pending = runtime.downstream.take_pending_track(down.correlator)
        if pending is not None:
            self._relay_track(runtime, pending, record_down)
        else:
            runtime.downstream.qubit_records[down.correlator] = record_down

        self._try_swaps(runtime)
        self._update_link_priorities(runtime)

    # ------------------------------------------------------------------
    # TRACK rule (Alg 8)
    # ------------------------------------------------------------------

    def _intermediate_track_rule(self, runtime, track: Track) -> None:
        direction_state = (runtime.upstream if track.direction == Direction.DOWNSTREAM
                           else runtime.downstream)
        correlator = track.link_correlator
        record = direction_state.qubit_records.pop(correlator, None)
        if record is not None:
            self._relay_track(runtime, track, record)
            return
        if correlator in direction_state.expire_records:
            direction_state.expire_records.discard(correlator)
            self._send_expire(runtime, track)
            return
        # Swap not performed yet (pair still waiting or swap in flight):
        # park the TRACK until the swap completes or the qubit expires.
        direction_state.pending_tracks[correlator] = track
        if self.blocking_tracking:
            self._try_swaps(runtime)

    def _relay_track(self, runtime, track: Track, record: SwapRecord) -> None:
        track.link_correlator = record.continuation_correlator
        track.outcome_state = combine(track.outcome_state, record.frame_delta)
        self.tracks_relayed += 1
        self._send_circuit_message(runtime, track.direction, track)

    def _send_expire(self, runtime, track: Track) -> None:
        """Bounce an EXPIRE back to the TRACK's origin end-node."""
        expire = Expire(
            circuit_id=runtime.entry.circuit_id,
            direction=track.direction.reverse,
            origin_correlator=track.origin_correlator,
        )
        self.expires_sent += 1
        self._send_circuit_message(runtime, expire.direction, expire)

    # ------------------------------------------------------------------
    # Expiry rule (Alg 9)
    # ------------------------------------------------------------------

    def _cutoff_rule(self, runtime, direction_state, pair: PairInfo) -> None:
        removed = direction_state.remove(pair.correlator)
        if removed is None:
            return  # already committed to a swap
        self.node.device.discard(pair.qubit)
        self.node.qmm.free(pair.correlator)
        self.pairs_discarded += 1
        self._emit("CUTOFF_DISCARD", correlator=pair.correlator,
                   circuit=runtime.entry.circuit_id)
        pending = direction_state.take_pending_track(pair.correlator)
        if pending is not None:
            self._send_expire(runtime, pending)
        else:
            direction_state.expire_records.add(pair.correlator)
        self._update_link_priorities(runtime)

    # ------------------------------------------------------------------
    # Coordinated link scheduling (the Sec 5.1 "improved scheduling" fix)
    # ------------------------------------------------------------------

    def _update_link_priorities(self, runtime) -> None:
        """Tell each adjacent link whether this circuit should be served
        preferentially: boost a link exactly when the *other* link already
        holds an unmatched pair for the circuit (a pair produced now can be
        swapped immediately).  Disabled by default — the paper's evaluation
        runs the plain independent-links scheduler."""
        if not self.coordinated_scheduling:
            return
        entry = runtime.entry
        has_upstream = bool(runtime.upstream.available)
        has_downstream = bool(runtime.downstream.available)
        if entry.downstream_link is not None:
            self.node.links[entry.downstream_link].set_priority(
                entry.downstream_link_label, self.node.name,
                boosted=has_upstream and not has_downstream)
        if entry.upstream_link is not None:
            self.node.links[entry.upstream_link].set_priority(
                entry.upstream_link_label, self.node.name,
                boosted=has_downstream and not has_upstream)

    # ------------------------------------------------------------------
    # Near-term storage management
    # ------------------------------------------------------------------

    def _move_pair_to_storage(self, pair: PairInfo) -> None:
        storage_slot = self.node.qmm.try_acquire_storage()
        if storage_slot is None:
            return  # no carbon free: the pair stays on the comm qubit
        duration = self.node.device.move_to_storage(pair.qubit)
        self.node.qmm.rebind_slot(pair.qubit, storage_slot)
        # The device is busy for the move's duration.
        self.node.arbiter.acquire(partial(self._hold_device, duration))

    def _hold_device(self, duration: float) -> None:
        """Occupy the arbitrated device for ``duration`` ns, then release."""
        self.call_in(duration, self.node.arbiter.release)
