"""Policing and shaping of incoming requests (Sec 3.4 / 4.1).

When circuits are used with resource reservation they carry a maximum
end-to-end rate (EER).  The head-end node:

* computes each request's **minimum EER** (``UserRequest.minimum_eer``),
* **polices**: rejects requests whose minimum EER can never fit,
* **shapes**: queues requests that fit later, starting them as active
  requests complete and bandwidth frees up.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .requests import UserRequest


class PolicerDecision:
    """The three admission outcomes of Sec 4.1's policing and shaping."""

    ACCEPT = "accept"
    QUEUE = "queue"
    REJECT = "reject"


class Policer:
    """EER accounting for one circuit's head-end."""

    def __init__(self, max_eer: float):
        if max_eer <= 0:
            raise ValueError("max EER must be positive")
        self.max_eer = max_eer
        self._active: dict[str, float] = {}
        self._queue: deque[UserRequest] = deque()
        # Admission statistics (the traffic telemetry reads these).
        self.accepted_count = 0
        self.queued_count = 0
        self.rejected_count = 0
        #: Admitted requests later aborted (circuit teardown or failure) —
        #: distinguishes RECOVERED/LOST accounting from plain rejections.
        self.aborted_count = 0

    @property
    def allocated_eer(self) -> float:
        """EER currently reserved by active requests (pairs/s)."""
        return sum(self._active.values())

    @property
    def available_eer(self) -> float:
        """EER still available for new requests (pairs/s)."""
        return self.max_eer - self.allocated_eer

    @property
    def queued(self) -> int:
        """Number of requests currently shaped (waiting for bandwidth)."""
        return len(self._queue)

    def admit(self, request: UserRequest) -> str:
        """Decide a new request's fate: ACCEPT, QUEUE or REJECT."""
        needed = request.minimum_eer()
        if needed > self.max_eer:
            # Even an empty circuit cannot satisfy it: police.
            self.rejected_count += 1
            return PolicerDecision.REJECT
        if needed <= self.available_eer and not self._queue:
            self._activate(request)
            self.accepted_count += 1
            return PolicerDecision.ACCEPT
        # Fits eventually: shape.  Deadline feasibility is re-checked when
        # the request reaches the head of the queue.
        self._queue.append(request)
        self.queued_count += 1
        return PolicerDecision.QUEUE

    def release(self, request_id: str) -> None:
        """A request finished: return its EER share."""
        self._active.pop(request_id, None)

    def next_startable(self) -> Optional[UserRequest]:
        """Pop the next queued request that now fits, if any."""
        if not self._queue:
            return None
        head = self._queue[0]
        if head.minimum_eer() <= self.available_eer:
            self._queue.popleft()
            self._activate(head)
            return head
        return None

    def drop_queued(self, request_id: str) -> bool:
        """Remove a queued request (deadline passed while shaped)."""
        for request in list(self._queue):
            if request.request_id == request_id:
                self._queue.remove(request)
                return True
        return False

    def abort(self, request_id: str) -> None:
        """Account for an admitted request killed by circuit teardown.

        Frees the request's EER share (or queue slot) and bumps
        ``aborted_count`` so the admission telemetry can tell aborted
        sessions apart from policed (rejected) ones.
        """
        if request_id in self._active:
            self._active.pop(request_id)
        else:
            self.drop_queued(request_id)
        self.aborted_count += 1

    def _activate(self, request: UserRequest) -> None:
        self._active[request.request_id] = request.minimum_eer()
