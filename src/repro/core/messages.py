"""QNP control messages (Appendix C.2).

Two levels of granularity: request level (FORWARD, COMPLETE) and pair level
(TRACK, EXPIRE).  All messages carry the opaque circuit ID and travel
hop-by-hop along the virtual circuit over the classical channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..quantum.bell import BellIndex
from .requests import RequestType


class Direction(Enum):
    """Travel direction along the circuit."""

    DOWNSTREAM = "downstream"   # head-end → tail-end
    UPSTREAM = "upstream"       # tail-end → head-end

    @property
    def reverse(self) -> "Direction":
        return Direction.UPSTREAM if self is Direction.DOWNSTREAM else Direction.DOWNSTREAM


@dataclass
class Forward:
    """Propagates a new request from head-end to tail-end.

    Initiates/updates the link layer requests at every node and gives the
    tail-end its book-keeping data.
    """

    circuit_id: str
    request_id: str
    head_end_identifier: int
    tail_end_identifier: int
    request_type: RequestType
    measure_info: Optional[str]            # basis for MEASURE requests
    number_of_pairs: Optional[int]         # None for rate requests
    final_state: Optional[BellIndex]
    #: Total EER (pairs/s) the sum of all active requests now needs.
    rate: float
    #: True when every active request is rate-based: the nodes may then
    #: scale the link LPR down to the needed fraction (Sec 4.1).
    rate_based_only: bool = False
    #: Epoch bookkeeping: the epoch this request activates and its request
    #: membership (lets the tail-end mirror the head-end's epoch table).
    epoch: int = 0
    epoch_requests: tuple = field(default_factory=tuple)


@dataclass
class Complete:
    """Propagates a request's completion from head-end to tail-end."""

    circuit_id: str
    request_id: str
    head_end_identifier: int
    tail_end_identifier: int
    rate: float
    rate_based_only: bool = False
    epoch: int = 0
    epoch_requests: tuple = field(default_factory=tuple)


@dataclass
class Track:
    """The key data plane message: follows one chain of link-pairs along
    the circuit, collecting swap records lazily (Sec 4.1)."""

    circuit_id: str
    direction: Direction
    request_id: str
    head_end_identifier: int
    tail_end_identifier: int
    #: Correlator of the link-pair at the message's origin end-node
    #: (constant; used to address EXPIRE notifications).
    origin_correlator: tuple
    #: Correlator of the link-pair continuing the chain — rewritten at
    #: every swap the message passes.
    link_correlator: tuple
    #: Running Bell-frame estimate of the end-to-end pair.
    outcome_state: BellIndex
    #: Epoch to activate after this pair is delivered (set by head-end;
    #: None on tail-end-originated TRACKs).
    epoch: Optional[int] = None


@dataclass
class Expire:
    """Tells an end-node that the chain its TRACK followed has broken.

    End-nodes never run cutoff timers (that would create half-delivered
    pairs); they discard only on receipt of this message (Appendix C.2).
    """

    circuit_id: str
    direction: Direction
    origin_correlator: tuple
