"""User-facing request API of the quantum network layer (Sec 3.2).

Applications ask for entangled pairs with a fidelity threshold and a time
class of service:

* *measure directly*: ``N`` pairs by deadline ``T``, or a rate ``R``;
* *create and keep*: ``N`` pairs by ``T`` with the last at most ``Δt``
  after the first.

``request_type`` selects when the pair is consumed (Appendix C.2):

* ``KEEP`` — delivered once creation is confirmed by tracking,
* ``EARLY`` — delivered as soon as the local qubit exists; the application
  handles failure notifications and waits for tracking info itself,
* ``MEASURE`` — the QNP measures immediately and withholds the outcome
  until tracking confirms the pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..netsim.scheduler import SerialCounter
from ..quantum.bell import BellIndex

_request_ids = SerialCounter()


def _next_request_id() -> str:
    """Allocate the next globally unique ``req<N>`` identifier."""
    return f"req{next(_request_ids)}"


class RequestType(Enum):
    """When the pair is to be consumed (FORWARD.request_type)."""

    KEEP = "keep"
    EARLY = "early"
    MEASURE = "measure"


class DeliveryStatus(Enum):
    """Lifecycle of one delivered pair."""

    #: EARLY delivery: qubit handed over, tracking info still pending.
    PENDING = "pending"
    #: Tracking confirmed; Bell state information final.
    CONFIRMED = "confirmed"
    #: The chain broke (EXPIRE) or the demux cross-check failed.
    EXPIRED = "expired"


class RequestStatus(Enum):
    """Lifecycle of a whole request."""

    QUEUED = "queued"        # shaped: waiting for circuit bandwidth
    ACTIVE = "active"
    COMPLETED = "completed"
    REJECTED = "rejected"    # policed: minimum EER cannot be satisfied
    ABORTED = "aborted"


@dataclass
class UserRequest:
    """An application's request for end-to-end entangled pairs."""

    #: Number of pairs (None for pure rate requests).
    num_pairs: Optional[int] = None
    #: Requested rate R in pairs/s (measure-directly rate class).
    rate: Optional[float] = None
    #: Deadline T in ns from submission (None / 0 = no deadline).
    deadline: Optional[float] = None
    #: Create-and-keep window Δt in ns (last pair ≤ Δt after the first).
    delta_t: Optional[float] = None
    request_type: RequestType = RequestType.KEEP
    #: Measurement basis for MEASURE requests.
    measure_basis: str = "Z"
    #: If set, the head-end Pauli-corrects pairs into this Bell state
    #: (unavailable for EARLY requests).
    final_state: Optional[BellIndex] = None
    request_id: str = field(default_factory=_next_request_id)

    def __post_init__(self):
        if self.num_pairs is None and self.rate is None:
            raise ValueError("request needs a pair count or a rate")
        if self.num_pairs is not None and self.num_pairs <= 0:
            raise ValueError("num_pairs must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.final_state is not None and self.request_type == RequestType.EARLY:
            raise ValueError("EARLY requests cannot ask for a final state "
                             "(the correction frame is not yet known)")
        if self.delta_t is not None and self.delta_t <= 0:
            raise ValueError("delta_t must be positive")

    def minimum_eer(self) -> float:
        """Minimum end-to-end rate (pairs/s) this request needs (Sec 4.1).

        measure directly: N/T, or R, or 0 when no deadline;
        create and keep: N/Δt.
        """
        if self.delta_t is not None and self.num_pairs is not None:
            return self.num_pairs / (self.delta_t / 1e9)
        if self.rate is not None:
            return self.rate
        if self.deadline and self.num_pairs is not None:
            return self.num_pairs / (self.deadline / 1e9)
        return 0.0

    @property
    def is_rate_based(self) -> bool:
        """Rate-only requests let the QNP scale down the link LPR."""
        return self.num_pairs is None and self.rate is not None


@dataclass
class PairDelivery:
    """One end-to-end pair (or its measurement outcome) handed to a user."""

    request_id: str
    sequence: int
    status: DeliveryStatus
    #: The local qubit handle (KEEP/EARLY; None for MEASURE).
    qubit: Optional[object]
    #: Measurement outcome bit (MEASURE only).
    measurement: Optional[int]
    #: The Bell state of the delivered pair (None while PENDING).
    bell_state: Optional[BellIndex]
    #: Entangled pair identifier — the end-to-end pair identity (Sec 3.2),
    #: realised as the origin end-node's link-pair correlator.
    pair_id: tuple
    t_created: float
    t_delivered: float
    #: The circuit's worst-case fidelity estimate from the routing budget
    #: (the protocol cannot measure actual fidelity — Sec 4.1).
    estimated_fidelity: float = 0.0


class RequestHandle:
    """Caller-side view of a submitted request."""

    def __init__(self, request: UserRequest, estimated_fidelity: float = 0.0):
        self.request = request
        self.status = RequestStatus.QUEUED
        self.delivered: list[PairDelivery] = []
        self.expired_count = 0
        self.t_submitted: float = 0.0
        self.t_started: Optional[float] = None
        self.t_completed: Optional[float] = None
        self.estimated_fidelity = estimated_fidelity
        self._listeners: list = []

    @property
    def request_id(self) -> str:
        return self.request.request_id

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-completion latency in ns (None until complete)."""
        if self.t_completed is None:
            return None
        return self.t_completed - self.t_submitted

    def on_delivery(self, callback) -> None:
        """Register a callback invoked with each :class:`PairDelivery`."""
        self._listeners.append(callback)

    def _notify(self, delivery: PairDelivery) -> None:
        self.delivered.append(delivery)
        for listener in list(self._listeners):
            listener(delivery)
