"""NV-centre device model.

The device owns the node's qubits and performs the *physical* operations the
protocol stack requests: Bell-state measurements for entanglement swaps,
Pauli corrections, single-qubit measurements, and (in the near-term model)
moving a freshly generated pair from the communication qubit into carbon
storage.  Every operation takes the durations of Table 1 and applies the
noise of Table 1 through the density-matrix engine.

The near-term peculiarities of Sec 5.3 / Appendix B are modelled:

* a single communication qubit means only one link can run entanglement
  generation at a time (arbitrated by the network layer's task scheduler),
* each entanglement attempt dephases co-located carbon storage qubits
  (nuclear spin dephasing, Kalb et al. [44]) — charged analytically per
  attempt batch.
"""

from __future__ import annotations

from typing import Optional

from ..netsim.entity import Entity
from ..netsim.scheduler import Simulator
from ..quantum.operations import (
    NoisyOpParams,
    bell_state_measurement,
    measure_qubit,
    pauli_correct,
)
from ..quantum.qubit import Qubit
from .memory import apply_memory_noise, stamp
from .parameters import HardwareParams


class NVDevice(Entity):
    """The quantum hardware of one node."""

    def __init__(self, sim: Simulator, params: HardwareParams, name: str = ""):
        super().__init__(sim, name or "nv-device")
        self.params = params
        self.ops = NoisyOpParams(
            two_qubit_gate_fidelity=params.gates.two_qubit_gate_fidelity,
            single_qubit_gate_fidelity=params.gates.electron_single_qubit_fidelity,
            readout_error0=params.gates.readout_error0,
            readout_error1=params.gates.readout_error1,
        )
        #: Storage qubits currently holding halves of pairs (near-term model);
        #: tracked so entanglement attempts can dephase them.
        self._stored: list[Qubit] = []
        # Hot-path constants (attribute chains cost on every generation round).
        self._nuclear_q = params.nuclear_dephasing_per_attempt
        self._electron_t1 = params.electron_t1
        self._electron_t2 = params.electron_t2

    # ------------------------------------------------------------------
    # Qubit lifecycle
    # ------------------------------------------------------------------

    def adopt_comm_qubit(self, qubit: Qubit) -> None:
        """Register a freshly generated communication qubit with the device."""
        stamp(qubit, self.sim._now, self._electron_t1, self._electron_t2)

    def move_to_storage(self, qubit: Qubit) -> float:
        """Move a qubit from the communication spin into carbon storage.

        Models the E-C two-qubit gate plus carbon initialisation: applies
        two-qubit-gate depolarizing noise and carbon init infidelity as
        extra dephasing, re-stamps the qubit with carbon lifetimes, and
        returns the operation's duration (the caller accounts for time).
        """
        apply_memory_noise(qubit, self.now)
        if qubit.state is None:
            raise ValueError("cannot move a freed qubit to storage")
        gates = self.params.gates
        # Imperfect move: treat the E-C gate as a dephasing-equivalent error
        # on the moved qubit (exact two-qubit modelling would need the
        # electron's post-move state, which is immediately reset).
        error = (1.0 - gates.two_qubit_gate_fidelity) + (1.0 - gates.carbon_init_fidelity)
        if error > 0:
            qubit.state.apply_dephasing(min(error, 0.5), qubit)
        stamp(qubit, self.now, self.params.carbon_t1, self.params.carbon_t2)
        self._stored.append(qubit)
        return gates.two_qubit_gate_duration + gates.carbon_init_duration

    def release_storage(self, qubit: Qubit) -> None:
        """Forget a storage qubit (it was consumed or discarded)."""
        if qubit in self._stored:
            self._stored.remove(qubit)

    # ------------------------------------------------------------------
    # Physical operations
    # ------------------------------------------------------------------

    def bell_state_measurement(self, qubit_a: Qubit, qubit_b: Qubit) -> tuple[int, float]:
        """Noisy BSM on two co-located qubits.

        Returns ``(outcome_index, duration_ns)``.  Memory noise is brought
        up to date first.
        """
        apply_memory_noise(qubit_a, self.now)
        apply_memory_noise(qubit_b, self.now)
        self.release_storage(qubit_a)
        self.release_storage(qubit_b)
        outcome = bell_state_measurement(qubit_a, qubit_b, self.sim.rng, self.ops)
        return outcome, self.params.gates.bsm_duration

    def measure(self, qubit: Qubit, basis: str = "Z") -> tuple[int, float]:
        """Noisy single-qubit measurement; returns (bit, duration)."""
        apply_memory_noise(qubit, self.now)
        self.release_storage(qubit)
        bit = measure_qubit(qubit, self.sim.rng, basis, self.ops)
        return bit, self.params.gates.electron_readout_duration

    def pauli_correct(self, qubit: Qubit, frame_index: int) -> float:
        """Apply a Pauli frame correction; returns the duration."""
        apply_memory_noise(qubit, self.now)
        pauli_correct(qubit, frame_index, self.ops)
        return self.params.gates.electron_single_qubit_duration

    def discard(self, qubit: Qubit) -> None:
        """Trace a qubit out (cutoff expiry or demux cross-check failure)."""
        self.release_storage(qubit)
        if qubit.state is not None:
            apply_memory_noise(qubit, self.now)
            qubit.state.remove(qubit)

    # ------------------------------------------------------------------
    # Near-term storage dephasing
    # ------------------------------------------------------------------

    def charge_attempt_noise(self, attempts: int,
                             exclude: Optional[Qubit] = None) -> None:
        """Dephase stored qubits for a batch of entanglement attempts.

        Every optical attempt resets the electron spin, which dephases the
        nuclear-spin storage qubits with a small per-attempt probability.
        The aggregate phase-flip probability over ``attempts`` attempts with
        per-attempt probability q is (1 − (1 − 2q)^attempts)/2.
        """
        q = self._nuclear_q
        if not self._stored or q <= 0 or attempts <= 0:
            return
        aggregate = (1.0 - (1.0 - 2.0 * q) ** attempts) / 2.0
        for qubit in list(self._stored):
            if qubit is exclude or qubit.state is None:
                continue
            apply_memory_noise(qubit, self.now)
            qubit.state.apply_dephasing(aggregate, qubit)

    @property
    def stored_count(self) -> int:
        return len(self._stored)
