"""Hardware parameter sets — Tables 1 and 2 of the paper.

Two presets are provided:

* :data:`SIMULATION` — the optimistic configuration used for all experiments
  except Fig 11 ("parameters that are slightly better than currently
  achievable ... chosen to produce higher fidelities but retain rates
  comparable to current hardware").
* :data:`NEAR_TERM` — the near-future configuration of Fig 11, based on the
  published NV-centre experiments the paper cites.

The exact table values are reproduced; the test-suite asserts them against
the paper so any drift is caught.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..netsim.units import US, NS, S, MINUTE


@dataclass(frozen=True)
class GateParams:
    """Quantum gate parameters (Table 1). Durations in ns."""

    electron_single_qubit_fidelity: float = 1.0
    electron_single_qubit_duration: float = 5 * NS
    two_qubit_gate_fidelity: float = 0.998
    two_qubit_gate_duration: float = 500 * US
    carbon_rot_z_fidelity: float = 1.0
    carbon_rot_z_duration: float = 20 * US
    electron_init_fidelity: float = 0.99
    electron_init_duration: float = 2 * US
    carbon_init_fidelity: float = 0.95
    carbon_init_duration: float = 300 * US
    electron_readout_fidelity0: float = 0.998
    electron_readout_fidelity1: float = 0.998
    electron_readout_duration: float = 3.7 * US

    @property
    def readout_error0(self) -> float:
        """Probability of misreading |0⟩ as 1."""
        return 1.0 - self.electron_readout_fidelity0

    @property
    def readout_error1(self) -> float:
        """Probability of misreading |1⟩ as 0."""
        return 1.0 - self.electron_readout_fidelity1

    @property
    def bsm_duration(self) -> float:
        """Duration of a gate-based Bell-state measurement.

        A BSM on this platform is a two-qubit gate followed by two
        (sequential) electron readouts.
        """
        return self.two_qubit_gate_duration + 2 * self.electron_readout_duration


@dataclass(frozen=True)
class HardwareParams:
    """Full node + optics parameter set (Tables 1 and 2)."""

    name: str = "simulation"
    gates: GateParams = GateParams()

    # --- memory lifetimes (Table 2), ns ---
    electron_t1: float = 3600 * S          # ">1 h"
    electron_t2: float = 60 * S
    carbon_t1: float = 6 * MINUTE          # "> 6 m" (near-term only)
    carbon_t2: float = 60 * S

    # --- photonics (Table 2) ---
    #: Nuclear-spin precession frequency (rad/ns) — drives dephasing of
    #: storage qubits during entanglement attempts (near-term model).
    delta_omega: float = 0.0
    #: NV excited-state decay time constant τ_d (ns).
    tau_d: float = 82.0
    #: Detection window τ_w (ns).
    tau_w: float = 25.0
    #: Photon emission time constant τ_e (ns).
    tau_e: float = 6.0
    #: Optical phase uncertainty Δφ (radians).
    delta_phi: float = math.radians(2.0)
    p_double_excitation: float = 0.0
    p_zero_phonon: float = 0.75
    collection_efficiency: float = 20.0e-3
    dark_count_rate: float = 20.0 / S      # per ns
    p_detection: float = 0.8
    visibility: float = 1.0

    # --- modelling knobs (documented in DESIGN.md) ---
    #: Fixed sequence overhead added to every entanglement attempt cycle
    #: (phase stabilisation, charge resonance checks).  Calibrated so a
    #: fidelity-0.95 pair over 2 m takes ~10 ms on average (paper Fig 5).
    attempt_overhead: float = 8.5 * US
    #: Probability that one entanglement attempt phase-flips a co-located
    #: storage (carbon) qubit — the nuclear dephasing mechanism of
    #: Kalb et al. [44]; zero in the simplified simulation model.
    nuclear_dephasing_per_attempt: float = 0.0
    #: Number of communication qubits available per attached link
    #: (the paper's simplification: "two per link (not shared between links)").
    comm_qubits_per_link: int = 2
    #: Number of storage (carbon) qubits; only the near-term model uses them.
    storage_qubits: int = 0
    #: Whether the device can run entanglement generation on more than one
    #: link at a time (False for real NV hardware, True in the paper's
    #: simplified simulation model).
    parallel_links: bool = True

    def with_t2(self, electron_t2: float) -> "HardwareParams":
        """Copy with a different electron dephasing time (Fig 10 sweeps)."""
        return replace(self, electron_t2=electron_t2)

    def dark_count_probability(self) -> float:
        """Probability of a dark count within one detection window."""
        return 1.0 - math.exp(-self.dark_count_rate * self.tau_w)


#: Optimistic configuration (Tables 1 & 2, "Simulation" column).
SIMULATION = HardwareParams()

#: Near-term configuration (Tables 1 & 2, "Near-term (Fig 11)" column).
NEAR_TERM = HardwareParams(
    name="near-term",
    gates=GateParams(
        two_qubit_gate_fidelity=0.992,
        electron_readout_fidelity0=0.95,
        electron_readout_fidelity1=0.995,
    ),
    electron_t2=1.46 * S,
    delta_omega=2 * math.pi * 377e3 / S,   # 2π × 377 kHz, in rad/ns
    tau_e=6.48,
    delta_phi=math.radians(10.6),
    p_double_excitation=0.04,
    p_zero_phonon=0.46,
    collection_efficiency=4.38e-3,
    visibility=0.9,
    nuclear_dephasing_per_attempt=2.5e-5,
    comm_qubits_per_link=1,
    storage_qubits=4,
    parallel_links=False,
)
