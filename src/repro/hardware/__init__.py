"""NV-centre hardware and fibre models (Appendix B / Tables 1–2)."""

from .fibre import FibreSegment, HeraldedConnection
from .heralded import (
    MAX_ALPHA,
    MIN_ALPHA,
    Herald,
    LinkSample,
    MidpointHeraldModel,
    MidpointStation,
    Photon,
    SingleClickModel,
)
from .memory import apply_memory_noise, apply_pair_noise, stamp
from .nv import NVDevice
from .parameters import GateParams, HardwareParams, NEAR_TERM, SIMULATION

__all__ = [
    "GateParams",
    "HardwareParams",
    "SIMULATION",
    "NEAR_TERM",
    "FibreSegment",
    "HeraldedConnection",
    "SingleClickModel",
    "MidpointHeraldModel",
    "MidpointStation",
    "Photon",
    "Herald",
    "LinkSample",
    "MIN_ALPHA",
    "MAX_ALPHA",
    "NVDevice",
    "apply_memory_noise",
    "apply_pair_noise",
    "stamp",
]
