"""Optical fibre models (Appendix B).

Links in the lab scenario are 2 m of standard fibre at the NV wavelength
(5 dB/km); the near-term scenario converts photons to telecom wavelength and
spans 25 km at 0.5 dB/km.  A heralded connection places a midpoint station
between the two nodes: photons travel half the link each, the heralding
signal travels back over the other half.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.units import (
    LAB_WAVELENGTH_ATTENUATION_DB_PER_KM,
    TELECOM_ATTENUATION_DB_PER_KM,
    fibre_delay,
    fibre_transmissivity,
)


@dataclass(frozen=True)
class FibreSegment:
    """A stretch of fibre with length and attenuation."""

    length_km: float
    attenuation_db_per_km: float = LAB_WAVELENGTH_ATTENUATION_DB_PER_KM

    def __post_init__(self):
        if self.length_km < 0:
            raise ValueError("fibre length must be non-negative")
        if self.attenuation_db_per_km < 0:
            raise ValueError("attenuation must be non-negative")

    @property
    def transmissivity(self) -> float:
        """Photon survival probability end to end."""
        return fibre_transmissivity(self.length_km, self.attenuation_db_per_km)

    @property
    def delay(self) -> float:
        """One-way propagation delay in ns."""
        return fibre_delay(self.length_km)


@dataclass(frozen=True)
class HeraldedConnection:
    """Two fibre segments meeting at a midpoint heralding station."""

    segment_a: FibreSegment
    segment_b: FibreSegment

    @classmethod
    def symmetric(cls, total_length_km: float,
                  attenuation_db_per_km: float = LAB_WAVELENGTH_ATTENUATION_DB_PER_KM
                  ) -> "HeraldedConnection":
        """Midpoint exactly halfway along a link of the given total length."""
        half = FibreSegment(total_length_km / 2.0, attenuation_db_per_km)
        return cls(half, half)

    @property
    def total_length_km(self) -> float:
        return self.segment_a.length_km + self.segment_b.length_km

    @property
    def herald_round_trip(self) -> float:
        """Time from photon emission to the herald arriving back at the
        farther node: photons to the midpoint plus the heralding message
        back over the longer segment."""
        to_midpoint = max(self.segment_a.delay, self.segment_b.delay)
        return 2.0 * to_midpoint

    def lab(total_length_km: float) -> "HeraldedConnection":  # type: ignore[misc]
        """Lab-wavelength symmetric connection (5 dB/km)."""
        return HeraldedConnection.symmetric(
            total_length_km, LAB_WAVELENGTH_ATTENUATION_DB_PER_KM)

    def telecom(total_length_km: float) -> "HeraldedConnection":  # type: ignore[misc]
        """Telecom-converted symmetric connection (0.5 dB/km)."""
        return HeraldedConnection.symmetric(
            total_length_km, TELECOM_ATTENUATION_DB_PER_KM)

    lab = staticmethod(lab)
    telecom = staticmethod(telecom)
