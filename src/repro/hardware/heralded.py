"""Single-click heralded entanglement generation model.

This is the physical mechanism under the link layer (Sec 2.2 / 3.5): both
nodes entangle their communication qubit with an emitted photon, the photons
interfere at a midpoint station, and a single detector click heralds an
entangled pair in Ψ+ or Ψ− (which one is known from which detector fired).

The bright-state population ``alpha`` is the fidelity-vs-rate knob the link
layer exposes upward (Sec 2.3 P1):

* success probability per attempt  p ≈ 2 α (1−α) η  with
  η = p_zero_phonon × collection × detection × fibre transmissivity,
* produced fidelity  F ≈ (1 − α − penalties) · (1 + coherence)/2, where the
  coherence factor folds in interferometric visibility and optical phase
  noise Δφ, and the penalties cover double excitation and dark counts.

The model is analytic, so the link layer can (i) pick the largest α meeting
a requested minimum fidelity, (ii) fast-forward through failed attempts by
sampling the geometric distribution instead of simulating every attempt —
the key scaling trick documented in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Optional

import numpy as np

from ..netsim.entity import Entity
from ..netsim.ports import Component
from ..netsim.scheduler import Simulator
from ..quantum.bell import BellIndex
from .fibre import HeraldedConnection
from .parameters import HardwareParams

#: Smallest α the hardware can be asked to run at — below this, rates are
#: pointlessly low and the analytics degenerate.
MIN_ALPHA = 1e-3
#: Largest α: beyond one half the "bright" component dominates.
MAX_ALPHA = 0.5

#: Shared α scan grid for :meth:`SingleClickModel.alpha_for_fidelity` —
#: log-spaced over the legal range, built once per process.
_ALPHA_GRID = np.geomspace(MIN_ALPHA, MAX_ALPHA, 400)
_ALPHA_GRID.setflags(write=False)


@dataclass(frozen=True)
class LinkSample:
    """Outcome of one heralded generation round (post fast-forward)."""

    attempts: int
    duration: float
    dm: np.ndarray
    bell_index: BellIndex


class SingleClickModel:
    """Analytic single-click entanglement model for one physical link."""

    def __init__(self, params: HardwareParams, connection: HeraldedConnection):
        self.params = params
        self.connection = connection
        # Hot-path caches.  Both ``params`` and ``connection`` are frozen
        # dataclasses, so every derived quantity is a pure function of the
        # constructor arguments; the link layer asks for the same handful of
        # α values millions of times per run.
        self._success_cache: dict[float, float] = {}
        self._fidelity_cache: dict[float, float] = {}
        self._log_miss_cache: dict[float, float] = {}
        self._alpha_cache: dict[float, float] = {}
        self._dm_cache: dict[tuple, np.ndarray] = {}
        self._weights_cache: dict[tuple, np.ndarray] = {}

    @property
    def cache_key(self) -> tuple:
        """Value identity of the physical model for cross-instance memos.

        Two models with equal keys produce identical statistics, so
        consumers (e.g. the routing budget solver) may share solves
        across instances.  Subclasses fold in any extra knobs that
        change the physics — see :class:`MidpointHeraldModel`.
        """
        return (type(self).__name__, self.params, self.connection)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    @cached_property
    def cycle_time(self) -> float:
        """Duration of one entanglement attempt in ns.

        Electron spin initialisation, photon emission, flight to the
        midpoint, herald signal back, plus fixed sequence overhead.
        """
        gates = self.params.gates
        return (gates.electron_init_duration
                + self.params.tau_e + self.params.tau_w
                + self.connection.herald_round_trip
                + self.params.attempt_overhead)

    # ------------------------------------------------------------------
    # Success statistics
    # ------------------------------------------------------------------

    @cached_property
    def detection_efficiency(self) -> float:
        """Photon detection probability from one node, fibre included.

        Uses the lossier segment (conservative for asymmetric midpoints).
        """
        fibre = min(self.connection.segment_a.transmissivity,
                    self.connection.segment_b.transmissivity)
        return (self.params.p_zero_phonon * self.params.collection_efficiency
                * self.params.p_detection * fibre)

    def dark_probability(self) -> float:
        """Probability of a dark count per detector and herald window.

        The overridable seam between the physical models: the analytic
        model integrates the dark-count rate over the detector's own
        window (τ_w); the time-windowed midpoint model
        (:class:`MidpointHeraldModel`) integrates it over its explicit
        coincidence window instead.
        """
        return self.params.dark_count_probability()

    def _produced_stats(self, alpha):
        """(success probability, garbage weight, produced fidelity).

        The single home of the single-click physics formulas; ``alpha`` may
        be a scalar or an array (the α-scan of :meth:`alpha_for_fidelity`
        evaluates the whole grid in one call).  Scalar callers go through
        the per-α caches below, so the numpy overhead is paid once per α.
        """
        alpha = np.asarray(alpha, dtype=float)
        eta = self.detection_efficiency
        dark = 2.0 * self.dark_probability()
        p = np.minimum(2.0 * alpha * (1.0 - alpha) * eta + dark, 1.0)
        dark_fraction = np.where(p > 0, dark / np.where(p > 0, p, 1.0), 0.0)
        garbage = np.minimum(
            alpha + self.params.p_double_excitation + dark_fraction, 1.0)
        fidelity = (1.0 - garbage) * (1.0 + self.coherence_factor()) / 2.0
        return p, garbage, fidelity

    def success_probability(self, alpha: float) -> float:
        """Probability that one attempt heralds a pair."""
        cached = self._success_cache.get(alpha)
        if cached is not None:
            return cached
        self._check_alpha(alpha)
        p = float(self._produced_stats(alpha)[0])
        self._success_cache[alpha] = p
        return p

    def log_miss_probability(self, alpha: float) -> float:
        """``log(1 − p_success)`` — the geometric-sampling constant.

        Owned here so the inverse-CDF attempt sampler has exactly one
        source (used by :meth:`sample_attempts` and cached per request by
        the link layer's inlined hot path).
        """
        log_miss = self._log_miss_cache.get(alpha)
        if log_miss is None:
            log_miss = math.log(1.0 - self.success_probability(alpha))
            self._log_miss_cache[alpha] = log_miss
        return log_miss

    def expected_pair_time(self, alpha: float) -> float:
        """Mean time to produce one pair, in ns."""
        return self.cycle_time / self.success_probability(alpha)

    def time_quantile(self, alpha: float, quantile: float) -> float:
        """Time by which a pair is produced with the given probability.

        Used for the paper's "shorter cutoff" (the time at which a link has
        0.85 probability of having generated a pair, Sec 5.1) and by the
        routing protocol's rate estimates.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        p = self.success_probability(alpha)
        attempts = math.ceil(math.log(1.0 - quantile) / math.log(1.0 - p))
        return attempts * self.cycle_time

    def sample_attempts(self, alpha: float, rng) -> int:
        """Sample the number of attempts until success (geometric)."""
        log_miss = self.log_miss_probability(alpha)
        # Inverse-CDF sampling of the geometric distribution.
        u = rng.random()
        return max(1, math.ceil(math.log(1.0 - u) / log_miss))

    # ------------------------------------------------------------------
    # Produced state
    # ------------------------------------------------------------------

    @cached_property
    def _coherence_factor(self) -> float:
        return self.params.visibility * math.exp(-self.params.delta_phi ** 2 / 2.0)

    def coherence_factor(self) -> float:
        """Off-diagonal contrast of the heralded state.

        Interferometric visibility times the Gaussian phase-noise envelope
        exp(−Δφ²/2).
        """
        return self._coherence_factor

    def garbage_weight(self, alpha: float) -> float:
        """Weight of the separable |11⟩-type admixture in the heralded state.

        Bright-state population α, double excitation, and false heralds from
        dark counts.
        """
        self._check_alpha(alpha)
        return float(self._produced_stats(alpha)[1])

    def fidelity(self, alpha: float) -> float:
        """Fidelity of the heralded pair to its reported Bell state."""
        cached = self._fidelity_cache.get(alpha)
        if cached is not None:
            return cached
        self._check_alpha(alpha)
        value = float(self._produced_stats(alpha)[2])
        self._fidelity_cache[alpha] = value
        return value

    def alpha_for_fidelity(self, min_fidelity: float) -> float:
        """Largest α whose produced fidelity still meets ``min_fidelity``.

        This is the link layer's QoS knob: higher α means faster pairs at
        lower fidelity.  Raises ``ValueError`` when the hardware cannot
        reach the requested fidelity at any α (policing input).
        """
        if not 0.0 < min_fidelity <= 1.0:
            raise ValueError("min_fidelity must be in (0, 1]")
        cached = self._alpha_cache.get(min_fidelity)
        if cached is not None:
            return cached
        # Fidelity is not monotone in α: dark counts poison the state at very
        # small α (their share of heralds grows as the signal shrinks), while
        # the bright-state admixture dominates at large α.  Scan a log-spaced
        # grid for the *largest* feasible α — largest means fastest pairs.
        grid, fidelities = self._fidelity_grid
        feasible = np.flatnonzero(fidelities >= min_fidelity)
        if feasible.size == 0:
            best = float(fidelities.max())
            raise ValueError(
                f"link cannot reach fidelity {min_fidelity:.3f}"
                f" (best achievable ≈ {best:.3f})")
        alpha = float(grid[feasible[-1]])
        # Refine upward within the last grid cell (fidelity is locally
        # decreasing there).
        step = alpha * 0.01
        while alpha + step <= MAX_ALPHA and self.fidelity(alpha + step) >= min_fidelity:
            alpha += step
        self._alpha_cache[min_fidelity] = alpha
        return alpha

    @cached_property
    def _fidelity_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """(α grid, produced fidelity) — the scan of :meth:`fidelity`
        evaluated in one vectorized sweep instead of 400 Python calls."""
        return _ALPHA_GRID, self._produced_stats(_ALPHA_GRID)[2]

    def produced_dm(self, alpha: float, bell_index: BellIndex) -> np.ndarray:
        """Density matrix of the heralded pair.

        Basis |00⟩,|01⟩,|10⟩,|11⟩.  The entangled component is Ψ± with
        reduced off-diagonal contrast; the garbage component is |11⟩ (both
        spins bright).

        Memoized per ``(alpha, bell_index)`` — the link layer produces
        thousands of identical states per run — and returned **read-only**;
        callers must copy before mutating.
        """
        key = (alpha, int(bell_index))
        cached = self._dm_cache.get(key)
        if cached is not None:
            return cached
        if bell_index not in (BellIndex.PSI_PLUS, BellIndex.PSI_MINUS):
            raise ValueError("single-click heralding produces Ψ+ or Ψ− only")
        sign = 1.0 if bell_index == BellIndex.PSI_PLUS else -1.0
        coherence = self.coherence_factor()
        w = self.garbage_weight(alpha)
        dm = np.zeros((4, 4), dtype=complex)
        dm[0b01, 0b01] = 0.5
        dm[0b10, 0b10] = 0.5
        dm[0b01, 0b10] = sign * 0.5 * coherence
        dm[0b10, 0b01] = sign * 0.5 * coherence
        dm = (1.0 - w) * dm
        dm[0b11, 0b11] += w
        dm.setflags(write=False)
        self._dm_cache[key] = dm
        return dm

    def produced_weights(self, alpha: float, bell_index: BellIndex) -> np.ndarray:
        """Bell-diagonal weights of the heralded pair (``"bell"`` formalism).

        The exact diagonal ⟨B_i|ρ|B_i⟩ of :meth:`produced_dm`: the Ψ±
        doublet splits according to the coherence factor and the |11⟩
        garbage contributes w/2 to each Φ state (its Φ+/Φ− coherence is
        dropped — the twirled approximation the Bell formalism documents).
        Memoized and read-only like :meth:`produced_dm`.
        """
        key = (alpha, int(bell_index))
        cached = self._weights_cache.get(key)
        if cached is not None:
            return cached
        if bell_index not in (BellIndex.PSI_PLUS, BellIndex.PSI_MINUS):
            raise ValueError("single-click heralding produces Ψ+ or Ψ− only")
        coherence = self.coherence_factor()
        w = self.garbage_weight(alpha)
        weights = np.empty(4)
        weights[int(bell_index)] = (1.0 - w) * (1.0 + coherence) / 2.0
        weights[int(bell_index) ^ 0b10] = (1.0 - w) * (1.0 - coherence) / 2.0
        weights[BellIndex.PHI_PLUS] = w / 2.0
        weights[BellIndex.PHI_MINUS] = w / 2.0
        weights.setflags(write=False)
        self._weights_cache[key] = weights
        return weights

    def sample(self, alpha: float, rng) -> LinkSample:
        """Fast-forward one generation round: attempts, duration and state."""
        attempts = self.sample_attempts(alpha, rng)
        index = BellIndex.PSI_PLUS if rng.random() < 0.5 else BellIndex.PSI_MINUS
        return LinkSample(
            attempts=attempts,
            duration=attempts * self.cycle_time,
            dm=self.produced_dm(alpha, index),
            bell_index=index,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _check_alpha(alpha: float) -> None:
        if not MIN_ALPHA <= alpha <= MAX_ALPHA:
            raise ValueError(f"alpha {alpha} outside [{MIN_ALPHA}, {MAX_ALPHA}]")


class MidpointHeraldModel(SingleClickModel):
    """Single-click model with an explicit midpoint coincidence window.

    The analytic base model assumes the midpoint detector integrates over
    the full detection window τ_w with ideal gating.  This variant models
    the station of :class:`MidpointStation` instead: the detector opens a
    **coincidence time window** of ``W`` ns when the first photon could
    arrive, so

    * only the fraction ``1 − exp(−W/τ_e)`` of the exponentially shaped
      photon wave-packet (emission constant τ_e) falls inside the window —
      folded into :attr:`detection_efficiency`;
    * dark counts integrate over ``W`` rather than τ_w —
      :meth:`dark_probability` becomes ``1 − exp(−rate·W)``.

    Everything downstream (α selection, geometric fast-forward, produced
    states) is inherited unchanged, so the link layer can swap the models
    per link (``--physical midpoint``).
    """

    def __init__(self, params: HardwareParams, connection: HeraldedConnection,
                 coincidence_window: Optional[float] = None):
        super().__init__(params, connection)
        if coincidence_window is None:
            coincidence_window = params.tau_w
        if coincidence_window <= 0:
            raise ValueError("coincidence window must be positive")
        #: Width of the midpoint coincidence window, ns.
        self.coincidence_window = coincidence_window

    @property
    def cache_key(self) -> tuple:
        """Adds the coincidence window to the base model's value identity."""
        return (type(self).__name__, self.params, self.connection,
                self.coincidence_window)

    @cached_property
    def window_acceptance(self) -> float:
        """Fraction of the photon wave-packet inside the window."""
        return 1.0 - math.exp(-self.coincidence_window / self.params.tau_e)

    @cached_property
    def detection_efficiency(self) -> float:
        """Base detection efficiency times the window acceptance."""
        base = SingleClickModel.detection_efficiency.func(self)
        return base * self.window_acceptance

    def dark_probability(self) -> float:
        """Dark-count probability integrated over the coincidence window."""
        return 1.0 - math.exp(
            -self.params.dark_count_rate * self.coincidence_window)


@dataclass(frozen=True)
class Photon:
    """One photon arriving at the midpoint station.

    ``detector`` records which of the station's two detectors the optics
    route it to (0 or 1) — on a lone click this determines the heralded
    Bell state (Ψ+ for detector 0, Ψ− for detector 1).
    """

    detector: int = 0


@dataclass(frozen=True)
class Herald:
    """Outcome of one coincidence window, announced to both endpoints."""

    success: bool
    bell_index: Optional[BellIndex]
    #: Number of detector clicks inside the window (1 on success).
    clicks: int


class MidpointStation(Entity, Component):
    """Event-level midpoint heralding station with a coincidence window.

    The component realisation of the single-click midpoint (Sec 2.2):
    two photon ports, ``a`` and ``b`` (protocol ``"photon"``), face the
    link endpoints.  The first :class:`Photon` to arrive opens a
    coincidence window of ``coincidence_window`` ns; when it closes,
    **exactly one** click heralds a pair (Ψ+ or Ψ− depending on which
    detector fired) and anything else — zero clicks or both photons
    detected — is rejected.  The verdict is broadcast as a
    :class:`Herald` out of every connected port.

    In full-network runs the link layer's analytic fast-forward skips the
    photon-level events; the builder still attaches a station per
    midpoint link so heralds are accounted on the same component
    (:meth:`record_herald`), and :class:`MidpointHeraldModel` carries the
    window's effect on the success statistics.
    """

    def __init__(self, sim: Simulator, name: str = "",
                 coincidence_window: float = 25.0):
        super().__init__(sim, name or "midpoint-station")
        if coincidence_window <= 0:
            raise ValueError("coincidence window must be positive")
        self.coincidence_window = coincidence_window
        self.add_port("a", "photon", handler=self._on_photon)
        self.add_port("b", "photon", handler=self._on_photon)
        self._window_clicks: Optional[list[Photon]] = None
        #: Counters: windows closed, successful heralds, rejections.
        self.windows = 0
        self.heralds = 0
        self.rejected = 0

    def _on_photon(self, photon: Photon) -> None:
        if self._window_clicks is None:
            # First arrival opens the window; the closing event is never
            # cancelled, so use the pooled no-handle path.
            self._window_clicks = [photon]
            self.sim.post(self.coincidence_window, self._close_window)
        else:
            self._window_clicks.append(photon)

    def _close_window(self) -> None:
        clicks = self._window_clicks or []
        self._window_clicks = None
        self.windows += 1
        if len(clicks) == 1:
            bell_index = (BellIndex.PSI_PLUS if clicks[0].detector == 0
                          else BellIndex.PSI_MINUS)
            self.heralds += 1
            herald = Herald(success=True, bell_index=bell_index, clicks=1)
        else:
            # Zero clicks (both photons lost) or a coincidence (both
            # photons detected — no which-path erasure, no entanglement).
            self.rejected += 1
            herald = Herald(success=False, bell_index=None,
                            clicks=len(clicks))
        self._broadcast(herald)

    def record_herald(self, bell_index: BellIndex) -> None:
        """Account one analytically fast-forwarded successful window.

        Called by the link layer when the geometric fast-forward delivers
        a pair: the failed windows it skipped are not replayed (they are
        exactly what the fast-forward elides), but the successful herald
        is announced over the ports like an event-level one.
        """
        self.windows += 1
        self.heralds += 1
        self._broadcast(Herald(success=True, bell_index=bell_index, clicks=1))

    def _broadcast(self, herald: Herald) -> None:
        for port_name in ("a", "b"):
            port = self.port(port_name)
            if port.connected:
                port.tx(herald)
