"""Lazy memory decoherence (loss mechanism P4 of Sec 2.3).

Rather than ticking noise on a clock, every qubit records the timestamp up
to which memory noise has been applied; callers invoke
:func:`apply_memory_noise` right before any operation, measurement or
delivery.  Because the T1/T2 channels compose in time this is exact, and it
keeps the event count independent of memory lifetimes.
"""

from __future__ import annotations

from ..quantum.qubit import Qubit


def stamp(qubit: Qubit, now: float, t1: float, t2: float) -> None:
    """Initialise a qubit's noise bookkeeping when it enters memory."""
    qubit.t1 = t1
    qubit.t2 = t2
    qubit.last_noise_time = now


def apply_memory_noise(qubit: Qubit, now: float) -> None:
    """Apply idle decoherence for the time elapsed since the last update."""
    if qubit.state is None:
        return
    elapsed = now - qubit.last_noise_time
    if elapsed < 0:
        raise ValueError(
            f"time went backwards for {qubit.name}: {qubit.last_noise_time} -> {now}")
    if elapsed == 0:
        return
    # Polymorphic over the state formalism: the exact engine builds the
    # (memoized) T1/T2 Kraus channel, the Bell-diagonal engine updates its
    # four weights analytically.
    qubit.state.apply_decoherence(elapsed, qubit.t1, qubit.t2, qubit)
    qubit.last_noise_time = now


def apply_pair_noise(qubit_a: Qubit, qubit_b: Qubit, now: float) -> None:
    """Bring both halves of a pair up to date (delivery-time convenience)."""
    apply_memory_noise(qubit_a, now)
    apply_memory_noise(qubit_b, now)
