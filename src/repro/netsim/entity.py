"""Base class for simulation entities.

An entity is any protocol machine or hardware model that lives inside the
simulation: it holds a reference to the :class:`~repro.netsim.scheduler.Simulator`
and gets convenience helpers for scheduling and randomness.
"""

from __future__ import annotations

from typing import Any, Callable

from .scheduler import EventHandle, Simulator


class Entity:
    """A named participant in the simulation."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name or self.__class__.__name__

    @property
    def now(self) -> float:
        """Current simulated time (ns)."""
        return self.sim.now

    def call_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        return self.sim.schedule(delay, callback, *args)

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        return self.sim.schedule_at(time, callback, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"
