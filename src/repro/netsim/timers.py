"""Cancellable and restartable timers built on the event queue.

The QNP uses one :class:`Timer` per stored qubit for the cutoff mechanism;
timers need to be cheap to arm, cancel and re-arm.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .scheduler import EventHandle, Simulator


class Timer:
    """A single-shot timer that can be cancelled or restarted.

    ``callback`` is invoked with ``*args`` when the timer expires.  Restarting
    an armed timer cancels the previous deadline.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., Any], *args: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._handle: Optional[EventHandle] = None
        self.deadline: Optional[float] = None

    @property
    def armed(self) -> bool:
        """Whether the timer has a pending deadline."""
        return self._handle is not None and self._handle.active

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` ns from now."""
        self.cancel()
        self.deadline = self._sim.now + delay
        self._handle = self._sim.schedule(delay, self._fire)

    def start_at(self, deadline: float) -> None:
        """Arm (or re-arm) the timer to fire at an absolute time."""
        self.cancel()
        self.deadline = deadline
        self._handle = self._sim.schedule_at(deadline, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self.deadline = None

    def remaining(self) -> Optional[float]:
        """Time left until expiry, or ``None`` when disarmed."""
        if not self.armed or self.deadline is None:
            return None
        return max(0.0, self.deadline - self._sim.now)

    def _fire(self) -> None:
        self._handle = None
        self.deadline = None
        self._callback(*self._args)


class PeriodicTimer:
    """Fires ``callback`` every ``period`` ns until stopped."""

    def __init__(self, sim: Simulator, period: float, callback: Callable[[], Any]):
        if period <= 0:
            raise ValueError("period must be positive")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Start the periodic schedule; the first tick is one period away."""
        if self._running:
            return
        self._running = True
        self._handle = self._sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        """Stop ticking."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._handle = self._sim.schedule(self.period, self._tick)
        self._callback()
