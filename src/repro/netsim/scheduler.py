"""Discrete-event simulation kernel.

This module provides the event loop that the whole repository runs on.  It is
a small, deterministic replacement for the NetSquid kernel the paper used:

* simulated time is a float in nanoseconds,
* events fire in (time, insertion-order) order, so two events scheduled for
  the same instant fire in the order they were scheduled (FIFO tie-break),
* events can be cancelled through the handle returned by ``schedule``.

Example::

    sim = Simulator(seed=42)
    sim.schedule(5 * MS, lambda: print("hello at", sim.now))
    sim.run()
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Optional


class EventHandle:
    """Handle to a scheduled event, usable to cancel it before it fires."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and self.callback is not None

    def _fire(self) -> None:
        callback, args = self.callback, self.args
        self.callback = None
        self.args = ()
        callback(*args)

    def __lt__(self, other: "EventHandle") -> bool:
        # Tuple-free comparison: the heap compares handles on every push and
        # pop, so avoiding two tuple allocations per comparison is measurable.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Simulator:
    """The discrete-event scheduler.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  Every source
        of randomness in the repository draws from ``Simulator.rng`` so a run
        is fully reproducible from its seed.
    """

    def __init__(self, seed: int = 0):
        self._queue: list[EventHandle] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._event_count = 0
        self.rng = random.Random(seed)
        self.seed = seed

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction (for diagnostics)."""
        return self._event_count

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value.  Events at
            exactly ``until`` still fire.  ``None`` runs until the queue
            drains.
        max_events:
            Safety valve: abort after this many events (raises
            ``RuntimeError``) — useful to catch accidental infinite loops in
            tests.
        """
        self._running = True
        fired = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                head = queue[0]
                if head.cancelled:
                    pop(queue)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                pop(queue)
                self._now = head.time
                self._event_count += 1
                fired += 1
                if max_events is not None and fired > max_events:
                    raise RuntimeError(f"exceeded max_events={max_events}")
                head._fire()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False

    def run_until_idle(self) -> None:
        """Run until no events remain."""
        self.run(until=None)

    def pending_events(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def reset_time_guard(self) -> None:  # pragma: no cover - debugging aid
        """Drop all pending events (used by a few torture tests)."""
        self._queue.clear()
