"""Discrete-event simulation kernel.

This module provides the event loop that the whole repository runs on.  It is
a small, deterministic replacement for the NetSquid kernel the paper used:

* simulated time is a float in nanoseconds,
* events fire in (time, insertion-order) order, so two events scheduled for
  the same instant fire in the order they were scheduled (FIFO tie-break),
* events can be cancelled through the handle returned by ``schedule``.

Two hot-path refinements keep the kernel out of the profile at scale:

* **O(1) pending count** — the simulator tracks a live cancelled-event
  count, so :meth:`Simulator.pending_events` is a subtraction instead of a
  queue scan (the builder's handshake and drain loops poll it per step);
* **cancelled-heap compaction** — cancelled handles used to linger in the
  heap until popped; the queue now compacts itself the moment cancelled
  entries exceed half of it, bounding both memory and per-push log cost;
* **handle pooling** — call sites that never cancel (generation rounds,
  classical message delivery) schedule through :meth:`Simulator.post_at`,
  which recycles :class:`EventHandle` objects from a free list.  Pooled
  handles are never exposed to callers, so recycling cannot invalidate a
  retained reference (timers and protocols that *do* cancel keep using
  ``schedule``/``schedule_at`` and own their handle).

Example::

    sim = Simulator(seed=42)
    sim.schedule(5 * MS, lambda: print("hello at", sim.now))
    sim.run()
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional

#: Queue length below which cancelled-entry compaction is not worth the
#: rebuild (tiny heaps pop their dead entries almost immediately anyway).
_COMPACT_MIN_QUEUE = 64
#: Upper bound on the recycled-handle free list (plenty for the deepest
#: in-flight window the stack produces; beyond it, handles are just dropped
#: for the garbage collector).
_POOL_LIMIT = 4096


class SerialCounter:
    """Picklable drop-in for :func:`itertools.count`.

    The kernel and several protocol layers hand out monotonically increasing
    serial numbers (event sequence numbers, correlators, request and circuit
    identifiers).  ``itertools.count`` cannot be serialised (pickling it is
    deprecated since Python 3.12), so durable checkpoints use this two-line
    counter instead; ``next(counter)`` keeps every call site unchanged.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 0):
        self.value = start

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value

    def __iter__(self) -> "SerialCounter":
        return self

    def __getstate__(self) -> int:
        return self.value

    def __setstate__(self, state: int) -> None:
        self.value = state


def _noop() -> None:
    """Placeholder callback for reconstructed free-list handles."""


class EventHandle:
    """Handle to a scheduled event, usable to cancel it before it fires."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "owner",
                 "pooled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Simulator that queued the handle — notified on cancel so the
        #: live cancelled-count (and hence compaction) stays exact.
        self.owner: Optional["Simulator"] = None
        #: True for internally recycled handles (:meth:`Simulator.post_at`).
        self.pooled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled or self.callback is None:
            return  # already cancelled or already fired
        self.cancelled = True
        owner = self.owner
        if owner is not None:
            owner._note_cancel()

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and self.callback is not None

    def _fire(self) -> None:
        callback, args = self.callback, self.args
        self.callback = None
        self.args = ()
        callback(*args)

    def __lt__(self, other: "EventHandle") -> bool:
        # Tuple-free comparison: the heap compares handles on every push and
        # pop, so avoiding two tuple allocations per comparison is measurable.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Simulator:
    """The discrete-event scheduler.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  Every source
        of randomness in the repository draws from ``Simulator.rng`` so a run
        is fully reproducible from its seed.
    """

    def __init__(self, seed: int = 0):
        self._queue: list[EventHandle] = []
        self._seq = SerialCounter()
        self._now = 0.0
        self._running = False
        self._event_count = 0
        #: Live count of cancelled handles still sitting in the heap.
        self._cancelled = 0
        #: Recycled handles for the no-cancel fast path (:meth:`post_at`).
        self._pool: list[EventHandle] = []
        #: Number of :meth:`post_at` calls served from the free list
        #: (observability: pool effectiveness, sampled by ``repro.obs``).
        self.pool_hits = 0
        self.rng = random.Random(seed)
        self.seed = seed

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction (for diagnostics)."""
        return self._event_count

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled entries included (for diagnostics)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        handle = EventHandle(time, next(self._seq), callback, args)
        handle.owner = self
        heapq.heappush(self._queue, handle)
        return handle

    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule a **non-cancellable** event at absolute time ``time``.

        The fast path for hot call sites that never cancel (link generation
        rounds, classical message delivery): the handle comes from an
        internal free list and is recycled after firing.  No handle is
        returned — a caller that might need :meth:`EventHandle.cancel` must
        use :meth:`schedule_at` instead.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        pool = self._pool
        if pool:
            handle = pool.pop()
            self.pool_hits += 1
            handle.time = time
            handle.seq = next(self._seq)
            handle.callback = callback
            handle.args = args
        else:
            handle = EventHandle(time, next(self._seq), callback, args)
            handle.owner = self
            handle.pooled = True
        heapq.heappush(self._queue, handle)

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Relative-delay variant of :meth:`post_at`."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self.post_at(self._now + delay, callback, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value.  Events at
            exactly ``until`` still fire.  ``None`` runs until the queue
            drains.
        max_events:
            Safety valve: abort after this many events (raises
            ``RuntimeError``) — useful to catch accidental infinite loops in
            tests.
        """
        self._running = True
        fired = 0
        queue = self._queue
        pool = self._pool
        pop = heapq.heappop
        try:
            while queue:
                head = queue[0]
                if head.cancelled:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                pop(queue)
                self._now = head.time
                self._event_count += 1
                fired += 1
                if max_events is not None and fired > max_events:
                    raise RuntimeError(f"exceeded max_events={max_events}")
                head._fire()
                if head.pooled and len(pool) < _POOL_LIMIT:
                    pool.append(head)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False

    def run_until_idle(self) -> None:
        """Run until no events remain."""
        self.run(until=None)

    def pending_events(self) -> int:
        """Number of queued, non-cancelled events — O(1)."""
        return len(self._queue) - self._cancelled

    def _note_cancel(self) -> None:
        """Account one cancellation; compact once the heap is >50% dead."""
        self._cancelled += 1
        if (self._cancelled * 2 > len(self._queue)
                and len(self._queue) >= _COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled handles from the heap and re-heapify.

        In place (``[:]``) on purpose: :meth:`run` holds a reference to the
        queue list across callbacks, and a callback cancelling events may
        trigger compaction mid-loop.
        """
        self._queue[:] = [handle for handle in self._queue
                          if not handle.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def reset_time_guard(self) -> None:  # pragma: no cover - debugging aid
        """Drop all pending events (used by a few torture tests)."""
        self._queue.clear()
        self._cancelled = 0

    def __getstate__(self) -> dict:
        # Checkpoints are taken from inside run() (a scheduled callback
        # pickles the world), so the restored kernel must not believe the
        # loop is still live.  Free-list handles are fired empties with no
        # semantic content, but their *count* steers the pool_hits counter —
        # persist the size and rebuild empties on restore so the resumed
        # run's telemetry matches the uninterrupted one exactly.
        state = self.__dict__.copy()
        state["_running"] = False
        state["_pool"] = len(self._pool)
        return state

    def __setstate__(self, state: dict) -> None:
        pool_size = state.pop("_pool", 0)
        self.__dict__.update(state)
        pool = []
        for _ in range(pool_size):
            handle = EventHandle(0.0, 0, _noop, ())
            handle.callback = None
            handle.owner = self
            handle.pooled = True
            pool.append(handle)
        self._pool = pool
