"""Classical message channels.

All control traffic in a quantum network travels over ordinary classical
links (Fig 1 of the paper).  The paper assumes a reliable, in-order transport
(TCP) on top of fibre with speed-of-light delay, and — for Fig 10c — injects
an artificial *processing delay* between a message being sent and it being
processed at the next node.  :class:`ClassicalChannel` models exactly that.

Delivery order: for a fixed per-message delay the FIFO tie-break of the event
queue preserves ordering.  When the processing delay is changed mid-run the
channel still enforces in-order delivery by never letting a message overtake
an earlier one (like a TCP stream would).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .entity import Entity
from .scheduler import Simulator
from .units import fibre_delay


class ChannelEnd:
    """One endpoint of a bidirectional classical channel."""

    def __init__(self, channel: "ClassicalChannel", index: int):
        self._channel = channel
        self._index = index
        self._receiver: Optional[Callable[[Any], None]] = None

    def connect(self, receiver: Callable[[Any], None]) -> None:
        """Register the callback invoked for every delivered message."""
        self._receiver = receiver

    def send(self, message: Any) -> None:
        """Send ``message`` to the opposite endpoint."""
        self._channel._transmit(self._index, message)

    def _deliver(self, message: Any) -> None:
        if self._receiver is None:
            raise RuntimeError(
                f"channel {self._channel.name!r} end {self._index} has no receiver")
        self._receiver(message)


class ClassicalChannel(Entity):
    """Reliable, in-order, bidirectional classical channel.

    Parameters
    ----------
    sim:
        The simulator.
    length_km:
        Fibre length; sets the propagation delay.
    processing_delay:
        Extra delay (ns) added to every message, modelling protocol stack
        processing at the receiving node.  This is the knob turned in the
        paper's Fig 10c.
    name:
        Diagnostic name.
    """

    def __init__(self, sim: Simulator, length_km: float = 0.0,
                 processing_delay: float = 0.0, name: str = ""):
        super().__init__(sim, name or f"cchannel({length_km}km)")
        self.length_km = length_km
        self.processing_delay = processing_delay
        self.ends = (ChannelEnd(self, 0), ChannelEnd(self, 1))
        # Earliest allowed delivery time per direction, to preserve FIFO
        # ordering when the processing delay shrinks mid-run.
        self._last_delivery = [0.0, 0.0]
        self.messages_sent = 0
        #: Failure injection: a cut channel silently drops everything.
        self.is_cut = False

    @property
    def propagation_delay(self) -> float:
        """One-way propagation delay in ns."""
        return fibre_delay(self.length_km)

    def total_delay(self) -> float:
        """Current end-to-end per-message delay in ns."""
        return self.propagation_delay + self.processing_delay

    def cut(self) -> None:
        """Sever the channel (fibre cut): all traffic is dropped until
        :meth:`restore`.  Used for failure-injection tests and the liveness
        mechanism of Sec 4.1."""
        self.is_cut = True

    def restore(self) -> None:
        """Repair a cut channel."""
        self.is_cut = False

    def _transmit(self, from_index: int, message: Any) -> None:
        if self.is_cut:
            return
        to_index = 1 - from_index
        deliver_at = self.now + self.total_delay()
        if deliver_at < self._last_delivery[to_index]:
            deliver_at = self._last_delivery[to_index]
        self._last_delivery[to_index] = deliver_at
        self.messages_sent += 1
        # Deliveries are never cancelled, so use the pooled no-handle path
        # (one recycled EventHandle instead of an allocation per message).
        self.sim.post_at(deliver_at, self.ends[to_index]._deliver, message)


class LossyChannel(ClassicalChannel):
    """A classical channel that can drop messages with a fixed probability.

    The QNP itself assumes a reliable transport; this class exists so the
    transport layer (:mod:`repro.control.transport`) has something real to
    provide reliability *over*, and for failure-injection tests.
    """

    def __init__(self, sim: Simulator, length_km: float = 0.0,
                 processing_delay: float = 0.0, loss_probability: float = 0.0,
                 name: str = ""):
        super().__init__(sim, length_km, processing_delay, name)
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self.loss_probability = loss_probability
        self.messages_dropped = 0

    def _transmit(self, from_index: int, message: Any) -> None:
        if self.sim.rng.random() < self.loss_probability:
            self.messages_dropped += 1
            return
        super()._transmit(from_index, message)
