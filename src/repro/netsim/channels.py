"""Classical message channels.

All control traffic in a quantum network travels over ordinary classical
links (Fig 1 of the paper).  The paper assumes a reliable, in-order transport
(TCP) on top of fibre with speed-of-light delay, and — for Fig 10c — injects
an artificial *processing delay* between a message being sent and it being
processed at the next node.  :class:`ClassicalChannel` models exactly that.

Delivery order: for a fixed per-message delay the FIFO tie-break of the event
queue preserves ordering.  When the processing delay is changed mid-run the
channel still enforces in-order delivery by never letting a message overtake
an earlier one (like a TCP stream would).

Wiring: a channel is a :class:`~repro.netsim.ports.Component` with two
ports, ``"a"`` and ``"b"`` (protocol :data:`CLASSICAL`).  A message
received on one port is delivered out of the opposite port after the
channel delay.  The pre-port :class:`ChannelEnd` objects survive as a
deprecated compatibility surface (``ends[i].send`` / ``ends[i].connect``)
that routes through the same ports.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

from .entity import Entity
from .ports import CallbackComponent, Component, connect
from .scheduler import Simulator
from .units import fibre_delay

#: Protocol tag spoken by classical-channel ports and the node ports that
#: attach to them.
CLASSICAL = "classical"


class ChannelEnd:
    """Deprecated endpoint handle of a classical channel.

    Kept for one release so external scripts that wired receivers with
    ``channel.ends[i].connect(cb)`` keep working; new code connects to
    ``channel.port("a")`` / ``channel.port("b")`` instead.
    """

    def __init__(self, channel: "ClassicalChannel", index: int):
        self._channel = channel
        self._index = index

    @property
    def port(self):
        """The channel port this end corresponds to."""
        return self._channel.port("a" if self._index == 0 else "b")

    def connect(self, receiver: Callable[[Any], None]) -> None:
        """Deprecated: register a receiver callback for this end.

        Routes through the port graph: the callback is wrapped in a
        :class:`~repro.netsim.ports.CallbackComponent` and connected to
        the channel port, replacing any existing connection (the
        historical overwrite semantics).
        """
        warnings.warn(
            "ChannelEnd.connect() is deprecated; connect a component port "
            "to ClassicalChannel.port('a'/'b') instead",
            DeprecationWarning, stacklevel=2)
        port = self.port
        if port.connected:
            port.disconnect()
        adapter = CallbackComponent(
            receiver, CLASSICAL,
            name=f"{self._channel.name}.receiver[{self._index}]")
        connect(port, adapter.io)

    def send(self, message: Any) -> None:
        """Send ``message`` to the opposite endpoint."""
        self._channel._transmit(self._index, message)


class ClassicalChannel(Entity, Component):
    """Reliable, in-order, bidirectional classical channel.

    Parameters
    ----------
    sim:
        The simulator.
    length_km:
        Fibre length; sets the propagation delay.
    processing_delay:
        Extra delay (ns) added to every message, modelling protocol stack
        processing at the receiving node.  This is the knob turned in the
        paper's Fig 10c.
    name:
        Diagnostic name.
    """

    def __init__(self, sim: Simulator, length_km: float = 0.0,
                 processing_delay: float = 0.0, name: str = ""):
        super().__init__(sim, name or f"cchannel({length_km}km)")
        self.length_km = length_km
        self.processing_delay = processing_delay
        self.add_port("a", CLASSICAL, handler=self._rx_a)
        self.add_port("b", CLASSICAL, handler=self._rx_b)
        self.ends = (ChannelEnd(self, 0), ChannelEnd(self, 1))
        # Earliest allowed delivery time per direction, to preserve FIFO
        # ordering when the processing delay shrinks mid-run.
        self._last_delivery = [0.0, 0.0]
        self.messages_sent = 0
        #: Failure injection: a cut channel silently drops everything.
        self.is_cut = False

    @property
    def propagation_delay(self) -> float:
        """One-way propagation delay in ns."""
        return fibre_delay(self.length_km)

    def total_delay(self) -> float:
        """Current end-to-end per-message delay in ns."""
        return self.propagation_delay + self.processing_delay

    def cut(self) -> None:
        """Sever the channel (fibre cut): all traffic is dropped until
        :meth:`restore`.  Used for failure-injection tests and the liveness
        mechanism of Sec 4.1."""
        self.is_cut = True

    def restore(self) -> None:
        """Repair a cut channel."""
        self.is_cut = False

    def _rx_a(self, message: Any) -> None:
        """Port ``a`` inbound handler: transmit towards side b."""
        self._transmit(0, message)

    def _rx_b(self, message: Any) -> None:
        """Port ``b`` inbound handler: transmit towards side a."""
        self._transmit(1, message)

    def _transmit(self, from_index: int, message: Any) -> None:
        if self.is_cut:
            return
        to_index = 1 - from_index
        deliver_at = self.now + self.total_delay()
        if deliver_at < self._last_delivery[to_index]:
            deliver_at = self._last_delivery[to_index]
        self._last_delivery[to_index] = deliver_at
        self.messages_sent += 1
        # Deliveries are never cancelled, so use the pooled no-handle path
        # (one recycled EventHandle instead of an allocation per message).
        self.sim.post_at(deliver_at, self._deliver_to, to_index, message)

    def _deliver_to(self, index: int, message: Any) -> None:
        """Hand a message to whatever is connected on side ``index``."""
        # tx() raises PortNotConnectedError (a RuntimeError) when nothing
        # is attached — the same failure mode the receiver-less legacy
        # channel had.
        self.port("a" if index == 0 else "b").tx(message)


class LossyChannel(ClassicalChannel):
    """A classical channel that can drop messages with a fixed probability.

    The QNP itself assumes a reliable transport; this class exists so the
    transport layer (:mod:`repro.control.transport`) has something real to
    provide reliability *over*, and for failure-injection tests.
    """

    def __init__(self, sim: Simulator, length_km: float = 0.0,
                 processing_delay: float = 0.0, loss_probability: float = 0.0,
                 name: str = ""):
        super().__init__(sim, length_km, processing_delay, name)
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self.loss_probability = loss_probability
        self.messages_dropped = 0

    def _transmit(self, from_index: int, message: Any) -> None:
        if self.sim.rng.random() < self.loss_probability:
            self.messages_dropped += 1
            return
        super()._transmit(from_index, message)
