"""Discrete-event simulation kernel: the NetSquid substitute.

Public API:

* :class:`Simulator` — the event loop,
* :class:`Entity` — base class for protocol machines and hardware models,
* :class:`Component` / :class:`Port` / :func:`connect` — the typed port
  graph every wired entity exchanges messages over,
* :class:`Timer` / :class:`PeriodicTimer` — cancellable timers,
* :class:`ClassicalChannel` / :class:`LossyChannel` — classical links,
* time constants (``NS``, ``US``, ``MS``, ``S``) and fibre helpers.
"""

from .channels import CLASSICAL, ChannelEnd, ClassicalChannel, LossyChannel
from .entity import Entity
from .ports import (
    CallbackComponent,
    Component,
    Port,
    PortAlreadyConnectedError,
    PortError,
    PortNotConnectedError,
    ProtocolMismatchError,
    connect,
    subscribe,
)
from .scheduler import EventHandle, Simulator
from .timers import PeriodicTimer, Timer
from .units import (
    FIBRE_DELAY_NS_PER_KM,
    LAB_WAVELENGTH_ATTENUATION_DB_PER_KM,
    MINUTE,
    MS,
    NS,
    S,
    TELECOM_ATTENUATION_DB_PER_KM,
    US,
    db_to_transmissivity,
    fibre_delay,
    fibre_transmissivity,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "Entity",
    "Port",
    "Component",
    "CallbackComponent",
    "connect",
    "subscribe",
    "PortError",
    "ProtocolMismatchError",
    "PortAlreadyConnectedError",
    "PortNotConnectedError",
    "Timer",
    "PeriodicTimer",
    "ClassicalChannel",
    "LossyChannel",
    "ChannelEnd",
    "CLASSICAL",
    "NS",
    "US",
    "MS",
    "S",
    "MINUTE",
    "FIBRE_DELAY_NS_PER_KM",
    "LAB_WAVELENGTH_ATTENUATION_DB_PER_KM",
    "TELECOM_ATTENUATION_DB_PER_KM",
    "fibre_delay",
    "fibre_transmissivity",
    "db_to_transmissivity",
]
