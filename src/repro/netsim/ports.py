"""Typed component-and-port wiring for the simulation graph.

Historically the builder wired protocol machines together by assigning
callbacks onto each other's attributes (``end.connect(cb)``,
``link.register_handler(...)``).  That made the wiring invisible — there
was no object that *was* the connection, nothing validated that the two
sides spoke the same message protocol, and every new layer (batching,
multi-domain gateways, alternative physical models) had to invent its own
ad-hoc attachment point.

This module is the replacement seam, modelled on NetSquid's
component/port idiom:

* a :class:`Component` owns named :class:`Port` objects, each declaring
  the **message protocol** it speaks (a plain string tag such as
  ``"classical"`` or ``"egp.delivery"``);
* :func:`connect` joins exactly two ports and refuses mismatched
  protocols or double connections with typed errors that name the
  offending components;
* :meth:`Port.tx` hands a message to the peer port's handler
  **synchronously** — ports add no scheduling of their own, so rewiring
  a callback-based graph onto ports is event-schedule-neutral (the
  byte-identical-telemetry guarantee the analytic link model pins);
* everything is plain attributes and module-level callables, so a wired
  graph pickles — :mod:`repro.persist` checkpoints the whole engine and
  the port topology must survive the round trip.

Handlers must therefore be picklable themselves: bound methods or
:func:`functools.partial` over bound methods, never lambdas or local
closures.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class PortError(Exception):
    """Base class for port-graph wiring and messaging errors."""


class ProtocolMismatchError(PortError, TypeError):
    """Two ports with different declared protocols were connected."""


class PortAlreadyConnectedError(PortError, RuntimeError):
    """A port that already has a peer was connected again."""


class PortNotConnectedError(PortError, RuntimeError):
    """A message was transmitted on a port with no peer."""


class Port:
    """One typed attachment point of a :class:`Component`.

    Parameters
    ----------
    component:
        The owning component (any object; its ``name`` attribute, when
        present, is used in error messages).
    name:
        Port name, unique within the component.
    protocol:
        Message protocol tag.  :func:`connect` only joins ports whose
        tags compare equal.
    handler:
        Optional inbound-message callback ``handler(message)``.  A port
        without a handler is send-only.  Must be picklable (bound method
        or partial of one) when the component participates in
        checkpointed simulations.
    """

    def __init__(self, component: Any, name: str, protocol: str,
                 handler: Optional[Callable[[Any], None]] = None):
        self.component = component
        self.name = name
        self.protocol = protocol
        self.handler = handler
        self.peer: Optional["Port"] = None

    @property
    def connected(self) -> bool:
        """Whether the port currently has a peer."""
        return self.peer is not None

    @property
    def full_name(self) -> str:
        """``component.port`` label used in error messages."""
        return f"{component_name(self.component)}.{self.name}"

    def connect(self, peer: "Port") -> None:
        """Join this port with ``peer`` (symmetric; see :func:`connect`)."""
        if not isinstance(peer, Port):
            raise TypeError(f"can only connect ports, not {peer!r}")
        if peer is self:
            raise ProtocolMismatchError(
                f"cannot connect port {self.full_name} to itself")
        if self.protocol != peer.protocol:
            raise ProtocolMismatchError(
                f"cannot connect {self.full_name} [{self.protocol}] to "
                f"{peer.full_name} [{peer.protocol}]: protocols differ")
        for port in (self, peer):
            if port.peer is not None:
                raise PortAlreadyConnectedError(
                    f"port {port.full_name} is already connected to "
                    f"{port.peer.full_name}")
        self.peer = peer
        peer.peer = self

    def disconnect(self) -> None:
        """Detach this port from its peer (no-op when unconnected)."""
        peer = self.peer
        if peer is None:
            return
        self.peer = None
        peer.peer = None

    def tx(self, message: Any) -> None:
        """Deliver ``message`` to the peer port's handler, synchronously.

        No event is scheduled: latency, if any, belongs to the component
        in the middle (e.g. a classical channel), not to the wiring.
        """
        peer = self.peer
        if peer is None:
            raise PortNotConnectedError(
                f"port {self.full_name} transmitted with no peer connected")
        handler = peer.handler
        if handler is None:
            raise PortError(
                f"peer port {peer.full_name} of {self.full_name} "
                f"declares no inbound handler")
        handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer.full_name if self.peer is not None else None
        return f"<Port {self.full_name} [{self.protocol}] peer={peer}>"


def component_name(component: Any) -> str:
    """Best-effort display name of a component for diagnostics."""
    name = getattr(component, "name", None)
    if isinstance(name, str) and name:
        return name
    return type(component).__name__


class Component:
    """Mixin giving a class named, typed ports.

    Designed to compose with :class:`~repro.netsim.entity.Entity` (or any
    plain class): no ``__init__`` of its own, the port table is created
    lazily on first :meth:`add_port`, and everything lives in ordinary
    instance attributes so pickling needs no special support.
    """

    _ports: dict[str, Port]

    def add_port(self, name: str, protocol: str,
                 handler: Optional[Callable[[Any], None]] = None) -> Port:
        """Create (and register) a new port on this component."""
        ports = getattr(self, "_ports", None)
        if ports is None:
            ports = self._ports = {}
        if name in ports:
            raise ValueError(
                f"{component_name(self)}: port {name!r} already exists")
        port = ports[name] = Port(self, name, protocol, handler)
        return port

    def port(self, name: str) -> Port:
        """Look up a port by name (``KeyError`` names the component)."""
        try:
            return self._ports[name]
        except (AttributeError, KeyError):
            raise KeyError(
                f"{component_name(self)} has no port {name!r}") from None

    def has_port(self, name: str) -> bool:
        """Whether a port of that name exists on this component."""
        return name in getattr(self, "_ports", ())

    def port_names(self) -> list[str]:
        """Names of all ports, in creation order."""
        return list(getattr(self, "_ports", ()))


def connect(a: Port, b: Port) -> None:
    """Connect two ports, validating protocol compatibility.

    Raises :class:`ProtocolMismatchError` when the protocol tags differ
    and :class:`PortAlreadyConnectedError` when either port already has a
    peer; both errors name the offending components.
    """
    a.connect(b)


class _Unpack:
    """Picklable adapter calling ``handler(*message)`` for tuple messages.

    Used by the deprecation shims: the legacy node-dispatch handlers take
    ``(sender, payload)`` as two positional arguments while port messages
    are single objects.  A module-level class (not a lambda) so shimmed
    graphs still checkpoint.
    """

    __slots__ = ("handler",)

    def __init__(self, handler: Callable[..., None]):
        self.handler = handler

    def __call__(self, message) -> None:
        self.handler(*message)

    def __getstate__(self):
        return self.handler

    def __setstate__(self, state) -> None:
        self.handler = state


class CallbackComponent(Component):
    """Adapter wrapping a plain callable into a one-port component.

    Bridges legacy callback-style consumers (and tests) onto the port
    graph: the callable becomes the handler of the single ``io`` port,
    and :meth:`tx` sends outbound through the same port.
    """

    def __init__(self, callback: Optional[Callable[[Any], None]],
                 protocol: str, name: str = ""):
        self.name = name or f"callback[{protocol}]"
        self.io = self.add_port("io", protocol, handler=callback)

    def tx(self, message: Any) -> None:
        """Send a message out through the adapter's port."""
        self.io.tx(message)


def subscribe(port: Port, callback: Callable[[Any], None],
              name: str = "") -> CallbackComponent:
    """Connect a plain callable to ``port``; returns the adapter.

    The adapter's :meth:`CallbackComponent.tx` sends in the opposite
    direction (into ``port``'s component), which is what tests driving a
    channel or a protocol machine by hand need.
    """
    adapter = CallbackComponent(callback, port.protocol,
                                name=name or f"subscriber:{port.full_name}")
    connect(port, adapter.io)
    return adapter
