"""Time and physical unit constants for the simulator.

All simulated time is expressed in **nanoseconds** stored as floats, the same
convention NetSquid uses.  The constants below make call sites readable::

    sim.schedule(10 * MS, handler)

Fibre constants follow Appendix B of the paper: photons travel at roughly
two-thirds of the vacuum speed of light in standard telecom fibre, and
attenuation is 5 dB/km at the NV emission wavelength (lab scenario) or
0.5 dB/km after conversion to telecom wavelength (long-distance scenario).
"""

from __future__ import annotations

#: One nanosecond (the base unit).
NS = 1.0
#: One microsecond in nanoseconds.
US = 1e3
#: One millisecond in nanoseconds.
MS = 1e6
#: One second in nanoseconds.
S = 1e9
#: One minute in nanoseconds.
MINUTE = 60 * S

#: Speed of light in fibre, in kilometres per second (~2/3 c).
FIBRE_LIGHT_SPEED_KM_PER_S = 200_000.0

#: Propagation delay per kilometre of fibre, in nanoseconds.
FIBRE_DELAY_NS_PER_KM = S / FIBRE_LIGHT_SPEED_KM_PER_S

#: Attenuation of NV-wavelength photons in standard fibre (dB/km).
LAB_WAVELENGTH_ATTENUATION_DB_PER_KM = 5.0

#: Attenuation after frequency conversion to telecom wavelength (dB/km).
TELECOM_ATTENUATION_DB_PER_KM = 0.5


def fibre_delay(length_km: float) -> float:
    """Propagation delay in ns for a fibre of ``length_km`` kilometres."""
    return length_km * FIBRE_DELAY_NS_PER_KM


def db_to_transmissivity(loss_db: float) -> float:
    """Convert a loss figure in dB into a transmission probability."""
    return 10.0 ** (-loss_db / 10.0)


def fibre_transmissivity(length_km: float, attenuation_db_per_km: float) -> float:
    """Probability that a photon survives ``length_km`` of fibre."""
    return db_to_transmissivity(length_km * attenuation_db_per_km)
