"""Versioned, atomic engine checkpoints (the durability layer).

A checkpoint is a single pickle file with two layers:

* an **outer envelope** — magic string, format version, the values of
  the process-global serial counters (request/circuit/qubit IDs) and the
  weight store's peak occupancy — all cheap plain data, validated
  *before* any simulation state is deserialised;
* the **engine blob** — the pickled :class:`~repro.traffic.workload.
  TrafficEngine`, which transitively carries the whole simulation: the
  network (scheduler heap, links with their numpy RNG block buffers and
  in-flight EGP chains, QNP/circuit/policer/arbiter state), the traffic
  sessions, the metrics registry and the snapshot emitter.

Writes are crash-safe: the payload is flushed and fsynced to a ``.tmp``
sibling, then moved into place with :func:`os.replace` — a reader never
observes a torn file, and a run killed mid-write resumes from the
previous complete checkpoint.

What is **not** captured: open file handles (the snapshot emitter
re-opens and truncates its JSONL on :meth:`~repro.obs.snapshots.
SnapshotEmitter.reattach`) and wall-clock context (``t_wall_s`` /
``max_rss_kb`` restart from the resuming process).  Bell-pair rows are
re-allocated into the resuming process's weight store — row indices are
process-local and unobservable, so only the weights travel.
"""

from __future__ import annotations

import os
import pickle
from typing import Optional

#: Format version; bump on any layout change.  Loading rejects other
#: versions before deserialising any simulation state.
CHECKPOINT_VERSION = 1

_MAGIC = "repro-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable, foreign, or version-mismatched."""


def _counter_values() -> dict:
    """Snapshot the process-global serial counters a resume must restore.

    Request, circuit and qubit IDs draw from module-level
    :class:`~repro.netsim.scheduler.SerialCounter` streams that are not
    reachable from the engine's object graph; their positions are part
    of the run's determinism (circuit IDs appear in reports).
    """
    from ..control import signalling
    from ..core import requests
    from ..quantum import qubit

    return {
        "request_ids": requests._request_ids.value,
        "circuit_ids": signalling._circuit_ids.value,
        "qubit_ids": qubit._qubit_ids.value,
    }


def _restore_counters(values: dict) -> None:
    """Reset the global serial counters to their checkpointed positions."""
    from ..control import signalling
    from ..core import requests
    from ..quantum import qubit

    requests._request_ids.value = values["request_ids"]
    signalling._circuit_ids.value = values["circuit_ids"]
    qubit._qubit_ids.value = values["qubit_ids"]


def save_checkpoint(engine, path) -> str:
    """Write one durable checkpoint of a running traffic engine.

    Returns the path written.  The write is atomic (tmp + fsync +
    rename): either the previous checkpoint or the new one exists at
    ``path``, never a torn hybrid.
    """
    from ..quantum.weightstore import STORE

    envelope = {
        "magic": _MAGIC,
        "version": CHECKPOINT_VERSION,
        "counters": _counter_values(),
        "store_peak_live": STORE.peak_live,
        "engine_blob": pickle.dumps(engine,
                                    protocol=pickle.HIGHEST_PROTOCOL),
    }
    path = str(path)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(path, *, metrics_out: Optional[str] = None,
                    checkpoint_out: Optional[str] = None):
    """Restore a traffic engine from a checkpoint file.

    Validates the envelope (magic + version) before touching the engine
    blob, restores the global ID counters to their checkpointed
    positions, re-allocates live Bell pairs into this process's weight
    store, and re-opens the snapshot stream (truncated back to the
    frames the checkpoint vouches for).  The returned engine continues
    with :meth:`~repro.traffic.workload.TrafficEngine.resume_run`.

    ``metrics_out`` / ``checkpoint_out`` redirect the resumed run's
    snapshot JSONL and subsequent checkpoint writes (e.g. so a resumed
    test run does not clobber the original artifacts).

    Restoring rewinds the *global* counter streams, so do not resume a
    checkpoint in a process with other live simulations.
    """
    from ..quantum.weightstore import STORE

    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if (not isinstance(envelope, dict)
            or envelope.get("magic") != _MAGIC):
        raise CheckpointError(f"{path} is not a repro checkpoint")
    version = envelope.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version mismatch: file has {version!r}, "
            f"this build reads {CHECKPOINT_VERSION}")
    _restore_counters(envelope["counters"])
    try:
        engine = pickle.loads(envelope["engine_blob"])
    except Exception as exc:
        raise CheckpointError(
            f"corrupt engine state in {path}: {exc}") from exc
    STORE.peak_live = max(STORE.peak_live, envelope["store_peak_live"])
    if checkpoint_out is not None:
        engine.checkpoint_out = str(checkpoint_out)
    if engine.emitter is not None:
        if metrics_out is not None:
            engine.metrics_out = str(metrics_out)
        engine.emitter.reattach(path=engine.metrics_out)
    return engine
