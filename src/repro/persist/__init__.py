"""Durable checkpoint/resume for long-horizon simulation runs.

The persistence layer (:mod:`repro.persist.checkpoint`) turns a running
:class:`~repro.traffic.workload.TrafficEngine` — scheduler event heap,
per-link EGP RNG block buffers and in-flight chains, the Bell-pair
weight store, QNP/circuit/policer/arbiter state, traffic sessions and
the metrics registry — into one versioned, atomically written file, and
back.  See :func:`save_checkpoint` / :func:`load_checkpoint` and the
"Checkpointing & long-horizon soak" section of DESIGN.md.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
]
