"""Link layer service interface (Sec 3.5).

The network layer needs exactly four properties from the link layer:

(i)   a link-unique request identifier (*purpose ID* — the QNP uses the
      circuit's link-label),
(ii)  a per-pair *entanglement ID* unique within the request's link,
(iii) the Bell state the pair was delivered in,
(iv)  quality-of-service parameters: minimum fidelity and rate.

:class:`LinkPairDelivery` carries (ii) and (iii) plus the local qubit handle
and a goodness estimate; requests are expressed through
:meth:`repro.linklayer.egp.Link.set_request` with (i) and (iv).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..quantum.bell import BellIndex
from ..quantum.qubit import Qubit

#: Entanglement ID: unique within a link — (link name, sequence number).
EntanglementId = tuple


@dataclass(slots=True)
class LinkPairDelivery:
    """One half of a link pair, delivered to the network layer at one node."""

    link_name: str
    purpose_id: str
    entanglement_id: EntanglementId
    bell_index: BellIndex
    qubit: Qubit
    #: Link layer's estimate of the produced fidelity (the "goodness" field
    #: of ref [19]).
    goodness: float
    #: Simulated time at which the pair was heralded.
    t_create: float


@dataclass
class LinkRequestState:
    """Internal per-purpose state of the EGP."""

    purpose_id: str
    min_fidelity: float
    alpha: float
    #: Requested link-pair rate (pairs/s) — the WRR weight.
    lpr: float
    #: Hot-path constants derived from ``alpha`` (set by the EGP whenever
    #: alpha changes): ``log(1 - p_success)`` for geometric sampling and the
    #: produced-fidelity estimate reported as delivery goodness.
    log_miss: float = 0.0
    goodness: float = 0.0
    #: Per-α pair materialiser prebound by the EGP
    #: (:meth:`repro.quantum.backends.Backend.link_pair_factory`) so
    #: delivery skips the per-pair produced-state memo lookups.
    make_pair: Optional[Callable] = None
    active: bool = True
    pairs_delivered: int = field(default=0)
    #: Node names that have endorsed this request.  Generation only starts
    #: once both endpoints have (ref [19]'s distributed queue synchronises
    #: the two ends the same way); ``None`` marks a single-caller request
    #: that needs no second endorsement.
    endorsers: Optional[set] = None

    def fully_endorsed(self) -> bool:
        return self.endorsers is None or len(self.endorsers) >= 2
