"""Weighted fair-share scheduling of link time across virtual circuits.

Implements the paper's link scheduling requirements (Sec 5):

(i)   circuits get an equal share of the link's *time* regardless of
      fidelity (higher-fidelity circuits need more time per pair),
(ii)  when under-subscribed, excess capacity goes proportionally to demand,
(iii) when over-subscribed, capacity is split proportionally to demand.

The mechanism is start-time fair queuing on consumed link time: each
purpose accumulates ``used / weight`` virtual time and the scheduler always
picks the eligible purpose with the smallest value.  Weights are the
requested link-pair rates (LPR), so time shares are proportional to demand.
"""

from __future__ import annotations

from typing import Iterable, Optional


class FairShareScheduler:
    """Start-time fair queuing over link time."""

    def __init__(self):
        self._weights: dict[str, float] = {}
        self._virtual: dict[str, float] = {}

    def add(self, purpose_id: str, weight: float) -> None:
        """Register a purpose.  New arrivals start at the current minimum
        virtual time so they neither starve others nor get starved."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if purpose_id in self._weights:
            raise ValueError(f"purpose {purpose_id} already registered")
        self._weights[purpose_id] = weight
        baseline = min(self._virtual.values()) if self._virtual else 0.0
        self._virtual[purpose_id] = baseline

    def update_weight(self, purpose_id: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._check(purpose_id)
        self._weights[purpose_id] = weight

    def remove(self, purpose_id: str) -> None:
        self._check(purpose_id)
        del self._weights[purpose_id]
        del self._virtual[purpose_id]

    def __contains__(self, purpose_id: str) -> bool:
        return purpose_id in self._weights

    def weight(self, purpose_id: str) -> float:
        self._check(purpose_id)
        return self._weights[purpose_id]

    def pick(self, eligible: Iterable[str]) -> Optional[str]:
        """Pick the eligible purpose with the least virtual time."""
        best: Optional[str] = None
        best_virtual = float("inf")
        virtuals = self._virtual
        for purpose_id in eligible:
            # Direct indexing doubles as the unknown-purpose check
            # (KeyError) without a second dict lookup on the hot path.
            virtual = virtuals[purpose_id]
            if virtual < best_virtual:
                best, best_virtual = purpose_id, virtual
        return best

    def charge(self, purpose_id: str, link_time: float) -> None:
        """Account consumed link time against a purpose."""
        if link_time < 0:
            raise ValueError("link time must be non-negative")
        self._virtual[purpose_id] += link_time / self._weights[purpose_id]

    def _check(self, purpose_id: str) -> None:
        if purpose_id not in self._weights:
            raise KeyError(f"unknown purpose {purpose_id}")
