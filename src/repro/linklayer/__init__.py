"""Link layer: the entanglement generation service of ref [19]."""

from .egp import DELIVERY, PHOTON, Link
from .scheduler import FairShareScheduler
from .service import EntanglementId, LinkPairDelivery, LinkRequestState

__all__ = [
    "Link",
    "DELIVERY",
    "PHOTON",
    "FairShareScheduler",
    "LinkPairDelivery",
    "LinkRequestState",
    "EntanglementId",
]
