"""Link layer: the entanglement generation service of ref [19]."""

from .egp import Link
from .scheduler import FairShareScheduler
from .service import EntanglementId, LinkPairDelivery, LinkRequestState

__all__ = [
    "Link",
    "FairShareScheduler",
    "LinkPairDelivery",
    "LinkRequestState",
    "EntanglementId",
]
