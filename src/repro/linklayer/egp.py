"""The entanglement generation protocol (EGP) — the link layer of ref [19].

One :class:`Link` entity models a physical link *and* the link layer
protocol running over it: the synchronised midpoint heralding process, the
retry loop, request multiplexing and pair delivery at both ends.  (Ref [19]
realises the two-ended coordination with a distributed queue; simulating
the link as a single shared entity is behaviourally equivalent for a
simulator that owns both ends, and is what the original artifacts do too.)

Operation:

* the QNP installs a **continuous generation request** per circuit, keyed
  by the circuit's link-label (purpose ID), with a minimum fidelity (mapped
  to the bright-state α) and a requested link-pair rate (the WRR weight);
* the link serves one purpose at a time, in **time slices** of at most
  ``slice_attempts`` entanglement attempts.  The number of attempts until
  success is geometric, so the link fast-forwards: it samples the remaining
  attempt count once per slice instead of simulating every attempt
  (memorylessness makes this exact — see DESIGN.md);
* each generation round needs a free communication-qubit slot at **both**
  ends for the duration of the round; on success the pair parks in those
  slots until the network layer consumes or discards it.  No free slot on
  either side stalls the link — the congestion mechanism of Fig 8c;
* on success both network layers receive a :class:`LinkPairDelivery` with
  the same entanglement ID and Bell index (the midpoint herald tells both
  sides which detector clicked);
* in the near-term hardware model the round also reserves both endpoint
  devices (single communication qubit) and every attempt dephases storage
  qubits at both nodes.

Timeslot batching (the vectorised-core revision):

On hardware without per-attempt storage dephasing and without device
serialisation (the standard parameter set), nothing observable happens
*between* generation slices: a failed slice releases and immediately
re-acquires the same comm slots (the pool free-list is LIFO), charges the
fair-share scheduler, and starts the next slice at the same instant.  The
link therefore **pre-computes the whole failed-slices-then-success chain in
one go** — replaying the WRR picks against a shadow copy of the scheduler's
virtual times — and schedules a *single* boundary event at the delivery
time, instead of one event per slice.  Geometric outcomes come from a
**per-link numpy PCG64 stream** (seeded from ``Simulator.rng`` at link
construction, so ``--seed`` still pins the whole run) refilled in 256-wide
blocks, i.e. one numpy RNG call amortised over many slices.

Determinism is preserved exactly: the batched and event-per-slice paths
draw the *same uniforms in the same order* from the same per-link stream,
so they produce byte-identical telemetry (``Link.batched = False`` switches
a link back to the event-per-slice path; the regression tests diff the
two).  Any state mutation that could invalidate a pre-computed chain —
request install/update/teardown, endorsement, priority hints, link failure
— first **settles** the chain: completed slices are accounted in bulk, the
in-flight slice is handed to the ordinary scalar finisher, and the unused
uniforms are pushed back onto the stream so the scalar path re-draws them
in the original order.  (If an interrupt lands exactly on a slice boundary
the next slice counts as already started; in the event-per-slice path that
ordering depends on event insertion order, so either convention is
admissible — this one is fixed and documented.)
"""

from __future__ import annotations

import math
import warnings
from functools import partial
from typing import Callable, Optional

import numpy as np

from ..hardware.heralded import SingleClickModel
from ..netsim.entity import Entity
from ..netsim.ports import CallbackComponent, Component, Port, connect
from ..netsim.scheduler import SerialCounter, Simulator
from ..network.arbiter import acquire_ordered, release_all
from ..network.node import QuantumNode
from ..network.qmm import Slot
from ..quantum.backends import Backend, get_backend
from ..quantum.bell import BellIndex
from .scheduler import FairShareScheduler
from .service import LinkPairDelivery, LinkRequestState

DeliveryHandler = Callable[[LinkPairDelivery], None]

#: Protocol tag of the link layer's pair-delivery ports (link → network
#: layer, one port per endpoint node).
DELIVERY = "egp.delivery"
#: Protocol tag of the midpoint-station photon/herald ports.
PHOTON = "photon"

#: Uniforms per refill of the per-link RNG buffer (one numpy call each).
_RNG_BLOCK = 256
#: Upper bound on pre-computed slices per chain; a chain that reaches the
#: cap without success simply continues with a fresh chain (bounds both the
#: memory held per link and the worst-case settle cost).
_MAX_CHAIN = 512


class _Chain:
    """A pre-computed run of generation slices awaiting its boundary event."""

    __slots__ = ("slices", "start", "success", "slot_a", "slot_b", "event")

    def __init__(self, slices, start, success, slot_a, slot_b, event):
        self.slices = slices  # list of (request, burst, uniform)
        self.start = start
        self.success = success
        self.slot_a = slot_a
        self.slot_b = slot_b
        self.event = event


class Link(Entity, Component):
    """A physical link plus its link layer protocol instance.

    Ports: one ``deliver:<node>`` port per endpoint (protocol
    :data:`DELIVERY`) over which heralded pairs reach the network layer,
    and — when a :class:`~repro.hardware.heralded.MidpointStation` is
    attached — ``midpoint:a``/``midpoint:b`` ports (protocol
    :data:`PHOTON`) over which the station reports heralds.
    """

    def __init__(self, sim: Simulator, name: str, node_a: QuantumNode,
                 node_b: QuantumNode, model: SingleClickModel,
                 slice_attempts: int = 100,
                 backend: Optional[Backend] = None):
        super().__init__(sim, name)
        if slice_attempts < 1:
            raise ValueError("slice_attempts must be at least 1")
        self.node_a = node_a
        self.node_b = node_b
        self.model = model
        #: State formalism used to materialise produced pairs (defaults to
        #: the node's backend, falling back to the exact engine).
        self.backend = get_backend(backend if backend is not None
                                   else getattr(node_a, "backend", None))
        self.slice_attempts = slice_attempts
        self._cycle_time = model.cycle_time
        self._device_a = node_a.device
        self._device_b = node_b.device
        #: Delivery ports by endpoint node name (network layer connects).
        self._delivery_ports: dict[str, Port] = {
            node.name: self.add_port(f"deliver:{node.name}", DELIVERY)
            for node in (node_a, node_b)}
        #: Optional midpoint heralding station (see :meth:`attach_station`).
        self.station = None
        #: Most recent herald reported by the attached station.
        self.last_herald = None
        self._requests: dict[str, LinkRequestState] = {}
        self._pending_endorsements: dict[str, set] = {}
        #: Scheduling hints: purposes that a neighbouring network layer
        #: flagged as having an unmatched partner pair waiting (see
        #: :meth:`set_priority`).  Each endpoint contributes its own set.
        self._priorities: dict[str, set] = {}
        self._scheduler = FairShareScheduler()
        self._seq = SerialCounter()
        self._running = False
        # Hot-loop caches: the eligible-purpose list only changes on
        # set_request/endorse/end_request, and the comm-qubit pools are
        # fixed once both nodes attached the link.
        self._eligible_dirty = True
        self._eligible: list[str] = []
        self._pools = None
        self._serialize = not (node_a.params.parallel_links
                               and node_b.params.parallel_links)
        #: Per-link geometric/Bernoulli stream.  Seeding from the simulator
        #: RNG keeps runs reproducible from ``--seed`` alone (construction
        #: order is deterministic); a *per-link* stream is what makes the
        #: batched chain consume exactly the draws the event-per-slice path
        #: would, independent of how rounds of different links interleave.
        self._rng = np.random.default_rng(sim.rng.getrandbits(64))
        self._ubuf = self._rng.random(_RNG_BLOCK)
        self._upos = 0
        #: Uniforms returned by a settled chain, re-served LIFO so the
        #: scalar path re-draws them in the original order.
        self._pushback: list[float] = []
        #: Knob: set False to force the event-per-slice path (used by the
        #: batched-vs-scalar equivalence tests).
        self.batched = True
        # Chains require that nothing observable happens between slices:
        # no device serialisation (arbiters) and no per-attempt storage
        # dephasing.  Both are fixed at construction time.
        self._batch_ok = (
            not self._serialize
            and getattr(self._device_a, "_nuclear_q", 1.0) <= 0
            and getattr(self._device_b, "_nuclear_q", 1.0) <= 0)
        self._chain: Optional[_Chain] = None
        #: Failure injection: a down link stops generating (see :meth:`fail`).
        self.up = True
        # Statistics (benchmarks read these).  Attempts/busy accumulate in
        # the underscored fields; the public names are properties that add
        # the in-flight chain's completed slices, so readers see the same
        # numbers at any instant as the event-per-slice engine would.
        self.pairs_generated = 0
        self._attempts_made = 0
        self._busy_time = 0.0
        #: Optional shared event log (see :mod:`repro.analysis.tracing`);
        #: attached by ``attach_trace`` alongside the QNP engines.
        self.trace = None
        #: Optional chain-length histogram (``repro.obs``): the topology
        #: builder points every link at one shared registry instrument.
        self.chain_hist = None
        for node in (node_a, node_b):
            node.qmm.on_slot_freed(self._on_slot_freed)

    # ------------------------------------------------------------------
    # Service interface (network layer → link layer)
    # ------------------------------------------------------------------

    def delivery_port(self, node_name: str) -> Port:
        """The pair-delivery port serving one endpoint's network layer."""
        try:
            return self._delivery_ports[node_name]
        except KeyError:
            raise ValueError(
                f"{node_name} is not an endpoint of {self.name}") from None

    def register_handler(self, node_name: str, handler: DeliveryHandler) -> None:
        """Deprecated: register the network layer's pair receiver at one end.

        New code connects a component port to :meth:`delivery_port`; this
        shim wraps the bare callback in a
        :class:`~repro.netsim.ports.CallbackComponent`, replacing any
        existing connection (the historical overwrite semantics).
        """
        warnings.warn(
            "Link.register_handler() is deprecated; connect a component "
            "port to Link.delivery_port(node_name) instead",
            DeprecationWarning, stacklevel=2)
        port = self.delivery_port(node_name)
        if port.connected:
            port.disconnect()
        adapter = CallbackComponent(handler, DELIVERY,
                                    name=f"{self.name}.handler:{node_name}")
        connect(port, adapter.io)

    def attach_station(self, station) -> None:
        """Wire a midpoint heralding station to this link.

        Connects the station's ``a``/``b`` photon ports to fresh
        ``midpoint:a``/``midpoint:b`` ports here, so heralds the station
        reports flow over the component graph; the analytic fast-forward
        then accounts each delivered pair as one heralded window on the
        station (see :meth:`_deliver_pair`).
        """
        self.station = station
        connect(self.add_port("midpoint:a", PHOTON, handler=self._on_herald),
                station.port("a"))
        connect(self.add_port("midpoint:b", PHOTON, handler=self._on_herald),
                station.port("b"))

    def _on_herald(self, herald) -> None:
        """Record the station's latest herald outcome (both sides hear it)."""
        self.last_herald = herald

    def set_request(self, purpose_id: str, min_fidelity: float, lpr: float,
                    endorser: Optional[str] = None) -> None:
        """Install or update a continuous generation request.

        ``min_fidelity`` selects the bright-state α (QoS property iv of
        Sec 3.5); ``lpr`` (pairs/s) is the scheduling weight.  When
        ``endorser`` is given, generation only starts once the *other*
        endpoint has endorsed the purpose too (:meth:`endorse`) — mirroring
        ref [19]'s two-ended distributed queue.  Without it the request is
        immediately live (single-caller use).
        """
        self._settle_chain()
        if self.trace is not None:
            self.trace.record(self.sim._now, self.name, "EGP_REQUEST",
                              purpose=purpose_id, lpr=lpr)
        alpha = self.model.alpha_for_fidelity(min_fidelity)
        log_miss = self.model.log_miss_probability(alpha)
        goodness = self.model.fidelity(alpha)
        existing = self._requests.get(purpose_id)
        if existing is not None and existing.active:
            if existing.alpha != alpha:
                existing.make_pair = self.backend.link_pair_factory(
                    self.model, alpha)
            existing.min_fidelity = min_fidelity
            existing.alpha = alpha
            existing.log_miss = log_miss
            existing.goodness = goodness
            existing.lpr = lpr
            if endorser is not None and existing.endorsers is not None:
                existing.endorsers.add(endorser)
            self._scheduler.update_weight(purpose_id, lpr)
        else:
            state = LinkRequestState(
                purpose_id=purpose_id, min_fidelity=min_fidelity,
                alpha=alpha, lpr=lpr, log_miss=log_miss, goodness=goodness,
                make_pair=self.backend.link_pair_factory(self.model, alpha),
                endorsers=None if endorser is None else {endorser})
            pending = self._pending_endorsements.pop(purpose_id, set())
            if state.endorsers is not None:
                state.endorsers |= pending
            self._requests[purpose_id] = state
            self._scheduler.add(purpose_id, lpr)
        self._eligible_dirty = True
        self._kick()

    def endorse(self, purpose_id: str, node_name: str) -> None:
        """Second-endpoint endorsement of a two-sided request."""
        self._settle_chain()
        request = self._requests.get(purpose_id)
        if request is None or not request.active:
            self._pending_endorsements.setdefault(purpose_id, set()).add(node_name)
            return
        if request.endorsers is not None:
            request.endorsers.add(node_name)
        self._eligible_dirty = True
        self._kick()

    def end_request(self, purpose_id: str) -> None:
        """Terminate a continuous generation request (COMPLETE handling)."""
        self._settle_chain()
        if self.trace is not None:
            self.trace.record(self.sim._now, self.name, "EGP_END",
                              purpose=purpose_id)
        self._pending_endorsements.pop(purpose_id, None)
        request = self._requests.pop(purpose_id, None)
        self._eligible_dirty = True
        if request is not None:
            request.active = False
            self._scheduler.remove(purpose_id)

    def has_request(self, purpose_id: str) -> bool:
        """Whether a continuous generation request is installed."""
        return purpose_id in self._requests

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Take the physical link down (fibre cut / midpoint outage).

        Generation stalls immediately: no new round starts and an
        in-flight round completes without delivering.  Installed requests
        survive, so :meth:`restore` resumes generation where it left off.
        """
        self._settle_chain()
        self.up = False

    def restore(self) -> None:
        """Bring a failed link back up and resume generation."""
        if not self.up:
            self.up = True
            self._kick()

    def set_priority(self, purpose_id: str, node_name: str,
                     boosted: bool) -> None:
        """Scheduling hint from one endpoint's network layer.

        A boosted purpose is served before non-boosted ones: the flagging
        node holds an unmatched pair for that circuit on its *other* link,
        so a pair produced here can be swapped immediately instead of
        decaying in memory.  This implements the "improved scheduling at
        the nodes" the paper points to as the fix for the Fig 8c congestion
        collapse (Sec 5.1); it is off by default and exercised by the
        scheduling ablation bench.
        """
        self._settle_chain()
        if boosted:
            self._priorities.setdefault(purpose_id, set()).add(node_name)
            self._kick()
        else:
            flaggers = self._priorities.get(purpose_id)
            if flaggers is not None:
                flaggers.discard(node_name)
                if not flaggers:
                    # Drop empty entries so the scheduler's "any priorities
                    # at all?" fast check stays meaningful.
                    del self._priorities[purpose_id]

    def _boosted(self, purpose_id: str) -> bool:
        return bool(self._priorities.get(purpose_id))

    # ------------------------------------------------------------------
    # Capacity estimates (used by the routing protocol)
    # ------------------------------------------------------------------

    def max_lpr(self, min_fidelity: float) -> float:
        """Achievable pairs/s at a given fidelity with the whole link."""
        alpha = self.model.alpha_for_fidelity(min_fidelity)
        return 1e9 / self.model.expected_pair_time(alpha)

    def generation_quantile(self, min_fidelity: float, quantile: float) -> float:
        """Time (ns) by which a pair exists with the given probability."""
        alpha = self.model.alpha_for_fidelity(min_fidelity)
        return self.model.time_quantile(alpha, quantile)

    # ------------------------------------------------------------------
    # Generation loop
    # ------------------------------------------------------------------

    def _on_slot_freed(self, pool_name: str) -> None:
        if pool_name == self.name:
            self._kick()

    def _kick(self) -> None:
        if not self._running:
            self._try_start_round()

    def _eligible_purposes(self) -> list[str]:
        if self._eligible_dirty:
            self._eligible = [
                purpose_id for purpose_id, request in self._requests.items()
                if request.active and request.fully_endorsed()]
            self._eligible_dirty = False
        return self._eligible

    def _comm_pools(self):
        pools = self._pools
        if pools is None:
            pools = self._pools = (self.node_a.qmm.comm_pool(self.name),
                                   self.node_b.qmm.comm_pool(self.name))
        return pools

    def _slots_free(self) -> bool:
        pool_a, pool_b = self._comm_pools()
        return pool_a.in_use < pool_a.capacity and pool_b.in_use < pool_b.capacity

    def _try_start_round(self) -> None:
        if not self.up:
            return
        eligible = self._eligible_purposes()
        if not eligible or not self._slots_free():
            return
        boosted = [purpose_id for purpose_id in eligible
                   if self._boosted(purpose_id)] if self._priorities else None
        purpose_id = self._scheduler.pick(boosted or eligible)
        if purpose_id is None:
            return
        pool_a, pool_b = self._comm_pools()
        slot_a = pool_a.try_acquire()
        slot_b = pool_b.try_acquire()
        if slot_a is None or slot_b is None:  # pragma: no cover - guarded above
            if slot_a:
                slot_a.release()
            if slot_b:
                slot_b.release()
            return
        self._running = True
        arbiters = [self.node_a.arbiter, self.node_b.arbiter] if self._serialize else []
        if arbiters:
            acquire_ordered(arbiters, partial(self._run_round, purpose_id,
                                              slot_a, slot_b, arbiters))
        elif self.batched and self._batch_ok:
            self._run_chain(purpose_id, slot_a, slot_b)
        else:
            self._run_round(purpose_id, slot_a, slot_b, arbiters)

    def _next_u(self) -> float:
        """Next uniform from the per-link stream (block-refilled).

        A numpy ``Generator.random(n)`` block equals ``n`` sequential scalar
        draws (pinned by a regression test), so buffering changes nothing
        observable — it just amortises the RNG call.
        """
        if self._pushback:
            return self._pushback.pop()
        pos = self._upos
        buf = self._ubuf
        if pos >= _RNG_BLOCK:
            buf = self._ubuf = self._rng.random(_RNG_BLOCK)
            pos = 0
        self._upos = pos + 1
        return buf[pos]

    def _run_round(self, purpose_id: str, slot_a: Slot, slot_b: Slot,
                   arbiters: list) -> None:
        request = self._requests.get(purpose_id)
        if request is None or not request.active:
            # Request ended while we waited for the device.
            self._abort_round(slot_a, slot_b, arbiters)
            return
        sim = self.sim
        # Inline geometric sampling (cf. SingleClickModel.sample_attempts):
        # one inverse-CDF draw per slice with the per-request cached log.
        attempts_needed = math.ceil(math.log(1.0 - self._next_u())
                                    / request.log_miss)
        if attempts_needed < 1:
            attempts_needed = 1
        slice_attempts = self.slice_attempts
        success = attempts_needed <= slice_attempts
        burst = attempts_needed if success else slice_attempts
        # Round-finish events are never cancelled (interrupts act on the
        # *state* the finisher reads), so use the pooled no-handle path.
        sim.post_at(sim._now + burst * self._cycle_time, self._finish_round,
                    request, burst, success, slot_a, slot_b, arbiters)

    # -- batched (chain) path -------------------------------------------

    def _run_chain(self, purpose_id: str, slot_a: Slot, slot_b: Slot) -> None:
        """Pre-compute the whole failed-slices-then-success chain.

        Equivalent to running :meth:`_run_round`/:meth:`_finish_round` once
        per slice: failed slices release and re-acquire the same LIFO slots
        at the same instant, attempt noise is a no-op (``_batch_ok``), and
        the WRR picks are replayed against a shadow copy of the scheduler's
        virtual times.  Only the chain's boundary event enters the queue.
        """
        requests = self._requests
        request = requests.get(purpose_id)
        if request is None or not request.active:
            self._abort_round(slot_a, slot_b, [])
            return
        sim = self.sim
        slice_attempts = self.slice_attempts
        cycle = self._cycle_time
        scheduler = self._scheduler
        eligible = self._eligible_purposes()
        # With one eligible purpose every pick trivially returns it; the
        # shadow replay is only needed for true multiplexing.
        replay = len(eligible) > 1
        virt = dict(scheduler._virtual) if replay else None
        weights = scheduler._weights
        priorities = self._priorities
        log = math.log
        next_u = self._next_u
        slices = []
        t = sim._now
        success = False
        while len(slices) < _MAX_CHAIN:
            u = next_u()
            n = math.ceil(log(1.0 - u) / request.log_miss)
            if n < 1:
                n = 1
            if n <= slice_attempts:
                slices.append((request, n, u))
                t += n * cycle
                success = True
                break
            slices.append((request, slice_attempts, u))
            t += slice_attempts * cycle
            if replay:
                virt[purpose_id] += slice_attempts * cycle / weights[purpose_id]
                pool = eligible
                if priorities:
                    boosted = [p for p in eligible if priorities.get(p)]
                    if boosted:
                        pool = boosted
                # Replay of FairShareScheduler.pick: strict less-than, first
                # wins, over the eligible list's iteration order.
                best, best_virtual = None, float("inf")
                for candidate in pool:
                    virtual = virt[candidate]
                    if virtual < best_virtual:
                        best, best_virtual = candidate, virtual
                purpose_id = best
                request = requests[purpose_id]
        event = sim.schedule_at(t, self._finish_chain)
        self._chain = _Chain(slices, sim._now, success, slot_a, slot_b, event)
        if self.chain_hist is not None:
            self.chain_hist.observe(len(slices))

    def _charge_slices(self, slices) -> int:
        """Apply a batch of slices' bookkeeping; returns total attempts."""
        cycle = self._cycle_time
        charge = self._scheduler.charge
        total = 0
        run_request, run_attempts = None, 0
        for request, burst, _u in slices:
            total += burst
            if request is run_request:
                run_attempts += burst
                continue
            if run_request is not None:
                try:
                    charge(run_request.purpose_id, run_attempts * cycle)
                except KeyError:
                    pass
            run_request, run_attempts = request, burst
        if run_request is not None:
            try:
                charge(run_request.purpose_id, run_attempts * cycle)
            except KeyError:
                pass
        self._attempts_made += total
        self._busy_time += total * cycle
        return total

    def _chain_elapsed_attempts(self) -> int:
        """Attempts of in-flight-chain slices already finished at ``now``.

        The scalar engine books a round's attempts when its finish event
        fires; a pre-computed chain books them at settle/finish instead.
        The stats properties bridge the gap so telemetry read mid-chain
        (traffic reports, benchmarks) is identical either way.
        """
        chain = self._chain
        if chain is None:
            return 0
        cycle = self._cycle_time
        now = self.sim._now
        t = chain.start
        total = 0
        for _request, burst, _u in chain.slices:
            t += burst * cycle
            if t > now:
                break
            total += burst
        return total

    @property
    def attempts_made(self) -> int:
        return self._attempts_made + self._chain_elapsed_attempts()

    @property
    def busy_time(self) -> float:
        return self._busy_time + self._chain_elapsed_attempts() * self._cycle_time

    def _finish_chain(self) -> None:
        chain = self._chain
        self._chain = None
        self._charge_slices(chain.slices)
        request = chain.slices[-1][0]
        if chain.success and request.active and self.up:
            self._deliver_pair(request, chain.slot_a, chain.slot_b)
            self._running = False
            self._kick()
            return
        # Chain hit the length cap without success (the settled-failure
        # cases clear the chain before this event can fire): continue
        # exactly like a failed round, slots still in hand when possible.
        eligible = self._eligible_purposes()
        if (self.up and len(eligible) == 1
                and eligible[0] == request.purpose_id):
            self._run_chain(request.purpose_id, chain.slot_a, chain.slot_b)
            return
        chain.slot_a.release()
        chain.slot_b.release()
        self._running = False
        self._kick()

    def _settle_chain(self) -> None:
        """Collapse a pre-computed chain back to the event-per-slice path.

        Called *before* any mutation that could invalidate the chain's
        replayed decisions.  Completed slices are accounted in bulk, the
        in-flight slice is handed to the ordinary :meth:`_finish_round`
        (success iff it was the chain's final slice), and the uniforms of
        never-started slices are pushed back so the scalar path re-draws
        them in the original order.
        """
        chain = self._chain
        if chain is None:
            return
        self._chain = None
        chain.event.cancel()
        sim = self.sim
        now = sim._now
        cycle = self._cycle_time
        slices = chain.slices
        t = chain.start
        unused_from = len(slices)
        for i, (request, burst, _u) in enumerate(slices):
            end = t + burst * cycle
            if end <= now:
                t = end
                continue
            # Slices are contiguous from chain.start <= now, so the first
            # slice ending after now necessarily started at t <= now: it is
            # the in-flight round.  (An interrupt exactly on a boundary
            # counts the next slice as started — see the module docstring.)
            self._charge_slices(slices[:i])
            success = chain.success and i == len(slices) - 1
            sim.post_at(end, self._finish_round, request, burst, success,
                        chain.slot_a, chain.slot_b, [])
            unused_from = i + 1
            break
        else:
            # Interrupted exactly at the chain's completion instant: account
            # everything and re-run the delivery/continue logic as a
            # zero-attempt finish, *after* the interrupting mutation.
            self._charge_slices(slices)
            sim.post_at(now, self._finish_round, slices[-1][0], 0,
                        chain.success, chain.slot_a, chain.slot_b, [])
        for i in range(len(slices) - 1, unused_from - 1, -1):
            self._pushback.append(slices[i][2])

    def _abort_round(self, slot_a: Slot, slot_b: Slot, arbiters: list) -> None:
        slot_a.release()
        slot_b.release()
        if arbiters:
            release_all(arbiters)
        self._running = False
        self._kick()

    def _finish_round(self, request: LinkRequestState, burst: int, success: bool,
                      slot_a: Slot, slot_b: Slot, arbiters: list) -> None:
        self._attempts_made += burst
        busy = burst * self._cycle_time
        self._busy_time += busy
        # Attempt noise only touches parked storage qubits (near-term model);
        # skip the call entirely on the common empty-storage path.
        if self._device_a._stored:
            self._device_a.charge_attempt_noise(burst)
        if self._device_b._stored:
            self._device_b.charge_attempt_noise(burst)
        try:
            self._scheduler.charge(request.purpose_id, busy)
        except KeyError:
            pass  # request ended while the round was in flight
        if success and request.active and self.up:
            self._deliver_pair(request, slot_a, slot_b)
        else:
            eligible = self._eligible_purposes()
            if (self.up and not arbiters and len(eligible) == 1
                    and eligible[0] == request.purpose_id):
                # Fast continue: the slice failed and no other purpose could
                # be scheduled (eligibility implies the request is live and
                # endorsed), so start the next slice for the same purpose
                # with the slots still in hand — skipping the release/notify/
                # re-pick/re-acquire churn.  Equivalent to the slow path:
                # the next round starts at the same instant, samples the
                # same RNG draw, and the scheduler would pick this purpose
                # again (it is the only one).
                if self.batched and self._batch_ok:
                    self._run_chain(request.purpose_id, slot_a, slot_b)
                else:
                    self._run_round(request.purpose_id, slot_a, slot_b,
                                    arbiters)
                return
            slot_a.release()
            slot_b.release()
        if arbiters:
            release_all(arbiters)
        self._running = False
        self._kick()

    def _deliver_pair(self, request: LinkRequestState, slot_a: Slot,
                      slot_b: Slot) -> None:
        # Drawn from the per-link stream *at delivery time*, i.e. after the
        # chain's geometric draws — the same stream order as the
        # event-per-slice path (geo, geo, ..., geo, herald).
        bell_index = (BellIndex.PSI_PLUS if self._next_u() < 0.5
                      else BellIndex.PSI_MINUS)
        correlator = (self.name, next(self._seq))
        stem = f"{self.name}:{correlator[1]}@"
        qubit_a, qubit_b = request.make_pair(
            bell_index,
            stem + self.node_a.name,
            stem + self.node_b.name)
        self.node_a.device.adopt_comm_qubit(qubit_a)
        self.node_b.device.adopt_comm_qubit(qubit_b)
        slot_a.commit(qubit_a, correlator)
        slot_b.commit(qubit_b, correlator)
        self.node_a.qmm.bind(correlator, qubit_a)
        self.node_b.qmm.bind(correlator, qubit_b)
        goodness = request.goodness
        request.pairs_delivered += 1
        self.pairs_generated += 1
        t_create = self.sim._now
        if self.trace is not None:
            self.trace.record(t_create, self.name, "EGP_PAIR",
                              purpose=request.purpose_id,
                              correlator=correlator)
        if self.station is not None:
            # The analytic fast-forward skips the photon-level events, so
            # account the herald on the station directly: one successful
            # single-click window per delivered pair.  No RNG is drawn.
            self.station.record_herald(bell_index)
        ports = self._delivery_ports
        for node, qubit in ((self.node_a, qubit_a), (self.node_b, qubit_b)):
            # tx() raises PortNotConnectedError (a RuntimeError naming the
            # link and endpoint) when no network layer is attached.
            ports[node.name].tx(LinkPairDelivery(
                link_name=self.name,
                purpose_id=request.purpose_id,
                entanglement_id=correlator,
                bell_index=bell_index,
                qubit=qubit,
                goodness=goodness,
                t_create=t_create,
            ))
