"""repro — a full reproduction of "Designing a Quantum Network Protocol".

Kozlowski, Dahlberg & Wehner, CoNEXT 2020 (arXiv:2010.02575).

The package implements the Quantum Network Protocol (QNP) — a connection
oriented quantum data plane protocol that produces end-to-end entangled
pairs — together with every substrate it depends on:

* :mod:`repro.netsim` — a discrete-event simulation kernel,
* :mod:`repro.quantum` — an exact density-matrix quantum engine,
* :mod:`repro.hardware` — NV-centre hardware and fibre models,
* :mod:`repro.linklayer` — the link layer entanglement generation service,
* :mod:`repro.network` — node/memory/topology assembly,
* :mod:`repro.control` — routing, signalling and classical transport,
* :mod:`repro.core` — the QNP itself (the paper's contribution),
* :mod:`repro.services` — applications built on the QNP,
* :mod:`repro.analysis` — experiment and statistics helpers.

Quickstart::

    from repro import build_chain_network, UserRequest

    net = build_chain_network(num_nodes=3, seed=1)
    circuit = net.establish_circuit("node0", "node2", target_fidelity=0.8)
    handle = net.submit(circuit, UserRequest(num_pairs=5))
    net.run(until_s=20)
    for pair in handle.delivered:
        print(pair.bell_state, pair.estimated_fidelity)

The convenience names below are imported lazily (PEP 562) so that the light
subpackages (``repro.netsim``, ``repro.quantum``) can be used without paying
for the whole stack.
"""

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "UserRequest": ("repro.core.requests", "UserRequest"),
    "RequestType": ("repro.core.requests", "RequestType"),
    "Network": ("repro.network.builder", "Network"),
    "build_chain_network": ("repro.network.builder", "build_chain_network"),
    "build_dumbbell_network": ("repro.network.builder", "build_dumbbell_network"),
    "build_near_term_chain": ("repro.network.builder", "build_near_term_chain"),
}

__all__ = ["__version__", *_LAZY_EXPORTS]


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(__all__)
