"""Fidelity computations.

Fidelity is *the* quantum quality metric of the paper (Sec 2.3): a value in
[0, 1] quantifying closeness to the desired state, usable above an
application-specific threshold (0.5 marks the boundary of useful
entanglement, ~0.8 suffices for basic QKD).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import sqrtm

from .bell import bell_vector
from .bellstate import BellPairState, exact_state
from .qubit import Qubit
from .states import QState


def pure_state_fidelity(dm: np.ndarray, vector: np.ndarray) -> float:
    """Fidelity of ``dm`` with respect to a pure state vector: ⟨ψ|ρ|ψ⟩."""
    vector = np.asarray(vector, dtype=complex)
    value = float(np.real(vector.conj() @ dm @ vector))
    return min(max(value, 0.0), 1.0)


def bell_fidelity(dm: np.ndarray, bell_index: int = 0) -> float:
    """Fidelity of a two-qubit dm with respect to a Bell state."""
    if dm.shape != (4, 4):
        raise ValueError("bell_fidelity needs a two-qubit density matrix")
    return pure_state_fidelity(dm, bell_vector(bell_index))


def state_fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity  F(ρ,σ) = (tr √(√ρ σ √ρ))²  between two mixed states."""
    sqrt_rho = sqrtm(np.asarray(rho, dtype=complex))
    inner = sqrtm(sqrt_rho @ np.asarray(sigma, dtype=complex) @ sqrt_rho)
    value = float(np.real(np.trace(inner)) ** 2)
    return min(max(value, 0.0), 1.0)


def pair_fidelity(qubit_a: Qubit, qubit_b: Qubit, bell_index: int = 0) -> float:
    """Fidelity of the pair held by two qubit handles to a Bell state.

    This reads the simulation's ground-truth density matrix.  The QNP never
    calls it — only the evaluation oracle of Fig 10 and the test-suite do
    (the paper makes the same point about its "simpler protocol" baseline).
    """
    if qubit_a.state is None or qubit_b.state is None:
        raise ValueError("both qubits must be active")
    state = qubit_a.state
    if state is qubit_b.state:
        if isinstance(state, BellPairState):
            # Bell formalism: the fidelity IS the weight.
            return state.fidelity_to(bell_index)
    else:
        state = QState.merge(exact_state(qubit_a), exact_state(qubit_b))
    dm = state.reduced_dm([qubit_a, qubit_b])
    return bell_fidelity(dm, bell_index)
