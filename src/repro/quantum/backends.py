"""Pluggable quantum-state backends (the formalism-selection layer).

NetSquid scales by letting each run pick the cheapest state formalism that
is still faithful for its workload (Kozlowski et al., CoNEXT 2020); this
module is that layer for the reproduction.  A :class:`Backend` turns the
abstract event "the hardware produced an entangled pair" into a concrete
state representation:

* :class:`DensityMatrixBackend` (``"dm"``) — the exact engine of
  :mod:`repro.quantum.states`: joint density matrices, O(4^n) tensor
  contractions, faithful for arbitrary states and operations.
* :class:`BellDiagonalBackend` (``"bell"``) — pairs as 4-vectors of Bell
  weights (:mod:`repro.quantum.bellstate`): O(1) per operation, exact on the
  QNP hot path (Bell-diagonal states under dephasing, depolarizing,
  entanglement swaps and Pauli-basis measurements), a twirled approximation
  for amplitude damping and for the heralded |11⟩ coherences, and automatic
  promotion to the exact engine for anything else.

The knob threads through the whole stack —
``build_chain_network(formalism="bell")``, ``Network(..., formalism=...)``,
``python -m repro <cmd> --formalism bell`` — so every benchmark and example
can run on either representation.  See DESIGN.md for the exact/approximate
boundary and the speedups measured in ``BENCH_*.json``.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from .bell import BellIndex, bell_diagonal_dm
from .bellstate import BellPairState, create_bell_diagonal_pair
from .qubit import Qubit
from .states import QState


class _ForwardingPairMaker:
    """Default ``link_pair_factory`` product: forwards to the backend.

    A callable class (not a closure) so installed link requests — which hold
    their pair maker for their whole lifetime — survive pickling in engine
    checkpoints.
    """

    __slots__ = ("backend", "model", "alpha")

    def __init__(self, backend: "Backend", model, alpha: float):
        self.backend = backend
        self.model = model
        self.alpha = alpha

    def __call__(self, bell_index, name_a="", name_b=""):
        return self.backend.create_link_pair(self.model, self.alpha,
                                             bell_index, name_a, name_b)


class _DmPairMaker:
    """Pair maker with the two heralded density matrices prebound."""

    __slots__ = ("matrices",)

    def __init__(self, matrices: dict):
        self.matrices = matrices

    def __call__(self, bell_index, name_a="", name_b=""):
        qubit_a = Qubit(name_a)
        qubit_b = Qubit(name_b)
        QState.from_trusted_dm(self.matrices[bell_index], [qubit_a, qubit_b])
        return qubit_a, qubit_b


class _BellPairMaker:
    """Pair maker with the two heralded weight vectors prebound."""

    __slots__ = ("weights",)

    def __init__(self, weights: dict):
        self.weights = weights

    def __call__(self, bell_index, name_a="", name_b=""):
        qubit_a = Qubit(name_a)
        qubit_b = Qubit(name_b)
        BellPairState.from_trusted_weights(self.weights[bell_index],
                                           [qubit_a, qubit_b])
        return qubit_a, qubit_b


class Backend:
    """Strategy object deciding how entangled pairs are represented.

    Subclasses implement :meth:`create_link_pair` (the link layer's pair
    materialisation — the hottest allocation in the simulator) and
    :meth:`create_pair_from_weights` (tests, analytics, services).
    """

    #: Registry key and CLI spelling.
    name: str = ""
    #: Whether the formalism is exact for arbitrary states and operations.
    exact: bool = True

    def create_link_pair(self, model, alpha: float, bell_index: BellIndex,
                         name_a: str = "", name_b: str = "") -> Tuple[Qubit, Qubit]:
        """Materialise one heralded link pair from a single-click model."""
        raise NotImplementedError

    def create_pair_from_weights(self, weights: Sequence[float],
                                 name_a: str = "",
                                 name_b: str = "") -> Tuple[Qubit, Qubit]:
        """Materialise a Bell-diagonal pair from explicit weights."""
        raise NotImplementedError

    def link_pair_factory(self, model, alpha: float):
        """A per-``(model, α)`` pair materialiser for the link layer.

        ``alpha`` is fixed for the lifetime of a generation request, so the
        produced-state lookup (a memo-dict probe per delivery through
        :meth:`create_link_pair`) can be hoisted out of the generation loop
        entirely.  Returns ``make(bell_index, name_a, name_b)``; the default
        simply forwards to :meth:`create_link_pair` so custom backends keep
        working unchanged.  All factory products are picklable callables:
        installed link requests hold them, and engine checkpoints pickle
        installed requests.
        """
        return _ForwardingPairMaker(self, model, alpha)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class DensityMatrixBackend(Backend):
    """The exact density-matrix formalism (the seed's only engine)."""

    name = "dm"
    exact = True

    def create_link_pair(self, model, alpha, bell_index,
                         name_a="", name_b=""):
        qubit_a = Qubit(name_a)
        qubit_b = Qubit(name_b)
        QState(model.produced_dm(alpha, bell_index), [qubit_a, qubit_b])
        return qubit_a, qubit_b

    def create_pair_from_weights(self, weights, name_a="", name_b=""):
        qubit_a = Qubit(name_a)
        qubit_b = Qubit(name_b)
        QState(bell_diagonal_dm(weights), [qubit_a, qubit_b])
        return qubit_a, qubit_b

    def link_pair_factory(self, model, alpha):
        """Prebind the two heralded density matrices (Ψ±) for this α."""
        matrices = {index: model.produced_dm(alpha, index)
                    for index in (BellIndex.PSI_PLUS, BellIndex.PSI_MINUS)}
        return _DmPairMaker(matrices)


class BellDiagonalBackend(Backend):
    """The fast Bell-diagonal formalism (weights instead of matrices)."""

    name = "bell"
    exact = False

    def create_link_pair(self, model, alpha, bell_index,
                         name_a="", name_b=""):
        qubit_a = Qubit(name_a)
        qubit_b = Qubit(name_b)
        # produced_weights is memoized and normalised — skip re-validation.
        BellPairState.from_trusted_weights(
            model.produced_weights(alpha, bell_index), [qubit_a, qubit_b])
        return qubit_a, qubit_b

    def create_pair_from_weights(self, weights, name_a="", name_b=""):
        return create_bell_diagonal_pair(weights, name_a, name_b)

    def link_pair_factory(self, model, alpha):
        """Prebind the two heralded weight vectors (Ψ±) for this α."""
        weights = {index: model.produced_weights(alpha, index)
                   for index in (BellIndex.PSI_PLUS, BellIndex.PSI_MINUS)}
        return _BellPairMaker(weights)


_BACKENDS: dict[str, Backend] = {
    backend.name: backend
    for backend in (DensityMatrixBackend(), BellDiagonalBackend())
}

#: Formalism names accepted everywhere a ``formalism=`` knob appears.
FORMALISMS: tuple[str, ...] = tuple(_BACKENDS)

DEFAULT_FORMALISM = "dm"


def get_backend(formalism: Union[str, Backend, None]) -> Backend:
    """Resolve a formalism name (or pass a backend instance through).

    ``None`` resolves to the default exact engine, so call sites can take
    an optional knob without special-casing.
    """
    if formalism is None:
        return _BACKENDS[DEFAULT_FORMALISM]
    if isinstance(formalism, Backend):
        return formalism
    try:
        return _BACKENDS[formalism]
    except KeyError:
        raise ValueError(
            f"unknown state formalism {formalism!r}"
            f" (available: {', '.join(FORMALISMS)})") from None


def register_backend(backend: Backend) -> None:
    """Register a custom formalism (experiments, tests)."""
    if not backend.name:
        raise ValueError("backend needs a non-empty name")
    _BACKENDS[backend.name] = backend
    global FORMALISMS
    FORMALISMS = tuple(_BACKENDS)


__all__ = [
    "Backend",
    "DensityMatrixBackend",
    "BellDiagonalBackend",
    "BellPairState",
    "FORMALISMS",
    "DEFAULT_FORMALISM",
    "get_backend",
    "register_backend",
]
