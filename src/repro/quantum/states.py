"""Shared quantum state container — the density-matrix engine.

A :class:`QState` owns the joint density matrix of one or more qubits.  This
is the NetSquid-formalism substitute: protocols never touch matrices, they
hold :class:`~repro.quantum.qubit.Qubit` handles and call the operations in
:mod:`repro.quantum.operations`.

The engine is exact: gates and channels are applied by tensor contraction
on the 2^n × 2^n density matrix.  In this system ``n`` never exceeds 4
(two entangled pairs merged for an entanglement swap), so everything stays
tiny and fast.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from .channels import decoherence_kraus, dephasing_kraus, depolarizing_kraus
from .gates import PAULI_FRAME
from .qubit import Qubit

_TOL = 1e-9


class QState:
    """Joint density matrix over an ordered list of qubits."""

    def __init__(self, dm: np.ndarray, qubits: Sequence[Qubit]):
        dm = np.asarray(dm, dtype=complex)
        n = len(qubits)
        if dm.shape != (2 ** n, 2 ** n):
            raise ValueError(f"density matrix shape {dm.shape} does not match {n} qubits")
        self.dm = dm
        self.qubits = list(qubits)
        for qubit in self.qubits:
            if qubit.state is not None and qubit.state is not self:
                raise ValueError(f"{qubit.name} already belongs to another state")
            qubit.state = self

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_trusted_dm(cls, dm: np.ndarray, qubits: Sequence[Qubit]) -> "QState":
        """Bind fresh qubits to a pre-validated density matrix.

        The hot-path constructor mirroring
        :meth:`~repro.quantum.bellstate.BellPairState.from_trusted_weights`:
        link-pair materialisation passes memoized, correctly shaped (and
        possibly read-only) matrices, so the ``__init__`` validation would
        be pure overhead.  Callers guarantee shape and ownership.
        """
        state = object.__new__(cls)
        state.dm = dm
        state.qubits = list(qubits)
        for qubit in state.qubits:
            qubit.state = state
        return state

    @classmethod
    def from_pure(cls, vector: np.ndarray, qubits: Sequence[Qubit]) -> "QState":
        """Create a state from a pure state vector."""
        vector = np.asarray(vector, dtype=complex)
        norm = np.linalg.norm(vector)
        if abs(norm - 1.0) > 1e-6:
            raise ValueError("state vector is not normalised")
        return cls(np.outer(vector, vector.conj()), qubits)

    @classmethod
    def ground(cls, qubit: Qubit) -> "QState":
        """A fresh single qubit in |0⟩."""
        return cls.from_pure(np.array([1.0, 0.0]), [qubit])

    @staticmethod
    def merge(state_a: "QState", state_b: "QState") -> "QState":
        """Tensor two disjoint states into one; qubit handles survive."""
        if state_a is state_b:
            return state_a
        dm = np.kron(state_a.dm, state_b.dm)
        qubits = state_a.qubits + state_b.qubits
        for qubit in qubits:
            qubit.state = None
        return QState(dm, qubits)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def index_of(self, qubit: Qubit) -> int:
        return self.qubits.index(qubit)

    def trace(self) -> float:
        return float(np.real(np.trace(self.dm)))

    def is_valid(self, tol: float = 1e-7) -> bool:
        """Trace one, Hermitian, positive semidefinite."""
        if abs(self.trace() - 1.0) > tol:
            return False
        if not np.allclose(self.dm, self.dm.conj().T, atol=tol):
            return False
        eigenvalues = np.linalg.eigvalsh(self.dm)
        return bool(eigenvalues.min() > -tol)

    def probability_of(self, projector: np.ndarray, targets: Sequence[Qubit]) -> float:
        """Probability of the projector on the given qubits."""
        projected = self._contract(projector, [self.index_of(q) for q in targets])
        return float(np.real(np.trace(projected)))

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def apply_unitary(self, unitary: np.ndarray, targets: Sequence[Qubit]) -> None:
        """Apply a unitary to the given qubits (in order)."""
        indices = [self.index_of(q) for q in targets]
        self.dm = self._sandwich(unitary, indices)

    def apply_channel(self, kraus_ops: Iterable[np.ndarray], targets: Sequence[Qubit]) -> None:
        """Apply a Kraus channel to the given qubits (in order)."""
        indices = [self.index_of(q) for q in targets]
        result = None
        for op in kraus_ops:
            term = self._sandwich(op, indices)
            result = term if result is None else result + term
        if result is None:
            raise ValueError("channel has no Kraus operators")
        self.dm = result

    # ------------------------------------------------------------------
    # Named noise channels (shared interface with the Bell-diagonal backend)
    # ------------------------------------------------------------------

    def apply_dephasing(self, p: float, qubit: Qubit) -> None:
        """Phase-flip channel with probability ``p`` on one qubit."""
        if p > 0:
            self.apply_channel(dephasing_kraus(p), [qubit])

    def apply_depolarizing(self, p: float, qubit: Qubit) -> None:
        """Single-qubit depolarizing channel with probability ``p``."""
        if p > 0:
            self.apply_channel(depolarizing_kraus(p), [qubit])

    def apply_decoherence(self, elapsed: float, t1: float, t2: float,
                          qubit: Qubit) -> None:
        """Combined T1/T2 memory channel for ``elapsed`` ns of idle time."""
        if elapsed > 0:
            self.apply_channel(decoherence_kraus(elapsed, t1, t2), [qubit])

    def apply_pauli(self, frame_index: int, qubit: Qubit) -> None:
        """Apply the Pauli frame ``X^b Z^a`` (packed two-bit index)."""
        frame_index = int(frame_index) & 0b11
        if frame_index:
            self.apply_unitary(PAULI_FRAME[frame_index], [qubit])

    def measure(self, qubit: Qubit, rng, remove: bool = True) -> int:
        """Projective Z measurement; collapses and (optionally) removes the qubit.

        Returns the true physical outcome bit (readout errors are a classical
        layer on top, handled in :mod:`repro.quantum.operations`).
        """
        position = self.index_of(qubit)
        p0 = np.diag([1.0, 0.0]).astype(complex)
        prob0 = float(np.real(np.trace(self._contract(p0, [position]))))
        prob0 = min(max(prob0, 0.0), 1.0)
        outcome = 0 if rng.random() < prob0 else 1
        projector = np.diag([1.0, 0.0] if outcome == 0 else [0.0, 1.0]).astype(complex)
        self.dm = self._sandwich(projector, [position])
        norm = float(np.real(np.trace(self.dm)))
        if norm <= _TOL:
            raise RuntimeError("measurement collapsed to zero-probability branch")
        self.dm /= norm
        if remove:
            self.remove(qubit)
        return outcome

    def remove(self, qubit: Qubit) -> None:
        """Partial-trace a qubit out of the state and detach its handle."""
        position = self.index_of(qubit)
        n = self.num_qubits
        tensor = self.dm.reshape([2] * (2 * n))
        tensor = np.trace(tensor, axis1=position, axis2=position + n)
        self.qubits.pop(position)
        qubit.state = None
        remaining = len(self.qubits)
        self.dm = tensor.reshape(2 ** remaining, 2 ** remaining) if remaining else \
            np.array([[1.0]], dtype=complex)

    def reduced_dm(self, targets: Sequence[Qubit]) -> np.ndarray:
        """Density matrix of a subset of qubits (others traced out)."""
        keep = [self.index_of(q) for q in targets]
        n = self.num_qubits
        tensor = self.dm.reshape([2] * (2 * n))
        # Trace out the qubits not kept, highest position first so earlier
        # positions stay valid.
        for position in sorted(set(range(n)) - set(keep), reverse=True):
            current_n = len(tensor.shape) // 2
            tensor = np.trace(tensor, axis1=position, axis2=position + current_n)
            keep = [k if k < position else k - 1 for k in keep]
        current_n = len(tensor.shape) // 2
        dm = tensor.reshape(2 ** current_n, 2 ** current_n)
        # Reorder to match the requested target order.
        order = list(np.argsort(np.argsort(keep)))
        if order != list(range(len(keep))):
            dm = _permute_qubits(dm, keep)
        return dm

    # ------------------------------------------------------------------
    # Tensor plumbing
    # ------------------------------------------------------------------

    def _sandwich(self, op: np.ndarray, indices: list[int]) -> np.ndarray:
        """Compute ``op ρ op†`` with ``op`` acting on the given qubit indices."""
        rho = _apply_left(self.dm, op, indices, self.num_qubits)
        return _apply_right(rho, op.conj().T, indices, self.num_qubits)

    def _contract(self, op: np.ndarray, indices: list[int]) -> np.ndarray:
        """Compute ``op ρ`` (left application only), for probabilities."""
        return _apply_left(self.dm, op, indices, self.num_qubits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(q.name for q in self.qubits)
        return f"<QState [{names}]>"


@lru_cache(maxsize=None)
def _left_perm(n: int, targets: tuple[int, ...]) -> tuple[int, ...]:
    """Inverse transpose permutation for :func:`_apply_left`.

    After the tensordot the op's output axes sit first, followed by the
    remaining axes in original order; this permutation moves every axis back
    to its home position.  The argument space is tiny (n ≤ 4, a handful of
    target tuples) but each entry used to cost O(n²) ``list.index`` calls on
    every single gate application — the hottest line of the exact engine.
    """
    rest = [axis for axis in range(2 * n) if axis not in targets]
    current_order = list(targets) + rest
    perm = [0] * (2 * n)
    for position, axis in enumerate(current_order):
        perm[axis] = position
    return tuple(perm)


@lru_cache(maxsize=None)
def _right_perm(n: int, targets: tuple[int, ...]) -> tuple[int, ...]:
    """Inverse transpose permutation for :func:`_apply_right` (op axes last)."""
    column_targets = [t + n for t in targets]
    rest = [axis for axis in range(2 * n) if axis not in column_targets]
    current_order = rest + column_targets
    perm = [0] * (2 * n)
    for position, axis in enumerate(current_order):
        perm[axis] = position
    return tuple(perm)


def _apply_left(dm: np.ndarray, op: np.ndarray, targets: list[int], n: int) -> np.ndarray:
    """Multiply ``op`` (on ``targets``) into the row indices of ``dm``."""
    k = len(targets)
    if op.shape != (2 ** k, 2 ** k):
        raise ValueError(f"operator shape {op.shape} does not match {k} targets")
    tensor = dm.reshape([2] * (2 * n))
    op_tensor = op.reshape([2] * (2 * k))
    contracted = np.tensordot(op_tensor, tensor,
                              axes=(list(range(k, 2 * k)), targets))
    # tensordot puts the op's output axes first; move them back into place.
    perm = _left_perm(n, tuple(targets))
    return contracted.transpose(perm).reshape(2 ** n, 2 ** n)


def _apply_right(dm: np.ndarray, op: np.ndarray, targets: list[int], n: int) -> np.ndarray:
    """Multiply ``op`` (on ``targets``) into the column indices of ``dm``."""
    column_targets = [t + n for t in targets]
    k = len(targets)
    tensor = dm.reshape([2] * (2 * n))
    op_tensor = op.reshape([2] * (2 * k))
    contracted = np.tensordot(tensor, op_tensor,
                              axes=(column_targets, list(range(k))))
    # tensordot appends the op's output axes at the end; restore positions.
    perm = _right_perm(n, tuple(targets))
    return contracted.transpose(perm).reshape(2 ** n, 2 ** n)


def _permute_qubits(dm: np.ndarray, keep_positions: list[int]) -> np.ndarray:
    """Reorder a reduced dm so qubits appear in the order originally requested.

    ``keep_positions`` holds the original positions in request order; the dm
    currently has them sorted ascending.
    """
    n = len(keep_positions)
    sorted_positions = sorted(keep_positions)
    # current axis i corresponds to sorted_positions[i]; we want axis j to be
    # keep_positions[j].
    axis_map = [sorted_positions.index(p) for p in keep_positions]
    tensor = dm.reshape([2] * (2 * n))
    perm = axis_map + [a + n for a in axis_map]
    return tensor.transpose(perm).reshape(2 ** n, 2 ** n)
