"""High-level quantum operations used by the protocol stack.

Everything protocols do to qubits goes through this module:

* creating entangled pairs from a density matrix (link layer),
* noisy Bell-state measurements (entanglement swaps, Alg. 7),
* Pauli frame corrections (head-end TRACK rule, Alg. 2),
* noisy single-qubit measurements in X/Y/Z (MEASURE requests, QKD,
  distillation),
* the outcome-averaged swap map used by the routing protocol's worst-case
  fidelity budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .bell import swap_combine
from .bellstate import BellPairState, exact_state as _exact_state, swap_measure
from .channels import two_qubit_depolarizing_kraus, depolarizing_kraus
from .gates import CNOT, H, PAULI_FRAME, S, X, Z
from .qubit import Qubit
from .states import QState


@dataclass(frozen=True)
class NoisyOpParams:
    """Noise knobs for a physical operation, mirroring Table 1.

    ``fidelity`` maps onto a depolarizing channel around the ideal unitary;
    readout errors flip the reported classical bit.
    """

    two_qubit_gate_fidelity: float = 1.0
    single_qubit_gate_fidelity: float = 1.0
    readout_error0: float = 0.0
    readout_error1: float = 0.0

    @property
    def two_qubit_depolar_prob(self) -> float:
        """Depolarizing probability equivalent to the two-qubit gate fidelity.

        For a two-qubit depolarizing channel the average gate fidelity is
        ``1 - 4p/5`` (d=4: F = 1 - p·d/(d+1)); we invert that relation and
        clamp to [0, 1].
        """
        p = (1.0 - self.two_qubit_gate_fidelity) * 5.0 / 4.0
        return min(max(p, 0.0), 1.0)

    @property
    def single_qubit_depolar_prob(self) -> float:
        """Depolarizing probability for single-qubit gates (F = 1 - 2p/3)."""
        p = (1.0 - self.single_qubit_gate_fidelity) * 3.0 / 2.0
        return min(max(p, 0.0), 1.0)


PERFECT_OPS = NoisyOpParams()


def create_pair(dm: np.ndarray, name_a: str = "", name_b: str = "") -> Tuple[Qubit, Qubit]:
    """Create two fresh qubits holding the given two-qubit density matrix."""
    qubit_a = Qubit(name_a)
    qubit_b = Qubit(name_b)
    QState(np.asarray(dm, dtype=complex), [qubit_a, qubit_b])
    return qubit_a, qubit_b


def create_bell_pair(index: int = 0, fidelity: float = 1.0,
                     name_a: str = "", name_b: str = "") -> Tuple[Qubit, Qubit]:
    """Create a (possibly Werner-noisy) Bell pair."""
    from .bell import werner_dm

    return create_pair(werner_dm(fidelity, index), name_a, name_b)


def _ensure_joint(qubit_a: Qubit, qubit_b: Qubit) -> QState:
    if qubit_a.state is None or qubit_b.state is None:
        raise ValueError("operation on freed qubit")
    if qubit_a.state is qubit_b.state:
        return _exact_state(qubit_a)
    return QState.merge(_exact_state(qubit_a), _exact_state(qubit_b))


def bell_state_measurement(qubit_a: Qubit, qubit_b: Qubit, rng,
                           ops: NoisyOpParams = PERFECT_OPS) -> int:
    """Perform a noisy Bell-state measurement on two co-located qubits.

    This is the physical core of the entanglement swap: the two qubits are
    consumed (measured out and removed from their state) and the packed
    two-bit outcome index is returned, with readout errors applied to the
    reported bits.  The remaining qubits of the merged state — the remote
    halves of the two input pairs — are left entangled with each other.

    When both qubits are halves of two distinct Bell-diagonal pairs the
    whole measurement collapses to the O(1) XOR-convolution fast path of
    :mod:`repro.quantum.bellstate`; any other configuration promotes to the
    exact engine.
    """
    if (isinstance(qubit_a.state, BellPairState)
            and isinstance(qubit_b.state, BellPairState)
            and qubit_a.state is not qubit_b.state):
        outcome = swap_measure(qubit_a, qubit_b, rng,
                               two_qubit_depolar=ops.two_qubit_depolar_prob,
                               single_qubit_depolar=ops.single_qubit_depolar_prob)
        phase_bit = (outcome >> 1) & 1
        parity_bit = outcome & 1
        phase_bit ^= _readout_flip(phase_bit, rng, ops)
        parity_bit ^= _readout_flip(parity_bit, rng, ops)
        return (phase_bit << 1) | parity_bit
    state = _ensure_joint(qubit_a, qubit_b)
    if ops.two_qubit_depolar_prob > 0:
        state.apply_channel(two_qubit_depolarizing_kraus(ops.two_qubit_depolar_prob),
                            [qubit_a, qubit_b])
    # Rotate the Bell basis onto the computational basis: CNOT then H on the
    # control maps |B_ab⟩ → |a⟩|b⟩.
    state.apply_unitary(CNOT, [qubit_a, qubit_b])
    state.apply_unitary(H, [qubit_a])
    if ops.single_qubit_depolar_prob > 0:
        state.apply_channel(depolarizing_kraus(ops.single_qubit_depolar_prob), [qubit_a])
    phase_bit = state.measure(qubit_a, rng)
    parity_bit = state.measure(qubit_b, rng)
    phase_bit ^= _readout_flip(phase_bit, rng, ops)
    parity_bit ^= _readout_flip(parity_bit, rng, ops)
    return (phase_bit << 1) | parity_bit


def _readout_flip(bit: int, rng, ops: NoisyOpParams) -> int:
    error = ops.readout_error0 if bit == 0 else ops.readout_error1
    return 1 if (error > 0 and rng.random() < error) else 0


_BASIS_ROTATIONS = {
    "Z": None,
    "X": H,
    # Rotate Y eigenbasis onto Z: measure after S† then H.
    "Y": H @ S.conj().T,
}


def measure_qubit(qubit: Qubit, rng, basis: str = "Z",
                  ops: NoisyOpParams = PERFECT_OPS) -> int:
    """Noisy single-qubit measurement in the X, Y or Z basis.

    The qubit is consumed.  Returns the reported (possibly misread) bit.
    """
    if qubit.state is None:
        raise ValueError("cannot measure a freed qubit")
    basis = basis.upper()
    if basis not in _BASIS_ROTATIONS:
        raise ValueError(f"unknown basis {basis!r}")
    state = qubit.state
    if isinstance(state, BellPairState):
        # O(1) fast path: depolarizing commutes with the basis rotation
        # (it is unitarily covariant), so apply it to the weights and
        # sample directly; the partner collapses to its exact conditional
        # single-qubit state.
        if ops.single_qubit_depolar_prob > 0:
            state.apply_depolarizing(ops.single_qubit_depolar_prob, qubit)
        bit = state.measure_in_basis(qubit, basis, rng)
        return bit ^ _readout_flip(bit, rng, ops)
    rotation = _BASIS_ROTATIONS.get(basis)
    if rotation is not None:
        state.apply_unitary(rotation, [qubit])
    if ops.single_qubit_depolar_prob > 0:
        state.apply_channel(depolarizing_kraus(ops.single_qubit_depolar_prob), [qubit])
    bit = state.measure(qubit, rng)
    return bit ^ _readout_flip(bit, rng, ops)


def pauli_correct(qubit: Qubit, frame_index: int,
                  ops: NoisyOpParams = PERFECT_OPS) -> None:
    """Apply the Pauli frame ``X^b Z^a`` to one qubit of a pair.

    Used by the head-end node to rotate a delivered pair into the Bell state
    the application asked for (``final_state`` in the FORWARD message).
    """
    if qubit.state is None:
        raise ValueError("cannot correct a freed qubit")
    frame_index = int(frame_index) & 0b11
    if frame_index == 0:
        return
    state = qubit.state
    state.apply_pauli(frame_index, qubit)
    if ops.single_qubit_depolar_prob > 0:
        state.apply_depolarizing(ops.single_qubit_depolar_prob, qubit)


def apply_gate(qubit: Qubit, gate: np.ndarray, ops: NoisyOpParams = PERFECT_OPS) -> None:
    """Apply a noisy single-qubit gate."""
    if qubit.state is None:
        raise ValueError("cannot operate on a freed qubit")
    qubit.state.apply_unitary(gate, [qubit])
    if ops.single_qubit_depolar_prob > 0:
        qubit.state.apply_channel(depolarizing_kraus(ops.single_qubit_depolar_prob), [qubit])


def apply_two_qubit_gate(control: Qubit, target: Qubit, gate: np.ndarray,
                         ops: NoisyOpParams = PERFECT_OPS) -> None:
    """Apply a noisy two-qubit gate (merging states if needed)."""
    state = _ensure_joint(control, target)
    state.apply_unitary(gate, [control, target])
    if ops.two_qubit_depolar_prob > 0:
        state.apply_channel(two_qubit_depolarizing_kraus(ops.two_qubit_depolar_prob),
                            [control, target])


def discard(qubit: Qubit) -> None:
    """Trace a qubit out of its state (cutoff discard, Alg. 9)."""
    if qubit.state is not None:
        qubit.state.remove(qubit)


# ----------------------------------------------------------------------
# Deterministic swap map for the routing protocol's fidelity budget
# ----------------------------------------------------------------------

def averaged_swap_dm(rho_ab: np.ndarray, rho_bc: np.ndarray,
                     ops: NoisyOpParams = PERFECT_OPS) -> np.ndarray:
    """Outcome-averaged, frame-corrected entanglement-swap map.

    Builds the joint 4-qubit state of two pairs (A-B1, B2-C), applies the
    noisy Bell-state measurement on (B1, B2) *deterministically* — computing
    all four conditional outcomes — and returns the average A-C density
    matrix after each branch has been Pauli-corrected back to the Φ+ frame
    (exactly what lazy tracking achieves logically).  Readout errors are
    folded in as classical mislabel branches: a misreported outcome means the
    tracking applies the wrong frame, so the mislabeled branch contributes
    its *uncorrected-in-the-right-frame* state.

    The routing protocol composes this map L−1 times over worst-case-aged
    link states to budget per-link fidelity (Sec. 5).
    """
    rho_ab = np.asarray(rho_ab, dtype=complex)
    rho_bc = np.asarray(rho_bc, dtype=complex)
    # Qubit order: A, B1, B2, C.
    joint = np.kron(rho_ab, rho_bc)

    qubits = [Qubit(str(i)) for i in range(4)]
    state = QState(joint, qubits)
    if ops.two_qubit_depolar_prob > 0:
        state.apply_channel(two_qubit_depolarizing_kraus(ops.two_qubit_depolar_prob),
                            [qubits[1], qubits[2]])
    state.apply_unitary(CNOT, [qubits[1], qubits[2]])
    state.apply_unitary(H, [qubits[1]])

    result = np.zeros((4, 4), dtype=complex)
    for outcome in range(4):
        phase_bit, parity_bit = (outcome >> 1) & 1, outcome & 1
        proj = np.kron(np.diag([1 - phase_bit, phase_bit]),
                       np.diag([1 - parity_bit, parity_bit])).astype(complex)
        branch = state._sandwich(proj, [1, 2])
        prob = float(np.real(np.trace(branch)))
        if prob <= 1e-15:
            continue
        tensor = branch.reshape([2] * 8)
        # Trace out B1 (axis 1/5) then B2 (now axis 1/4).
        tensor = np.trace(tensor, axis1=1, axis2=5)
        tensor = np.trace(tensor, axis1=1, axis2=4)
        rho_ac = tensor.reshape(4, 4)
        for reported in range(4):
            mislabel_prob = _report_probability(outcome, reported, ops)
            if mislabel_prob <= 0:
                continue
            corrected = _frame_correct(rho_ac / prob, swap_combine(0, 0, reported))
            result += prob * mislabel_prob * corrected
    return result


def _report_probability(true_outcome: int, reported: int, ops: NoisyOpParams) -> float:
    """Probability that ``true_outcome`` is reported as ``reported``."""
    prob = 1.0
    for shift in (1, 0):
        true_bit = (true_outcome >> shift) & 1
        reported_bit = (reported >> shift) & 1
        error = ops.readout_error0 if true_bit == 0 else ops.readout_error1
        prob *= error if true_bit != reported_bit else (1.0 - error)
    return prob


def _frame_correct(rho: np.ndarray, reported_index: int) -> np.ndarray:
    """Rotate ``rho`` from the reported Bell frame back to Φ+."""
    pauli = PAULI_FRAME[int(reported_index) & 0b11]
    op = np.kron(np.eye(2, dtype=complex), pauli)
    return op.conj().T @ rho @ op


def teleport(data_qubit: Qubit, pair_near: Qubit, pair_far: Qubit, rng,
             ops: NoisyOpParams = PERFECT_OPS) -> Qubit:
    """Teleport ``data_qubit`` through the pair (near, far).

    Performs the BSM on (data, near), applies the conditional Pauli
    correction on ``far`` and returns it.  Assumes the pair is (reported to
    be) in Φ+; callers holding other Bell states should `pauli_correct`
    first — exactly the workflow the QNP's final_state field enables.
    """
    outcome = bell_state_measurement(data_qubit, pair_near, rng, ops)
    # For Φ+ the correction is the outcome frame itself.
    pauli_correct(pair_far, outcome, ops)
    return pair_far
