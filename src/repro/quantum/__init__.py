"""Quantum engine with pluggable state formalisms.

Public API:

* :class:`Qubit` and :class:`QState` — state handles and the shared register
  of the exact density-matrix engine (the NetSquid-formalism substitute),
* :class:`Backend` / :func:`get_backend` — the formalism-selection layer:
  ``"dm"`` (exact) or ``"bell"`` (fast Bell-diagonal weights,
  :class:`BellPairState`),
* :class:`BellIndex` and the Bell frame algebra (``combine``,
  ``swap_combine``, ``correction_pauli``),
* gate matrices and Kraus channels (memoized — returned operators are
  read-only),
* the high-level operations protocols use (``bell_state_measurement``,
  ``measure_qubit``, ``pauli_correct``, ``teleport``) — each dispatches to
  the fast path when the operands live in the Bell-diagonal formalism,
* fidelity helpers, including the simulation-only oracle ``pair_fidelity``.
"""

from .backends import (
    Backend,
    BellDiagonalBackend,
    DEFAULT_FORMALISM,
    DensityMatrixBackend,
    FORMALISMS,
    get_backend,
    register_backend,
)
from .bell import (
    BellIndex,
    bell_basis,
    bell_diagonal_dm,
    bell_diagonal_weights,
    bell_dm,
    bell_vector,
    combine,
    correction_pauli,
    swap_combine,
    werner_dm,
)
from .channels import (
    amplitude_damping_kraus,
    bitflip_kraus,
    decoherence_kraus,
    dephasing_kraus,
    depolarizing_kraus,
    is_trace_preserving,
    readout_povm,
    two_qubit_depolarizing_kraus,
)
from .fidelity import bell_fidelity, pair_fidelity, pure_state_fidelity, state_fidelity
from .gates import CNOT, CZ, H, I2, PAULI_FRAME, S, SWAP_GATE, T, X, Y, Z, rx, ry, rz
from .operations import (
    NoisyOpParams,
    PERFECT_OPS,
    apply_gate,
    apply_two_qubit_gate,
    averaged_swap_dm,
    bell_state_measurement,
    create_bell_pair,
    create_pair,
    discard,
    measure_qubit,
    pauli_correct,
    teleport,
)
from .bellstate import BellPairState, create_bell_diagonal_pair
from .qubit import Qubit
from .states import QState

__all__ = [
    "Qubit",
    "QState",
    "Backend",
    "DensityMatrixBackend",
    "BellDiagonalBackend",
    "BellPairState",
    "create_bell_diagonal_pair",
    "FORMALISMS",
    "DEFAULT_FORMALISM",
    "get_backend",
    "register_backend",
    "BellIndex",
    "bell_vector",
    "bell_dm",
    "bell_basis",
    "bell_diagonal_dm",
    "bell_diagonal_weights",
    "werner_dm",
    "combine",
    "swap_combine",
    "correction_pauli",
    "dephasing_kraus",
    "bitflip_kraus",
    "depolarizing_kraus",
    "two_qubit_depolarizing_kraus",
    "amplitude_damping_kraus",
    "decoherence_kraus",
    "readout_povm",
    "is_trace_preserving",
    "bell_fidelity",
    "pair_fidelity",
    "pure_state_fidelity",
    "state_fidelity",
    "NoisyOpParams",
    "PERFECT_OPS",
    "bell_state_measurement",
    "measure_qubit",
    "pauli_correct",
    "apply_gate",
    "apply_two_qubit_gate",
    "create_pair",
    "create_bell_pair",
    "discard",
    "teleport",
    "averaged_swap_dm",
    "I2",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "T",
    "CNOT",
    "CZ",
    "SWAP_GATE",
    "PAULI_FRAME",
    "rx",
    "ry",
    "rz",
]
