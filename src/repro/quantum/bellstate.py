"""Bell-diagonal two-qubit states — the fast state formalism.

A :class:`BellPairState` represents an entangled pair as a 4-vector of
weights over the Bell basis of :mod:`repro.quantum.bell` instead of a 4×4
density matrix.  Every operation the protocol stack performs on link pairs
— memory dephasing, Pauli frame corrections, depolarizing gate noise,
Bell-state measurements (entanglement swaps) and single-qubit measurements —
maps to O(1) arithmetic on those four numbers, replacing the exact engine's
O(4^n) tensor contractions.  The closed forms are the ones of
:mod:`repro.quantum.analytic`, which the property tests pin against the
exact engine.

Since the vectorised-core revision the weights do not live on the state
object: every live pair is a **row of the shared structure-of-arrays store**
(:data:`repro.quantum.weightstore.STORE`), and ``BellPairState`` is a thin
row handle.  The ``weights`` attribute is a property returning a view of the
row, so the public surface (backends, QMM, apps, tests) is unchanged, while
batch callers can evolve many pairs with one row-sliced numpy call through
the store's API.

Exactness:

* **Exact** for Bell-diagonal inputs under dephasing, Pauli frames,
  single/two-qubit depolarizing noise, entanglement swaps and Pauli-basis
  measurements (the entire QNP hot path).
* **Twirled approximation** for amplitude damping (T1) — the channel leaves
  the Bell-diagonal family, so the state is re-projected onto its Bell
  weights after each step (the projection preserves the fidelity of the
  single step exactly; composition is approximate).  With the paper's
  T1 ≫ T2 parameters the deviation is negligible.
* **Promotes itself** to an exact :class:`~repro.quantum.states.QState` the
  moment a caller requests an operation outside the closed family (arbitrary
  unitaries, merges with other states, distillation circuits), so nothing is
  ever silently wrong — only slower.

The weight vector is always expressed in the *physical* frame: ``weights[k]``
is the fidelity of the pair to Bell state ``k``.  Entanglement tracking
(Pauli frame XOR algebra) therefore behaves identically to the exact engine.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .bell import bell_diagonal_dm
from .channels import decoherence_probabilities
from .qubit import Qubit
from .states import QState
from .weightstore import STORE, XOR_IDX

#: Basis labels the measurement fast path understands.
_PAULI_BASES = ("Z", "X", "Y")

#: Backwards-compatible alias (the table moved to the weight store).
_XOR_IDX = XOR_IDX


class BellPairState:
    """An entangled pair stored as Bell-basis weights.

    Mirrors the subset of the :class:`QState` interface the protocol stack
    uses on link pairs; anything else triggers :meth:`promote`.  The weights
    themselves live in a row of :data:`repro.quantum.weightstore.STORE`.
    """

    __slots__ = ("_row", "qubits")

    def __init__(self, weights: Sequence[float], qubits: Sequence[Qubit]):
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (4,):
            raise ValueError("need four Bell weights")
        if np.any(weights < -1e-9) or abs(weights.sum() - 1.0) > 1e-6:
            raise ValueError("weights must be a probability vector")
        if len(qubits) != 2:
            raise ValueError("a Bell pair has exactly two qubits")
        weights = np.clip(weights, 0.0, None)
        self._row = STORE.alloc(weights / weights.sum())
        self.qubits = list(qubits)
        for qubit in self.qubits:
            if qubit.state is not None and qubit.state is not self:
                self._release_row()
                raise ValueError(f"{qubit.name} already belongs to another state")
            qubit.state = self

    @classmethod
    def from_trusted_weights(cls, weights: np.ndarray,
                             qubits: Sequence[Qubit]) -> "BellPairState":
        """Bind fresh qubits to pre-validated weights without re-checking.

        The hot-path constructor: link-pair materialisation and swap output
        states pass weights that are normalised by construction, so the
        validation arithmetic of ``__init__`` would be pure overhead.
        """
        state = object.__new__(cls)
        state._row = STORE.alloc(weights)
        state.qubits = list(qubits)
        for qubit in state.qubits:
            qubit.state = state
        return state

    # ------------------------------------------------------------------
    # Store plumbing
    # ------------------------------------------------------------------

    @property
    def weights(self) -> np.ndarray:
        """Writable length-4 view of this pair's store row."""
        return STORE._w[self._row]

    @weights.setter
    def weights(self, value) -> None:
        STORE._w[self._row] = value

    def _release_row(self) -> None:
        """Return the store row (terminal operations and leak recovery)."""
        row = self._row
        if row >= 0:
            self._row = -1
            STORE.release(row)

    def __del__(self):
        # Normal consumption paths (measure, remove, promote, swap) release
        # the row explicitly; this catches states dropped without one so the
        # store cannot leak rows across long campaigns.
        try:
            self._release_row()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def __getstate__(self):
        # Row indices are process-local: a checkpoint carries the weights
        # themselves, and restore re-allocates a fresh row in whatever store
        # the unpickling process owns.
        weights = (np.array(STORE._w[self._row]) if self._row >= 0 else None)
        return (weights, self.qubits)

    def __setstate__(self, state):
        weights, qubits = state
        self._row = STORE.alloc(weights) if weights is not None else -1
        self.qubits = qubits

    # ------------------------------------------------------------------
    # Introspection (QState-compatible surface)
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def index_of(self, qubit: Qubit) -> int:
        return self.qubits.index(qubit)

    def partner_of(self, qubit: Qubit) -> Qubit:
        return self.qubits[1 - self.index_of(qubit)]

    def trace(self) -> float:
        return float(self.weights.sum())

    def is_valid(self, tol: float = 1e-7) -> bool:
        return bool(np.all(self.weights >= -tol)
                    and abs(self.weights.sum() - 1.0) <= tol)

    def fidelity_to(self, bell_index: int) -> float:
        """Fidelity to Bell state ``bell_index`` — just a weight lookup."""
        return float(STORE._w[self._row, int(bell_index) & 0b11])

    # ------------------------------------------------------------------
    # Closed-family evolution (all O(1), in place on the store row)
    # ------------------------------------------------------------------

    def apply_pauli(self, frame_index: int, qubit: Qubit) -> None:
        """Pauli ``X^b Z^a`` on one qubit: XOR-permutes the weights."""
        frame_index = int(frame_index) & 0b11
        if frame_index:
            buf, row = STORE._w, self._row
            buf[row] = buf[row][XOR_IDX[frame_index]]

    def apply_dephasing(self, p: float, qubit: Qubit) -> None:
        """Phase-flip channel on one qubit: mixes each state with its
        phase-flipped partner (B0 ↔ B2, B1 ↔ B3)."""
        if p <= 0:
            return
        buf, row = STORE._w, self._row
        w = buf[row]
        buf[row] = (1.0 - p) * w + p * w[[2, 3, 0, 1]]

    def apply_depolarizing(self, p: float, qubit: Qubit) -> None:
        """Single-qubit depolarizing channel on one half of the pair."""
        if p <= 0:
            return
        # Each non-identity Pauli (probability p/3) XOR-shifts the weights;
        # summing the three shifts of w[k] gives 1 − w[k].
        buf, row = STORE._w, self._row
        buf[row] = (1.0 - 4.0 * p / 3.0) * buf[row] + p / 3.0

    def apply_two_qubit_depolarizing(self, p: float) -> None:
        """Two-qubit depolarizing noise across the pair (gate error model)."""
        if p > 0:
            buf, row = STORE._w, self._row
            buf[row] = _two_qubit_depolarized(buf[row], p)

    def apply_decoherence(self, elapsed: float, t1: float, t2: float,
                          qubit: Qubit) -> None:
        """T1/T2 memory channel on one qubit for ``elapsed`` ns.

        The dephasing component is exact; the T1 component applies the
        Bell-twirled amplitude-damping transfer (see module docstring).
        """
        if elapsed <= 0:
            return
        gamma, dephase_prob = decoherence_probabilities(elapsed, t1, t2)
        buf, row = STORE._w, self._row
        if gamma > 0:
            root = math.sqrt(1.0 - gamma)
            same = (2.0 - gamma) / 4.0 + root / 2.0
            phase_partner = (2.0 - gamma) / 4.0 - root / 2.0
            parity_partner = gamma / 4.0
            w = buf[row]
            buf[row] = (same * w
                        + phase_partner * w[[2, 3, 0, 1]]
                        + parity_partner * (w[[1, 0, 3, 2]]
                                            + w[[3, 2, 1, 0]]))
        self.apply_dephasing(dephase_prob, qubit)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def error_probability(self, basis: str) -> float:
        """Probability the two halves disagree with the Φ+ correlation
        pattern in a Pauli basis (Z/X correlated, Y anti-correlated)."""
        w = STORE._w[self._row]
        if basis == "Z":
            return float(w[1] + w[3])
        if basis == "X":
            return float(w[2] + w[3])
        if basis == "Y":
            return float(w[1] + w[2])
        raise ValueError(f"unknown basis {basis!r}")

    def measure_in_basis(self, qubit: Qubit, basis: str, rng) -> int:
        """Measure one half in a Pauli basis; the partner collapses to the
        exact conditional single-qubit state (an ordinary :class:`QState`).

        Returns the true physical outcome bit; classical readout errors are
        layered on top by :mod:`repro.quantum.operations`.
        """
        basis = basis.upper()
        if basis not in _PAULI_BASES:
            raise ValueError(f"unknown basis {basis!r}")
        partner = self.partner_of(qubit)
        # Bell-diagonal marginals are maximally mixed: the first outcome is
        # a fair coin in every Pauli basis.
        outcome = 0 if rng.random() < 0.5 else 1
        flip = self.error_probability(basis)
        # Z/X correlate, Y anti-correlates (⟨Y⊗Y⟩ = −1 for Φ+).
        expected_partner = outcome if basis in ("Z", "X") else outcome ^ 1
        partner_dm = _conditional_dm(basis, expected_partner, flip)
        qubit.state = None
        partner.state = None
        self.qubits = []
        self._release_row()
        QState(partner_dm, [partner])
        return outcome

    # ------------------------------------------------------------------
    # Exit points from the formalism
    # ------------------------------------------------------------------

    def remove(self, qubit: Qubit) -> None:
        """Partial-trace one qubit out; the partner keeps a maximally mixed
        single-qubit state (exact — Bell-diagonal marginals are I/2)."""
        partner = self.partner_of(qubit)
        qubit.state = None
        partner.state = None
        self.qubits = []
        self._release_row()
        QState(np.eye(2, dtype=complex) / 2.0, [partner])

    def promote(self) -> QState:
        """Rebind both qubits to an exact density-matrix state.

        Called by the operations layer whenever a request leaves the
        Bell-diagonal closed family; the qubit handles survive, so callers
        never notice beyond the speed difference.
        """
        dm = bell_diagonal_dm(self.weights)
        qubits = self.qubits
        for qubit in qubits:
            qubit.state = None
        self.qubits = []
        self._release_row()
        return QState(dm, qubits)

    def apply_unitary(self, unitary: np.ndarray, targets: Sequence[Qubit]) -> None:
        """Generic fallback: promote to the exact engine and delegate."""
        self.promote().apply_unitary(unitary, targets)

    def apply_channel(self, kraus_ops, targets: Sequence[Qubit]) -> None:
        """Generic fallback: promote to the exact engine and delegate."""
        self.promote().apply_channel(kraus_ops, targets)

    def reduced_dm(self, targets: Sequence[Qubit]) -> np.ndarray:
        """Density matrix of the requested qubits (built on demand)."""
        if len(targets) == 2 and set(targets) == set(self.qubits):
            return bell_diagonal_dm(self.weights)
        if len(targets) == 1 and targets[0] in self.qubits:
            return np.eye(2, dtype=complex) / 2.0
        raise ValueError("targets are not part of this state")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(q.name for q in self.qubits)
        w = ", ".join(f"{x:.3f}" for x in self.weights)
        return f"<BellPairState [{names}] ({w})>"


def exact_state(qubit: Qubit) -> QState:
    """The qubit's state as an exact :class:`QState`, promoting if needed.

    The one place the promote-on-demand rule lives; the operations and
    fidelity layers both route through it.
    """
    state = qubit.state
    if isinstance(state, BellPairState):
        return state.promote()
    return state


def _two_qubit_depolarized(weights: np.ndarray, p: float) -> np.ndarray:
    """Two-qubit depolarizing closed form on Bell weights (shared by the
    in-place channel and the swap fast path)."""
    return (1.0 - 16.0 * p / 15.0) * weights + (16.0 * p / 15.0) / 4.0


def create_bell_diagonal_pair(weights: Sequence[float], name_a: str = "",
                              name_b: str = "") -> tuple[Qubit, Qubit]:
    """Create two fresh qubits sharing a Bell-diagonal pair state."""
    qubit_a = Qubit(name_a)
    qubit_b = Qubit(name_b)
    BellPairState(weights, [qubit_a, qubit_b])
    return qubit_a, qubit_b


def swap_measure(qubit_a: Qubit, qubit_b: Qubit, rng,
                 two_qubit_depolar: float = 0.0,
                 single_qubit_depolar: float = 0.0) -> int:
    """Bell-state measurement across two Bell-diagonal pairs, in O(1).

    ``qubit_a`` and ``qubit_b`` are the co-located halves of two *distinct*
    :class:`BellPairState` pairs.  Both are consumed; the two remote halves
    are rebound to a fresh :class:`BellPairState` holding the XOR-convolved
    weights conditioned on the (uniformly sampled) true outcome — exactly
    the law the exact engine follows for Bell-diagonal inputs.  The
    convolution itself is the weight store's :meth:`~repro.quantum.
    weightstore.BellWeightStore.swap_rows` row operation.

    Returns the true two-bit outcome; readout mislabeling is a classical
    layer applied by the caller (a mislabeled outcome then makes tracking
    apply the wrong frame, just like in the exact engine).
    """
    state_a = qubit_a.state
    state_b = qubit_b.state
    if not isinstance(state_a, BellPairState) or not isinstance(state_b, BellPairState):
        raise TypeError("swap_measure needs two Bell-diagonal pairs")
    if state_a is state_b:
        raise ValueError("swap_measure needs two distinct pairs")
    remote_a = state_a.partner_of(qubit_a)
    remote_b = state_b.partner_of(qubit_b)
    # XOR-convolution (Klein four-group) plus the measurement's gate-noise
    # closed forms — see BellWeightStore.swap_rows for the derivation notes.
    convolved = STORE.swap_rows(state_a._row, state_b._row,
                                two_qubit_depolar, single_qubit_depolar)
    # The measured marginal is maximally mixed: all four outcomes are
    # equally likely regardless of the input weights.
    outcome = int(rng.random() * 4.0) & 0b11
    weights = convolved[XOR_IDX[outcome]]
    for qubit in (qubit_a, qubit_b, remote_a, remote_b):
        qubit.state = None
    state_a.qubits = []
    state_b.qubits = []
    state_a._release_row()
    state_b._release_row()
    BellPairState.from_trusted_weights(weights, [remote_a, remote_b])
    return outcome


def _conditional_dm(basis: str, bit: int, flip_probability: float) -> np.ndarray:
    """Single-qubit state of the partner after its twin was measured.

    ``bit`` is the partner's expected outcome under perfect correlation and
    ``flip_probability`` the Bell-weight mass that disagrees; the result is
    diagonal in the measured basis (Bell-diagonal states carry no cross-basis
    coherence).
    """
    p_bit = 1.0 - flip_probability
    if bit == 1:
        p0, p1 = flip_probability, p_bit
    else:
        p0, p1 = p_bit, flip_probability
    if basis == "Z":
        return np.diag([p0, p1]).astype(complex)
    if basis == "X":
        plus = np.array([1.0, 1.0], dtype=complex) / math.sqrt(2.0)
        minus = np.array([1.0, -1.0], dtype=complex) / math.sqrt(2.0)
    else:  # Y: bit 0 ↔ |+i⟩ under the H·S† readout rotation convention
        plus = np.array([1.0, 1.0j], dtype=complex) / math.sqrt(2.0)
        minus = np.array([1.0, -1.0j], dtype=complex) / math.sqrt(2.0)
    return (p0 * np.outer(plus, plus.conj())
            + p1 * np.outer(minus, minus.conj()))
