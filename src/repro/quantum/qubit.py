"""Qubit handles.

A :class:`Qubit` is a stable identity that protocols can hold while the
underlying shared quantum state (:class:`~repro.quantum.states.QState`)
merges, collapses and shrinks around it.  The hardware layer stamps each
qubit with its memory decoherence parameters so noise can be applied lazily.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from ..netsim.scheduler import SerialCounter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .states import QState

_qubit_ids = SerialCounter()


class Qubit:
    """A single qubit, member of at most one :class:`QState`.

    Attributes
    ----------
    t1, t2:
        Memory relaxation / dephasing times in ns (``math.inf`` = noiseless).
    last_noise_time:
        Simulated timestamp up to which memory noise has been applied.
    """

    __slots__ = ("name", "state", "t1", "t2", "last_noise_time", "owner")

    def __init__(self, name: str = "", t1: float = math.inf, t2: float = math.inf):
        # Auto-named qubits draw from the shared counter; named ones (the
        # link layer's hot path) skip it — one fewer call per materialised
        # pair.
        self.name = name or f"q{next(_qubit_ids)}"
        self.state: Optional["QState"] = None
        self.t1 = t1
        self.t2 = t2
        self.last_noise_time = 0.0
        #: Opaque slot reference used by the quantum memory manager.
        self.owner = None

    @property
    def active(self) -> bool:
        """Whether this qubit is still part of a live quantum state."""
        return self.state is not None

    @property
    def index(self) -> int:
        """Position of this qubit within its :class:`QState`."""
        if self.state is None:
            raise RuntimeError(f"{self.name} is not part of a state")
        return self.state.index_of(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "active" if self.active else "freed"
        return f"<Qubit {self.name} {status}>"
