"""Structure-of-arrays store for Bell-diagonal pair weights.

Every live :class:`~repro.quantum.bellstate.BellPairState` keeps its four
Bell weights as one **row of a shared ``(N, 4)`` float64 matrix** managed
here, instead of owning a private 4-vector.  The state object becomes a thin
row handle; the closed-family evolution the protocol stack performs on link
pairs — dephasing, depolarising, T1/T2 aging, swap composition, measurement
error probabilities — is implemented once in this module as **row-sliced
array operations** that work identically on a single row (the per-pair hot
path) and on an arbitrary index vector of rows (batch callers such as the
near-term model's attempt-noise charge, which dephases every stored qubit of
a device at once).

Why a store:

* batch evolution of k pairs is one numpy call instead of k Python-level
  state methods (amortising dispatch and temporary allocation),
* all live weights sit in one contiguous allocation with a free-list, so
  pair materialisation recycles rows instead of allocating arrays,
* the layout is the natural substrate for future whole-population
  operations (aging every parked pair at a timeslot boundary).

Rows are recycled through a LIFO free-list; the matrix doubles when it
fills and never shrinks (the benchmarks record max-RSS, so growth is
visible in the perf trajectory).  The closed forms are exactly those of
:mod:`repro.quantum.bellstate` — the property tests pin every batch
operation to the per-pair path within 1e-9.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

#: ``XOR_IDX[k, i] = k ^ i`` — index table for Klein four-group convolutions
#: and Pauli-frame permutations without Python loops (shared with
#: :mod:`repro.quantum.bellstate`).
XOR_IDX = np.array([[k ^ i for i in range(4)] for k in range(4)])

#: Column permutations of the closed-family channels: phase-flip partner
#: (B0↔B2, B1↔B3), bit-flip partner and bit+phase partner.
_PHASE_COLS = (2, 3, 0, 1)
_BIT_COLS = (1, 0, 3, 2)
_BOTH_COLS = (3, 2, 1, 0)

Rows = Union[int, Sequence[int], np.ndarray]


def _per_row(value, rows: np.ndarray) -> np.ndarray:
    """Broadcast a scalar or per-row parameter to column shape ``(k, 1)``."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return arr.reshape(1, 1)
    if arr.shape != rows.shape:
        raise ValueError(f"parameter shape {arr.shape} does not match "
                         f"rows shape {rows.shape}")
    return arr.reshape(-1, 1)


def decoherence_probabilities_array(elapsed, t1, t2):
    """Vectorised twin of :func:`repro.quantum.channels.decoherence_probabilities`.

    Accepts scalars or arrays (broadcast together); returns
    ``(gamma, dephase_prob)`` arrays.  Infinite lifetimes map to zero
    probability exactly as in the scalar closed form.
    """
    elapsed = np.asarray(elapsed, dtype=float)
    t1 = np.asarray(t1, dtype=float)
    t2 = np.asarray(t2, dtype=float)
    if np.any(elapsed < 0):
        raise ValueError("elapsed time must be non-negative")
    with np.errstate(divide="ignore"):
        inv_t1 = np.where(np.isinf(t1), 0.0, 1.0 / t1)
        inv_t2 = np.where(np.isinf(t2), 0.0, 1.0 / t2)
    gamma = np.where(np.isinf(t1), 0.0, -np.expm1(-elapsed * inv_t1))
    t_phi_inverse = np.maximum(inv_t2 - inv_t1 / 2.0, 0.0)
    dephase = np.where(np.isinf(t2), 0.0,
                       -np.expm1(-elapsed * t_phi_inverse) / 2.0)
    return gamma, dephase


class BellWeightStore:
    """All live Bell-diagonal pairs as rows of one ``(N, 4)`` matrix."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._w = np.zeros((capacity, 4), dtype=float)
        # LIFO free-list: low rows are handed out first, keeping the live
        # region dense at the front of the matrix.
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self.live = 0
        #: High-water mark of simultaneously live rows (diagnostics).
        self.peak_live = 0

    @property
    def capacity(self) -> int:
        return self._w.shape[0]

    # ------------------------------------------------------------------
    # Row lifecycle
    # ------------------------------------------------------------------

    def alloc(self, weights) -> int:
        """Claim a row and copy ``weights`` into it."""
        free = self._free
        if not free:
            self._grow()
            free = self._free
        row = free.pop()
        self._w[row] = weights
        self.live += 1
        if self.live > self.peak_live:
            self.peak_live = self.live
        return row

    def release(self, row: int) -> None:
        """Return a row to the free-list (its contents become garbage)."""
        self._free.append(row)
        self.live -= 1

    def state_dict(self) -> dict:
        """Serialisable snapshot of the store: matrix copy, free-list and
        live/peak counters.  Used by the checkpoint round-trip tests; full
        engine checkpoints instead re-allocate rows through the pickled
        :class:`~repro.quantum.bellstate.BellPairState` handles, so row
        indices never need to survive a process boundary."""
        return {"w": self._w.copy(), "free": list(self._free),
                "live": self.live, "peak_live": self.peak_live}

    def load_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict` (overwriting all
        current rows; any live handles into the old matrix become stale)."""
        self._w = np.array(state["w"], dtype=float)
        self._free = list(state["free"])
        self.live = int(state["live"])
        self.peak_live = int(state["peak_live"])

    def _grow(self) -> None:
        old = self._w
        n = old.shape[0]
        bigger = np.zeros((2 * n, 4), dtype=float)
        bigger[:n] = old
        self._w = bigger
        self._free.extend(range(2 * n - 1, n - 1, -1))

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------

    def row(self, row: int) -> np.ndarray:
        """Writable length-4 view of one row (the per-pair hot path)."""
        return self._w[row]

    def get_rows(self, rows: Rows) -> np.ndarray:
        """Copy of the selected rows as a ``(k, 4)`` matrix."""
        return self._w[np.asarray(rows, dtype=np.intp)].reshape(-1, 4)

    # ------------------------------------------------------------------
    # Batch evolution (row-sliced twins of the BellPairState channels)
    # ------------------------------------------------------------------

    def pauli_rows(self, rows: Rows, frame_index: int) -> None:
        """Pauli ``X^b Z^a`` on one half of each selected pair."""
        frame_index = int(frame_index) & 0b11
        if not frame_index:
            return
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        self._w[rows] = self._w[rows][:, XOR_IDX[frame_index]]

    def dephase_rows(self, rows: Rows, p) -> None:
        """Phase-flip channel on one half of each selected pair."""
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        p = _per_row(p, rows)
        w = self._w[rows]
        self._w[rows] = (1.0 - p) * w + p * w[:, _PHASE_COLS]

    def depolarize_rows(self, rows: Rows, p) -> None:
        """Single-qubit depolarising channel on one half of each pair."""
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        p = _per_row(p, rows)
        w = self._w[rows]
        self._w[rows] = (1.0 - 4.0 * p / 3.0) * w + p / 3.0

    def two_qubit_depolarize_rows(self, rows: Rows, p) -> None:
        """Two-qubit depolarising noise across each selected pair."""
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        p = _per_row(p, rows)
        w = self._w[rows]
        self._w[rows] = (1.0 - 16.0 * p / 15.0) * w + (16.0 * p / 15.0) / 4.0

    def decohere_rows(self, rows: Rows, elapsed, t1, t2) -> None:
        """T1/T2 memory channel on one half of each selected pair.

        ``elapsed``/``t1``/``t2`` are scalars or per-row arrays.  Same
        closed form as :meth:`BellPairState.apply_decoherence`: exact
        dephasing plus the Bell-twirled amplitude-damping transfer.
        """
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        gamma, dephase = decoherence_probabilities_array(elapsed, t1, t2)
        gamma = _per_row(np.broadcast_to(gamma, rows.shape), rows)
        dephase = _per_row(np.broadcast_to(dephase, rows.shape), rows)
        w = self._w[rows]
        if np.any(gamma > 0):
            root = np.sqrt(1.0 - gamma)
            same = (2.0 - gamma) / 4.0 + root / 2.0
            phase_partner = (2.0 - gamma) / 4.0 - root / 2.0
            parity_partner = gamma / 4.0
            w = (same * w
                 + phase_partner * w[:, _PHASE_COLS]
                 + parity_partner * (w[:, _BIT_COLS] + w[:, _BOTH_COLS]))
        self._w[rows] = (1.0 - dephase) * w + dephase * w[:, _PHASE_COLS]

    # ------------------------------------------------------------------
    # Batch read-outs
    # ------------------------------------------------------------------

    def error_probability_rows(self, rows: Rows, basis: str) -> np.ndarray:
        """Per-pair probability of disagreeing with the Φ+ correlation
        pattern in a Pauli basis (Z/X correlated, Y anti-correlated)."""
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        w = self._w[rows]
        if basis == "Z":
            return w[:, 1] + w[:, 3]
        if basis == "X":
            return w[:, 2] + w[:, 3]
        if basis == "Y":
            return w[:, 1] + w[:, 2]
        raise ValueError(f"unknown basis {basis!r}")

    def fidelity_rows(self, rows: Rows, bell_index: int) -> np.ndarray:
        """Per-pair fidelity to one Bell state (a column slice)."""
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        return self._w[rows, int(bell_index) & 0b11]

    # ------------------------------------------------------------------
    # Swap composition
    # ------------------------------------------------------------------

    def swap_rows(self, row_a: int, row_b: int,
                  two_qubit_depolar: float = 0.0,
                  single_qubit_depolar: float = 0.0) -> np.ndarray:
        """XOR-convolve two rows through a noisy Bell-state measurement.

        Returns the **outcome-unconditioned** convolution (the caller
        permutes by the sampled outcome) — the identical algebra of
        :func:`repro.quantum.bellstate.swap_measure`.
        """
        wa = self._w[row_a]
        wb = self._w[row_b]
        convolved = wb[XOR_IDX] @ wa
        if two_qubit_depolar > 0:
            convolved = ((1.0 - 16.0 * two_qubit_depolar / 15.0) * convolved
                         + (16.0 * two_qubit_depolar / 15.0) / 4.0)
        if single_qubit_depolar > 0:
            mix = 2.0 * single_qubit_depolar / 3.0
            convolved = (1.0 - mix) * convolved + mix * convolved[XOR_IDX[2]]
        return convolved


#: Process-wide store every :class:`BellPairState` allocates from.  One
#: store (rather than one per Simulator) keeps the hot constructor free of
#: plumbing; nothing observable depends on row indices, so sharing across
#: concurrent networks in one process is safe.
STORE = BellWeightStore()
