"""Standard gate matrices used by the quantum engine."""

from __future__ import annotations

import numpy as np

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)

#: Pauli operators indexed by the packed two-bit Bell frame ``2*a + b``:
#: ``X^b Z^a`` → [I, X, Z, XZ].
PAULI_FRAME = (
    I2,
    X,
    Z,
    X @ Z,
)

CNOT = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)

CZ = np.diag([1, 1, 1, -1]).astype(complex)

SWAP_GATE = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)


# The module-level matrices are shared by every caller (and, since the Kraus
# builders are memoized, live inside cached channel tuples); mark them
# read-only so an accidental in-place edit fails loudly instead of silently
# corrupting every subsequent operation.
for _gate in (I2, X, Y, Z, H, S, T, CNOT, CZ, SWAP_GATE, *PAULI_FRAME):
    _gate.setflags(write=False)
del _gate


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis by ``theta`` radians."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis by ``theta`` radians."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis by ``theta`` radians."""
    phase = np.exp(-1j * theta / 2)
    return np.array([[phase, 0], [0, phase.conjugate()]], dtype=complex)


def pauli_frame_gate(frame_index: int) -> np.ndarray:
    """The Pauli operator for a packed two-bit frame index."""
    return PAULI_FRAME[int(frame_index) & 0b11]


def is_unitary(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Check unitarity (used by tests and input validation)."""
    matrix = np.asarray(matrix)
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, identity, atol=tol))
