"""Bell states and the algebra the QNP's entanglement tracking relies on.

Bell states are indexed by two bits ``(a, b)`` packed into an integer
``index = 2*a + b`` with the convention

.. math::

    |B_{ab}\\rangle = (I \\otimes X^b Z^a) |\\Phi^+\\rangle

which gives:

====== ====== =============================
index  (a,b)  state
====== ====== =============================
0      (0,0)  Φ+ = (|00⟩ + |11⟩)/√2
1      (0,1)  Ψ+ = (|01⟩ + |10⟩)/√2
2      (1,0)  Φ− = (|00⟩ − |11⟩)/√2
3      (1,1)  Ψ− = (|01⟩ − |10⟩)/√2
====== ====== =============================

Because Pauli operators compose bitwise (up to global phase), applying two
Pauli frames in sequence XORs their indices.  This is precisely the
``combine_state`` operation of Appendix C: when a node swaps a pair in state
``i`` with a pair in state ``j`` and the Bell-state measurement reports
outcome ``m``, the surviving end-to-end pair is in Bell state ``i ^ j ^ m``.
The property tests verify this law against the exact density-matrix engine
for all 64 combinations.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

_SQRT2 = np.sqrt(2.0)


class BellIndex(IntEnum):
    """Two-bit Bell state index (phase bit in bit 1, parity bit in bit 0)."""

    PHI_PLUS = 0
    PSI_PLUS = 1
    PHI_MINUS = 2
    PSI_MINUS = 3

    @property
    def phase_bit(self) -> int:
        """The Z (phase) bit ``a``."""
        return (self.value >> 1) & 1

    @property
    def parity_bit(self) -> int:
        """The X (parity) bit ``b``."""
        return self.value & 1

    def __str__(self) -> str:
        return {0: "Φ+", 1: "Ψ+", 2: "Φ−", 3: "Ψ−"}[self.value]


def bell_vector(index: int) -> np.ndarray:
    """Return the 4-dimensional state vector of Bell state ``index``."""
    index = int(index)
    vec = np.zeros(4, dtype=complex)
    a, b = (index >> 1) & 1, index & 1
    if b == 0:
        vec[0b00] = 1 / _SQRT2
        vec[0b11] = (-1) ** a / _SQRT2
    else:
        vec[0b01] = 1 / _SQRT2
        vec[0b10] = (-1) ** a / _SQRT2
    return vec


def bell_dm(index: int) -> np.ndarray:
    """Density matrix of the pure Bell state ``index``."""
    vec = bell_vector(index)
    return np.outer(vec, vec.conj())


def bell_basis() -> np.ndarray:
    """4×4 matrix whose columns are the four Bell state vectors."""
    return np.column_stack([bell_vector(i) for i in range(4)])


def combine(index_a: int, index_b: int) -> BellIndex:
    """Compose two Pauli frames: the Klein four-group XOR.

    Used to fold an entanglement-swap outcome (or a known link-pair state)
    into the running outcome state of a TRACK message.
    """
    return BellIndex(int(index_a) ^ int(index_b))


def swap_combine(state_a: int, state_b: int, measurement_outcome: int) -> BellIndex:
    """Bell state of the pair surviving an entanglement swap.

    Parameters
    ----------
    state_a, state_b:
        Bell indices of the two input pairs sharing the swapping node.
    measurement_outcome:
        Two-bit Bell-state-measurement outcome at the swapping node.
    """
    return BellIndex(int(state_a) ^ int(state_b) ^ int(measurement_outcome))


def correction_pauli(from_index: int, to_index: int) -> int:
    """Index of the single-qubit Pauli frame mapping ``from`` to ``to``.

    Returns the packed two-bit index ``2*a + b`` meaning apply ``X^b Z^a`` to
    one qubit of the pair (which qubit does not matter, up to global phase).
    """
    return int(from_index) ^ int(to_index)


def bell_diagonal_dm(weights) -> np.ndarray:
    """Bell-diagonal density matrix with the given four weights.

    ``weights`` must be non-negative and sum to 1 (within tolerance).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (4,):
        raise ValueError("need exactly four Bell weights")
    if np.any(weights < -1e-12):
        raise ValueError("Bell weights must be non-negative")
    if abs(weights.sum() - 1.0) > 1e-9:
        raise ValueError("Bell weights must sum to 1")
    dm = np.zeros((4, 4), dtype=complex)
    for index, weight in enumerate(weights):
        dm += weight * bell_dm(index)
    return dm


def bell_diagonal_weights(dm: np.ndarray) -> np.ndarray:
    """Project a two-qubit density matrix onto the Bell-diagonal weights.

    Returns ``w[i] = ⟨B_i| ρ |B_i⟩`` — exact for Bell-diagonal states and the
    twirled approximation otherwise.
    """
    return np.array([np.real(bell_vector(i).conj() @ dm @ bell_vector(i))
                     for i in range(4)])


def werner_dm(fidelity: float, index: int = 0) -> np.ndarray:
    """Werner state with the given fidelity to Bell state ``index``.

    The remaining weight is spread evenly over the other three Bell states —
    the standard isotropic noise model for link pairs.
    """
    if not 0.0 <= fidelity <= 1.0:
        raise ValueError("fidelity must be in [0, 1]")
    weights = np.full(4, (1.0 - fidelity) / 3.0)
    weights[int(index)] = fidelity
    return bell_diagonal_dm(weights)
