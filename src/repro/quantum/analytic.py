"""Closed-form Bell-diagonal analytics.

Fast, dependency-free predictions for the quantities the control plane
cares about — used for sanity cross-checks against the exact
density-matrix engine (the property tests pin them to each other) and
handy for back-of-envelope planning without running a simulation.

All formulas operate on Bell-diagonal states written as weight vectors
``(p0, p1, p2, p3)`` over the Bell basis of :mod:`repro.quantum.bell`
(the packed two-bit index: bit 1 = phase flip, bit 0 = parity flip).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

BellWeights = np.ndarray


def werner_weights(fidelity: float) -> BellWeights:
    """Werner state weights with the given fidelity to B0."""
    if not 0.0 <= fidelity <= 1.0:
        raise ValueError("fidelity must be in [0, 1]")
    rest = (1.0 - fidelity) / 3.0
    return np.array([fidelity, rest, rest, rest])


def validate_weights(weights: Sequence[float]) -> BellWeights:
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (4,):
        raise ValueError("need four Bell weights")
    if np.any(weights < -1e-12) or abs(weights.sum() - 1.0) > 1e-9:
        raise ValueError("weights must be a probability vector")
    return weights


def swap_weights(weights_a: Sequence[float],
                 weights_b: Sequence[float]) -> BellWeights:
    """Bell weights after a perfect entanglement swap with frame correction.

    With lazy tracking the reported index is the XOR composition, so the
    corrected output weights are the XOR-convolution (Klein four-group
    convolution) of the input weight vectors:

        p_out[k] = Σ_{i ⊕ j = k} p_a[i] · p_b[j]

    Exact for Bell-diagonal inputs (verified against the engine).
    """
    weights_a = validate_weights(weights_a)
    weights_b = validate_weights(weights_b)
    out = np.zeros(4)
    for i in range(4):
        for j in range(4):
            out[i ^ j] += weights_a[i] * weights_b[j]
    return out


def chain_weights(link_weights: Sequence[float], num_links: int) -> BellWeights:
    """Weights of an end-to-end pair after a chain of identical swaps."""
    if num_links < 1:
        raise ValueError("need at least one link")
    result = validate_weights(link_weights)
    for _ in range(num_links - 1):
        result = swap_weights(result, link_weights)
    return result


def swap_fidelity(fidelity_a: float, fidelity_b: float) -> float:
    """Werner ⋆ Werner swap fidelity: F' = F_a F_b + (1−F_a)(1−F_b)/3."""
    return float(swap_weights(werner_weights(fidelity_a),
                              werner_weights(fidelity_b))[0])


def chain_fidelity(link_fidelity: float, num_links: int) -> float:
    """End-to-end Werner fidelity of an L-link swap chain.

    Closed form: F_L = 1/4 + 3/4 · ((4F−1)/3)^L — the fundamental
    exponential decay with path length that motivates distillation
    (Sec 4.3).
    """
    if num_links < 1:
        raise ValueError("need at least one link")
    contrast = (4.0 * link_fidelity - 1.0) / 3.0
    return 0.25 + 0.75 * contrast ** num_links


def dephased_weights(weights: Sequence[float], elapsed: float,
                     t2: float, both_sides: bool = True) -> BellWeights:
    """Bell weights after pure dephasing of one or both qubits.

    Dephasing mixes each state with its phase-flipped partner
    (B0 ↔ B2, B1 ↔ B3).  The mixing probability for one qubit over time t
    is (1 − e^{−t/T2})/2; two independent qubits compose by XOR of flips.
    """
    weights = validate_weights(weights)
    if elapsed < 0:
        raise ValueError("elapsed must be non-negative")
    p_single = 0.0 if math.isinf(t2) else (1.0 - math.exp(-elapsed / t2)) / 2.0
    if both_sides:
        # Probability the *net* phase flip is odd across the two qubits.
        p_flip = 2.0 * p_single * (1.0 - p_single)
    else:
        p_flip = p_single
    out = weights.copy()
    for index in range(4):
        partner = index ^ 0b10
        out[index] = (1 - p_flip) * weights[index] + p_flip * weights[partner]
    return out


def fidelity_after_storage(fidelity: float, elapsed: float, t2: float,
                           both_sides: bool = True) -> float:
    """Werner-pair fidelity after idling in dephasing memory."""
    return float(dephased_weights(werner_weights(fidelity), elapsed, t2,
                                  both_sides)[0])


def depolarized_weights(weights: Sequence[float], p: float) -> BellWeights:
    """Bell weights after two-qubit depolarizing noise (gate error model)."""
    weights = validate_weights(weights)
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    uniform = np.full(4, 0.25)
    return (1.0 - 16.0 * p / 15.0) * weights + (16.0 * p / 15.0) * uniform


def required_link_fidelity(target: float, num_links: int) -> float:
    """Invert :func:`chain_fidelity`: the per-link Werner fidelity needed
    for an L-link chain to reach ``target`` (noiseless swaps, no storage).
    """
    if not 0.25 <= target < 1.0:
        raise ValueError("target must be in [0.25, 1)")
    if num_links < 1:
        raise ValueError("need at least one link")
    contrast = ((target - 0.25) / 0.75) ** (1.0 / num_links)
    return (3.0 * contrast + 1.0) / 4.0


def qber_z(weights: Sequence[float]) -> float:
    """Z-basis error rate of a Bell-diagonal pair: parity-flip weight."""
    weights = validate_weights(weights)
    return float(weights[1] + weights[3])


def qber_x(weights: Sequence[float]) -> float:
    """X-basis error rate: phase-flip weight."""
    weights = validate_weights(weights)
    return float(weights[2] + weights[3])
