"""Kraus-operator noise channels.

These model the loss mechanisms the paper enumerates in Sec 2.3:

* (P1) imperfect link pairs — built by :mod:`repro.hardware.heralded`,
* (P3) imperfect gates — depolarizing noise applied around each operation,
* (P4) decoherence in memory — combined amplitude damping (T1) and pure
  dephasing (T2*) applied lazily for the time a qubit sat idle.

All builders are memoized: the simulation asks for the same handful of
channels millions of times (gate noise probabilities are fixed per hardware
profile), so each distinct parameter set is constructed once and the same
operator tuple is returned on every subsequent call.  The returned arrays
are **read-only** — callers must never mutate them (a regression test pins
this).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Sequence

import numpy as np

from .gates import I2, X, Y, Z

KrausOps = Sequence[np.ndarray]


def _frozen(*ops: np.ndarray) -> tuple[np.ndarray, ...]:
    """Mark operator arrays read-only so cached instances cannot be mutated."""
    for op in ops:
        op.setflags(write=False)
    return ops


@lru_cache(maxsize=4096)
def dephasing_kraus(p: float) -> KrausOps:
    """Phase-flip channel: applies Z with probability ``p``."""
    _check_probability(p)
    return _frozen(math.sqrt(1 - p) * I2, math.sqrt(p) * Z)


@lru_cache(maxsize=None)
def bitflip_kraus(p: float) -> KrausOps:
    """Bit-flip channel: applies X with probability ``p``."""
    _check_probability(p)
    return _frozen(math.sqrt(1 - p) * I2, math.sqrt(p) * X)


@lru_cache(maxsize=None)
def depolarizing_kraus(p: float) -> KrausOps:
    """Single-qubit depolarizing channel with error probability ``p``.

    With probability ``p`` one of X/Y/Z is applied uniformly.
    """
    _check_probability(p)
    return _frozen(
        math.sqrt(1 - p) * I2,
        math.sqrt(p / 3) * X,
        math.sqrt(p / 3) * Y,
        math.sqrt(p / 3) * Z,
    )


@lru_cache(maxsize=None)
def two_qubit_depolarizing_kraus(p: float) -> KrausOps:
    """Two-qubit depolarizing channel with error probability ``p``.

    With probability ``p`` a uniformly random non-identity two-qubit Pauli is
    applied — the standard model for noisy two-qubit gates (the paper's
    Table 1 two-qubit gate fidelity maps onto this channel).
    """
    _check_probability(p)
    paulis = (I2, X, Y, Z)
    ops = []
    for i, pa in enumerate(paulis):
        for j, pb in enumerate(paulis):
            weight = 1 - p if (i == 0 and j == 0) else p / 15
            ops.append(math.sqrt(weight) * np.kron(pa, pb))
    return _frozen(*ops)


@lru_cache(maxsize=4096)
def amplitude_damping_kraus(gamma: float) -> KrausOps:
    """Amplitude damping (T1 relaxation) with decay probability ``gamma``."""
    _check_probability(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return _frozen(k0, k1)


def decoherence_probabilities(elapsed: float, t1: float,
                              t2: float) -> tuple[float, float]:
    """Decay and dephasing probabilities for ``elapsed`` ns of idle time.

    Returns ``(gamma, dephase_prob)``: the amplitude-damping probability from
    T1 relaxation and the phase-flip probability from pure dephasing.  The
    pure dephasing rate is derived from ``1/T2 = 1/(2 T1) + 1/T_phi``.
    Shared between the exact Kraus builder below and the Bell-diagonal
    backend's analytic memory channel.
    """
    if elapsed < 0:
        raise ValueError("elapsed time must be non-negative")
    gamma = 0.0 if math.isinf(t1) else 1.0 - math.exp(-elapsed / t1)
    if math.isinf(t2):
        dephase_prob = 0.0
    else:
        t_phi_inverse = 1.0 / t2 - (0.0 if math.isinf(t1) else 1.0 / (2.0 * t1))
        t_phi_inverse = max(t_phi_inverse, 0.0)
        dephase_prob = (1.0 - math.exp(-elapsed * t_phi_inverse)) / 2.0
    return gamma, dephase_prob


@lru_cache(maxsize=4096)
def decoherence_kraus(elapsed: float, t1: float, t2: float) -> KrausOps:
    """Combined T1/T2 memory channel for ``elapsed`` ns of idle time.

    ``t1`` is the relaxation time and ``t2`` the dephasing time (both ns,
    ``math.inf`` disables the respective process).  Returns the composed Kraus
    operators (damping then dephasing — the two commute in their effect on
    the density matrix when composed over infinitesimal steps; for the
    exponential model the ordering error is zero because both are diagonal
    in the same operator basis combination used here).
    """
    if elapsed < 0:
        raise ValueError("elapsed time must be non-negative")
    if elapsed == 0:
        return _frozen(I2.copy())
    gamma, dephase_prob = decoherence_probabilities(elapsed, t1, t2)
    ops: list[np.ndarray] = []
    for damping_op in amplitude_damping_kraus(gamma):
        for dephasing_op in dephasing_kraus(dephase_prob):
            ops.append(dephasing_op @ damping_op)
    return _frozen(*ops)


@lru_cache(maxsize=None)
def readout_povm(error0: float, error1: float) -> tuple[np.ndarray, np.ndarray]:
    """Noisy Z-readout POVM elements for outcomes 0 and 1.

    ``error0`` is the probability of reading 1 when the qubit is |0⟩ (i.e.
    ``1 - F_ro0``) and vice versa for ``error1``.
    """
    _check_probability(error0)
    _check_probability(error1)
    m0 = np.diag([1 - error0, error1]).astype(complex)
    m1 = np.diag([error0, 1 - error1]).astype(complex)
    m0, m1 = _frozen(m0, m1)
    return m0, m1


def is_trace_preserving(ops: KrausOps, tol: float = 1e-9) -> bool:
    """Check ``sum K† K = I`` (used by tests)."""
    dim = ops[0].shape[0]
    total = sum(op.conj().T @ op for op in ops)
    return bool(np.allclose(total, np.eye(dim), atol=tol))


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability {p} outside [0, 1]")
