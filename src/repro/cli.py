"""Command-line interface: run canned scenarios without writing code.

Usage::

    python -m repro quickstart [--pairs 5] [--fidelity 0.8] [--seed 42]
    python -m repro chain --nodes 4 --pairs 3 --fidelity 0.75
    python -m repro qkd --pairs 40
    python -m repro near-term --pairs 10
    python -m repro trace --pairs 2
    python -m repro traffic --topology grid --size 4 --circuits 8 --load 0.7
    python -m repro traffic --metric utilisation --fail-links 2 --seed 7
    python -m repro traffic --apps qkd,distil,teleport,certify
    python -m repro traffic --metrics-out run.jsonl --trace-out spans.jsonl
    python -m repro campaign --spec examples/campaign_grid.json --workers 4
    python -m repro campaign --spec spec.json --apps qkd,teleport
    python -m repro apps --demo
    python -m repro obs --summarise run.jsonl

``--formalism bell`` runs any scenario on the fast Bell-diagonal state
backend instead of the exact density-matrix engine — see DESIGN.md for when
the two agree exactly.  The flag is accepted both globally and after the
subcommand (the subcommand's value wins)::

    python -m repro --formalism bell quickstart
    python -m repro quickstart --formalism bell

Each subcommand builds a network, drives the full stack and prints a
summary — handy for demos and for eyeballing behaviour after changes.
"""

from __future__ import annotations

import argparse
import sys

from .core.requests import UserRequest
from .netsim.units import S
from .network.builder import (
    build_chain_network,
    build_dumbbell_network,
    build_near_term_chain,
)
from .quantum.backends import FORMALISMS


def _cmd_chain(args: argparse.Namespace) -> int:
    net = build_chain_network(num_nodes=args.nodes, seed=args.seed,
                              formalism=args.formalism)
    head, tail = "node0", f"node{args.nodes - 1}"
    circuit_id = net.establish_circuit(head, tail, args.fidelity)
    route = net.route_of(circuit_id)
    print(f"circuit {circuit_id}")
    print(f"  path: {' -> '.join(route.path)}")
    print(f"  link fidelity {route.link_fidelity:.4f}, "
          f"cutoff {route.cutoff / 1e6:.2f} ms, "
          f"worst-case F {route.estimated_fidelity:.4f}")
    handle = net.submit(circuit_id, UserRequest(num_pairs=args.pairs),
                        record_fidelity=True)
    net.run_until_complete([handle], timeout_s=args.timeout)
    print(f"  status {handle.status.value}, "
          f"{len(handle.delivered)} pairs, "
          f"latency {(handle.latency or 0) / 1e6:.1f} ms")
    for matched in handle.matched_pairs:
        print(f"    pair {matched.head_delivery.sequence}: "
              f"{matched.head_delivery.bell_state}  F={matched.fidelity:.4f}")
    return 0 if handle.delivered else 1


def _cmd_quickstart(args: argparse.Namespace) -> int:
    args.nodes = 3
    return _cmd_chain(args)


def _cmd_qkd(args: argparse.Namespace) -> int:
    from .services import run_bbm92

    net = build_dumbbell_network(seed=args.seed, formalism=args.formalism)
    circuit_id = net.establish_circuit("A0", "B0", args.fidelity, "short")
    key = run_bbm92(net, circuit_id, num_pairs=args.pairs,
                    timeout_s=args.timeout)
    print(f"rounds {key.total_rounds}, sifted {key.sifted_rounds}, "
          f"QBER {key.qber:.3f}")
    print("key:", "".join(map(str, key.key_bits[:64])))
    return 0 if key.sifted_rounds > 0 else 1


def _cmd_near_term(args: argparse.Namespace) -> int:
    net = build_near_term_chain(num_nodes=3, seed=args.seed,
                                formalism=args.formalism)
    circuit_id = net.establish_circuit_manual(
        ["node0", "node1", "node2"], link_fidelity=0.8, cutoff=3.0 * S,
        max_eer=5.0, estimated_fidelity=0.55)
    handle = net.submit(circuit_id, UserRequest(num_pairs=args.pairs),
                        record_fidelity=True)
    net.run_until_complete([handle], timeout_s=args.timeout)
    print(f"status {handle.status.value}")
    for matched in sorted(handle.matched_pairs,
                          key=lambda m: m.head_delivery.t_delivered):
        print(f"  t={matched.head_delivery.t_delivered / 1e9:6.1f}s  "
              f"F={matched.fidelity:.3f}")
    return 0 if handle.delivered else 1


def _parse_apps(text):
    """Validate a ``--apps`` comma list against the app registry."""
    from .apps import get_app

    if text is None:
        return None
    names = [name.strip() for name in text.split(",") if name.strip()]
    if not names:
        raise SystemExit("--apps needs at least one app name")
    for name in names:
        try:
            get_app(name)
        except ValueError as exc:
            raise SystemExit(f"bad --apps: {exc}")
    return names


def _cmd_traffic(args: argparse.Namespace) -> int:
    from .traffic import TOPOLOGIES, TrafficEngine, build_topology

    if getattr(args, "resume", None):
        return _resume_traffic(args)
    if args.topology not in TOPOLOGIES:  # pragma: no cover - argparse guards
        raise SystemExit(f"unknown topology {args.topology!r}")
    if args.fail_links < 0:
        raise SystemExit("--fail-links cannot be negative")
    if args.fail_links == 0 and (args.mtbf is not None
                                 or args.mttr is not None):
        raise SystemExit("--mtbf/--mttr configure the outage model; "
                         "add --fail-links N to select victim links")
    if args.mtbf is not None and args.mtbf <= 0:
        raise SystemExit("--mtbf must be positive")
    if args.mttr is not None and args.mttr <= 0:
        raise SystemExit("--mttr must be positive")
    apps = _parse_apps(args.apps)
    net = build_topology(args.topology, args.size, seed=args.seed,
                         formalism=args.formalism,
                         physical=getattr(args, "physical", "analytic"))
    print(f"topology {args.topology} size {args.size}: "
          f"{len(net.nodes)} nodes, {len(net.links)} links "
          f"({net.formalism} formalism)")
    # The apps --demo path re-enters here with a namespace that predates
    # the observability flags; default them off.
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    engine = TrafficEngine(net, circuits=args.circuits, load=args.load,
                           target_fidelity=args.fidelity, seed=args.seed,
                           metric=args.metric, fail_links=args.fail_links,
                           mtbf_s=args.mtbf, mttr_s=args.mttr, apps=apps,
                           metrics_out=metrics_out,
                           snapshot_interval_s=getattr(
                               args, "snapshot_interval", 0.5),
                           trace_out=trace_out,
                           checkpoint_out=getattr(args, "checkpoint_out",
                                                  None),
                           checkpoint_interval_s=getattr(
                               args, "checkpoint_interval", 1.0),
                           retire_sessions=getattr(args, "retire_sessions",
                                                   False))
    engine.install()
    print(f"installed {len(engine.circuits)} circuits "
          f"(metric {args.metric}, max link share "
          f"{engine.max_link_share:.2f}); running "
          f"{args.horizon:.1f} s of traffic at load {args.load:.2f}"
          + (f" with {args.fail_links} link failures" if args.fail_links
             else "")
          + (f", apps {','.join(apps)}" if apps else "") + "...")
    # --timeout caps the post-horizon drain of in-flight sessions (the
    # horizon itself is --horizon, same as every other subcommand's
    # simulated budget).
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        report = engine.run(horizon_s=args.horizon,
                            drain_s=min(args.horizon, args.timeout))
        profiler.disable()
        out = "traffic.prof"
        profiler.dump_stats(out)
        print(f"\nprofile written to {out} "
              f"(inspect: python -m pstats {out})")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(15)
    else:
        report = engine.run(horizon_s=args.horizon,
                            drain_s=min(args.horizon, args.timeout))
    print()
    print(report.render())
    if getattr(args, "app_details", False) and report.apps:
        print()
        print(report.render_app_details())
    if metrics_out:
        print(f"\nmetrics snapshots written to {metrics_out} "
              f"(summarise: python -m repro obs --summarise {metrics_out})")
    if trace_out:
        print(f"span trace written to {trace_out}")
    if getattr(args, "checkpoint_out", None):
        print(f"last checkpoint at {args.checkpoint_out} "
              f"({engine.checkpoints_written} written; resume with "
              f"python -m repro traffic --resume {args.checkpoint_out})")
    return 0 if report.total_confirmed_pairs > 0 else 1


def _resume_traffic(args: argparse.Namespace) -> int:
    """Continue a checkpointed traffic run (``traffic --resume PATH``).

    The checkpoint carries the whole engine — topology, circuits,
    workload schedule, observability — so the usual construction flags
    are ignored; the run simply picks up from its last durable state.
    """
    from .persist import CheckpointError, load_checkpoint

    try:
        engine = load_checkpoint(args.resume)
    except FileNotFoundError:
        raise SystemExit(f"no checkpoint at {args.resume}")
    except CheckpointError as exc:
        raise SystemExit(f"cannot resume: {exc}")
    sim_s = engine.net.sim.now / 1e9
    print(f"resuming from {args.resume}: phase {engine._phase!r} at "
          f"t={sim_s:.2f} s simulated, {len(engine.records)} sessions "
          f"recorded ({engine.net.formalism} formalism)")
    try:
        report = engine.resume_run()
    except RuntimeError as exc:
        raise SystemExit(f"cannot resume: {exc}")
    print()
    print(report.render())
    if engine.metrics_out:
        print(f"\nmetrics snapshots appended to {engine.metrics_out}")
    return 0 if report.total_confirmed_pairs > 0 else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .campaign import (ObsConfig, PersistConfig, git_revision, load_spec,
                           run_campaign)

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    obs = None
    if args.metrics_out or args.trace_out:
        obs = ObsConfig(metrics_dir=args.metrics_out,
                        trace_dir=args.trace_out,
                        snapshot_interval_s=args.snapshot_interval)
    persist = None
    if args.resume and not args.checkpoint_out:
        raise SystemExit("--resume requires --checkpoint-out (the directory "
                         "holding the per-cell checkpoints)")
    if args.checkpoint_out or args.retire_sessions:
        persist = PersistConfig(checkpoint_dir=args.checkpoint_out,
                                checkpoint_interval_s=args.checkpoint_interval,
                                resume=args.resume,
                                retire_sessions=args.retire_sessions)
    try:
        spec = load_spec(args.spec)
    except ValueError as exc:
        raise SystemExit(f"bad campaign spec: {exc}")
    apps = _parse_apps(args.apps)
    if apps:
        # Inject/override the app axis: --apps qkd,distil sweeps the
        # spec's grid over those apps (spec.to_dict round-trips, so the
        # rest of the spec is untouched).
        data = spec.to_dict()
        data["axes"]["app"] = apps
        spec = load_spec(data)
    cells = spec.expand()
    print(f"campaign {spec.name}: {len(cells)} cells, "
          f"{args.workers} worker(s)")
    result = run_campaign(spec, workers=args.workers, cells=cells, obs=obs,
                          persist=persist)
    print()
    print(result.render())
    if obs is not None:
        for label, directory in (("metrics", obs.metrics_dir),
                                 ("traces", obs.trace_dir)):
            if directory:
                print(f"per-cell {label} written under {directory}/")
    if persist is not None and persist.checkpoint_dir:
        print(f"per-cell checkpoints written under {persist.checkpoint_dir}/"
              " (finish a killed campaign with --resume)")
    revision = git_revision(Path.cwd())
    out = Path(args.out) if args.out else Path(f"CAMPAIGN_{revision}.json")
    result.write_json(out, revision=revision)
    print(f"\nwrote {out}")
    return 0 if result.completed_cells > 0 else 1


def _cmd_apps(args: argparse.Namespace) -> int:
    from .apps import HEADLINE_METRICS, app_names, get_app

    if args.demo:
        # The acceptance demo: the seed-7 grid workload with every app
        # assigned round-robin, plus the long-form per-circuit metrics.
        args.topology, args.size = "grid", 4
        args.circuits, args.load = 8, 0.7
        args.fidelity, args.horizon = 0.7, 2.0
        args.metric, args.fail_links = "hops", 0
        args.mtbf = args.mttr = None
        args.seed = 7
        args.apps = "qkd,distil,teleport,certify"
        args.app_details = True
        return _cmd_traffic(args)
    print("registered application services:")
    for name in app_names():
        app_type = get_app(name)
        demand = (f"demands F >= {app_type.min_fidelity:g}"
                  if app_type.min_fidelity else "no fidelity demand")
        targets = "; ".join(target.label()
                            for target in app_type.slo_targets)
        print(f"  {name:10s} headline: {HEADLINE_METRICS[name]:22s} "
              f"{demand}; SLO: {targets}")
    print("\nrun one with: python -m repro traffic --apps "
          + ",".join(app_names()) + "  (or: python -m repro apps --demo)")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs import summarise

    required = ()
    if args.require:
        required = tuple(name.strip() for name in args.require.split(",")
                         if name.strip())
    try:
        print(summarise(args.summarise, required=required))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bad snapshot file: {exc}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .analysis import attach_trace

    net = build_chain_network(num_nodes=4, seed=args.seed,
                              formalism=args.formalism)
    circuit_id = net.establish_circuit("node0", "node3", 0.75)
    log = attach_trace(net)
    handle = net.submit(circuit_id, UserRequest(num_pairs=args.pairs))
    net.run_until_complete([handle], timeout_s=args.timeout)
    print(log.render_sequence(["node0", "node1", "node2", "node3"],
                              max_events=80))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run QNP scenarios from 'Designing a Quantum Network "
                    "Protocol' (CoNEXT 2020).")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="simulated-seconds budget")
    parser.add_argument("--formalism", choices=list(FORMALISMS), default="dm",
                        help="quantum-state backend: exact density matrices"
                             " ('dm') or fast Bell-diagonal weights ('bell')")
    # The global flags are accepted after the subcommand too (an easy
    # trip-up otherwise).  SUPPRESS keeps the namespace untouched when a
    # subcommand flag is absent, so the global value survives; when present
    # it overwrites the global one.
    formalism_flag = argparse.ArgumentParser(add_help=False)
    formalism_flag.add_argument("--formalism", choices=list(FORMALISMS),
                                default=argparse.SUPPRESS,
                                help="quantum-state backend (overrides the"
                                     " global --formalism)")
    formalism_flag.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                                help="simulation seed (overrides the global"
                                     " --seed)")
    formalism_flag.add_argument("--timeout", type=float,
                                default=argparse.SUPPRESS,
                                help="simulated-seconds budget (overrides"
                                     " the global --timeout)")
    sub = parser.add_subparsers(dest="command", required=True)

    quickstart = sub.add_parser("quickstart", help="3-node chain demo",
                                parents=[formalism_flag])
    quickstart.add_argument("--pairs", type=int, default=5)
    quickstart.add_argument("--fidelity", type=float, default=0.8)
    quickstart.set_defaults(fn=_cmd_quickstart)

    chain = sub.add_parser("chain", help="linear repeater chain",
                           parents=[formalism_flag])
    chain.add_argument("--nodes", type=int, default=4)
    chain.add_argument("--pairs", type=int, default=3)
    chain.add_argument("--fidelity", type=float, default=0.75)
    chain.set_defaults(fn=_cmd_chain)

    qkd = sub.add_parser("qkd", help="BBM92 over the Fig 7 dumbbell",
                         parents=[formalism_flag])
    qkd.add_argument("--pairs", type=int, default=40)
    qkd.add_argument("--fidelity", type=float, default=0.85)
    qkd.set_defaults(fn=_cmd_qkd)

    near = sub.add_parser("near-term", help="the Fig 11 scenario",
                          parents=[formalism_flag])
    near.add_argument("--pairs", type=int, default=10)
    near.set_defaults(fn=_cmd_near_term)

    trace = sub.add_parser("trace", help="print the Fig 6 message sequence",
                           parents=[formalism_flag])
    trace.add_argument("--pairs", type=int, default=2)
    trace.set_defaults(fn=_cmd_trace)

    from .traffic import TOPOLOGIES

    traffic = sub.add_parser(
        "traffic", help="concurrent multi-circuit traffic engine",
        parents=[formalism_flag])
    traffic.add_argument("--topology", choices=sorted(TOPOLOGIES),
                         default="grid",
                         help="topology family from the catalogue")
    traffic.add_argument("--size", type=int, default=4,
                         help="family size parameter (grid side, ring"
                              " length, star arms, node count, tree height)")
    traffic.add_argument("--physical", choices=["analytic", "midpoint"],
                         default="analytic",
                         help="physical-layer model per link: analytic"
                              " fast-forward (default) or time-windowed"
                              " midpoint heralding station")
    traffic.add_argument("--circuits", type=int, default=8,
                         help="number of concurrent virtual circuits")
    traffic.add_argument("--load", type=float, default=0.7,
                         help="offered load as a fraction of each"
                              " circuit's admitted EER")
    traffic.add_argument("--fidelity", type=float, default=0.7,
                         help="end-to-end target fidelity per circuit")
    traffic.add_argument("--horizon", type=float, default=2.0,
                         help="simulated seconds of workload")
    from .control.routing import PATH_METRICS

    traffic.add_argument("--metric", choices=list(PATH_METRICS),
                         default="hops",
                         help="path-selection metric: shortest path"
                              " ('hops'), spread circuits by installed"
                              " LPR share ('utilisation'), or maximise"
                              " fidelity headroom ('fidelity-cost')")
    traffic.add_argument("--fail-links", type=int, default=0,
                         dest="fail_links",
                         help="number of victim links taken down mid-run"
                              " (0 disables failure injection)")
    traffic.add_argument("--mtbf", type=float, default=None,
                         help="mean time between failures per victim link"
                              " (simulated s; omit for one scheduled"
                              " outage per victim)")
    traffic.add_argument("--mttr", type=float, default=None,
                         help="time to repair a failed link (simulated s;"
                              " default: a quarter of the horizon)")
    traffic.add_argument("--apps", default=None,
                         help="comma-separated application services"
                              " assigned to circuits round-robin (e.g."
                              " 'qkd,distil,teleport,certify'); the report"
                              " gains a per-app SLO section")
    traffic.add_argument("--profile", action="store_true",
                         help="run the traffic loop under cProfile and "
                              "dump stats to traffic.prof")
    traffic.add_argument("--metrics-out", default=None, dest="metrics_out",
                         help="stream metrics-registry snapshots to this"
                              " JSONL file during the run")
    traffic.add_argument("--snapshot-interval", type=float, default=0.5,
                         dest="snapshot_interval",
                         help="simulated seconds between metrics snapshots"
                              " (with --metrics-out)")
    traffic.add_argument("--trace-out", default=None, dest="trace_out",
                         help="write the causal span trace (circuit ->"
                              " session -> pair lifecycle) to this JSONL"
                              " file after the run")
    traffic.add_argument("--checkpoint-out", default=None,
                         dest="checkpoint_out",
                         help="write a durable checkpoint of the full"
                              " simulation state to this file every"
                              " --checkpoint-interval simulated seconds"
                              " (atomic write-then-rename)")
    traffic.add_argument("--checkpoint-interval", type=float, default=1.0,
                         dest="checkpoint_interval",
                         help="simulated seconds between checkpoint writes"
                              " (with --checkpoint-out)")
    traffic.add_argument("--resume", default=None, metavar="CKPT",
                         help="resume a checkpointed run from this file and"
                              " finish it (all construction flags are"
                              " ignored; the checkpoint carries the run)")
    traffic.add_argument("--retire-sessions", action="store_true",
                         dest="retire_sessions",
                         help="bound memory on long horizons: fold finished"
                              " sessions into slim summaries and free their"
                              " delivery/match state (reported numbers are"
                              " unchanged)")
    traffic.set_defaults(fn=_cmd_traffic)

    apps = sub.add_parser(
        "apps", help="application service layer: list apps or run the demo",
        parents=[formalism_flag])
    apps.add_argument("--demo", action="store_true",
                      help="run the canned seed-7 demo (grid:4, 8 circuits,"
                           " all four apps round-robin) and print the SLO"
                           " section plus per-circuit app metrics")
    apps.set_defaults(fn=_cmd_apps)

    campaign = sub.add_parser(
        "campaign", help="declarative scenario grid, sharded across cores")
    campaign.add_argument("--spec", required=True,
                          help="campaign spec JSON file (axes over topology,"
                               " formalism, metric, faults, circuits, load,"
                               " seed)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="processes to shard the cells across"
                               " (sharded runs aggregate identically to"
                               " --workers 1)")
    campaign.add_argument("--out", default=None,
                          help="artifact path (default: CAMPAIGN_<rev>.json"
                               " in the current directory)")
    campaign.add_argument("--apps", default=None,
                          help="comma-separated app names injected as the"
                               " spec's 'app' axis (overrides any app axis"
                               " the spec declares)")
    campaign.add_argument("--metrics-out", default=None, dest="metrics_out",
                          help="directory for per-cell metrics snapshot"
                               " files (cell<index>.jsonl)")
    campaign.add_argument("--snapshot-interval", type=float, default=0.5,
                          dest="snapshot_interval",
                          help="simulated seconds between metrics snapshots"
                               " (with --metrics-out)")
    campaign.add_argument("--trace-out", default=None, dest="trace_out",
                          help="directory for per-cell span-trace files"
                               " (cell<index>.jsonl)")
    campaign.add_argument("--checkpoint-out", default=None,
                          dest="checkpoint_out",
                          help="directory for per-cell durable checkpoints"
                               " (cell<index>.ckpt)")
    campaign.add_argument("--checkpoint-interval", type=float, default=1.0,
                          dest="checkpoint_interval",
                          help="simulated seconds between checkpoint writes"
                               " (with --checkpoint-out)")
    campaign.add_argument("--resume", action="store_true",
                          help="finish cells from surviving checkpoints under"
                               " --checkpoint-out instead of starting over")
    campaign.add_argument("--retire-sessions", action="store_true",
                          dest="retire_sessions",
                          help="bound per-cell memory by folding finished"
                               " sessions into aggregates")
    campaign.set_defaults(fn=_cmd_campaign)

    obs = sub.add_parser(
        "obs", help="summarise a metrics snapshot stream")
    obs.add_argument("--summarise", required=True, metavar="JSONL",
                     help="snapshot file written by --metrics-out")
    obs.add_argument("--require", default=None,
                     help="comma-separated series that must be present"
                          " (exit non-zero otherwise)")
    obs.set_defaults(fn=_cmd_obs)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
