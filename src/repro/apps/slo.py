"""Service-level objectives for application sessions.

The paper argues (Sec 3.1, Sec 6) that a quantum network exists to meet
*application* demands — a QKD stream needs its QBER under the threshold
the ~0.8 fidelity budget implies, a certification service needs its
probe statistics to clear the advertised fidelity — so the application
layer scores every circuit against explicit, per-app objectives rather
than raw delivery counts.

The schema is deliberately small and serialisable:

* :class:`SLOTarget` — one named bound on one app metric ("``qber`` must
  be ≤ 0.1333");
* :class:`SLOCheck` — that bound evaluated against a measured value;
* :class:`SLOVerdict` — the conjunction over an app's targets.

Apps declare their default targets as class attributes
(:attr:`repro.apps.base.AppService.slo_targets`) and may specialise them
per circuit from the :class:`~repro.apps.base.AppContext` (e.g. the
teleport bound derives from the run's target fidelity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

#: Comparison senses an :class:`SLOTarget` understands.
SENSES = ("<=", ">=", ">", "<")


@dataclass(frozen=True)
class SLOTarget:
    """One named service-level objective: a bound on one app metric."""

    #: Key into the app's ``metrics()`` dict.
    metric: str
    #: The bound the metric is compared against.
    bound: float
    #: Comparison sense: the objective is met when ``value <sense> bound``.
    sense: str = ">="

    def __post_init__(self):
        if self.sense not in SENSES:
            raise ValueError(f"unknown SLO sense {self.sense!r} "
                             f"(have: {', '.join(SENSES)})")

    def check(self, value: Optional[float]) -> "SLOCheck":
        """Evaluate this target against a measured metric value.

        A missing metric (``None`` — e.g. no pairs ever reached the app)
        never meets an objective.
        """
        if value is None:
            ok = False
        elif self.sense == "<=":
            ok = value <= self.bound
        elif self.sense == ">=":
            ok = value >= self.bound
        elif self.sense == ">":
            ok = value > self.bound
        else:
            ok = value < self.bound
        return SLOCheck(metric=self.metric, bound=self.bound,
                        sense=self.sense, value=value, ok=ok)

    def label(self) -> str:
        """Compact rendering for tables ("qber <= 0.133")."""
        return f"{self.metric} {self.sense} {self.bound:g}"


@dataclass(frozen=True)
class SLOCheck:
    """One evaluated objective: target, measured value, outcome."""

    metric: str
    bound: float
    sense: str
    value: Optional[float]
    ok: bool

    def label(self) -> str:
        """Compact rendering for tables ("qber 0.08 <= 0.133: ok")."""
        value = "-" if self.value is None else f"{self.value:.4g}"
        return (f"{self.metric} {value} {self.sense} {self.bound:g}: "
                f"{'ok' if self.ok else 'MISS'}")


@dataclass(frozen=True)
class SLOVerdict:
    """An app session's verdict: every objective evaluated, plus the
    conjunction."""

    met: bool
    checks: tuple = field(default_factory=tuple)

    @property
    def failed_checks(self) -> tuple:
        """The checks that missed their bound."""
        return tuple(check for check in self.checks if not check.ok)

    def to_dict(self) -> dict:
        """JSON-ready form for campaign artifacts."""
        return {
            "met": self.met,
            "checks": [{"metric": check.metric, "bound": check.bound,
                        "sense": check.sense, "value": check.value,
                        "ok": check.ok}
                       for check in self.checks],
        }


def evaluate_slo(targets: Sequence[SLOTarget], metrics: dict) -> SLOVerdict:
    """Evaluate every target against a metrics dict.

    With no targets the verdict is trivially met (an app without
    objectives cannot fail them).
    """
    checks = tuple(target.check(metrics.get(target.metric))
                   for target in targets)
    return SLOVerdict(met=all(check.ok for check in checks), checks=checks)


def werner_qber(fidelity: float) -> float:
    """QBER of BBM92 on a Werner pair of the given fidelity.

    For the Werner state with weights ``(F, p, p, p)``, ``p = (1−F)/3``,
    the sifted error rate in either basis is the weight of the two Bell
    components flipped in that basis: ``e = 2(1−F)/3``.  At the paper's
    basic-QKD threshold fidelity of 0.8 this is the canonical "few
    percent per basis" bound of Sec 3.1 (≈ 13.3% combined).
    """
    if not 0.0 <= fidelity <= 1.0:
        raise ValueError("fidelity must be in [0, 1]")
    return 2.0 * (1.0 - fidelity) / 3.0


#: The paper's basic-QKD threshold fidelity (Sec 3.1).
QKD_THRESHOLD_FIDELITY = 0.8

#: Maximum acceptable QBER: the Werner-equivalent error rate at the
#: threshold fidelity.
QKD_MAX_QBER = werner_qber(QKD_THRESHOLD_FIDELITY)

#: The end-to-end fidelity a QKD session *demands* from the network.
#: The 0.8 threshold is where the asymptotic secret fraction reaches
#: zero; an application that intends to distil key asks for headroom
#: above it so the fraction stays positive under finite sampling and
#: device readout noise.  This is the SLO-drives-the-network pattern of
#: "A Design for an Early Quantum Network": the demand raises the
#: circuit's routed fidelity target, not just the verdict afterwards.
QKD_DEMAND_FIDELITY = 0.9


#: Best average teleportation fidelity achievable with no entanglement
#: at all (measure-and-reconstruct): the quantum-usefulness bar a
#: teleport stream must clear.
CLASSICAL_TELEPORT_FIDELITY = 2.0 / 3.0


def teleport_fidelity(pair_fidelity: float) -> float:
    """Average teleported-state fidelity through a pair of fidelity F.

    The standard relation between the entanglement fidelity of the
    resource pair and the average output fidelity of teleportation over
    uniformly random input states: ``F_tele = (2F + 1) / 3``.
    """
    if not 0.0 <= pair_fidelity <= 1.0:
        raise ValueError("fidelity must be in [0, 1]")
    return (2.0 * pair_fidelity + 1.0) / 3.0
