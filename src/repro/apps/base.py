"""The application-service protocol: how apps consume delivered pairs.

The QNP's job ends when a confirmed end-to-end pair (or measurement
outcome) reaches the end-points; an *application service* is what turns
that stream into application-level outcomes — a sifted key, a distilled
pair, a teleported state, a certification verdict.  This module defines
the seam between the two:

* :class:`AppContext` — everything a per-circuit app instance may touch:
  the two end-point devices (for local measurements), a dedicated seeded
  RNG stream, and the circuit's fidelity figures;
* :class:`AppService` — the consumer protocol: ``consume`` absorbs one
  :class:`~repro.network.builder.MatchedPair` as it is delivered (and
  says whether the app took ownership of the qubits), ``metrics``
  reduces the session, ``finalise`` wraps it into an :class:`AppOutcome`
  with an SLO verdict;
* the registry (:func:`register_app`, :func:`get_app`, :data:`APP_NAMES`)
  that the traffic engine, the campaign ``app`` axis and the CLI
  ``--apps`` flag all validate against.

Apps run on the *evaluation side* of the façade, like the fidelity
oracle: they see both halves of each pair, which no real distributed
application could.  That is deliberate — the subsystem scores the
network the way *Benchmarking of Quantum Protocols* does, by
protocol-level figures of merit, and the ground-truth view is what makes
those figures exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .slo import SLOVerdict, evaluate_slo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.builder import MatchedPair


@dataclass
class AppContext:
    """Per-circuit context handed to an app service instance."""

    #: Circuit identity (the head-end's view; recovery keeps it stable
    #: from the app's perspective via the traffic engine's indexing).
    circuit_index: int
    circuit_id: str
    head: str
    tail: str
    #: End-point quantum devices, for local measurements.
    head_device: object
    tail_device: object
    #: Dedicated deterministic RNG stream for this app instance (disjoint
    #: from the workload's arrival/endpoint/fault streams).
    rng: random.Random
    #: The routing budget's worst-case fidelity for this circuit.
    estimated_fidelity: float
    #: The run's end-to-end fidelity target.
    target_fidelity: float


@dataclass
class AppOutcome:
    """One finished app session: metrics plus the SLO verdict."""

    app: str
    circuit_index: int
    circuit_id: str
    pairs_consumed: int
    #: The app's reduced metrics (plain floats/ints, JSON-ready).
    metrics: dict = field(default_factory=dict)
    slo: SLOVerdict = field(default_factory=lambda: SLOVerdict(met=True))

    @property
    def headline(self) -> Optional[float]:
        """The app's single headline metric (None when nothing measured)."""
        key = HEADLINE_METRICS.get(self.app)
        if key is None:
            return None
        return self.metrics.get(key)

    def to_dict(self) -> dict:
        """JSON-ready form for reports and campaign artifacts."""
        return {
            "app": self.app,
            "circuit_index": self.circuit_index,
            "pairs_consumed": self.pairs_consumed,
            "metrics": {key: value for key, value in self.metrics.items()},
            "slo": self.slo.to_dict(),
        }


class AppService:
    """Base class for application services consuming one circuit's pairs.

    Subclasses set :attr:`name` (registry key / CLI spelling),
    :attr:`headline_metric` (the one number a summary table shows) and
    :attr:`slo_targets`, and implement :meth:`consume` and
    :meth:`metrics`.
    """

    #: Registry key and CLI spelling.
    name: str = ""
    #: Key into :meth:`metrics` shown as the app's single summary number.
    headline_metric: str = ""
    #: Default objectives; instances may specialise from their context.
    slo_targets: tuple = ()
    #: End-to-end fidelity this app *demands* from the network: the
    #: traffic engine raises the circuit's routed fidelity target to at
    #: least this before installation (0 = no demand beyond the run's).
    min_fidelity: float = 0.0

    def __init__(self, ctx: AppContext):
        self.ctx = ctx
        self.pairs_consumed = 0
        #: Simulated span of the finished workload (set by :meth:`finalise`
        #: before it calls :meth:`metrics`; rate metrics divide by this).
        self.elapsed_s = 0.0

    def consume(self, pair: "MatchedPair") -> bool:
        """Absorb one delivered end-to-end pair.

        Called synchronously from the delivery plumbing the moment both
        halves of a pair were seen.  Returns True when the app took
        ownership of the pair's qubits (it measured or will free them);
        False lets the façade consume them as usual.
        """
        raise NotImplementedError

    def metrics(self) -> dict:
        """Reduce the session into plain-scalar metrics."""
        raise NotImplementedError

    def finalise(self, elapsed_s: float) -> AppOutcome:
        """Close the session: metrics + SLO verdict.

        ``elapsed_s`` is the simulated span of the workload, for rate
        metrics (apps that need it read it from ``self.elapsed_s``
        inside :meth:`metrics`).
        """
        self.elapsed_s = elapsed_s
        metrics = self.metrics()
        return AppOutcome(
            app=self.name,
            circuit_index=self.ctx.circuit_index,
            circuit_id=self.ctx.circuit_id,
            pairs_consumed=self.pairs_consumed,
            metrics=metrics,
            slo=evaluate_slo(self.slo_targets, metrics),
        )


@dataclass
class AppSummary:
    """All of one app's sessions in a run, rolled up."""

    app: str
    circuits: int = 0
    #: Circuits whose session met every SLO objective.
    circuits_met: int = 0
    pairs_consumed: int = 0
    _headlines: list = field(default_factory=list)

    @property
    def headline(self) -> Optional[float]:
        """Mean of the app's headline metric across its circuits."""
        if not self._headlines:
            return None
        return sum(self._headlines) / len(self._headlines)

    @property
    def slo_label(self) -> str:
        """Compact "met/total" rendering for tables."""
        return f"{self.circuits_met}/{self.circuits}"


def summarise_apps(outcomes) -> dict[str, AppSummary]:
    """Roll per-circuit :class:`AppOutcome`\\ s up by app name (sorted)."""
    summaries: dict[str, AppSummary] = {}
    for outcome in outcomes:
        summary = summaries.setdefault(outcome.app, AppSummary(outcome.app))
        summary.circuits += 1
        summary.circuits_met += 1 if outcome.slo.met else 0
        summary.pairs_consumed += outcome.pairs_consumed
        headline = outcome.headline
        if headline is not None:
            summary._headlines.append(headline)
    return dict(sorted(summaries.items()))


#: name → AppService subclass.
_APP_REGISTRY: dict[str, type] = {}

#: name → headline metric key (kept alongside the registry so outcomes
#: remain summarisable even after pickling strips the class).
HEADLINE_METRICS: dict[str, str] = {}


def register_app(app_type: type) -> type:
    """Register an :class:`AppService` subclass (usable as a decorator)."""
    if not app_type.name:
        raise ValueError("an app service needs a non-empty name")
    _APP_REGISTRY[app_type.name] = app_type
    HEADLINE_METRICS[app_type.name] = app_type.headline_metric
    return app_type


def get_app(name: str) -> type:
    """Resolve an app name to its service class (ValueError names both
    the offender and the vocabulary)."""
    try:
        return _APP_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown app {name!r} (have: {', '.join(sorted(_APP_REGISTRY))})"
        ) from None


def app_names() -> tuple:
    """The registered app vocabulary, sorted."""
    return tuple(sorted(_APP_REGISTRY))
