"""The application service layer: SLO-scored consumers of delivered pairs.

``repro.apps`` closes the loop the paper opens in Sec 3.1: virtual
circuits exist to feed applications, so every traffic session can carry
an *app type* and every delivered pair flows into a per-circuit consumer
that produces application-level outcomes and SLO verdicts.  Four
services ship behind one :class:`~repro.apps.base.AppService` protocol:

* ``qkd`` — BBM92 sifting into secret-key rate and QBER
  (:mod:`repro.apps.qkd`),
* ``distil`` — consecutive deliveries paired through DEJMPS, scored by
  fidelity gain over the raw circuit (:mod:`repro.apps.distil`),
* ``teleport`` — per-delivery Pauli-frame corrections and average
  teleported fidelity (:mod:`repro.apps.teleport`),
* ``certify`` — sampled fidelity-test probe rounds interleaved with
  payload (:mod:`repro.apps.certify`).

Entry points: ``TrafficEngine(apps=[...])``, the campaign ``app`` axis,
``python -m repro traffic --apps qkd,distil`` and
``python -m repro apps --demo``.
"""

from .base import (
    AppContext,
    AppOutcome,
    AppService,
    AppSummary,
    HEADLINE_METRICS,
    app_names,
    get_app,
    register_app,
    summarise_apps,
)
from .certify import CertifyApp
from .distil import DistilApp
from .qkd import QKDApp
from .slo import (
    CLASSICAL_TELEPORT_FIDELITY,
    QKD_DEMAND_FIDELITY,
    QKD_MAX_QBER,
    QKD_THRESHOLD_FIDELITY,
    SLOCheck,
    SLOTarget,
    SLOVerdict,
    evaluate_slo,
    teleport_fidelity,
    werner_qber,
)
from .teleport import TeleportApp

__all__ = [
    "AppContext",
    "AppOutcome",
    "AppService",
    "AppSummary",
    "CLASSICAL_TELEPORT_FIDELITY",
    "CertifyApp",
    "DistilApp",
    "HEADLINE_METRICS",
    "QKDApp",
    "QKD_DEMAND_FIDELITY",
    "QKD_MAX_QBER",
    "QKD_THRESHOLD_FIDELITY",
    "SLOCheck",
    "SLOTarget",
    "SLOVerdict",
    "TeleportApp",
    "app_names",
    "evaluate_slo",
    "get_app",
    "register_app",
    "summarise_apps",
    "teleport_fidelity",
    "werner_qber",
]
