"""Inter-circuit DEJMPS distillation as a traffic application service.

The paper's layered-service pattern (Sec 4.3): a circuit delivers pairs
to a distillation module at its end-points, and the module's output —
fewer, better pairs — is what the consumer actually sees.  Consecutive
deliveries are paired through
:class:`repro.services.distillation.DistillationModule` (normalised to
the Φ+ frame from the delivered Bell-state information, twirled, one
DEJMPS round), and the service scores the circuit by the fidelity *gain*
of the surviving pairs over the same circuit's raw deliveries.

Gates are ideal (:data:`~repro.quantum.operations.PERFECT_OPS`): the
service isolates what the protocol buys on the pairs this network
actually delivers, not what device noise takes back.
"""

from __future__ import annotations

from ..analysis.stats import mean
from ..quantum.fidelity import pair_fidelity
from ..services.distillation import DistillationModule
from .base import AppContext, AppService, register_app
from .slo import SLOTarget


@register_app
class DistilApp(AppService):
    """Pair consecutive deliveries through DEJMPS; score the gain."""

    name = "distil"
    headline_metric = "fidelity_gain"
    slo_targets = (
        SLOTarget("fidelity_gain", 0.0, ">"),
        SLOTarget("rounds_attempted", 1, ">="),
    )

    #: Two nested DEJMPS rounds: single-click pairs carry a bit/bit-phase
    #: error mix for which one round is nearly neutral — it converts the
    #: structure into phase errors the second round then crushes (the
    #: DEJMPS two-cycle the distillation module's tests pin).
    levels = 2

    def __init__(self, ctx: AppContext):
        super().__init__(ctx)
        self._module = DistillationModule(ctx.rng, twirl=True,
                                          levels=self.levels)
        self._raw_fidelities: list[float] = []
        self._distilled_fidelities: list[float] = []

    def consume(self, pair) -> bool:
        """Feed one delivery into the distillation ladder (owns the pair)."""
        self.pairs_consumed += 1
        if pair.fidelity is not None:
            self._raw_fidelities.append(pair.fidelity)
        self._module.absorb(pair.head_delivery.qubit,
                            pair.tail_delivery.qubit,
                            pair.head_delivery.bell_state)
        self._drain()
        return True

    def _drain(self) -> None:
        """Score and free the pairs that survived the final level.

        ``absorb`` normalised every input into the Φ+ frame, so the
        surviving pair's fidelity is read against Φ+.
        """
        while self._module.distilled:
            qubit_a, qubit_b = self._module.distilled.pop()
            self._distilled_fidelities.append(
                pair_fidelity(qubit_a, qubit_b, 0))
            for qubit in (qubit_a, qubit_b):
                if qubit.state is not None:
                    qubit.state.remove(qubit)

    def metrics(self) -> dict:
        """Raw vs distilled fidelity, yield and success statistics."""
        self._module.discard_pending()
        raw = mean(self._raw_fidelities) if self._raw_fidelities else None
        distilled = (mean(self._distilled_fidelities)
                     if self._distilled_fidelities else None)
        metrics = {
            "pairs_in": self.pairs_consumed,
            "pairs_out": len(self._distilled_fidelities),
            "rounds_attempted": self._module.rounds_attempted,
            "rounds_succeeded": self._module.rounds_succeeded,
            "success_rate": round(self._module.success_rate, 6),
        }
        if raw is not None:
            metrics["raw_fidelity"] = round(raw, 6)
        if distilled is not None:
            metrics["distilled_fidelity"] = round(distilled, 6)
        if raw is not None and distilled is not None:
            metrics["fidelity_gain"] = round(distilled - raw, 6)
        return metrics
