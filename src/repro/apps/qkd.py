"""BBM92 quantum key distribution as a traffic application service.

The canonical "measure directly" app (Sec 3.1): every confirmed pair on
the circuit is measured at both end-points in random bases through
:class:`repro.services.qkd.BBM92Endpoint`, sifted at session close, and
scored by QBER and secret-key rate against the paper's basic-QKD
threshold (fidelity ≈ 0.8, i.e. a Werner-equivalent QBER of ≈ 13.3%).
"""

from __future__ import annotations

import math

from ..services.qkd import BBM92Endpoint, sift
from .base import AppContext, AppService, register_app
from .slo import QKD_DEMAND_FIDELITY, QKD_MAX_QBER, SLOTarget


def binary_entropy(p: float) -> float:
    """The binary entropy h₂(p) in bits (0 at p ∈ {0, 1})."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def secret_fraction(qber_z: float, qber_x: float) -> float:
    """Asymptotic BBM92 secret fraction ``max(0, 1 − h₂(e_Z) − h₂(e_X))``.

    The standard one-way error-correction + privacy-amplification bound
    with basis-resolved error rates (Shor–Preskill).  Heralded pairs
    carry more phase than parity error, so keeping the bases separate is
    measurably tighter than the symmetric ``1 − 2 h₂(e)`` form; the
    fraction still hits zero near 11% combined, so a session over a
    sub-threshold circuit distils no key at all.
    """
    for error in (qber_z, qber_x):
        if not 0.0 <= error <= 1.0:
            raise ValueError("qber must be in [0, 1]")
    return max(0.0, 1.0 - binary_entropy(qber_z) - binary_entropy(qber_x))


@register_app
class QKDApp(AppService):
    """Stream deliveries through BBM92 sifting into a secret key."""

    name = "qkd"
    headline_metric = "secret_key_rate_bps"
    min_fidelity = QKD_DEMAND_FIDELITY
    slo_targets = (
        SLOTarget("qber", QKD_MAX_QBER, "<="),
        SLOTarget("secret_key_rate_bps", 0.0, ">"),
    )

    def __init__(self, ctx: AppContext):
        super().__init__(ctx)
        self._head = BBM92Endpoint(ctx.head_device, ctx.rng)
        self._tail = BBM92Endpoint(ctx.tail_device, ctx.rng)

    def consume(self, pair) -> bool:
        """Measure both halves in independent random bases (owns the pair)."""
        self.pairs_consumed += 1
        self._head.absorb(pair.head_delivery)
        self._tail.absorb(pair.tail_delivery)
        return True

    def metrics(self) -> dict:
        """Sift the session and reduce it to key-rate figures."""
        key = sift(self._head, self._tail)
        fraction = (secret_fraction(key.qber_z, key.qber_x)
                    if key.sifted_rounds else 0.0)
        secret_bits = key.sifted_rounds * fraction
        rate = secret_bits / self.elapsed_s if self.elapsed_s > 0 else 0.0
        return {
            "qber": round(key.qber, 6),
            "qber_z": round(key.qber_z, 6),
            "qber_x": round(key.qber_x, 6),
            "sifted_rounds": key.sifted_rounds,
            "total_rounds": key.total_rounds,
            "sift_ratio": round(key.sift_ratio, 6),
            "secret_fraction": round(fraction, 6),
            "secret_bits": round(secret_bits, 4),
            "secret_key_rate_bps": round(rate, 4),
        }
