"""Fidelity certification as a traffic application service.

The network cannot read fidelity (Sec 4.1), so a service that must
*certify* its circuit interleaves test rounds with payload: every
``probe_every``-th delivery is sacrificed as a probe — both end-points
measure in the same basis (alternating Z and X) and the correlation is
checked against the delivered Bell-state information, exactly the
:mod:`repro.services.fidelity_test` method applied in-stream.  The
accumulated error rates bound the fidelity of the untouched payload
pairs from the same circuit.
"""

from __future__ import annotations

from ..services.fidelity_test import FidelityEstimate, expected_xor
from .base import AppContext, AppService, register_app
from .slo import SLOTarget


@register_app
class CertifyApp(AppService):
    """Sampled probe rounds certifying the circuit's payload fidelity."""

    name = "certify"
    headline_metric = "fidelity_lower_bound"
    slo_targets = (
        SLOTarget("probe_pass_rate", 0.75, ">="),
        SLOTarget("probe_rounds", 2, ">="),
    )

    #: Every Nth delivery becomes a probe; the rest are payload.
    probe_every = 4

    def __init__(self, ctx: AppContext):
        super().__init__(ctx)
        self.payload_rounds = 0
        self._passes = 0
        # basis → [errors, rounds]
        self._results = {"Z": [0, 0], "X": [0, 0]}

    def consume(self, pair) -> bool:
        """Sacrifice every Nth pair as a same-basis probe round."""
        self.pairs_consumed += 1
        if (self.pairs_consumed - 1) % self.probe_every:
            self.payload_rounds += 1
            return False  # payload: the façade consumes it
        probe_index = (self.pairs_consumed - 1) // self.probe_every
        basis = "Z" if probe_index % 2 == 0 else "X"
        head_bit, _ = self.ctx.head_device.measure(
            pair.head_delivery.qubit, basis)
        tail_bit, _ = self.ctx.tail_device.measure(
            pair.tail_delivery.qubit, basis)
        expected = expected_xor(int(pair.head_delivery.bell_state), basis)
        tally = self._results[basis]
        tally[1] += 1
        if (head_bit ^ tail_bit) != expected:
            tally[0] += 1
        else:
            self._passes += 1
        return True  # probe: measured out by the app

    def estimate(self) -> FidelityEstimate:
        """The accumulated probe statistics as a fidelity bound."""
        error_z = (self._results["Z"][0] / self._results["Z"][1]
                   if self._results["Z"][1] else 0.0)
        error_x = (self._results["X"][0] / self._results["X"][1]
                   if self._results["X"][1] else 0.0)
        return FidelityEstimate(
            fidelity_lower_bound=max(0.0, 1.0 - error_z - error_x),
            error_rate_z=error_z,
            error_rate_x=error_x,
            rounds_z=self._results["Z"][1],
            rounds_x=self._results["X"][1],
        )

    def metrics(self) -> dict:
        """Probe statistics, the fidelity bound and the pass rate."""
        estimate = self.estimate()
        probes = estimate.rounds_z + estimate.rounds_x
        return {
            "probe_rounds": probes,
            "payload_rounds": self.payload_rounds,
            "probe_pass_rate": round(self._passes / probes, 6)
            if probes else 0.0,
            "error_rate_z": round(estimate.error_rate_z, 6),
            "error_rate_x": round(estimate.error_rate_x, 6),
            "fidelity_lower_bound": round(estimate.fidelity_lower_bound, 6),
            "standard_error": round(estimate.standard_error(), 6),
        }
