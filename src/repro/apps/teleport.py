"""State-transmission (teleportation) as a traffic application service.

The "create and keep" consumer: each delivered pair is a teleportation
resource.  The delivered Bell-state information dictates the Pauli-frame
correction the receiver would apply (Φ+ needs none, Ψ+ an X, Φ− a Z,
Ψ− both — exactly the ``final_state`` machinery's frame), and the
ground-truth pair fidelity maps to the average fidelity of the
teleported state through ``F_tele = (2F + 1)/3``.

Everything here is arithmetic on the delivery record — no extra quantum
operations — so the service behaves identically on the ``dm`` and
``bell`` formalisms, and its per-pair cost is O(1) on both.
"""

from __future__ import annotations

from ..analysis.stats import mean
from .base import AppContext, AppService, register_app
from .slo import CLASSICAL_TELEPORT_FIDELITY, SLOTarget, teleport_fidelity

#: Pauli-frame labels by Bell index (phase bit, parity bit).
FRAME_LABELS = {0: "I", 1: "X", 2: "Z", 3: "XZ"}


@register_app
class TeleportApp(AppService):
    """Score each delivery as a teleportation channel use."""

    name = "teleport"
    headline_metric = "teleported_fidelity"
    #: The stream must beat what no entanglement could do: the classical
    #: measure-and-reconstruct bound of 2/3.  (A bound tied to the run's
    #: own fidelity target would sit exactly at the measured mean — the
    #: routing budget is approximately tight — and turn the verdict into
    #: a coin flip.)
    slo_targets = (SLOTarget("teleported_fidelity",
                             round(CLASSICAL_TELEPORT_FIDELITY, 6), ">"),)

    def __init__(self, ctx: AppContext):
        super().__init__(ctx)
        self._teleported: list[float] = []
        self._frames = {label: 0 for label in FRAME_LABELS.values()}

    def consume(self, pair) -> bool:
        """Record the Pauli correction frame and the teleported fidelity."""
        self.pairs_consumed += 1
        frame = FRAME_LABELS[int(pair.head_delivery.bell_state) & 0b11]
        self._frames[frame] += 1
        if pair.fidelity is not None:
            self._teleported.append(teleport_fidelity(pair.fidelity))
        return False  # the façade consumes the qubits as usual

    def metrics(self) -> dict:
        """Mean teleported fidelity plus the correction-frame census."""
        corrected = self.pairs_consumed - self._frames["I"]
        metrics = {
            "states_teleported": self.pairs_consumed,
            "corrections_applied": corrected,
            "correction_rate": round(corrected / self.pairs_consumed, 6)
            if self.pairs_consumed else 0.0,
        }
        for label, count in self._frames.items():
            metrics[f"frame_{label}"] = count
        if self._teleported:
            metrics["teleported_fidelity"] = round(mean(self._teleported), 6)
            # What the circuit's own fidelity target would promise — shown
            # alongside the measured mean so the headroom is visible.
            metrics["target_teleported_fidelity"] = round(
                teleport_fidelity(self.ctx.target_fidelity), 6)
        return metrics
