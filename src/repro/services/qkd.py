"""BBM92 quantum key distribution on top of the QNP.

The canonical "measure directly" application (Sec 3.1): both end-points
measure their half of each delivered pair in a randomly chosen basis, then
sift over the classical channel, keeping rounds where the bases matched.
The Bell-state information delivered by the QNP tells each side how to
reconcile outcomes:

* Z-basis round: the XOR of the two outcomes equals the Bell state's
  parity bit (Ψ states anti-correlate, Φ states correlate),
* X-basis round: the XOR equals the phase bit.

The quantum bit error rate (QBER) of the sifted key certifies the link: for
basic QKD the paper quotes a threshold fidelity of about 0.8, i.e. a QBER
of a few percent per basis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.requests import DeliveryStatus, PairDelivery
from .fidelity_test import expected_xor


@dataclass
class SiftedKey:
    """Result of a BBM92 session."""

    key_bits: list[int]
    qber: float
    sifted_rounds: int
    total_rounds: int
    #: Basis-resolved tallies (asymmetric error rates matter: heralded
    #: states carry more phase than parity error, and the asymptotic
    #: secret fraction keys off each basis separately).
    errors_z: int = 0
    rounds_z: int = 0
    errors_x: int = 0
    rounds_x: int = 0

    @property
    def sift_ratio(self) -> float:
        return self.sifted_rounds / self.total_rounds if self.total_rounds else 0.0

    @property
    def qber_z(self) -> float:
        """Error rate of the Z-basis sifted rounds."""
        return self.errors_z / self.rounds_z if self.rounds_z else 0.0

    @property
    def qber_x(self) -> float:
        """Error rate of the X-basis sifted rounds."""
        return self.errors_x / self.rounds_x if self.rounds_x else 0.0


@dataclass
class _Round:
    basis: str
    bit: int
    bell_state: int


class BBM92Endpoint:
    """One end of a BBM92 session.

    Feed it confirmed KEEP deliveries; it measures the local qubit in a
    random basis using the node's device.  (With MEASURE requests the basis
    is fixed per request, so key distribution uses KEEP + local measurement,
    which also exercises the create-side API.)
    """

    def __init__(self, device, rng):
        self.device = device
        self.rng = rng
        self.rounds: dict = {}

    def absorb(self, delivery: PairDelivery) -> None:
        if delivery.status != DeliveryStatus.CONFIRMED or delivery.qubit is None:
            return
        basis = "Z" if self.rng.random() < 0.5 else "X"
        bit, _ = self.device.measure(delivery.qubit, basis)
        self.rounds[delivery.pair_id] = _Round(
            basis=basis, bit=bit, bell_state=int(delivery.bell_state))


def sift(head: BBM92Endpoint, tail: BBM92Endpoint) -> SiftedKey:
    """Classical sifting: compare bases, reconcile with the Bell state.

    Returns the head-side key; the error count measures how often the
    reconciled outcomes disagree (the QBER).
    """
    key_bits: list[int] = []
    errors = 0
    common = sorted(set(head.rounds) & set(tail.rounds))
    sifted = 0
    by_basis = {"Z": [0, 0], "X": [0, 0]}  # basis → [errors, rounds]
    for pair_id in common:
        round_head = head.rounds[pair_id]
        round_tail = tail.rounds[pair_id]
        if round_head.basis != round_tail.basis:
            continue
        sifted += 1
        tally = by_basis[round_head.basis]
        tally[1] += 1
        expected = expected_xor(round_head.bell_state, round_head.basis)
        if (round_head.bit ^ round_tail.bit) != expected:
            errors += 1
            tally[0] += 1
        key_bits.append(round_head.bit)
    qber = errors / sifted if sifted else 0.0
    return SiftedKey(key_bits=key_bits, qber=qber,
                     sifted_rounds=sifted, total_rounds=len(common),
                     errors_z=by_basis["Z"][0], rounds_z=by_basis["Z"][1],
                     errors_x=by_basis["X"][0], rounds_x=by_basis["X"][1])


def run_bbm92(net, circuit_id: str, num_pairs: int,
              timeout_s: float = 600.0) -> SiftedKey:
    """Convenience driver: request pairs on a circuit and distil a key."""
    from ..core.requests import UserRequest

    route = net.route_of(circuit_id)
    head_name, tail_name = route.path[0], route.path[-1]
    head = BBM92Endpoint(net.node(head_name).device, net.sim.rng)
    tail = BBM92Endpoint(net.node(tail_name).device, net.sim.rng)
    handle = net.submit(circuit_id, UserRequest(num_pairs=num_pairs))
    handle.on_delivery(head.absorb)
    # Tail deliveries arrive through the facade's tail collector.
    seen_tail = 0

    def pump_tail():
        nonlocal seen_tail
        for delivery in handle.tail_deliveries[seen_tail:]:
            tail.absorb(delivery)
            seen_tail += 1

    net.run_until_complete([handle], timeout_s=timeout_s)
    pump_tail()
    return sift(head, tail)
