"""Higher-level quantum network services built on the QNP (Sec 3.3/4.3)."""

from .distillation import (
    DistillationModule,
    DistillationOutcome,
    dejmps_round,
    normalise_to_phi_plus,
    pauli_twirl,
    theoretical_dejmps_fidelity,
    theoretical_dejmps_success,
)
from .fidelity_test import FidelityEstimate, run_test_rounds
from .qkd import BBM92Endpoint, SiftedKey, run_bbm92, sift

__all__ = [
    "DistillationModule",
    "DistillationOutcome",
    "dejmps_round",
    "normalise_to_phi_plus",
    "pauli_twirl",
    "theoretical_dejmps_fidelity",
    "theoretical_dejmps_success",
    "FidelityEstimate",
    "run_test_rounds",
    "BBM92Endpoint",
    "SiftedKey",
    "run_bbm92",
    "sift",
]
