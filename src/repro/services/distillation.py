"""Entanglement distillation as a layered service (Sec 4.3).

DEJMPS distillation consumes two imperfect pairs shared between the same
two nodes and, with finite probability, produces one pair of higher
fidelity.  The paper proposes running it *between circuits*: an inner QNP
circuit delivers pairs to the distillation module at two intermediate
end-points, and the distilled pairs feed a virtual link for an outer
circuit.  This module implements the quantum core of that service on the
density-matrix engine plus the pairing logic that consumes QNP deliveries.

The DEJMPS recipe (Deutsch et al.) for pairs in the Φ+ frame:

1. node A applies Rx(+π/2) to both its qubits, node B applies Rx(−π/2),
2. both nodes apply CNOT from their "keep" qubit to their "sacrifice" qubit,
3. both measure the sacrifice qubit in Z and compare over the classical
   channel: equal outcomes → keep, unequal → both pairs wasted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..quantum.bell import BellIndex
from ..quantum.gates import CNOT, rx
from ..quantum.operations import (
    NoisyOpParams,
    PERFECT_OPS,
    apply_gate,
    apply_two_qubit_gate,
    measure_qubit,
    pauli_correct,
)
from ..quantum.qubit import Qubit


@dataclass
class DistillationOutcome:
    """Result of one DEJMPS round."""

    success: bool
    keep_a: Optional[Qubit]
    keep_b: Optional[Qubit]
    outcome_a: int
    outcome_b: int


def dejmps_round(pair_one: tuple[Qubit, Qubit], pair_two: tuple[Qubit, Qubit],
                 rng, ops: NoisyOpParams = PERFECT_OPS) -> DistillationOutcome:
    """One DEJMPS distillation round on two Φ+-frame pairs.

    ``pair_one`` is kept on success; ``pair_two`` is always consumed.
    Qubit order within each tuple: (node A's qubit, node B's qubit).
    """
    keep_a, keep_b = pair_one
    sac_a, sac_b = pair_two
    plus = rx(math.pi / 2)
    minus = rx(-math.pi / 2)
    apply_gate(keep_a, plus, ops)
    apply_gate(sac_a, plus, ops)
    apply_gate(keep_b, minus, ops)
    apply_gate(sac_b, minus, ops)
    apply_two_qubit_gate(keep_a, sac_a, CNOT, ops)
    apply_two_qubit_gate(keep_b, sac_b, CNOT, ops)
    outcome_a = measure_qubit(sac_a, rng, "Z", ops)
    outcome_b = measure_qubit(sac_b, rng, "Z", ops)
    success = outcome_a == outcome_b
    if not success:
        # Both remaining qubits are useless: discard them.
        for qubit in (keep_a, keep_b):
            if qubit.state is not None:
                qubit.state.remove(qubit)
        return DistillationOutcome(False, None, None, outcome_a, outcome_b)
    return DistillationOutcome(True, keep_a, keep_b, outcome_a, outcome_b)


def normalise_to_phi_plus(qubit: Qubit, bell_state: BellIndex,
                          ops: NoisyOpParams = PERFECT_OPS) -> None:
    """Rotate a delivered pair into the Φ+ frame (DEJMPS's working frame).

    Applied at one end only, using the Bell-state information the QNP
    delivered — this is exactly what the final_state machinery automates.
    """
    pauli_correct(qubit, int(bell_state), ops)


def pauli_twirl(qubit_a: Qubit, qubit_b: Qubit, rng,
                ops: NoisyOpParams = PERFECT_OPS) -> None:
    """Bilateral Pauli twirl: Bell-diagonalise a pair.

    Both nodes apply the *same* uniformly random Pauli (shared randomness
    over the classical channel).  Every Bell state is invariant under
    P ⊗ P up to a sign, and each cross-Bell coherence flips sign under at
    least one choice, so averaging removes them: the twirled state is
    Bell-diagonal with unchanged fidelity.

    This matters for distillation of real QNP pairs: the heralded |11⟩
    admixture carries Φ+/Φ− coherences that slip through the DEJMPS parity
    check; twirling first restores the textbook behaviour.
    """
    from ..quantum.gates import I2, X, Y, Z

    pauli = rng.choice((I2, X, Y, Z))
    if pauli is not I2:
        apply_gate(qubit_a, pauli, ops)
        apply_gate(qubit_b, pauli, ops)


class DistillationModule:
    """Pairs up QNP deliveries and distils them, possibly over several
    nested rounds.

    Feed it matched pairs (both qubits + the reported Bell state); each two
    consecutive pairs at a level undergo a DEJMPS round, and survivors feed
    the next level.  Outputs of the final level accumulate in
    :attr:`distilled`.

    ``levels`` matters in practice: pairs produced by single-click
    heralding carry a bit-flip/bit-phase-flip error mix for which a single
    DEJMPS round is nearly neutral — it converts the error structure into
    phase errors which the *second* round then crushes (the well-known
    DEJMPS two-cycle).  The repository's tests pin this behaviour.
    """

    def __init__(self, rng, ops: NoisyOpParams = PERFECT_OPS,
                 twirl: bool = True, levels: int = 1):
        if levels < 1:
            raise ValueError("need at least one distillation level")
        self.rng = rng
        self.ops = ops
        #: Bell-diagonalise pairs before distilling (recommended for pairs
        #: produced by heralded hardware — see :func:`pauli_twirl`).
        self.twirl = twirl
        self.levels = levels
        self._buffers: list[list[tuple[Qubit, Qubit]]] = [[] for _ in range(levels)]
        self.distilled: list[tuple[Qubit, Qubit]] = []
        self.rounds_attempted = 0
        self.rounds_succeeded = 0

    def absorb(self, qubit_a: Qubit, qubit_b: Qubit,
               bell_state: BellIndex) -> None:
        """Accept one pair (A-side qubit, B-side qubit, reported state)."""
        normalise_to_phi_plus(qubit_b, bell_state, self.ops)
        if self.twirl:
            pauli_twirl(qubit_a, qubit_b, self.rng, self.ops)
        self._push(0, (qubit_a, qubit_b))

    def _push(self, level: int, pair: tuple[Qubit, Qubit]) -> None:
        if level == self.levels:
            self.distilled.append(pair)
            return
        buffer = self._buffers[level]
        buffer.append(pair)
        if len(buffer) >= 2:
            pair_one = buffer.pop(0)
            pair_two = buffer.pop(0)
            self.rounds_attempted += 1
            outcome = dejmps_round(pair_one, pair_two, self.rng, self.ops)
            if outcome.success:
                self.rounds_succeeded += 1
                self._push(level + 1, (outcome.keep_a, outcome.keep_b))

    @property
    def success_rate(self) -> float:
        if self.rounds_attempted == 0:
            return 0.0
        return self.rounds_succeeded / self.rounds_attempted

    def discard_pending(self) -> int:
        """Free every pair still buffered below the final level.

        Session close for streaming consumers (the traffic application
        layer): an odd pair waiting for a partner at some level would
        otherwise keep its qubits — and their simulated state — alive
        forever.  Returns the number of pairs discarded.
        """
        discarded = 0
        for buffer in self._buffers:
            while buffer:
                qubit_a, qubit_b = buffer.pop()
                for qubit in (qubit_a, qubit_b):
                    if qubit.state is not None:
                        qubit.state.remove(qubit)
                discarded += 1
        return discarded


def theoretical_dejmps_fidelity(fidelity: float) -> float:
    """Output fidelity of DEJMPS on two Werner pairs (noiseless gates).

    Standard closed form: with input fidelity F and Werner weights
    p = (1−F)/3, success keeps
    ``F' = (F² + p²) / (F² + 2 p F_mix…)`` — written out explicitly below.
    """
    p = (1.0 - fidelity) / 3.0
    numerator = fidelity ** 2 + p ** 2
    denominator = fidelity ** 2 + 2.0 * fidelity * p + 5.0 * p ** 2
    return numerator / denominator


def theoretical_dejmps_success(fidelity: float) -> float:
    """Success probability of DEJMPS on two Werner pairs."""
    p = (1.0 - fidelity) / 3.0
    return fidelity ** 2 + 2.0 * fidelity * p + 5.0 * p ** 2
