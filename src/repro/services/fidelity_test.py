"""End-to-end fidelity test rounds (Sec 3.4 / 4.1 "Fidelity test rounds").

The network cannot read a pair's fidelity, so it consumes a sample of pairs
as *test rounds*: both ends measure in the same basis and the correlation
statistics bound the fidelity of the untouched pairs from the same circuit.

For a Bell-diagonal state with weights (p0, p1, p2, p3) relative to the
reported Bell frame:

* the Z-basis error rate is  e_Z = p1 + p3  (parity-flipped components),
* the X-basis error rate is  e_X = p2 + p3  (phase-flipped components),

so  F = p0 ≥ 1 − e_Z − e_X.  This is the same method ref [19] applies per
link, lifted to end-to-end pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.requests import DeliveryStatus, RequestType, UserRequest


@dataclass
class FidelityEstimate:
    """Outcome of a batch of test rounds."""

    fidelity_lower_bound: float
    error_rate_z: float
    error_rate_x: float
    rounds_z: int
    rounds_x: int

    def standard_error(self) -> float:
        """Binomial standard error of the combined bound."""
        total = 0.0
        for error, rounds in ((self.error_rate_z, self.rounds_z),
                              (self.error_rate_x, self.rounds_x)):
            if rounds > 0:
                total += error * (1.0 - error) / rounds
        return math.sqrt(total)


def expected_xor(bell_state: int, basis: str) -> int:
    """Expected XOR of same-basis outcomes on a pair in ``bell_state``.

    Z-basis outcomes XOR to the state's parity bit, X-basis outcomes to
    its phase bit — the reconciliation rule test rounds (and BBM92
    sifting) check correlations against.
    """
    return bell_state & 1 if basis == "Z" else (bell_state >> 1) & 1


_expected_xor = expected_xor


def run_test_rounds(net, circuit_id: str, rounds_per_basis: int,
                    timeout_s: float = 600.0) -> FidelityEstimate:
    """Consume ``2 × rounds_per_basis`` pairs as fidelity test rounds."""
    results = {"Z": [0, 0], "X": [0, 0]}  # basis → [errors, rounds]
    handles = []
    for basis in ("Z", "X"):
        handle = net.submit(circuit_id,
                            UserRequest(num_pairs=rounds_per_basis,
                                        request_type=RequestType.MEASURE,
                                        measure_basis=basis))
        handles.append((basis, handle))
    net.run_until_complete([h for _, h in handles], timeout_s=timeout_s)
    for basis, handle in handles:
        tail_by_pair = {d.pair_id: d for d in handle.tail_deliveries
                        if d.status == DeliveryStatus.CONFIRMED}
        for head_delivery in handle.delivered:
            if head_delivery.status != DeliveryStatus.CONFIRMED:
                continue
            tail_delivery = tail_by_pair.get(head_delivery.pair_id)
            if tail_delivery is None or tail_delivery.measurement is None:
                continue
            expected = _expected_xor(int(head_delivery.bell_state), basis)
            observed = head_delivery.measurement ^ tail_delivery.measurement
            results[basis][1] += 1
            if observed != expected:
                results[basis][0] += 1
    error_z = results["Z"][0] / results["Z"][1] if results["Z"][1] else 0.0
    error_x = results["X"][0] / results["X"][1] if results["X"][1] else 0.0
    return FidelityEstimate(
        fidelity_lower_bound=max(0.0, 1.0 - error_z - error_x),
        error_rate_z=error_z,
        error_rate_x=error_x,
        rounds_z=results["Z"][1],
        rounds_x=results["X"][1],
    )
