"""Unified metrics registry: counters, gauges, bounded-memory histograms.

One :class:`MetricsRegistry` lives on every :class:`~repro.network.Network`
(``net.obs``) and is the single place the scheduler, link layer, QNP,
policer/arbiter, traffic engine and applications publish their numbers.
Two publication styles coexist:

* **pull** — an instrument constructed with a ``source`` callable holds no
  state of its own; reading it polls the producer's existing stat field
  (``link.attempts_made``, ``sim.events_processed``, …).  This is the
  default for everything the simulator already counts: zero hot-path
  cost, the registry only pays at snapshot time.
* **push** — counters without a source are incremented explicitly
  (``counter.inc()``), and histograms fold samples into
  :class:`~repro.analysis.stats.P2Quantile` estimators as they arrive, so
  quantiles stay available without keeping the samples (bounded memory —
  five markers per tracked quantile, independent of sample count).

``snapshot()`` flattens everything into one ``{name: value}`` dict: plain
numbers for counters and gauges, a ``{count, mean, min, max, p5, …}``
sub-dict per histogram.  That dict is what the snapshot emitter streams
to JSONL and what the end-of-run reports read their headline numbers
from.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..analysis.stats import P2Quantile

#: Quantiles a histogram tracks by default (reported as p5/p50/p95/p99).
DEFAULT_QUANTILES = (0.05, 0.50, 0.95, 0.99)


class Counter:
    """A monotonically increasing count (pushed or pulled).

    With a ``source`` callable the counter is read-only and polls the
    producer; without one it accumulates :meth:`inc` calls.
    """

    __slots__ = ("name", "_value", "_source")

    def __init__(self, name: str, source: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0
        self._source = source

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (push-style counters only)."""
        if self._source is not None:
            raise TypeError(f"counter {self.name!r} is source-backed")
        self._value += amount

    @property
    def value(self):
        """Current count (polls the source when pull-based)."""
        if self._source is not None:
            return self._source()
        return self._value


class Gauge:
    """A point-in-time level (heap size, queue depth, busy time)."""

    __slots__ = ("name", "_value", "_source")

    def __init__(self, name: str, source: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self._source = source

    def set(self, value: float) -> None:
        """Record the current level (push-style gauges only)."""
        if self._source is not None:
            raise TypeError(f"gauge {self.name!r} is source-backed")
        self._value = value

    @property
    def value(self):
        """Current level (polls the source when pull-based)."""
        if self._source is not None:
            return self._source()
        return self._value


class Histogram:
    """Streaming distribution summary with P² quantile estimators.

    Tracks count/sum/min/max exactly and each configured quantile with a
    five-marker :class:`~repro.analysis.stats.P2Quantile` — memory is
    fixed no matter how many samples are observed.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_quantiles")

    def __init__(self, name: str,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._quantiles = {q: P2Quantile(q) for q in quantiles}

    def observe(self, x: float) -> None:
        """Fold one sample into the summary (O(1) time and memory)."""
        x = float(x)
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        for estimator in self._quantiles.values():
            estimator.observe(x)

    @property
    def mean(self) -> float:
        """Mean of all observed samples (0.0 before any sample)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Current estimate for tracked quantile ``q``."""
        return self._quantiles[q].value()

    def to_dict(self) -> dict:
        """Snapshot representation: count/mean/min/max plus quantiles."""
        if not self.count:
            return {"count": 0}
        summary = {"count": self.count, "mean": self.mean,
                   "min": self.min, "max": self.max}
        for q, estimator in sorted(self._quantiles.items()):
            summary[f"p{q * 100:g}"] = estimator.value()
        return summary


class MetricsRegistry:
    """Name-keyed collection of counters, gauges and histograms.

    Instrument constructors are get-or-create: asking twice for the same
    name returns the same instrument, so producers can register lazily
    without coordinating.  Asking for an existing name as a different
    instrument kind is an error — names are the public contract.
    """

    def __init__(self):
        self._instruments: dict[str, object] = {}

    def _get_or_create(self, name: str, cls, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(f"{name!r} already registered as "
                            f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str,
                source: Optional[Callable[[], float]] = None) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter,
                                   lambda: Counter(name, source))

    def gauge(self, name: str,
              source: Optional[Callable[[], float]] = None) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name, source))

    def histogram(self, name: str,
                  quantiles: Sequence[float] = DEFAULT_QUANTILES) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, Histogram,
                                   lambda: Histogram(name, quantiles))

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def get(self, name: str):
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def value(self, name: str):
        """Shorthand: current value of counter/gauge ``name``."""
        instrument = self._instruments[name]
        if isinstance(instrument, Histogram):
            return instrument.to_dict()
        return instrument.value

    def snapshot(self) -> dict:
        """Freeze every instrument into plain values, grouped by kind."""
        counters, gauges, hists = {}, {}, {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                hists[name] = instrument.to_dict()
        return {"counters": counters, "gauges": gauges, "hists": hists}
