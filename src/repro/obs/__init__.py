"""Observability: metrics registry, causal spans, streaming snapshots.

The telemetry seam of the repository.  Every network owns a
:class:`MetricsRegistry` (``net.obs``) into which the scheduler, link
layer, QNP, policer/arbiter, traffic engine and applications publish
counters, gauges and bounded-memory histograms; a
:class:`SnapshotEmitter` streams the registry to JSONL on a simulated
clock; and :class:`~repro.analysis.tracing.SpanTracer` (re-exported
here) upgrades the flat protocol trace to a causal span tree.  See the
DESIGN "Observability" section for the overall shape and overhead
budget.
"""

from ..analysis.tracing import Span, SpanTracer, attach_tracer
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .report import REQUIRED_SERIES, missing_series, summarise
from .snapshots import SnapshotEmitter, max_rss_kb, read_snapshots

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotEmitter",
    "max_rss_kb",
    "read_snapshots",
    "REQUIRED_SERIES",
    "missing_series",
    "summarise",
    "Span",
    "SpanTracer",
    "attach_tracer",
]
