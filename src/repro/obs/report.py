"""Snapshot post-processing: the ``python -m repro obs`` summarise view.

Reads a snapshot JSONL stream produced by
:class:`~repro.obs.snapshots.SnapshotEmitter` and renders the dashboard
the run would have shown live: final cumulative counters with their
average rate per simulated second, last gauge levels, and histogram
summaries.  Also hosts the required-series check the CI ``obs-smoke``
job uses to assert a run actually published its core telemetry.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..analysis.experiments import render_table
from .snapshots import read_snapshots

#: Series every instrumented traffic run must publish — the CI smoke job
#: fails when a snapshot stream is missing any of them.
REQUIRED_SERIES = (
    "sim.events_processed",
    "egp.attempts",
    "egp.pairs_generated",
    "qnp.swaps",
    "traffic.sessions_submitted",
    "traffic.pairs_confirmed",
)


def missing_series(snapshots: Sequence[dict],
                   required: Iterable[str] = REQUIRED_SERIES) -> list[str]:
    """Required counter names absent from the final snapshot."""
    if not snapshots:
        return sorted(required)
    counters = snapshots[-1].get("counters", {})
    return sorted(name for name in required if name not in counters)


def summarise(path, required: Iterable[str] = ()) -> str:
    """Render a text summary of a snapshot JSONL file.

    ``required`` adds a presence check: missing counter series raise
    ``ValueError`` (the CI smoke job maps that to a failing exit code).
    """
    snapshots = read_snapshots(path)
    if not snapshots:
        raise ValueError(f"{path}: no snapshots found")
    absent = missing_series(snapshots, required) if required else []
    if absent:
        raise ValueError(f"{path}: missing required series: "
                         + ", ".join(absent))
    first, last = snapshots[0], snapshots[-1]
    sim_span = last["t_sim_s"] - first["t_sim_s"]
    periodic = sum(1 for line in snapshots if line["kind"] == "periodic")
    lines = [f"obs summary: {path}",
             f"  snapshots: {len(snapshots)} "
             f"({periodic} periodic, final kind={last['kind']!r})",
             f"  simulated: {last['t_sim_s']:.3f} s   "
             f"wall: {last['t_wall_s']:.3f} s   "
             f"max RSS: {last['max_rss_kb']} kB",
             ""]
    counter_rows = []
    for name, value in sorted(last.get("counters", {}).items()):
        rate = value / sim_span if sim_span > 0 else float("nan")
        counter_rows.append([name, value, rate])
    if counter_rows:
        lines.append(render_table(["counter", "final", "per sim-s"],
                                  counter_rows))
        lines.append("")
    gauge_rows = [[name, value]
                  for name, value in sorted(last.get("gauges", {}).items())]
    if gauge_rows:
        lines.append(render_table(["gauge", "last"], gauge_rows))
        lines.append("")
    hist_rows = []
    for name, summary in sorted(last.get("hists", {}).items()):
        if not summary.get("count"):
            continue
        hist_rows.append([name, summary["count"], summary["mean"],
                          summary.get("p50", float("nan")),
                          summary.get("p95", float("nan")),
                          summary["min"], summary["max"]])
    if hist_rows:
        lines.append(render_table(
            ["histogram", "count", "mean", "p50", "p95", "min", "max"],
            hist_rows))
    return "\n".join(lines).rstrip()
