"""Simulation-time snapshot emitter: registry deltas streamed to JSONL.

Long runs should report like a dashboard instead of only at exit.  A
:class:`SnapshotEmitter` hooks into the discrete-event scheduler and
flushes the metrics registry every ``interval_s`` *simulated* seconds:
one JSON line per snapshot carrying cumulative counters, per-interval
deltas, gauge levels, histogram summaries, and the host-side context
(wall-clock elapsed, max RSS) that the ROADMAP's soak work needs next to
the simulated numbers.

The emitter is observation-only by construction: its tick events never
touch ``sim.rng`` or any protocol state, so enabling snapshots cannot
change what the simulation computes — only what it reports (the CI
``obs-smoke`` job holds the throughput floor with snapshots on).
"""

from __future__ import annotations

import json
import time as _time
from typing import Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None

from ..netsim import Simulator
from .registry import MetricsRegistry

S = 1e9  # ns per simulated second


def max_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in kB (None off POSIX)."""
    if resource is None:  # pragma: no cover - non-POSIX fallback
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class SnapshotEmitter:
    """Periodically flush a metrics registry to a JSONL file.

    ``start()`` writes a ``start`` line and schedules the first tick;
    every ``interval_s`` simulated seconds a ``periodic`` line follows;
    ``finalise()`` cancels the pending tick and writes one last ``final``
    line — the end-of-run reports read the same registry at the same
    instant, so the final snapshot's cumulative counters match them
    byte-for-byte.
    """

    def __init__(self, sim: Simulator, registry: MetricsRegistry, path,
                 interval_s: float = 0.5, meta: Optional[dict] = None):
        if interval_s <= 0:
            raise ValueError("snapshot interval must be positive")
        self.sim = sim
        self.registry = registry
        self.path = path
        self.interval_ns = interval_s * S
        self.meta = dict(meta or {})
        self.snapshots_written = 0
        self.last_snapshot: Optional[dict] = None
        self._handle = None
        self._file = None
        self._wall_start = 0.0
        self._prev_counters: dict = {}
        # Warm-up detection: the run is flagged steady (sticky) once the
        # per-interval confirmed-pair delta holds within a relative band
        # of its predecessor for STEADY_STREAK consecutive frames.
        self._steady = False
        self._steady_streak = 0
        self._prev_rate_delta: Optional[float] = None

    #: Consecutive stable deltas before a run is declared steady.
    STEADY_STREAK = 3
    #: Relative tolerance between consecutive deltas that counts as stable.
    STEADY_RTOL = 0.25

    def __getstate__(self) -> dict:
        """Checkpoint form: drop the open file, keep wall time as elapsed.

        The armed tick handle stays — it lives in the (also pickled)
        event heap, so the restored emitter keeps its snapshot grid.
        """
        state = self.__dict__.copy()
        state["_file"] = None
        state["_wall_start"] = _time.monotonic() - self._wall_start
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._wall_start = _time.monotonic() - state["_wall_start"]

    def reattach(self, path=None) -> None:
        """Re-open the output file after a checkpoint restore.

        A crash may have appended frames *after* the checkpoint was
        taken; replaying them would duplicate sequence numbers and break
        counter monotonicity, so the file is truncated back to the
        ``snapshots_written`` lines the checkpoint vouches for before
        appending resumes.  ``path`` redirects the stream (resume runs
        that must not clobber the original artifact).
        """
        if self._file is not None:
            return
        if path is not None:
            self.path = path
        lines: list[str] = []
        try:
            with open(self.path, encoding="utf-8") as handle:
                for raw in handle:
                    lines.append(raw)
                    if len(lines) >= self.snapshots_written:
                        break
        except FileNotFoundError:
            lines = []
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        self._file = open(self.path, "a", encoding="utf-8")

    def start(self) -> None:
        """Open the output file, write the ``start`` line, arm the tick."""
        if self._file is not None:
            return
        self._file = open(self.path, "w", encoding="utf-8")
        self._wall_start = _time.monotonic()
        self._emit("start")
        self._arm()

    def _arm(self) -> None:
        self._handle = self.sim.schedule(self.interval_ns, self._tick)

    def _tick(self) -> None:
        self._emit("periodic")
        self._arm()

    def _update_steady(self, deltas: dict) -> None:
        """Fold one frame's throughput delta into the warm-up detector.

        Purely observational and deterministic in simulated quantities
        (no wall-clock input), so the ``steady`` flag is reproducible
        across checkpoint/resume and identical runs.
        """
        delta = deltas.get("traffic.pairs_confirmed")
        if delta is None or self._steady:
            return
        prev = self._prev_rate_delta
        self._prev_rate_delta = float(delta)
        if prev is None or prev <= 0 or delta <= 0:
            self._steady_streak = 0
            return
        if abs(delta - prev) <= self.STEADY_RTOL * prev:
            self._steady_streak += 1
            if self._steady_streak >= self.STEADY_STREAK:
                self._steady = True
        else:
            self._steady_streak = 0

    def _emit(self, kind: str) -> dict:
        frame = self.registry.snapshot()
        counters = frame["counters"]
        deltas = {name: value - self._prev_counters.get(name, 0)
                  for name, value in counters.items()}
        self._prev_counters = dict(counters)
        if kind == "periodic":
            self._update_steady(deltas)
        line = {"kind": kind,
                "seq": self.snapshots_written,
                "t_sim_s": self.sim.now / S,
                "t_wall_s": round(_time.monotonic() - self._wall_start, 6),
                "max_rss_kb": max_rss_kb(),
                "steady": self._steady,
                "counters": counters,
                "deltas": deltas,
                "gauges": frame["gauges"],
                "hists": frame["hists"]}
        if kind == "start" and self.meta:
            line["meta"] = self.meta
        self._file.write(json.dumps(line) + "\n")
        self._file.flush()
        self.snapshots_written += 1
        self.last_snapshot = line
        return line

    def finalise(self) -> Optional[dict]:
        """Write the ``final`` snapshot and close the file (idempotent)."""
        if self._file is None:
            return self.last_snapshot
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        final = self._emit("final")
        self._file.close()
        self._file = None
        return final


def read_snapshots(path) -> list[dict]:
    """Parse a snapshot JSONL file back into a list of dicts."""
    lines = []
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if raw:
                lines.append(json.loads(raw))
    return lines
