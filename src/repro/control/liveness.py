"""Circuit liveness monitoring (Sec 4.1, "Classical communication and link
reliability").

Every virtual circuit's classical connectivity is monitored end-to-end:
the head-end sends periodic PING messages along the circuit's path; the
tail-end answers with PONGs.  When several consecutive PINGs go
unanswered, the head-end declares the circuit dead, tears it down through
the signalling protocol, and the QNP aborts all of the circuit's requests
and notifies the applications of the failure — the behaviour the paper
prescribes ("if a circuit goes down due to loss of connectivity, the
protocol aborts all requests and notifies applications").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..netsim.entity import Entity
from ..netsim.ports import Component, connect
from ..netsim.timers import PeriodicTimer
from ..netsim.units import MS
from ..network.node import QuantumNode, service_protocol


@dataclass
class Ping:
    """Head-end keepalive probe, relayed hop-by-hop along the path."""

    circuit_id: str
    sequence: int
    path: tuple
    index: int


@dataclass
class Pong:
    """Tail-end keepalive answer, relayed back along the path."""

    circuit_id: str
    sequence: int
    path: tuple
    index: int


class LivenessAgent(Entity, Component):
    """Per-node liveness protocol instance (message relay + endpoints)."""

    def __init__(self, node: QuantumNode):
        super().__init__(node.sim, name=f"{node.name}.liveness")
        self.node = node
        connect(self.add_port("node", service_protocol("liveness"),
                              handler=self._on_node_message),
                node.service_port("liveness"))
        self._monitors: dict[str, "_CircuitMonitor"] = {}

    def _on_node_message(self, message) -> None:
        """Port handler: unpack the node's ``(sender, payload)`` tuple."""
        self._on_message(*message)

    # ------------------------------------------------------------------
    # Head-end API
    # ------------------------------------------------------------------

    def watch(self, circuit_id: str, path: list[str], interval: float = 50 * MS,
              miss_limit: int = 3,
              on_failure: Optional[Callable[[str], None]] = None) -> None:
        """Start monitoring a circuit from its head-end node."""
        if path[0] != self.node.name:
            raise ValueError("watch() must run at the circuit's head-end")
        if circuit_id in self._monitors:
            raise ValueError(f"already watching {circuit_id}")
        monitor = _CircuitMonitor(self, circuit_id, tuple(path), interval,
                                  miss_limit, on_failure)
        self._monitors[circuit_id] = monitor
        monitor.start()

    def unwatch(self, circuit_id: str) -> None:
        """Stop monitoring a circuit (no-op if it was not watched)."""
        monitor = self._monitors.pop(circuit_id, None)
        if monitor is not None:
            monitor.stop()

    def is_watching(self, circuit_id: str) -> bool:
        """Whether this head-end currently monitors the circuit."""
        return circuit_id in self._monitors

    # ------------------------------------------------------------------

    def _on_message(self, sender: str, message) -> None:
        if isinstance(message, Ping):
            if message.index + 1 < len(message.path):
                message.index += 1
                self.node.send(message.path[message.index], "liveness", message)
            else:
                # Tail-end: answer back along the path.
                pong = Pong(circuit_id=message.circuit_id,
                            sequence=message.sequence,
                            path=message.path, index=len(message.path) - 2)
                self.node.send(message.path[-2], "liveness", pong)
        elif isinstance(message, Pong):
            if message.index == 0:
                monitor = self._monitors.get(message.circuit_id)
                if monitor is not None:
                    monitor.on_pong(message.sequence)
            else:
                message.index -= 1
                self.node.send(message.path[message.index], "liveness", message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected liveness message {message!r}")


class _CircuitMonitor:
    """Head-end state machine for one circuit's keepalive."""

    def __init__(self, agent: LivenessAgent, circuit_id: str, path: tuple,
                 interval: float, miss_limit: int,
                 on_failure: Optional[Callable[[str], None]]):
        self.agent = agent
        self.circuit_id = circuit_id
        self.path = path
        self.miss_limit = miss_limit
        self.on_failure = on_failure
        self._sequence = 0
        self._last_acked = -1
        self._misses = 0
        self._timer = PeriodicTimer(agent.sim, interval, self._tick)
        self.failed = False

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def on_pong(self, sequence: int) -> None:
        if sequence > self._last_acked:
            self._last_acked = sequence
            self._misses = 0

    def _tick(self) -> None:
        if self._sequence > self._last_acked:
            self._misses += 1
            if self._misses >= self.miss_limit:
                self._declare_failed()
                return
        self._sequence += 1
        ping = Ping(circuit_id=self.circuit_id, sequence=self._sequence,
                    path=self.path, index=1)
        self.agent.node.send(self.path[1], "liveness", ping)

    def _declare_failed(self) -> None:
        self.failed = True
        self.stop()
        self.agent._monitors.pop(self.circuit_id, None)
        if self.on_failure is not None:
            self.on_failure(self.circuit_id)
