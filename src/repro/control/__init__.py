"""Control plane: routing, signalling, reliable transport."""

from .routing import (
    CentralController,
    CutoffPolicy,
    LOSS_CUTOFF_FRACTION,
    RouteComputation,
    RouteError,
    SHORT_CUTOFF_QUANTILE,
)
from .liveness import LivenessAgent
from .signalling import SignallingAgent, allocate_circuit_id
from .transport import ReliableEnd, make_reliable_pair

__all__ = [
    "LivenessAgent",
    "CentralController",
    "RouteComputation",
    "RouteError",
    "CutoffPolicy",
    "LOSS_CUTOFF_FRACTION",
    "SHORT_CUTOFF_QUANTILE",
    "SignallingAgent",
    "allocate_circuit_id",
    "ReliableEnd",
    "make_reliable_pair",
]
