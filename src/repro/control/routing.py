"""Central routing controller: metric-driven path selection + budgets.

The paper's Sec 5 controller uses a "rudimentary algorithm" (plain
shortest path over identical links) and explicitly leaves smarter path
selection and fault handling open.  This module keeps that algorithm as
the ``hops`` metric and generalises it: candidate paths are enumerated
with Yen's k-shortest-paths, each candidate is checked for fidelity
feasibility, and a pluggable **path metric** picks among the feasible
candidates (see :data:`PATH_METRICS`):

* ``hops`` — the paper's baseline: the first feasible shortest path;
* ``utilisation`` — penalise links by their currently-installed LPR
  share (tracked at circuit install/teardown), spreading circuits across
  the topology instead of piling them onto the same shortest links;
* ``fidelity-cost`` — prefer the candidate whose solved per-link
  fidelity leaves the most headroom below the hardware ceiling.

Links taken down by failure injection (:meth:`CentralController.
set_link_state`) are excluded from candidate enumeration, which is what
circuit recovery (:meth:`repro.network.builder.Network.recover_circuit`)
relies on to re-route around an outage.

For the selected path the controller computes, exactly as before:

* the **per-link minimum fidelity**, found by binary search over the exact
  worst-case composition: every link pair is assumed to sit in memory for
  one full cutoff window before being swapped, and the L−1 noisy swaps are
  composed with the density-matrix engine's outcome-averaged swap map,
* the **cutoff time**, per policy:

  - ``"loss"`` (the paper's default): the time for a link pair to lose
    ~1.5 % of its initial fidelity,
  - ``"short"``: the time by which a link has 0.85 probability of having
    generated a pair (Sec 5.1's "shorter cutoff"),
  - an explicit number (ns), or ``None`` to disable the mechanism,

* the link-pair rate (LPR) each link can sustain at that fidelity and the
  resulting end-to-end rate (EER) estimate used for policing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Union

import networkx as nx
import numpy as np

from ..hardware.heralded import SingleClickModel
from ..netsim.units import S
from ..quantum.bell import BellIndex
from ..quantum.channels import decoherence_kraus
from ..quantum.fidelity import bell_fidelity
from ..quantum.gates import PAULI_FRAME
from ..quantum.operations import NoisyOpParams, averaged_swap_dm
from ..core.circuit import RoutingEntry

CutoffPolicy = Union[str, float, None]

#: Fraction of initial fidelity lost at the "loss" cutoff (Sec 5).
LOSS_CUTOFF_FRACTION = 0.015
#: Generation-probability quantile of the "short" cutoff (Sec 5.1).
SHORT_CUTOFF_QUANTILE = 0.85
#: The supported path-selection metrics (the CLI's ``--metric`` choices).
PATH_METRICS = ("hops", "utilisation", "fidelity-cost")
#: Candidate paths enumerated per route computation (Yen's algorithm).
DEFAULT_K_PATHS = 8


class RouteError(Exception):
    """No path can satisfy the requested end-to-end fidelity."""


@dataclass
class RouteComputation:
    """Everything the signalling protocol needs to install a circuit."""

    path: list[str]
    link_names: list[str]
    link_fidelity: float
    cutoff: Optional[float]
    max_lpr: float
    eer: float
    estimated_fidelity: float
    target_fidelity: float
    #: Path metric that selected this route (``hops`` for manual routes).
    metric: str = "hops"

    @property
    def num_links(self) -> int:
        """Number of physical links (= entanglement swaps + 1) on the path."""
        return len(self.link_names)


def _canonical_link_dm(model: SingleClickModel, link_fidelity: float) -> np.ndarray:
    """Produced link state, rotated into the Φ+ frame.

    The heralded state is Ψ±; lazy tracking folds the frame into the
    delivered Bell index, so budgeting in the canonical frame is exact.
    """
    alpha = model.alpha_for_fidelity(link_fidelity)
    dm = model.produced_dm(alpha, BellIndex.PSI_PLUS)
    pauli = np.kron(np.eye(2, dtype=complex), PAULI_FRAME[1])  # X: Ψ+ → Φ+
    return pauli.conj().T @ dm @ pauli


def _age_pair(dm: np.ndarray, elapsed: float, t1: float, t2: float) -> np.ndarray:
    """Apply memory decoherence to both qubits of a pair state."""
    if elapsed <= 0:
        return dm
    identity = np.eye(2, dtype=complex)
    aged = np.zeros_like(dm)
    for op_a in decoherence_kraus(elapsed, t1, t2):
        big = np.kron(op_a, identity)
        aged += big @ dm @ big.conj().T
    result = np.zeros_like(dm)
    for op_b in decoherence_kraus(elapsed, t1, t2):
        big = np.kron(identity, op_b)
        result += big @ aged @ big.conj().T
    return result


#: Process-wide budget/ceiling memoisation.  The solves depend only on
#: *values* — hardware parameters, fibre connection, chain length, target,
#: cutoff policy, memory lifetimes and gate-noise knobs — all of which are
#: hashable frozen dataclasses, so controllers of identical networks (every
#: benchmark round, every campaign cell replica, every test building the
#: same topology) share one solve instead of redoing the ~1s bisection
#: cascade per controller instance.
_BUDGET_CACHE: dict[tuple, object] = {}
_CEILING_CACHE: dict[tuple, float] = {}


class CentralController:
    """Centralised routing: k-path candidates, metrics, fidelity budgets."""

    def __init__(self, graph: nx.Graph, links: dict, memory_t1: float,
                 memory_t2: float, ops: NoisyOpParams, metric: str = "hops",
                 k_paths: int = DEFAULT_K_PATHS):
        """``links`` maps ``frozenset({u, v})`` → :class:`~repro.linklayer.egp.Link`.

        ``metric`` is the default path metric (one of :data:`PATH_METRICS`,
        overridable per :meth:`compute_route` call); ``k_paths`` bounds the
        candidate enumeration.
        """
        if metric not in PATH_METRICS:
            raise ValueError(f"unknown path metric {metric!r} "
                             f"(have: {', '.join(PATH_METRICS)})")
        if k_paths < 1:
            raise ValueError("k_paths must be at least 1")
        self.graph = graph
        self.links = links
        self.memory_t1 = memory_t1
        self.memory_t2 = memory_t2
        self.ops = ops
        self.metric = metric
        self.k_paths = k_paths
        #: Links currently taken down by failure injection.
        self._down: set[frozenset] = set()
        #: circuit_id → per-link share contributions of its installed route.
        self._installed: dict[str, dict[frozenset, float]] = {}
        #: link edge → total installed LPR share (the utilisation metric).
        self.link_share: dict[frozenset, float] = {}
        #: Number of completed route computations (telemetry).
        self.route_computations = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def compute_route(self, head: str, tail: str, target_fidelity: float,
                      cutoff_policy: CutoffPolicy = "loss",
                      metric: Optional[str] = None) -> RouteComputation:
        """Select a path by the active metric and solve its budget.

        Enumerates up to ``k_paths`` loop-free candidate paths (shortest
        first, down links excluded), solves the fidelity budget per
        candidate, and returns the feasible candidate the metric scores
        best.  Raises :class:`RouteError` when no candidate is feasible.
        """
        metric = self.metric if metric is None else metric
        if metric not in PATH_METRICS:
            raise RouteError(f"unknown path metric {metric!r} "
                             f"(have: {', '.join(PATH_METRICS)})")
        if not 0.5 <= target_fidelity < 1.0:
            raise RouteError(f"target fidelity {target_fidelity} must be in [0.5, 1)")
        graph = self._working_graph()

        def candidates():
            # Lazy: the 'hops' metric stops after the first feasible
            # candidate, so Yen's algorithm must not enumerate all
            # k_paths up front.
            try:
                yield from itertools.islice(
                    nx.shortest_simple_paths(graph, head, tail),
                    self.k_paths)
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise RouteError(
                    f"no usable path from {head} to {tail}") from exc

        best: Optional[RouteComputation] = None
        best_score: Optional[tuple] = None
        last_error: Optional[RouteError] = None
        for index, path in enumerate(candidates()):
            try:
                route = self._route_for_path(path, target_fidelity,
                                             cutoff_policy, metric)
            except RouteError as exc:
                # Candidates only get longer, and longer paths need a
                # strictly higher link fidelity: once a length is
                # infeasible every later candidate is too.
                last_error = exc
                break
            score = self._score(path, route, metric, index)
            if best_score is None or score < best_score:
                best, best_score = route, score
            if metric == "hops":
                # The Sec 5 baseline: first feasible shortest candidate.
                break
        if best is None:
            raise last_error or RouteError(
                f"no feasible path from {head} to {tail} "
                f"at fidelity {target_fidelity:.3f}")
        self.route_computations += 1
        return best

    # ------------------------------------------------------------------
    # Installed-load tracking (the utilisation metric's state)
    # ------------------------------------------------------------------

    def register_install(self, circuit_id: str, route: RouteComputation) -> None:
        """Record an installed circuit's LPR share on each of its links.

        The contribution per link is the fraction of the link's pair
        generation time the circuit needs to sustain its admitted EER:
        ``eer / max_lpr(link fidelity)`` — the paper's matched-pair
        probability.  It is continuous in the route's length and cutoff,
        so shares discriminate between placements that an integer
        circuits-per-link count would tie.
        """
        shares: dict[frozenset, float] = {}
        for i in range(len(route.path) - 1):
            edge = frozenset((route.path[i], route.path[i + 1]))
            capacity = self.links[edge].max_lpr(route.link_fidelity)
            share = route.eer / capacity if capacity > 0 else 1.0
            shares[edge] = share
            self.link_share[edge] = self.link_share.get(edge, 0.0) + share
        self._installed[circuit_id] = shares

    def register_teardown(self, circuit_id: str) -> None:
        """Return a torn-down circuit's LPR share to its links."""
        shares = self._installed.pop(circuit_id, None)
        if shares is None:
            return
        for edge, share in shares.items():
            remaining = self.link_share.get(edge, 0.0) - share
            if remaining <= 1e-12:
                self.link_share.pop(edge, None)
            else:
                self.link_share[edge] = remaining

    def max_link_share(self) -> float:
        """Largest installed LPR share across all links (0 when idle)."""
        return max(self.link_share.values(), default=0.0)

    # ------------------------------------------------------------------
    # Link liveness (failure injection)
    # ------------------------------------------------------------------

    def set_link_state(self, edge: frozenset, up: bool) -> None:
        """Mark a link up or down; down links leave candidate enumeration."""
        if up:
            self._down.discard(frozenset(edge))
        else:
            self._down.add(frozenset(edge))

    def link_is_up(self, edge: frozenset) -> bool:
        """Whether the controller believes a link is usable."""
        return frozenset(edge) not in self._down

    def _working_graph(self) -> nx.Graph:
        """The topology minus links currently marked down."""
        if not self._down:
            return self.graph
        return nx.restricted_view(self.graph, [],
                                  [tuple(edge) for edge in self._down])

    # ------------------------------------------------------------------
    # Candidate solving and scoring
    # ------------------------------------------------------------------

    def _route_for_path(self, path: list[str], target_fidelity: float,
                        cutoff_policy: CutoffPolicy,
                        metric: str) -> RouteComputation:
        """Solve the fidelity budget along one concrete candidate path."""
        link_objects = [self._link(path[i], path[i + 1])
                        for i in range(len(path) - 1)]
        num_links = len(link_objects)
        model = link_objects[0].model  # identical links (Sec 5 assumption)
        link_fidelity, cutoff, estimated = self._solve_budget(
            model, num_links, target_fidelity, cutoff_policy)
        max_lpr = min(link.max_lpr(link_fidelity) for link in link_objects)
        eer = self._estimate_eer(model, link_fidelity, cutoff, max_lpr)
        return RouteComputation(
            path=list(path),
            link_names=[link.name for link in link_objects],
            link_fidelity=link_fidelity,
            cutoff=cutoff,
            max_lpr=max_lpr,
            eer=eer,
            estimated_fidelity=estimated,
            target_fidelity=target_fidelity,
            metric=metric,
        )

    def _solve_budget(self, model: SingleClickModel, num_links: int,
                      target_fidelity: float, cutoff_policy: CutoffPolicy
                      ) -> tuple[float, Optional[float], float]:
        """Memoised (link fidelity, cutoff, worst-case fidelity) solve."""
        # Key by physical parameter *values*, not model or controller
        # identity: every Link owns its own SingleClickModel instance, but
        # links with the same hardware and fibre share the budget solution
        # — across controllers too (the module-level cache), since the
        # solve also folds in the controller's memory lifetimes and gate
        # noise, which are part of the key.  ``model.cache_key`` carries
        # the model class and its knobs, so analytic and midpoint links
        # over identical fibre never share a solve.
        key = (model.cache_key, num_links,
               target_fidelity, cutoff_policy,
               self.memory_t1, self.memory_t2, self.ops)
        cached = _BUDGET_CACHE.get(key)
        if cached is not None:
            if isinstance(cached, RouteError):
                raise cached
            return cached
        try:
            solution = self._solve_budget_uncached(model, num_links,
                                                   target_fidelity,
                                                   cutoff_policy)
        except RouteError as exc:
            _BUDGET_CACHE[key] = exc
            raise
        _BUDGET_CACHE[key] = solution
        return solution

    def _solve_budget_uncached(self, model: SingleClickModel, num_links: int,
                               target_fidelity: float,
                               cutoff_policy: CutoffPolicy
                               ) -> tuple[float, Optional[float], float]:
        ceiling = self._fidelity_ceiling(model)
        if ceiling < target_fidelity:
            raise RouteError(
                f"links cannot produce fidelity {target_fidelity:.3f} "
                f"(ceiling ≈ {ceiling:.3f})")
        # Fixed-point iteration between the cutoff window and the link
        # fidelity (each depends on the other through the decoherence
        # budget); converges in a couple of rounds.
        link_fidelity = min(ceiling, max(target_fidelity, 0.9))
        cutoff = self._cutoff_for(model, link_fidelity, cutoff_policy)
        for _ in range(3):
            link_fidelity = self._solve_link_fidelity(
                model, num_links, target_fidelity, cutoff, ceiling)
            cutoff = self._cutoff_for(model, link_fidelity, cutoff_policy)
        estimated = self._worst_case_fidelity(model, link_fidelity, num_links,
                                              cutoff if cutoff else 0.0)
        return link_fidelity, cutoff, estimated

    def _score(self, path: list[str], route: RouteComputation, metric: str,
               index: int) -> tuple:
        """Comparable score per candidate — lower wins, ties break on the
        candidate's enumeration order (shortest first) for determinism."""
        if metric == "utilisation":
            shares = [self.link_share.get(frozenset((path[i], path[i + 1])),
                                          0.0)
                      for i in range(len(path) - 1)]
            return (round(max(shares), 9), round(sum(shares), 9),
                    len(path), index)
        if metric == "fidelity-cost":
            # Lower required link fidelity = more headroom below the
            # hardware ceiling before the budget breaks.
            return (round(route.link_fidelity, 9), len(path), index)
        return (len(path), index)  # hops

    def build_entries(self, circuit_id: str, route: RouteComputation,
                      max_eer: Optional[float] = None) -> list[RoutingEntry]:
        """Materialise the per-node routing table rows for a route."""
        label = f"label:{circuit_id}"
        eer = max_eer if max_eer is not None else route.eer
        entries = []
        path = route.path
        for index, node in enumerate(path):
            upstream = path[index - 1] if index > 0 else None
            downstream = path[index + 1] if index < len(path) - 1 else None
            entries.append(RoutingEntry(
                circuit_id=circuit_id,
                node=node,
                upstream_node=upstream,
                downstream_node=downstream,
                upstream_link=route.link_names[index - 1] if upstream else None,
                downstream_link=route.link_names[index] if downstream else None,
                upstream_link_label=label if upstream else None,
                downstream_link_label=label if downstream else None,
                downstream_min_fidelity=route.link_fidelity if downstream else None,
                downstream_max_lpr=route.max_lpr if downstream else None,
                circuit_max_eer=eer,
                cutoff=route.cutoff,
                estimated_fidelity=route.estimated_fidelity,
            ))
        return entries

    # ------------------------------------------------------------------
    # Budget internals
    # ------------------------------------------------------------------

    def _worst_case_fidelity(self, model: SingleClickModel, link_fidelity: float,
                             num_links: int, cutoff: float) -> float:
        """Worst-case end-to-end fidelity: every pair aged one full cutoff
        window, then L−1 noisy swaps (the Sec 5 budget)."""
        aged = _age_pair(_canonical_link_dm(model, link_fidelity), cutoff,
                         self.memory_t1, self.memory_t2)
        rho = aged
        for _ in range(num_links - 1):
            rho = averaged_swap_dm(rho, aged, self.ops)
        return bell_fidelity(rho, 0)

    def _solve_link_fidelity(self, model: SingleClickModel, num_links: int,
                             target: float, cutoff: Optional[float],
                             ceiling: float) -> float:
        window = cutoff if cutoff else 0.0
        if self._worst_case_fidelity(model, ceiling, num_links, window) < target:
            raise RouteError(
                f"path of {num_links} links cannot meet fidelity {target:.3f} "
                f"even at the link ceiling {ceiling:.3f}")
        low, high = target, ceiling
        for _ in range(40):
            mid = (low + high) / 2
            if self._worst_case_fidelity(model, mid, num_links, window) >= target:
                high = mid
            else:
                low = mid
        return high

    def _cutoff_for(self, model: SingleClickModel, link_fidelity: float,
                    policy: CutoffPolicy) -> Optional[float]:
        if policy is None:
            return None
        if isinstance(policy, (int, float)):
            if policy <= 0:
                raise RouteError("explicit cutoff must be positive")
            return float(policy)
        if policy == "short":
            return model.time_quantile(model.alpha_for_fidelity(link_fidelity),
                                       SHORT_CUTOFF_QUANTILE)
        if policy == "loss":
            return self._loss_cutoff(model, link_fidelity)
        raise RouteError(f"unknown cutoff policy {policy!r}")

    def _loss_cutoff(self, model: SingleClickModel, link_fidelity: float) -> float:
        """Time for a link pair to lose LOSS_CUTOFF_FRACTION of its fidelity."""
        dm = _canonical_link_dm(model, link_fidelity)
        initial = bell_fidelity(dm, 0)
        target = initial * (1.0 - LOSS_CUTOFF_FRACTION)
        low, high = 0.0, 60.0 * S
        while bell_fidelity(_age_pair(dm, high, self.memory_t1, self.memory_t2),
                            0) > target:
            high *= 4.0
            if high > 1e15:  # pragma: no cover - essentially noiseless memory
                return high
        for _ in range(60):
            mid = (low + high) / 2
            aged = _age_pair(dm, mid, self.memory_t1, self.memory_t2)
            if bell_fidelity(aged, 0) > target:
                low = mid
            else:
                high = mid
        return (low + high) / 2

    def _estimate_eer(self, model: SingleClickModel, link_fidelity: float,
                      cutoff: Optional[float], max_lpr: float) -> float:
        """EER estimate: the bottleneck LPR times the probability that the
        matching pair arrives within the cutoff window."""
        if cutoff is None:
            return max_lpr
        alpha = model.alpha_for_fidelity(link_fidelity)
        p = model.success_probability(alpha)
        attempts_in_window = max(1.0, cutoff / model.cycle_time)
        p_match = 1.0 - (1.0 - p) ** attempts_in_window
        return max_lpr * p_match

    def _fidelity_ceiling(self, model: SingleClickModel) -> float:
        key = model.cache_key
        cached = _CEILING_CACHE.get(key)
        if cached is None:
            grid = np.geomspace(1e-3, 0.5, 200)
            cached = float(max(model.fidelity(alpha) for alpha in grid)) - 1e-6
            _CEILING_CACHE[key] = cached
        return cached

    def _link(self, node_a: str, node_b: str):
        try:
            return self.links[frozenset((node_a, node_b))]
        except KeyError:
            raise RouteError(f"no link between {node_a} and {node_b}") from None
